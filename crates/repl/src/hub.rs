//! The primary-side replication hub: fan-out from the single-writer
//! funnel's post-acknowledgement tap to per-follower feed queues.
//!
//! One [`ReplicationHub`] lives next to the primary's `WriterHub`. The
//! writer thread calls [`ReplicationHub::publish`] (through the
//! [`BatchTap`] from [`ReplicationHub::tap`]) after every acknowledged
//! batch; each feed connection registers a bounded queue, drains it to
//! its follower, and reports acknowledgements back. Everything the
//! write path touches is `try_send` on a bounded channel — **the tap
//! never blocks**: a follower whose queue fills (or whose feed thread
//! died) is marked overflowed, its feed drops the connection, and the
//! follower reconnects and re-catches-up from disk, where every record
//! it missed still is.

use crate::proto::ReplRecord;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// Registry handles for replication health: the shipped/acked positions
/// and their gap (the follower lag, in epochs — one record per epoch, so
/// the same number reads as records behind), plus the overflow drops
/// that force a follower back to disk catch-up.
struct HubMetrics {
    followers: &'static tq_obs::Gauge,
    last_shipped: &'static tq_obs::Gauge,
    min_acked: &'static tq_obs::Gauge,
    lag: &'static tq_obs::Gauge,
    records_shipped: &'static tq_obs::Counter,
    overflow_drops: &'static tq_obs::Counter,
}

fn metrics() -> &'static HubMetrics {
    static M: OnceLock<HubMetrics> = OnceLock::new();
    M.get_or_init(|| HubMetrics {
        followers: tq_obs::gauge("tq_repl_followers", ""),
        last_shipped: tq_obs::gauge("tq_repl_last_shipped_epoch", ""),
        min_acked: tq_obs::gauge("tq_repl_min_acked_epoch", ""),
        lag: tq_obs::gauge("tq_repl_lag_epochs", ""),
        records_shipped: tq_obs::counter("tq_repl_records_shipped_total", ""),
        overflow_drops: tq_obs::counter("tq_repl_overflow_drops_total", ""),
    })
}

impl HubInner {
    /// Refreshes the position gauges from this state — called under the
    /// hub lock wherever positions move, so the gauges never lag the
    /// status frames.
    fn sync_gauges(&self) {
        if !tq_obs::enabled() {
            return;
        }
        let m = metrics();
        m.followers.set(self.followers.len() as u64);
        m.last_shipped.set(self.last_shipped);
        let min_acked = self.followers.values().map(|s| s.acked).min().unwrap_or(0);
        m.min_acked.set(min_acked);
        m.lag.set(self.last_shipped.saturating_sub(min_acked));
    }
}
use tq_core::dynamic::Update;
use tq_core::persist::encode_update_batch;
use tq_core::writer::BatchTap;
use tq_store::ReplMeta;

/// Records a feed queue may hold before its follower counts as fallen
/// behind. Sized so a briefly stalled follower survives a burst, while a
/// genuinely stuck one is dropped long before the primary notices any
/// memory pressure.
pub const FEED_QUEUE_DEPTH: usize = 1024;

/// Minimum spacing between advisory `repl.tqr` rewrites. A feed can
/// acknowledge hundreds of records per second; rewriting (create +
/// rename) the position file for each would double the primary store
/// directory's metadata traffic and contend with the WAL's fsyncs. The
/// file is advisory, so a throttled snapshot is exactly as useful.
const META_WRITE_INTERVAL: Duration = Duration::from_millis(200);

struct FollowerSlot {
    tx: SyncSender<ReplRecord>,
    peer: String,
    acked: u64,
    overflowed: bool,
}

struct HubInner {
    next_id: u64,
    followers: HashMap<u64, FollowerSlot>,
    last_shipped: u64,
    /// When the advisory position file was last rewritten.
    meta_stamp: Option<Instant>,
}

impl HubInner {
    fn meta(&self) -> ReplMeta {
        ReplMeta {
            last_shipped: self.last_shipped,
            last_acked: self.followers.values().map(|s| s.acked).min().unwrap_or(0),
        }
    }
}

/// One follower's position, as [`HubStatus`] reports it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FollowerStatus {
    /// The hub-assigned feed id.
    pub id: u64,
    /// The follower's peer address, as its feed connection reported it.
    pub peer: String,
    /// Newest epoch this follower has acknowledged.
    pub acked: u64,
    /// Whether the follower overran its feed queue and is about to be
    /// dropped by its feed thread.
    pub overflowed: bool,
}

/// A point-in-time summary of the hub, for status frames and `tq status`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HubStatus {
    /// Every registered follower, in feed-id order.
    pub followers: Vec<FollowerStatus>,
    /// Epoch of the newest record offered to any feed.
    pub last_shipped: u64,
    /// The slowest follower's acknowledged epoch — `last_shipped` minus
    /// this is the replication lag. `None` with no followers connected.
    pub min_acked: Option<u64>,
}

/// The primary-side fan-out point — see the [module docs](self).
pub struct ReplicationHub {
    inner: Mutex<HubInner>,
    /// Store directory to drop the advisory `repl.tqr` position file
    /// into, when the primary is durable.
    dir: Option<PathBuf>,
}

impl ReplicationHub {
    /// A hub with no followers yet. `dir` names the primary's store
    /// directory so follower acknowledgements leave an advisory
    /// [`ReplMeta`] behind for `tq inspect`; pass `None` for an
    /// in-memory primary.
    pub fn new(dir: Option<PathBuf>) -> Arc<ReplicationHub> {
        Arc::new(ReplicationHub {
            inner: Mutex::new(HubInner {
                next_id: 0,
                followers: HashMap::new(),
                last_shipped: 0,
                meta_stamp: None,
            }),
            dir,
        })
    }

    fn lock(&self) -> MutexGuard<'_, HubInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The [`BatchTap`] to install into the writer funnel
    /// ([`tq_core::writer::WriterOptions::tap`]); it forwards every
    /// acknowledged batch to [`ReplicationHub::publish`].
    pub fn tap(self: &Arc<Self>) -> BatchTap {
        let hub = Arc::clone(self);
        Box::new(move |epoch, updates| hub.publish(epoch, updates))
    }

    /// Fans one acknowledged batch out to every follower feed. Called on
    /// the writer thread — O(1) channel pushes, one batch encoding, no
    /// blocking, nothing at all when no follower is connected.
    pub fn publish(&self, epoch: u64, updates: &[Update]) {
        let mut inner = self.lock();
        if inner.followers.is_empty() {
            return;
        }
        if epoch > inner.last_shipped {
            inner.last_shipped = epoch;
        }
        let payload = encode_update_batch(updates);
        for slot in inner.followers.values_mut() {
            if slot.overflowed {
                continue;
            }
            let record = ReplRecord {
                epoch,
                payload: payload.clone(),
            };
            if let Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) =
                slot.tx.try_send(record)
            {
                // Never wait for a slow follower: flag it; its feed
                // thread drops the connection and the follower re-syncs
                // from the store, where this record durably is.
                slot.overflowed = true;
                metrics().overflow_drops.incr();
            } else {
                metrics().records_shipped.incr();
            }
        }
        inner.sync_gauges();
    }

    /// Registers a follower feed and returns its id and the live-record
    /// queue. Call **before** reading the store for catch-up: the WAL
    /// append happens-before the tap, so a record is always either on
    /// disk already or delivered through this queue (duplicates are
    /// deduped by epoch stamp on the follower).
    pub fn register(&self, peer: impl Into<String>) -> (u64, Receiver<ReplRecord>) {
        let (tx, rx) = sync_channel(FEED_QUEUE_DEPTH);
        let mut inner = self.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.followers.insert(
            id,
            FollowerSlot {
                tx,
                peer: peer.into(),
                acked: 0,
                overflowed: false,
            },
        );
        inner.sync_gauges();
        (id, rx)
    }

    /// Removes a follower feed (connection closed or overflowed),
    /// flushing the advisory position file with the departing follower's
    /// final acknowledgement still counted.
    pub fn deregister(&self, id: u64) {
        let meta = {
            let mut inner = self.lock();
            let meta = inner.meta();
            inner.followers.remove(&id);
            inner.meta_stamp = Some(Instant::now());
            inner.sync_gauges();
            meta
        };
        if let Some(dir) = &self.dir {
            let _ = meta.write(dir);
        }
    }

    /// Records that a feed handed `epoch` to its follower from the disk
    /// catch-up phase (live-phase records advance the mark in
    /// [`ReplicationHub::publish`]).
    pub fn note_shipped(&self, epoch: u64) {
        let mut inner = self.lock();
        if epoch > inner.last_shipped {
            inner.last_shipped = epoch;
        }
        metrics().records_shipped.incr();
        inner.sync_gauges();
    }

    /// Records a follower acknowledgement and (rate-limited, one write
    /// per `META_WRITE_INTERVAL`) refreshes the advisory `repl.tqr`
    /// position file. A failed or skipped advisory write costs nothing —
    /// replication correctness rests on epoch stamps, not on this file,
    /// and [`ReplicationHub::deregister`] flushes the final position.
    pub fn note_ack(&self, id: u64, epoch: u64) {
        let meta = {
            let mut inner = self.lock();
            if let Some(slot) = inner.followers.get_mut(&id) {
                if epoch > slot.acked {
                    slot.acked = epoch;
                }
            }
            inner.sync_gauges();
            if inner
                .meta_stamp
                .is_some_and(|at| at.elapsed() < META_WRITE_INTERVAL)
            {
                return;
            }
            inner.meta_stamp = Some(Instant::now());
            inner.meta()
        };
        if let Some(dir) = &self.dir {
            let _ = meta.write(dir);
        }
    }

    /// Whether `id`'s queue overflowed — its feed thread polls this and
    /// drops the connection so the follower re-syncs from disk.
    pub fn is_overflowed(&self, id: u64) -> bool {
        self.lock().followers.get(&id).is_none_or(|s| s.overflowed)
    }

    /// A point-in-time summary for status reporting.
    pub fn status(&self) -> HubStatus {
        let inner = self.lock();
        let mut followers: Vec<FollowerStatus> = inner
            .followers
            .iter()
            .map(|(&id, s)| FollowerStatus {
                id,
                peer: s.peer.clone(),
                acked: s.acked,
                overflowed: s.overflowed,
            })
            .collect();
        followers.sort_by_key(|f| f.id);
        HubStatus {
            last_shipped: inner.last_shipped,
            min_acked: followers.iter().map(|f| f.acked).min(),
            followers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_reaches_every_follower_without_blocking() {
        let hub = ReplicationHub::new(None);
        let (a, rx_a) = hub.register("peer-a");
        let (b, rx_b) = hub.register("peer-b");
        assert_ne!(a, b);

        hub.publish(5, &[Update::Remove(0)]);
        let got_a = rx_a.recv().unwrap();
        let got_b = rx_b.recv().unwrap();
        assert_eq!(got_a.epoch, 5);
        assert_eq!(got_a, got_b);
        // The shipped payload is the WAL payload for the same batch.
        assert_eq!(got_a.payload, encode_update_batch(&[Update::Remove(0)]));

        let status = hub.status();
        assert_eq!(status.last_shipped, 5);
        assert_eq!(status.min_acked, Some(0));
        assert_eq!(status.followers.len(), 2);
    }

    #[test]
    fn no_followers_means_no_work_and_no_shipped_mark() {
        let hub = ReplicationHub::new(None);
        hub.publish(9, &[Update::Remove(0)]);
        assert_eq!(hub.status().last_shipped, 0);
        assert_eq!(hub.status().min_acked, None);
    }

    #[test]
    fn overflow_flags_the_follower_and_never_blocks() {
        let hub = ReplicationHub::new(None);
        let (id, rx) = hub.register("slow");
        for epoch in 1..=(FEED_QUEUE_DEPTH as u64 + 8) {
            hub.publish(epoch, &[Update::Remove(0)]);
        }
        assert!(hub.is_overflowed(id));
        // The queue still holds the prefix that fit; nothing corrupted.
        assert_eq!(rx.recv().unwrap().epoch, 1);
        hub.deregister(id);
        assert!(hub.is_overflowed(id), "unknown ids read as overflowed");
    }

    #[test]
    fn acks_track_the_slowest_follower_and_write_the_position_file() {
        let dir = std::env::temp_dir().join(format!("tq-hub-ack-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let hub = ReplicationHub::new(Some(dir.clone()));
        let (fast, _rx_fast) = hub.register("fast");
        let (slow, _rx_slow) = hub.register("slow");
        hub.publish(7, &[Update::Remove(0)]);
        // The first ack writes the file immediately; the second lands
        // inside the write-throttle window and is only flushed by the
        // feed's deregistration.
        hub.note_ack(fast, 7);
        hub.note_ack(slow, 3);

        let status = hub.status();
        assert_eq!(status.last_shipped, 7);
        assert_eq!(status.min_acked, Some(3));

        let meta = ReplMeta::read(&dir).unwrap();
        assert_eq!(meta.last_shipped, 7);
        assert_eq!(meta.last_acked, 0, "the slow ack is throttled");

        hub.deregister(slow);
        let meta = ReplMeta::read(&dir).unwrap();
        assert_eq!(meta.last_shipped, 7);
        assert_eq!(meta.last_acked, 3, "deregistration flushes the final position");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
