//! WAL-shipping replication for TQ engines — warm standby followers
//! behind a primary's single-writer funnel.
//!
//! The durable layers below this crate already make one node safe: every
//! acknowledged batch is in the primary's WAL before it publishes
//! ([`tq_core::persist`]), and recovery replays the longest valid prefix
//! bit-identically. Replication extends that guarantee across machines by
//! shipping the *same bytes*: a WAL record's payload **is** the
//! replication record's payload, stamped with the epoch the batch
//! published, so a follower applies exactly what the primary logged and
//! answers queries bit-identical to it at the same epoch.
//!
//! The crate owns the transport-agnostic pieces; `tq-net` supplies the
//! frames and sockets around them:
//!
//! * [`proto`] — the replication payload codecs: [`ReplHello`] (what a
//!   follower announces), [`ReplRecord`] (one epoch-stamped WAL payload),
//!   [`SnapshotChunk`] (bootstrap transfer), [`ReplAck`] (lockstep
//!   acknowledgement).
//! * [`hub`] — the primary-side [`ReplicationHub`]: tapped into the
//!   writer funnel *after* each batch acknowledges, it fans records out
//!   to per-follower bounded queues. The tap never blocks the write
//!   path — a follower that falls behind its queue bound is dropped and
//!   re-catches-up from disk.
//! * [`catchup`] — the catch-up planner: given what a follower already
//!   has, decide between shipping WAL records only or bootstrapping with
//!   a snapshot first ([`plan_catch_up`]).
//!
//! ## The invariants, in one place
//!
//! * **Ship after ack.** A record reaches a follower only after the
//!   primary has validated, WAL-logged, applied, published and
//!   acknowledged it. Followers can never observe a batch the primary
//!   could still reject.
//! * **No gaps.** A feed connection registers with the hub *before*
//!   reading the store, so every record is either already on disk (the
//!   catch-up phase reads it) or arrives through the queue (the live
//!   phase ships it) — possibly both, never neither.
//! * **Duplicates are free.** Overlap between catch-up and the live feed
//!   is resolved by the epoch stamp: `Engine::apply_replicated` skips
//!   records at or below its epoch, the same rule crash recovery uses.

#![warn(missing_docs)]

pub mod catchup;
pub mod hub;
pub mod proto;

pub use catchup::{plan_catch_up, CatchUpPlan};
pub use hub::{FollowerStatus, HubStatus, ReplicationHub};
pub use proto::{ReplAck, ReplHello, ReplRecord, SnapshotChunk, REPL_PROTOCOL_VERSION};
