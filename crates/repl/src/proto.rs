//! Replication payload codecs — the bodies of the `repl-*` frames
//! `tq-net` carries between a primary and its followers.
//!
//! These are plain [`tq_store::codec`] payloads: the transport (framing,
//! CRC, kind bytes) stays in `tq-net`, so the torture tests here can
//! drive the codecs from in-memory buffers without a socket.

use bytes::{BufMut, Bytes, BytesMut};
use tq_store::codec::Reader;
use tq_store::StoreError;

/// Version of the replication sub-protocol. Carried in [`ReplHello`]
/// separately from the tq-net protocol version, so the replication
/// handshake can evolve without forcing a flag day on plain clients.
pub const REPL_PROTOCOL_VERSION: u16 = 1;

fn corrupt(why: impl Into<String>) -> StoreError {
    StoreError::Corrupt(why.into())
}

fn put_bytes(data: &[u8], buf: &mut BytesMut) {
    buf.put_u32_le(data.len() as u32);
    buf.put_slice(data);
}

fn get_bytes(r: &mut Reader) -> Result<Bytes, StoreError> {
    let len = r.u32()? as usize;
    r.take(len)
}

/// What a follower announces when it opens a feed connection: which
/// replication protocol it speaks, which shard it wants (always `0`
/// today — the field reserves the wire shape for per-shard feeds), and
/// the newest epoch already durable in its local store, if any.
///
/// The primary answers with either a stream of [`ReplRecord`]s picking
/// up after `have_epoch`, or — when the follower is behind the oldest
/// retained checkpoint, or empty — [`SnapshotChunk`]s first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplHello {
    /// The follower's [`REPL_PROTOCOL_VERSION`].
    pub protocol: u16,
    /// Requested shard feed; must be `0` (whole-store replication).
    pub shard: u16,
    /// Newest epoch in the follower's local store, `None` for an empty
    /// bootstrap.
    pub have_epoch: Option<u64>,
}

impl ReplHello {
    /// Serializes the hello body.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_u16_le(self.protocol);
        buf.put_u16_le(self.shard);
        match self.have_epoch {
            Some(e) => {
                buf.put_u8(1);
                buf.put_u64_le(e);
            }
            None => buf.put_u8(0),
        }
    }

    /// Parses a hello body.
    pub fn decode(r: &mut Reader) -> Result<ReplHello, StoreError> {
        let protocol = r.u16()?;
        let shard = r.u16()?;
        let have_epoch = match r.u8()? {
            0 => None,
            1 => Some(r.u64()?),
            other => return Err(corrupt(format!("have-epoch tag {other}"))),
        };
        Ok(ReplHello {
            protocol,
            shard,
            have_epoch,
        })
    }
}

/// One shipped WAL record: the epoch the batch published at and the
/// *exact* WAL payload bytes (the `u32`-count-prefixed update batch —
/// see `tq_core::persist::encode_update_batch`). Identical bytes on the
/// primary's disk, on the wire, and in the follower's WAL.
///
/// An **empty payload is a position marker**, not a batch: the primary
/// opens every WAL-only feed with one so the follower learns the feed
/// is live (and from which epoch) without waiting for a first real
/// record. The follower acknowledges a marker without applying it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplRecord {
    /// Epoch this batch published at on the primary.
    pub epoch: u64,
    /// The WAL payload bytes (empty for a position marker).
    pub payload: Bytes,
}

impl ReplRecord {
    /// Serializes the record body.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.epoch);
        put_bytes(self.payload.as_ref(), buf);
    }

    /// Parses a record body.
    pub fn decode(r: &mut Reader) -> Result<ReplRecord, StoreError> {
        let epoch = r.u64()?;
        let payload = get_bytes(r)?;
        Ok(ReplRecord { epoch, payload })
    }
}

/// One chunk of a snapshot transfer bootstrapping an empty (or too-far-
/// behind) follower. Chunks arrive in offset order; the last one
/// satisfies `offset + data.len() == total_len`, after which the
/// follower seeds its store via `Store::bootstrap` and the feed switches
/// to [`ReplRecord`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotChunk {
    /// Epoch of the snapshot being transferred.
    pub epoch: u64,
    /// Byte offset of this chunk within the snapshot file.
    pub offset: u64,
    /// Total snapshot length in bytes (repeated on every chunk, so a
    /// follower can preallocate and validate completion statelessly).
    pub total_len: u64,
    /// The chunk's bytes.
    pub data: Bytes,
}

impl SnapshotChunk {
    /// Serializes the chunk body.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.epoch);
        buf.put_u64_le(self.offset);
        buf.put_u64_le(self.total_len);
        put_bytes(self.data.as_ref(), buf);
    }

    /// Parses a chunk body, refusing chunks that overrun their declared
    /// total.
    pub fn decode(r: &mut Reader) -> Result<SnapshotChunk, StoreError> {
        let epoch = r.u64()?;
        let offset = r.u64()?;
        let total_len = r.u64()?;
        let data = get_bytes(r)?;
        if offset.saturating_add(data.len() as u64) > total_len {
            return Err(corrupt(format!(
                "chunk at {offset}+{} overruns declared total {total_len}",
                data.len()
            )));
        }
        Ok(SnapshotChunk {
            epoch,
            offset,
            total_len,
            data,
        })
    }
}

/// A follower's lockstep acknowledgement: the newest epoch it has
/// durably applied (or, during a snapshot transfer, the end offset it
/// has received). The primary advances its lag accounting — and the
/// advisory `repl.tqr` position file — from these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplAck {
    /// Newest applied epoch (or received byte offset during bootstrap).
    pub epoch: u64,
}

impl ReplAck {
    /// Serializes the ack body.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.epoch);
    }

    /// Parses an ack body.
    pub fn decode(r: &mut Reader) -> Result<ReplAck, StoreError> {
        Ok(ReplAck { epoch: r.u64()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T, E, D>(value: &T, encode: E, decode: D) -> T
    where
        E: Fn(&T, &mut BytesMut),
        D: Fn(&mut Reader) -> Result<T, StoreError>,
    {
        let mut buf = BytesMut::new();
        encode(value, &mut buf);
        let mut r = Reader::new(buf.freeze());
        let back = decode(&mut r).unwrap();
        r.finish().unwrap();
        back
    }

    #[test]
    fn hello_roundtrips_both_arms() {
        for have in [None, Some(0), Some(u64::MAX)] {
            let hello = ReplHello {
                protocol: REPL_PROTOCOL_VERSION,
                shard: 0,
                have_epoch: have,
            };
            assert_eq!(
                roundtrip(&hello, ReplHello::encode, ReplHello::decode),
                hello
            );
        }
    }

    #[test]
    fn record_and_ack_roundtrip() {
        let record = ReplRecord {
            epoch: 42,
            payload: Bytes::from(vec![1, 2, 3, 4, 5]),
        };
        assert_eq!(
            roundtrip(&record, ReplRecord::encode, ReplRecord::decode),
            record
        );
        let ack = ReplAck { epoch: 42 };
        assert_eq!(roundtrip(&ack, ReplAck::encode, ReplAck::decode), ack);
    }

    #[test]
    fn chunk_roundtrips_and_rejects_overrun() {
        let chunk = SnapshotChunk {
            epoch: 9,
            offset: 1024,
            total_len: 2048,
            data: Bytes::from(vec![7u8; 1024]),
        };
        assert_eq!(
            roundtrip(&chunk, SnapshotChunk::encode, SnapshotChunk::decode),
            chunk
        );

        let mut buf = BytesMut::new();
        SnapshotChunk {
            epoch: 9,
            offset: 2000,
            total_len: 2048,
            data: Bytes::from(vec![7u8; 1024]),
        }
        .encode(&mut buf);
        assert!(SnapshotChunk::decode(&mut Reader::new(buf.freeze())).is_err());
    }

    #[test]
    fn truncation_at_every_byte_is_a_typed_error() {
        let mut buf = BytesMut::new();
        ReplRecord {
            epoch: 7,
            payload: Bytes::from(vec![9u8; 32]),
        }
        .encode(&mut buf);
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut r = Reader::new(full.slice(0..cut));
            let outcome = ReplRecord::decode(&mut r).and_then(|_| r.finish());
            assert!(outcome.is_err(), "cut at {cut} accepted");
        }
    }
}
