//! The catch-up planner: what a feed must send a follower before
//! switching to live records.
//!
//! The primary's store covers history in two pieces: the WAL holds every
//! record *after* its parent snapshot's epoch, and the snapshot files
//! hold full images at checkpointed epochs (older ones pruned per
//! `keep_snapshots`). A follower announcing `have_epoch` can be fed WAL
//! records alone only if the WAL still reaches back far enough;
//! otherwise — or when the follower is empty — the newest snapshot is
//! transferred first and the WAL stream starts from its epoch.

use std::path::{Path, PathBuf};
use tq_store::store::WAL_FILE;
use tq_store::{snapshot_files, StoreError, WalTailReader};

/// What to ship a follower, per [`plan_catch_up`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatchUpPlan {
    /// The follower's store already covers the WAL's parent epoch:
    /// stream WAL records with stamps above `from`, then go live.
    WalOnly {
        /// The follower's newest durable epoch; ship records above it.
        from: u64,
    },
    /// The follower is empty or behind the WAL's reach: transfer the
    /// newest snapshot in chunks, then stream WAL records above its
    /// epoch.
    Snapshot {
        /// The snapshot file to transfer.
        path: PathBuf,
        /// The epoch the snapshot captures (and the WAL stream resumes
        /// from).
        epoch: u64,
    },
}

/// Decides how a follower at `have_epoch` (`None` = empty store) catches
/// up from the primary store at `dir`.
///
/// The WAL header's parent epoch is the authoritative lower bound of
/// what WAL shipping can cover: a follower at or above it needs records
/// only. Anything below — including a missing or torn WAL header —
/// falls back to transferring the newest snapshot.
pub fn plan_catch_up(dir: &Path, have_epoch: Option<u64>) -> Result<CatchUpPlan, StoreError> {
    let parent = WalTailReader::open(&dir.join(WAL_FILE))
        .map(|r| r.parent_epoch())
        .ok();
    if let (Some(have), Some(parent)) = (have_epoch, parent) {
        if have >= parent {
            return Ok(CatchUpPlan::WalOnly { from: have });
        }
    }
    let newest = snapshot_files(dir)?
        .into_iter()
        .max_by_key(|(epoch, _)| *epoch)
        .ok_or(StoreError::NoSnapshot)?;
    Ok(CatchUpPlan::Snapshot {
        path: newest.1,
        epoch: newest.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_store::snapshot::SnapshotMeta;
    use tq_store::{Store, StoreConfig};

    fn meta(epoch: u64) -> SnapshotMeta {
        SnapshotMeta {
            epoch,
            backend: tq_store::BACKEND_TQTREE,
            scenario: 0,
            users: 0,
            live: 0,
            facilities: 0,
            tree_nodes: 0,
            tree_items: 0,
        }
    }

    fn store_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tq-catchup-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn empty_follower_gets_the_newest_snapshot() {
        let dir = store_dir("empty");
        let mut store = Store::create(&dir, StoreConfig::default()).unwrap();
        store.checkpoint(&meta(3), b"image-3").unwrap();
        store.append_batch(4, b"b4").unwrap();
        store.checkpoint(&meta(5), b"image-5").unwrap();

        let plan = plan_catch_up(&dir, None).unwrap();
        match plan {
            CatchUpPlan::Snapshot { epoch, path } => {
                assert_eq!(epoch, 5);
                // The newest image travels, framed exactly as on disk.
                let bytes = std::fs::read(path).unwrap();
                assert!(bytes
                    .windows(b"image-5".len())
                    .any(|w| w == b"image-5"));
            }
            other => panic!("expected a snapshot plan, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn follower_within_wal_reach_gets_records_only() {
        let dir = store_dir("wal-only");
        let mut store = Store::create(&dir, StoreConfig::default()).unwrap();
        store.checkpoint(&meta(5), b"image-5").unwrap();
        store.append_batch(6, b"b6").unwrap();
        store.append_batch(7, b"b7").unwrap();

        // At the parent epoch exactly, and ahead of it: records only.
        for have in [5, 6, 7] {
            assert_eq!(
                plan_catch_up(&dir, Some(have)).unwrap(),
                CatchUpPlan::WalOnly { from: have }
            );
        }
        // Behind the WAL's parent: the gap (have, 5] is gone from the
        // WAL, so the snapshot must travel.
        assert!(matches!(
            plan_catch_up(&dir, Some(4)).unwrap(),
            CatchUpPlan::Snapshot { epoch: 5, .. }
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn storeless_directory_is_a_typed_error() {
        let dir = store_dir("none");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            plan_catch_up(&dir, None),
            Err(StoreError::NoSnapshot)
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
