//! Micro-probe for the per-record cost of the registry's instruments:
//! `cargo run --release -p tq-obs --example obs_cost`.
//!
//! Prints nanoseconds per operation for the three record paths hot
//! layers actually take — counter + histogram (what `note_query` does
//! per query), bare counter adds, and the disabled-path `enabled()`
//! load — so a claimed "effectively free" stays a measured number.

fn main() {
    let c = tq_obs::counter("probe_ops_total", "");
    let h = tq_obs::histogram("probe_latency_ns", "");
    let n = 2_000_000u64;

    let t = std::time::Instant::now();
    for i in 0..n {
        c.incr();
        h.record_ns(i % 100_000);
    }
    println!(
        "counter incr + histogram record: {:.1} ns/op",
        t.elapsed().as_nanos() as f64 / n as f64
    );

    let t = std::time::Instant::now();
    for i in 0..n {
        c.add(i % 3);
    }
    println!(
        "counter add:                     {:.1} ns/op",
        t.elapsed().as_nanos() as f64 / n as f64
    );

    let t = std::time::Instant::now();
    let mut x = 0u64;
    for _ in 0..n {
        x = x.wrapping_add(std::hint::black_box(tq_obs::enabled() as u64));
    }
    println!(
        "enabled() load (disabled path):  {:.1} ns/op (sum {x})",
        t.elapsed().as_nanos() as f64 / n as f64
    );
}
