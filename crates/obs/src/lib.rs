//! Lock-free metrics for the TQ serving stack.
//!
//! Every layer of the stack (eval kernels → engine → writer funnel →
//! store/WAL → shards → network → replication) records into one global
//! registry of **counters**, **gauges** and **latency histograms**. The
//! design goals, in order:
//!
//! 1. **Never perturb the answer path.** Nothing in this crate touches a
//!    floating-point number on the write side: histograms bucket integer
//!    nanoseconds, percentiles are read out by an integer bucket walk,
//!    and the exact maximum is kept with `fetch_max`. The bit-identical
//!    canonical-summation invariant of the query engine cannot be
//!    affected by observing it.
//! 2. **Effectively free when hot.** Recording is a handful of `Relaxed`
//!    atomic adds on cache-resident counters — no locks, no allocation,
//!    no syscalls. Registration (the only locked path) happens once per
//!    call site and is cached in a `OnceLock`.
//! 3. **Zero when idle.** No background threads, no timers; an idle
//!    process pays nothing.
//!
//! Reading is a point-in-time [`snapshot`] of the whole registry,
//! rendered as stable Prometheus-style `name{label} value` text by
//! [`MetricsSnapshot::render`]. Queries (or write batches) slower than a
//! configurable threshold additionally land in a fixed-capacity
//! [slow-query ring log](record_slow) that retains their full `Explain`
//! rendering.
//!
//! A global [`set_enabled`] switch exists for A/B overhead measurement
//! (the qps bench gates instrumentation at <2%); production builds leave
//! it on.

#![warn(missing_docs)]

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Global enable switch
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enables or disables recording. Exists so the qps bench can
/// measure the instrumented stack against a true uninstrumented
/// baseline; everything defaults to enabled. Reads ([`snapshot`]) are
/// unaffected.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Relaxed);
}

/// Whether recording is currently enabled. Call sites doing non-trivial
/// work to *build* an observation (label formatting, clock reads beyond
/// what they need anyway) should check this first and skip entirely.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Relaxed)
}

/// Converts a [`Duration`] to saturating whole nanoseconds.
#[inline]
pub fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

// ---------------------------------------------------------------------------
// Counter & gauge
// ---------------------------------------------------------------------------

/// A monotonically increasing event count. All operations are `Relaxed`
/// atomics — a statistic, not a synchronization point.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Relaxed);
        }
    }

    /// Adds one event.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current total.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }
}

/// A point-in-time level (queue depth, open connections, replication
/// positions). Unsigned: pair every [`Gauge::dec`] with an earlier
/// [`Gauge::inc`].
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Raises the level by one.
    #[inline]
    pub fn inc(&self) {
        if enabled() {
            self.value.fetch_add(1, Relaxed);
        }
    }

    /// Lowers the level by one, saturating at zero. Not gated on
    /// [`enabled`] so a pair whose [`Gauge::inc`] recorded before
    /// recording was disabled still balances (and one whose inc was
    /// skipped saturates instead of wrapping).
    #[inline]
    pub fn dec(&self) {
        let _ = self
            .value
            .fetch_update(Relaxed, Relaxed, |v| Some(v.saturating_sub(1)));
    }

    /// Sets the level outright (replication positions, sizes).
    #[inline]
    pub fn set(&self, v: u64) {
        if enabled() {
            self.value.store(v, Relaxed);
        }
    }

    /// The current level.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Log-linear histogram
// ---------------------------------------------------------------------------

/// Sub-buckets per power of two: 16, giving a worst-case relative
/// resolution of 1/16 (6.25%) on percentile readout. The maximum is
/// tracked exactly and separately.
const SUB: usize = 16;
const SUB_BITS: u32 = 4;
/// Bucket count covering the full `u64` nanosecond range: 16 linear
/// buckets for values below 16, then 16 sub-buckets for each of the 60
/// remaining octaves.
const NUM_BUCKETS: usize = SUB + (63 - SUB_BITS as usize) * SUB + SUB;

/// Maps a value to its bucket. Monotonic; values below [`SUB`] map
/// exactly, larger values share a bucket with at most 1/16 relative
/// spread.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as usize; // >= SUB_BITS
        let sub = ((v >> (exp - SUB_BITS as usize)) & (SUB as u64 - 1)) as usize;
        (exp - SUB_BITS as usize) * SUB + SUB + sub
    }
}

/// The smallest value mapping to `idx` — the inverse of
/// [`bucket_index`], used for percentile readout.
fn bucket_floor(idx: usize) -> u64 {
    if idx < SUB {
        idx as u64
    } else {
        let octave = (idx - SUB) / SUB;
        let sub = ((idx - SUB) % SUB) as u64;
        (SUB as u64 + sub) << octave
    }
}

/// A lock-free log-linear latency histogram over integer nanoseconds.
///
/// Recording is four `Relaxed` atomic RMWs (bucket, count, sum, max);
/// readout walks the buckets with integer arithmetic only. Percentiles
/// come back as the lower bound of the bucket holding the requested
/// rank — deterministic integers within 6.25% of the true order
/// statistic — while [`Histogram::max_ns`] is exact.
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        // `AtomicU64` is not `Copy`; build the array through a Vec.
        let v: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets = v.into_boxed_slice().try_into().unwrap_or_else(|_| unreachable!());
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation of `ns` nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        if !enabled() {
            return;
        }
        self.buckets[bucket_index(ns)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(ns, Relaxed);
        self.max.fetch_max(ns, Relaxed);
    }

    /// Records one observation of a [`Duration`].
    #[inline]
    pub fn record(&self, d: Duration) {
        self.record_ns(duration_ns(d));
    }

    /// Starts a span that records its elapsed time into this histogram
    /// when dropped (or explicitly via [`Span::finish_ns`]).
    pub fn span(&self) -> Span<'_> {
        Span { hist: self, start: Instant::now() }
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Sum of all recorded nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// The exact largest recorded value, or 0 when empty.
    pub fn max_ns(&self) -> u64 {
        self.max.load(Relaxed)
    }

    /// The value at quantile `num/den` (e.g. 95/100): the lower bound of
    /// the bucket holding that rank, clamped to the exact max. 0 when
    /// empty.
    pub fn quantile_ns(&self, num: u64, den: u64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        // Ceiling rank in 1..=count; integer arithmetic throughout.
        let rank = ((count.saturating_mul(num)).div_ceil(den)).clamp(1, count);
        let mut seen = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Relaxed);
            if seen >= rank {
                return bucket_floor(idx).min(self.max_ns());
            }
        }
        self.max_ns()
    }

    /// Median (bucket-resolution, see [`Histogram::quantile_ns`]).
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(50, 100)
    }

    /// 95th percentile (bucket-resolution).
    pub fn p95_ns(&self) -> u64 {
        self.quantile_ns(95, 100)
    }

    /// 99th percentile (bucket-resolution).
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(99, 100)
    }
}

/// An in-flight timing: created by [`Histogram::span`], records elapsed
/// nanoseconds into its histogram when dropped.
pub struct Span<'h> {
    hist: &'h Histogram,
    start: Instant,
}

impl Span<'_> {
    /// Ends the span now, records it, and returns the elapsed
    /// nanoseconds (recorded exactly once).
    pub fn finish_ns(self) -> u64 {
        let ns = duration_ns(self.start.elapsed());
        self.hist.record_ns(ns);
        std::mem::forget(self);
        ns
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.hist.record_ns(duration_ns(self.start.elapsed()));
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

type Key = (String, String); // (name, labels)

struct Registry {
    counters: Mutex<BTreeMap<Key, &'static Counter>>,
    gauges: Mutex<BTreeMap<Key, &'static Gauge>>,
    histograms: Mutex<BTreeMap<Key, &'static Histogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
    })
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn intern<T: Default + 'static>(
    map: &Mutex<BTreeMap<Key, &'static T>>,
    name: &str,
    labels: &str,
) -> &'static T {
    let mut map = lock(map);
    if let Some(v) = map.get(&(name.to_string(), labels.to_string())) {
        return v;
    }
    let v: &'static T = Box::leak(Box::default());
    map.insert((name.to_string(), labels.to_string()), v);
    v
}

/// Returns the registry's counter named `name` with the given label set
/// (the text inside the braces, e.g. `backend="tq-tree"`, empty for
/// none), registering it on first use. Handles are `'static` — cache
/// them in a `OnceLock` at hot call sites so steady-state recording
/// never touches the registry lock.
pub fn counter(name: &str, labels: &str) -> &'static Counter {
    intern(&registry().counters, name, labels)
}

/// Returns the registry's gauge for `(name, labels)` — see [`counter`].
pub fn gauge(name: &str, labels: &str) -> &'static Gauge {
    intern(&registry().gauges, name, labels)
}

/// Returns the registry's histogram for `(name, labels)` — see
/// [`counter`].
pub fn histogram(name: &str, labels: &str) -> &'static Histogram {
    intern(&registry().histograms, name, labels)
}

// ---------------------------------------------------------------------------
// Slow-query log
// ---------------------------------------------------------------------------

/// How many slow-query entries the ring retains (newest win).
pub const SLOW_LOG_CAPACITY: usize = 64;

/// The default slow-query threshold: one second.
pub const DEFAULT_SLOW_THRESHOLD_NS: u64 = 1_000_000_000;

static SLOW_THRESHOLD_NS: AtomicU64 = AtomicU64::new(DEFAULT_SLOW_THRESHOLD_NS);

fn slow_log() -> &'static Mutex<VecDeque<SlowEntry>> {
    static LOG: OnceLock<Mutex<VecDeque<SlowEntry>>> = OnceLock::new();
    LOG.get_or_init(|| Mutex::new(VecDeque::with_capacity(SLOW_LOG_CAPACITY)))
}

/// One retained slow operation: its wall time and the full rendering
/// (typically an `Explain`) captured when it crossed the threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowEntry {
    /// Total wall nanoseconds of the offending operation.
    pub nanos: u64,
    /// The operation's own rendering — for queries, the full `Explain`.
    pub detail: String,
}

/// Sets the slow-query threshold in nanoseconds. `u64::MAX` disables
/// the log; 0 retains everything (tests).
pub fn set_slow_threshold_ns(ns: u64) {
    SLOW_THRESHOLD_NS.store(ns, Relaxed);
}

/// The current slow-query threshold in nanoseconds.
pub fn slow_threshold_ns() -> u64 {
    SLOW_THRESHOLD_NS.load(Relaxed)
}

/// Offers an operation to the slow log. The detail closure runs — and
/// allocates — only when `nanos` meets the threshold, so the fast path
/// costs one `Relaxed` load and a compare.
#[inline]
pub fn record_slow(nanos: u64, detail: impl FnOnce() -> String) {
    if nanos < slow_threshold_ns() || !enabled() {
        return;
    }
    let entry = SlowEntry { nanos, detail: detail() };
    let mut log = lock(slow_log());
    if log.len() == SLOW_LOG_CAPACITY {
        log.pop_front();
    }
    log.push_back(entry);
}

/// The retained slow-log entries, oldest first.
pub fn slow_entries() -> Vec<SlowEntry> {
    lock(slow_log()).iter().cloned().collect()
}

// ---------------------------------------------------------------------------
// Snapshot & rendering
// ---------------------------------------------------------------------------

/// One counter or gauge reading inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Metric name.
    pub name: String,
    /// Label set (the text inside the braces; empty for none).
    pub labels: String,
    /// Current value.
    pub value: u64,
}

/// One histogram reading inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Label set (the text inside the braces; empty for none).
    pub labels: String,
    /// Observations recorded.
    pub count: u64,
    /// Sum of recorded nanoseconds.
    pub sum_ns: u64,
    /// Median, bucket resolution.
    pub p50_ns: u64,
    /// 95th percentile, bucket resolution.
    pub p95_ns: u64,
    /// 99th percentile, bucket resolution.
    pub p99_ns: u64,
    /// Exact maximum.
    pub max_ns: u64,
}

/// A point-in-time copy of every registered metric, sorted by
/// `(name, labels)`, plus the current slow-log contents.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// All counters.
    pub counters: Vec<Sample>,
    /// All gauges.
    pub gauges: Vec<Sample>,
    /// All histograms.
    pub histograms: Vec<HistogramSample>,
    /// The slow-query log, oldest first.
    pub slow: Vec<SlowEntry>,
}

/// Captures the current value of every registered metric. Values are
/// read `Relaxed`, so concurrent recording may be torn *across* metrics
/// (never within one) — fine for monitoring, and delta-consistent once
/// writers quiesce.
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry();
    let counters = lock(&reg.counters)
        .iter()
        .map(|((name, labels), c)| Sample {
            name: name.clone(),
            labels: labels.clone(),
            value: c.get(),
        })
        .collect();
    let gauges = lock(&reg.gauges)
        .iter()
        .map(|((name, labels), g)| Sample {
            name: name.clone(),
            labels: labels.clone(),
            value: g.get(),
        })
        .collect();
    let histograms = lock(&reg.histograms)
        .iter()
        .map(|((name, labels), h)| HistogramSample {
            name: name.clone(),
            labels: labels.clone(),
            count: h.count(),
            sum_ns: h.sum_ns(),
            p50_ns: h.p50_ns(),
            p95_ns: h.p95_ns(),
            p99_ns: h.p99_ns(),
            max_ns: h.max_ns(),
        })
        .collect();
    MetricsSnapshot {
        counters,
        gauges,
        histograms,
        slow: slow_entries(),
    }
}

fn line(out: &mut String, name: &str, labels: &str, suffix: &str, extra: &str, value: u64) {
    out.push_str(name);
    out.push_str(suffix);
    match (labels.is_empty(), extra.is_empty()) {
        (true, true) => {}
        (false, true) => {
            out.push('{');
            out.push_str(labels);
            out.push('}');
        }
        (true, false) => {
            out.push('{');
            out.push_str(extra);
            out.push('}');
        }
        (false, false) => {
            out.push('{');
            out.push_str(labels);
            out.push(',');
            out.push_str(extra);
            out.push('}');
        }
    }
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

impl MetricsSnapshot {
    /// Renders the snapshot as stable Prometheus-style text: one
    /// `name{labels} value` line per counter and gauge, the summary
    /// convention (`_count`, `_sum`, `{quantile="…"}`, `_max`) per
    /// histogram, and `# slow-query` comment lines for the slow log.
    /// Sorted by name, deterministic for a quiesced registry.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            line(&mut out, &c.name, &c.labels, "", "", c.value);
        }
        for g in &self.gauges {
            line(&mut out, &g.name, &g.labels, "", "", g.value);
        }
        for h in &self.histograms {
            line(&mut out, &h.name, &h.labels, "_count", "", h.count);
            line(&mut out, &h.name, &h.labels, "_sum", "", h.sum_ns);
            line(&mut out, &h.name, &h.labels, "", "quantile=\"0.5\"", h.p50_ns);
            line(&mut out, &h.name, &h.labels, "", "quantile=\"0.95\"", h.p95_ns);
            line(&mut out, &h.name, &h.labels, "", "quantile=\"0.99\"", h.p99_ns);
            line(&mut out, &h.name, &h.labels, "_max", "", h.max_ns);
        }
        for s in &self.slow {
            out.push_str("# slow-query ");
            out.push_str(&s.nanos.to_string());
            out.push_str("ns: ");
            out.push_str(&s.detail.replace('\n', " | "));
            out.push('\n');
        }
        out
    }

    /// The value of counter `(name, labels)`, 0 when absent.
    pub fn counter(&self, name: &str, labels: &str) -> u64 {
        self.counters
            .iter()
            .find(|s| s.name == name && s.labels == labels)
            .map_or(0, |s| s.value)
    }

    /// The summed value of every counter named `name`, across labels.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters.iter().filter(|s| s.name == name).map(|s| s.value).sum()
    }

    /// The value of gauge `(name, labels)`, `None` when absent.
    pub fn gauge(&self, name: &str, labels: &str) -> Option<u64> {
        self.gauges
            .iter()
            .find(|s| s.name == name && s.labels == labels)
            .map(|s| s.value)
    }

    /// The histogram sample for `(name, labels)`, `None` when absent.
    pub fn histogram(&self, name: &str, labels: &str) -> Option<&HistogramSample> {
        self.histograms.iter().find(|s| s.name == name && s.labels == labels)
    }

    /// The summed observation count of every histogram named `name`.
    pub fn histogram_count_total(&self, name: &str) -> u64 {
        self.histograms.iter().filter(|s| s.name == name).map(|s| s.count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry and the enable switch are process-global; tests that
    /// toggle or delta them serialize here.
    fn test_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn bucket_index_is_monotonic_and_floor_inverts_it() {
        let mut prev = 0usize;
        let mut samples: Vec<u64> = (0..200).collect();
        for shift in 4..63 {
            samples.push((1u64 << shift) - 1);
            samples.push(1u64 << shift);
            samples.push((1u64 << shift) + 1);
            samples.push((1u64 << shift) * 3 / 2);
        }
        samples.push(u64::MAX);
        samples.sort_unstable();
        for v in samples {
            let idx = bucket_index(v);
            assert!(idx >= prev, "bucket_index not monotonic at {v}");
            assert!(idx < NUM_BUCKETS);
            let floor = bucket_floor(idx);
            assert!(floor <= v, "floor {floor} > value {v}");
            if idx + 1 < NUM_BUCKETS {
                assert!(bucket_floor(idx + 1) > v, "value {v} beyond bucket {idx}");
            }
            prev = idx;
        }
        // Relative resolution: the next bucket starts within 1/16 above.
        for v in [100u64, 10_000, 1_000_000, 123_456_789] {
            let idx = bucket_index(v);
            let width = bucket_floor(idx + 1) - bucket_floor(idx);
            assert!(width * 16 <= bucket_floor(idx).max(1) * 2, "bucket too wide at {v}");
        }
    }

    #[test]
    fn histogram_percentiles_are_integer_and_ordered() {
        let _g = test_lock();
        let h = Histogram::default();
        for ns in 1..=1000u64 {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum_ns(), 500_500);
        assert_eq!(h.max_ns(), 1000);
        let (p50, p95, p99) = (h.p50_ns(), h.p95_ns(), h.p99_ns());
        assert!(p50 <= p95 && p95 <= p99 && p99 <= h.max_ns());
        // Bucket resolution: within 1/16 below the true order statistic.
        assert!((469..=500).contains(&p50), "p50 {p50}");
        assert!((891..=950).contains(&p95), "p95 {p95}");
        assert!((929..=990).contains(&p99), "p99 {p99}");
        // Exact in the linear range.
        let lin = Histogram::default();
        for ns in [3u64, 3, 3, 9] {
            lin.record_ns(ns);
        }
        assert_eq!(lin.p50_ns(), 3);
        assert_eq!(lin.max_ns(), 9);
        assert_eq!(lin.quantile_ns(100, 100), 9);
        // Empty reads as zero.
        assert_eq!(Histogram::default().p99_ns(), 0);
    }

    #[test]
    fn registry_dedups_and_snapshot_is_sorted() {
        let _g = test_lock();
        let a = counter("test_dedup_total", "k=\"1\"");
        let b = counter("test_dedup_total", "k=\"1\"");
        assert!(std::ptr::eq(a, b), "same (name, labels) must intern to one counter");
        let c = counter("test_dedup_total", "k=\"2\"");
        assert!(!std::ptr::eq(a, c));
        a.add(2);
        c.incr();
        gauge("test_dedup_level", "").set(7);
        histogram("test_dedup_ns", "").record_ns(40);

        let snap = snapshot();
        assert_eq!(snap.counter("test_dedup_total", "k=\"1\""), 2);
        assert_eq!(snap.counter_total("test_dedup_total"), 3);
        assert_eq!(snap.gauge("test_dedup_level", ""), Some(7));
        assert_eq!(snap.histogram("test_dedup_ns", "").unwrap().count, 1);
        let names: Vec<&String> = snap.counters.iter().map(|s| &s.name).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "snapshot not sorted by name");

        let text = snap.render();
        assert!(text.contains("test_dedup_total{k=\"1\"} 2\n"));
        assert!(text.contains("test_dedup_level 7\n"));
        assert!(text.contains("test_dedup_ns_count 1\n"));
        assert!(text.contains("test_dedup_ns{quantile=\"0.99\"} "));
        assert!(text.contains("test_dedup_ns_max 40\n"));
    }

    #[test]
    fn disabling_stops_recording_everywhere() {
        let _g = test_lock();
        let c = counter("test_disable_total", "");
        let h = histogram("test_disable_ns", "");
        let g = gauge("test_disable_level", "");
        let (c0, h0, g0) = (c.get(), h.count(), g.get());
        set_enabled(false);
        c.incr();
        h.record_ns(123);
        g.inc();
        record_slow(u64::MAX, || unreachable!("slow log must not run disabled"));
        set_enabled(true);
        assert_eq!(c.get(), c0);
        assert_eq!(h.count(), h0);
        assert_eq!(g.get(), g0);
        c.incr();
        assert_eq!(c.get(), c0 + 1);
    }

    #[test]
    fn slow_log_is_thresholded_lazy_and_ring_bounded() {
        let _g = test_lock();
        let before = slow_threshold_ns();
        set_slow_threshold_ns(1000);
        record_slow(999, || unreachable!("below threshold must not render"));
        let base = slow_entries().len();
        for i in 0..(SLOW_LOG_CAPACITY as u64 + 10) {
            record_slow(1000 + i, || format!("op {i}"));
        }
        let entries = slow_entries();
        assert_eq!(entries.len(), SLOW_LOG_CAPACITY, "ring must cap (had {base} before)");
        assert_eq!(entries.last().unwrap().detail, format!("op {}", SLOW_LOG_CAPACITY + 9));
        let rendered = snapshot().render();
        assert!(rendered.contains("# slow-query "));
        set_slow_threshold_ns(before);
    }

    #[test]
    fn spans_record_once() {
        let _g = test_lock();
        let h = histogram("test_span_ns", "");
        let n0 = h.count();
        {
            let _s = h.span();
        }
        assert_eq!(h.count(), n0 + 1);
        let ns = h.span().finish_ns();
        assert_eq!(h.count(), n0 + 2);
        assert!(h.max_ns() >= ns.min(h.max_ns()));
    }
}
