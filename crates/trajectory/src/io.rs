//! Adapters for the paper's real dataset formats.
//!
//! The evaluation datasets are public; this environment cannot download
//! them, but a downstream user can. These parsers turn the original file
//! formats into [`UserSet`]/[`FacilitySet`] values:
//!
//! * [`parse_nyc_taxi_csv`] — NYC TLC yellow-taxi trip records (the 2015-era
//!   schema with `pickup_longitude` … `dropoff_latitude` columns) → two-point
//!   trajectories (the paper's NYT);
//! * [`parse_foursquare_tsv`] — the Foursquare NYC check-in TSV (userId,
//!   venueId, category id/name, latitude, longitude, tz offset, UTC time) →
//!   one multipoint trajectory per user per day (the paper's NYF);
//! * [`parse_geolife_plt`] — a Geolife `.plt` trace file → one multipoint
//!   trajectory (the paper's BJG);
//! * [`parse_route_stops_csv`] — a simple `route_id,seq,lat,lon` stop list
//!   (easily produced from GTFS `stops.txt` + `stop_times.txt`) →
//!   facilities.
//!
//! All coordinates are geographic (WGS-84 degrees) in the sources; the
//! parsers project them to planar metres with a [`LocalProjection`]
//! (equirectangular around the data's mid-latitude — at city scale the
//! distortion is far below the service threshold ψ).

use crate::{Facility, FacilitySet, Trajectory, UserSet};
use tq_geometry::Point;

/// Errors produced by the dataset parsers.
#[derive(Debug, PartialEq)]
pub enum ParseError {
    /// The header row is missing a required column.
    MissingColumn(&'static str),
    /// A data row has too few fields.
    ShortRow {
        /// 1-based line number.
        line: usize,
    },
    /// A field failed to parse as a number.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The offending field.
        field: String,
    },
    /// The input contained no usable records.
    Empty,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::MissingColumn(c) => write!(f, "missing column {c}"),
            ParseError::ShortRow { line } => write!(f, "line {line}: too few fields"),
            ParseError::BadNumber { line, field } => {
                write!(f, "line {line}: cannot parse number from {field:?}")
            }
            ParseError::Empty => write!(f, "no usable records in input"),
        }
    }
}

impl std::error::Error for ParseError {}

/// An equirectangular lon/lat → metres projection around a reference point.
///
/// `x = R·cos(lat₀)·Δlon`, `y = R·Δlat` (radians). Good to ≲0.3% across a
/// 50 km city, which is negligible against ψ of hundreds of metres.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalProjection {
    lon0: f64,
    lat0: f64,
    k_x: f64,
    k_y: f64,
}

const EARTH_RADIUS_M: f64 = 6_371_000.0;

impl LocalProjection {
    /// A projection centred at `(lon0, lat0)` degrees.
    pub fn new(lon0: f64, lat0: f64) -> LocalProjection {
        let rad = std::f64::consts::PI / 180.0;
        LocalProjection {
            lon0,
            lat0,
            k_x: EARTH_RADIUS_M * (lat0 * rad).cos() * rad,
            k_y: EARTH_RADIUS_M * rad,
        }
    }

    /// Projects geographic degrees to planar metres.
    pub fn project(&self, lon: f64, lat: f64) -> Point {
        Point::new((lon - self.lon0) * self.k_x, (lat - self.lat0) * self.k_y)
    }

    /// Inverse projection (metres → degrees), for exporting results.
    pub fn unproject(&self, p: &Point) -> (f64, f64) {
        (p.x / self.k_x + self.lon0, p.y / self.k_y + self.lat0)
    }

    /// A projection centred on the mean of `(lon, lat)` pairs.
    pub fn centered_on(coords: &[(f64, f64)]) -> Option<LocalProjection> {
        if coords.is_empty() {
            return None;
        }
        let n = coords.len() as f64;
        let (sx, sy) = coords
            .iter()
            .fold((0.0, 0.0), |(ax, ay), (x, y)| (ax + x, ay + y));
        Some(LocalProjection::new(sx / n, sy / n))
    }
}

fn split_csv(line: &str) -> Vec<&str> {
    line.split(',').map(str::trim).collect()
}

fn parse_f64(s: &str, line: usize) -> Result<f64, ParseError> {
    s.parse::<f64>().map_err(|_| ParseError::BadNumber {
        line,
        field: s.to_string(),
    })
}

/// Parses NYC TLC yellow-taxi trip records (CSV with a header naming
/// `pickup_longitude`, `pickup_latitude`, `dropoff_longitude`,
/// `dropoff_latitude`) into two-point trajectories.
///
/// Rows with zeroed or out-of-range coordinates — a known artefact of the
/// TLC data — are skipped. Returns the trajectories and the projection used
/// (for mapping results back to geographic space).
pub fn parse_nyc_taxi_csv(input: &str) -> Result<(UserSet, LocalProjection), ParseError> {
    let mut lines = input.lines().enumerate();
    let (_, header) = lines.next().ok_or(ParseError::Empty)?;
    let cols = split_csv(header);
    let col = |name: &'static str| -> Result<usize, ParseError> {
        cols.iter()
            .position(|c| c.eq_ignore_ascii_case(name))
            .ok_or(ParseError::MissingColumn(name))
    };
    let (plon, plat) = (col("pickup_longitude")?, col("pickup_latitude")?);
    let (dlon, dlat) = (col("dropoff_longitude")?, col("dropoff_latitude")?);
    let need = plon.max(plat).max(dlon).max(dlat) + 1;

    let mut raw = Vec::new();
    for (i, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_csv(line);
        if fields.len() < need {
            return Err(ParseError::ShortRow { line: i + 1 });
        }
        let a = (
            parse_f64(fields[plon], i + 1)?,
            parse_f64(fields[plat], i + 1)?,
        );
        let b = (
            parse_f64(fields[dlon], i + 1)?,
            parse_f64(fields[dlat], i + 1)?,
        );
        let sane = |(lon, lat): (f64, f64)| {
            (-180.0..=180.0).contains(&lon) && (-85.0..=85.0).contains(&lat) && lon != 0.0
        };
        if sane(a) && sane(b) && a != b {
            raw.push((a, b));
        }
    }
    if raw.is_empty() {
        return Err(ParseError::Empty);
    }
    let all: Vec<(f64, f64)> = raw.iter().flat_map(|&(a, b)| [a, b]).collect();
    let proj = LocalProjection::centered_on(&all).expect("non-empty");
    let users = UserSet::from_vec(
        raw.into_iter()
            .map(|(a, b)| Trajectory::two_point(proj.project(a.0, a.1), proj.project(b.0, b.1)))
            .collect(),
    );
    Ok((users, proj))
}

/// Parses the Foursquare NYC check-in TSV (fields: user id, venue id,
/// category id, category name, latitude, longitude, timezone offset in
/// minutes, UTC timestamp `EEE MMM dd HH:mm:ss Z yyyy`).
///
/// Check-ins are grouped into one trajectory per `(user, local day)`, in
/// file order (the file is chronologically sorted per user), matching the
/// paper's "sequence of check-ins in a day" definition. Days with a single
/// check-in are dropped (a trajectory needs ≥ 2 points).
pub fn parse_foursquare_tsv(input: &str) -> Result<(UserSet, LocalProjection), ParseError> {
    // (user, day-key) → points.
    type DayGroup = ((String, String), Vec<(f64, f64)>);
    let mut raw: Vec<DayGroup> = Vec::new();
    let mut index: std::collections::HashMap<(String, String), usize> =
        std::collections::HashMap::new();
    let mut all = Vec::new();
    for (i, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() < 8 {
            return Err(ParseError::ShortRow { line: i + 1 });
        }
        let user = fields[0].to_string();
        let lat = parse_f64(fields[4], i + 1)?;
        let lon = parse_f64(fields[5], i + 1)?;
        // Day key from the UTC timestamp: "Tue Apr 03 18:00:09 +0000 2012"
        // → "Apr 03 2012". (Timezone-exact day splitting would need the
        // offset; month-day-year granularity matches the paper's intent.)
        let ts: Vec<&str> = fields[7].split_whitespace().collect();
        let day = if ts.len() >= 6 {
            format!("{} {} {}", ts[1], ts[2], ts[5])
        } else {
            fields[7].to_string()
        };
        all.push((lon, lat));
        let key = (user, day);
        match index.get(&key) {
            Some(&pos) => raw[pos].1.push((lon, lat)),
            None => {
                index.insert(key.clone(), raw.len());
                raw.push((key, vec![(lon, lat)]));
            }
        }
    }
    let proj = LocalProjection::centered_on(&all).ok_or(ParseError::Empty)?;
    let users: Vec<Trajectory> = raw
        .into_iter()
        .filter(|(_, pts)| pts.len() >= 2)
        .map(|(_, pts)| {
            Trajectory::new(
                pts.into_iter()
                    .map(|(lon, lat)| proj.project(lon, lat))
                    .collect(),
            )
        })
        .collect();
    if users.is_empty() {
        return Err(ParseError::Empty);
    }
    Ok((UserSet::from_vec(users), proj))
}

/// Parses one Geolife `.plt` trace (6 header lines, then
/// `lat,lon,0,altitude,days,date,time` records) into a single trajectory,
/// projected with the supplied projection (so all traces of a dataset share
/// one frame).
pub fn parse_geolife_plt(
    input: &str,
    proj: &LocalProjection,
) -> Result<Trajectory, ParseError> {
    let mut pts = Vec::new();
    for (i, line) in input.lines().enumerate().skip(6) {
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_csv(line);
        if fields.len() < 2 {
            return Err(ParseError::ShortRow { line: i + 1 });
        }
        let lat = parse_f64(fields[0], i + 1)?;
        let lon = parse_f64(fields[1], i + 1)?;
        pts.push(proj.project(lon, lat));
    }
    if pts.len() < 2 {
        return Err(ParseError::Empty);
    }
    Ok(Trajectory::new(pts))
}

/// Parses a route-stop list CSV (`route_id,seq,lat,lon`, header optional)
/// into facilities, one per distinct `route_id`, stops ordered by `seq`.
pub fn parse_route_stops_csv(
    input: &str,
    proj: &LocalProjection,
) -> Result<FacilitySet, ParseError> {
    let mut rows: Vec<(String, f64, f64, f64)> = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        let fields = split_csv(t);
        if fields.len() < 4 {
            return Err(ParseError::ShortRow { line: i + 1 });
        }
        // Tolerate a header row.
        if i == 0 && fields[1].parse::<f64>().is_err() {
            continue;
        }
        rows.push((
            fields[0].to_string(),
            parse_f64(fields[1], i + 1)?,
            parse_f64(fields[2], i + 1)?,
            parse_f64(fields[3], i + 1)?,
        ));
    }
    if rows.is_empty() {
        return Err(ParseError::Empty);
    }
    rows.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let mut facilities = Vec::new();
    let mut current: Option<(String, Vec<Point>)> = None;
    for (route, _, lat, lon) in rows {
        let p = proj.project(lon, lat);
        match &mut current {
            Some((r, pts)) if *r == route => pts.push(p),
            _ => {
                if let Some((_, pts)) = current.take() {
                    facilities.push(Facility::new(pts));
                }
                current = Some((route, vec![p]));
            }
        }
    }
    if let Some((_, pts)) = current {
        facilities.push(Facility::new(pts));
    }
    Ok(FacilitySet::from_vec(facilities))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_roundtrip_and_scale() {
        let proj = LocalProjection::new(-73.98, 40.75); // Manhattan
        let p = proj.project(-73.97, 40.76);
        // ~843 m east, ~1111 m north for 0.01°.
        assert!((p.x - 843.0).abs() < 10.0, "x = {}", p.x);
        assert!((p.y - 1111.0).abs() < 10.0, "y = {}", p.y);
        let (lon, lat) = proj.unproject(&p);
        assert!((lon - -73.97).abs() < 1e-9);
        assert!((lat - 40.76).abs() < 1e-9);
    }

    const TAXI: &str = "\
VendorID,pickup_datetime,pickup_longitude,pickup_latitude,dropoff_longitude,dropoff_latitude
1,2015-01-15 19:05:39,-73.993896,40.750111,-73.974785,40.750618
2,2015-01-15 19:05:40,0,0,-73.97,40.75
1,2015-01-15 19:05:41,-73.976425,40.739811,-73.983978,40.757889
";

    #[test]
    fn taxi_csv_parses_and_filters_zeros() {
        let (users, proj) = parse_nyc_taxi_csv(TAXI).unwrap();
        assert_eq!(users.len(), 2, "zero-coordinate row must be dropped");
        // First trip is ~1.6 km east-west-ish.
        let t = users.get(0);
        assert!(t.length() > 1_000.0 && t.length() < 3_000.0, "{}", t.length());
        let (lon, _) = proj.unproject(&t.source());
        assert!((lon - -73.993896).abs() < 1e-6);
    }

    #[test]
    fn taxi_csv_missing_column() {
        let bad = "a,b,c\n1,2,3\n";
        assert_eq!(
            parse_nyc_taxi_csv(bad),
            Err(ParseError::MissingColumn("pickup_longitude"))
        );
    }

    #[test]
    fn taxi_csv_bad_number_reports_line() {
        let bad = "\
pickup_longitude,pickup_latitude,dropoff_longitude,dropoff_latitude
-73.9,40.7,-73.8,oops
";
        match parse_nyc_taxi_csv(bad) {
            Err(ParseError::BadNumber { line, field }) => {
                assert_eq!(line, 2);
                assert_eq!(field, "oops");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    const FOURSQUARE: &str = "\
470\t49bbd6c0f964a520f4531fe3\t4bf58dd8d48988d127951735\tArts\t40.719810\t-74.002581\t-240\tTue Apr 03 18:00:09 +0000 2012
470\t4a43c0aef964a520c6a61fe3\t4bf58dd8d48988d1df941735\tBridge\t40.606800\t-74.044170\t-240\tTue Apr 03 18:00:25 +0000 2012
979\t4a43c0aef964a520c6a61fe3\t4bf58dd8d48988d1df941735\tBridge\t40.60\t-74.04\t-240\tTue Apr 03 19:00:25 +0000 2012
470\t4c5cc7b485a1e21e00d35711\t4bf58dd8d48988d103941735\tHome\t40.716162\t-73.883070\t-240\tWed Apr 04 02:00:00 +0000 2012
";

    #[test]
    fn foursquare_groups_by_user_day() {
        let (users, _) = parse_foursquare_tsv(FOURSQUARE).unwrap();
        // user 470 Apr 03 has 2 check-ins → one trajectory. user 979 has one
        // check-in (dropped). user 470 Apr 04 has one (dropped).
        assert_eq!(users.len(), 1);
        assert_eq!(users.get(0).len(), 2);
    }

    const PLT: &str = "\
Geolife trajectory
WGS 84
Altitude is in Feet
Reserved 3
0,2,255,My Track,0,0,2,8421376
0
39.984702,116.318417,0,492,39744.1201851852,2008-10-23,02:53:04
39.984683,116.318450,0,492,39744.1202546296,2008-10-23,02:53:10
39.984686,116.318417,0,492,39744.1203125,2008-10-23,02:53:15
";

    #[test]
    fn geolife_plt_skips_header() {
        let proj = LocalProjection::new(116.3, 39.98);
        let t = parse_geolife_plt(PLT, &proj).unwrap();
        assert_eq!(t.len(), 3);
        // Points a few metres apart.
        assert!(t.length() < 50.0);
    }

    #[test]
    fn geolife_too_short_is_empty() {
        let proj = LocalProjection::new(116.3, 39.98);
        let short = "h\nh\nh\nh\nh\nh\n39.9,116.3,0,0,0,d,t\n";
        assert_eq!(parse_geolife_plt(short, &proj), Err(ParseError::Empty));
    }

    const ROUTES: &str = "\
route_id,seq,lat,lon
M15,1,40.701,-74.012
M15,2,40.711,-74.005
M15,3,40.722,-73.998
B38,1,40.689,-73.975
B38,2,40.693,-73.967
";

    #[test]
    fn route_stops_grouped_and_ordered() {
        let proj = LocalProjection::new(-74.0, 40.7);
        let fs = parse_route_stops_csv(ROUTES, &proj).unwrap();
        assert_eq!(fs.len(), 2);
        // Sorted by route id: B38 first.
        assert_eq!(fs.get(0).len(), 2);
        assert_eq!(fs.get(1).len(), 3);
        // M15 stops run south→north (increasing y).
        let m15 = fs.get(1);
        assert!(m15.stops().windows(2).all(|w| w[0].y < w[1].y));
    }

    #[test]
    fn empty_inputs_rejected() {
        let proj = LocalProjection::new(0.0, 0.0);
        assert_eq!(parse_route_stops_csv("", &proj), Err(ParseError::Empty));
        assert!(parse_nyc_taxi_csv("").is_err());
        assert!(parse_foursquare_tsv("").is_err());
    }
}
