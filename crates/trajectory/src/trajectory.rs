use tq_geometry::{Point, Rect};

/// Identifier of a user trajectory: its index in the owning [`UserSet`].
pub type TrajectoryId = u32;

/// A reference to one segment (consecutive point pair) of a user trajectory.
///
/// The segmented TQ-tree variant indexes these instead of whole trajectories;
/// `seg` is the index of the segment's first point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegmentRef {
    /// The owning trajectory.
    pub traj: TrajectoryId,
    /// Index of the segment within the trajectory (`0..points.len()-1`).
    pub seg: u32,
}

/// A user trajectory: an ordered sequence of visited point locations.
///
/// For two-point data (taxi trips) the sequence is `[source, destination]`;
/// multipoint data (check-ins, GPS traces) may have arbitrarily many points.
#[derive(Debug, Clone)]
pub struct Trajectory {
    points: Vec<Point>,
    /// Lazily cached segment lengths + total. Service evaluation touches
    /// these on every mask fold, so they are computed once per trajectory
    /// instead of a sqrt per call — but only on first use: snapshot
    /// recovery decodes millions of trajectories and must not pay a
    /// distance pass on the cold-start path.
    lengths: std::sync::OnceLock<Lengths>,
}

/// The computed length cache: per-segment distances and their sum.
#[derive(Debug, Clone)]
struct Lengths {
    seg: Box<[f64]>,
    /// `Σ seg`, folded in ascending segment order — the exact sum the
    /// on-demand `length()` produced, so cached values stay bit-identical.
    total: f64,
}

/// Trajectories are equal iff their points are: the length cache is a
/// pure function of the points and must not affect equality.
impl PartialEq for Trajectory {
    fn eq(&self, other: &Self) -> bool {
        self.points == other.points
    }
}

impl Trajectory {
    /// Creates a trajectory from its points.
    ///
    /// # Panics
    /// Panics when fewer than two points are supplied or any coordinate is
    /// non-finite — a trajectory is a movement, not a location.
    pub fn new(points: Vec<Point>) -> Self {
        assert!(points.len() >= 2, "a trajectory needs at least two points");
        assert!(
            points.iter().all(Point::is_finite),
            "trajectory coordinates must be finite"
        );
        Trajectory {
            points,
            lengths: std::sync::OnceLock::new(),
        }
    }

    #[inline]
    fn lengths(&self) -> &Lengths {
        self.lengths.get_or_init(|| {
            let seg: Box<[f64]> = self.points.windows(2).map(|w| w[0].dist(&w[1])).collect();
            let total = seg.iter().sum();
            Lengths { seg, total }
        })
    }

    /// Convenience constructor for two-point (source → destination) trips.
    pub fn two_point(source: Point, destination: Point) -> Self {
        Trajectory::new(vec![source, destination])
    }

    /// The ordered points.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of points, `|u|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always `false` (a trajectory has ≥ 2 points); present to satisfy the
    /// `len`/`is_empty` convention.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The source (first) point.
    #[inline]
    pub fn source(&self) -> Point {
        self.points[0]
    }

    /// The destination (last) point.
    #[inline]
    pub fn destination(&self) -> Point {
        *self.points.last().expect("non-empty by construction")
    }

    /// Number of segments, `|u| - 1`.
    #[inline]
    pub fn num_segments(&self) -> usize {
        self.points.len() - 1
    }

    /// The endpoints of segment `seg`.
    #[inline]
    pub fn segment(&self, seg: usize) -> (Point, Point) {
        (self.points[seg], self.points[seg + 1])
    }

    /// Length of segment `seg` (cached on first use).
    #[inline]
    pub fn segment_length(&self, seg: usize) -> f64 {
        self.lengths().seg[seg]
    }

    /// All segment lengths, indexed by segment (cached on first use).
    /// Hot loops should fetch this once and index the slice rather than
    /// calling [`Trajectory::segment_length`] per segment.
    #[inline]
    pub fn segment_lengths(&self) -> &[f64] {
        &self.lengths().seg
    }

    /// Total path length, `length(u)` — the sum of segment lengths
    /// (cached on first use).
    #[inline]
    pub fn length(&self) -> f64 {
        self.lengths().total
    }

    /// Minimum bounding rectangle of all points.
    pub fn mbr(&self) -> Rect {
        Rect::bounding(self.points.iter()).expect("non-empty by construction")
    }
}

/// An indexed collection of user trajectories.
///
/// Trajectory ids are dense indices into this set; every index structure in
/// the workspace refers to trajectories through their [`TrajectoryId`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UserSet {
    trajectories: Vec<Trajectory>,
}

impl UserSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a set from trajectories, assigning ids by position.
    pub fn from_vec(trajectories: Vec<Trajectory>) -> Self {
        UserSet { trajectories }
    }

    /// Adds a trajectory, returning its id.
    pub fn push(&mut self, t: Trajectory) -> TrajectoryId {
        let id = self.trajectories.len() as TrajectoryId;
        self.trajectories.push(t);
        id
    }

    /// Number of trajectories, `|U|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.trajectories.len()
    }

    /// Returns `true` when the set holds no trajectories.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.trajectories.is_empty()
    }

    /// The trajectory with id `id`.
    #[inline]
    pub fn get(&self, id: TrajectoryId) -> &Trajectory {
        &self.trajectories[id as usize]
    }

    /// Iterates `(id, trajectory)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TrajectoryId, &Trajectory)> {
        self.trajectories
            .iter()
            .enumerate()
            .map(|(i, t)| (i as TrajectoryId, t))
    }

    /// All trajectories as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[Trajectory] {
        &self.trajectories
    }

    /// Minimum bounding rectangle of the whole set, or `None` when empty.
    pub fn mbr(&self) -> Option<Rect> {
        let mut it = self.trajectories.iter();
        let mut r = it.next()?.mbr();
        for t in it {
            r = r.union(&t.mbr());
        }
        Some(r)
    }

    /// Total number of points across all trajectories.
    pub fn total_points(&self) -> usize {
        self.trajectories.iter().map(Trajectory::len).sum()
    }

    /// Total number of segments across all trajectories
    /// (`Σ_u |u| - 1`, the storage bound of the segmented TQ-tree).
    pub fn total_segments(&self) -> usize {
        self.trajectories.iter().map(Trajectory::num_segments).sum()
    }

    /// A truncated copy containing only the first `n` trajectories
    /// (used by the user-count parameter sweeps).
    pub fn truncated(&self, n: usize) -> UserSet {
        UserSet {
            trajectories: self.trajectories[..n.min(self.trajectories.len())].to_vec(),
        }
    }
}

impl std::ops::Index<TrajectoryId> for UserSet {
    type Output = Trajectory;
    #[inline]
    fn index(&self, id: TrajectoryId) -> &Trajectory {
        self.get(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn two_point_accessors() {
        let t = Trajectory::two_point(p(0.0, 0.0), p(3.0, 4.0));
        assert_eq!(t.len(), 2);
        assert_eq!(t.num_segments(), 1);
        assert_eq!(t.source(), p(0.0, 0.0));
        assert_eq!(t.destination(), p(3.0, 4.0));
        assert_eq!(t.length(), 5.0);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn single_point_rejected() {
        Trajectory::new(vec![p(0.0, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_rejected() {
        Trajectory::new(vec![p(0.0, 0.0), p(f64::NAN, 1.0)]);
    }

    #[test]
    fn multipoint_segments_and_length() {
        let t = Trajectory::new(vec![p(0.0, 0.0), p(3.0, 4.0), p(3.0, 10.0)]);
        assert_eq!(t.num_segments(), 2);
        assert_eq!(t.segment(0), (p(0.0, 0.0), p(3.0, 4.0)));
        assert_eq!(t.segment(1), (p(3.0, 4.0), p(3.0, 10.0)));
        assert_eq!(t.length(), 11.0);
        assert_eq!(t.segment_length(1), 6.0);
    }

    #[test]
    fn mbr_covers_all_points() {
        let t = Trajectory::new(vec![p(1.0, 5.0), p(-2.0, 0.5), p(4.0, 2.0)]);
        let r = t.mbr();
        for pt in t.points() {
            assert!(r.contains(pt));
        }
        assert_eq!(r.min, p(-2.0, 0.5));
        assert_eq!(r.max, p(4.0, 5.0));
    }

    #[test]
    fn user_set_ids_are_dense() {
        let mut u = UserSet::new();
        assert!(u.is_empty());
        let a = u.push(Trajectory::two_point(p(0.0, 0.0), p(1.0, 1.0)));
        let b = u.push(Trajectory::two_point(p(2.0, 2.0), p(3.0, 3.0)));
        assert_eq!((a, b), (0, 1));
        assert_eq!(u.len(), 2);
        assert_eq!(u[b].source(), p(2.0, 2.0));
        let ids: Vec<_> = u.iter().map(|(i, _)| i).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn user_set_aggregates() {
        let u = UserSet::from_vec(vec![
            Trajectory::two_point(p(0.0, 0.0), p(1.0, 0.0)),
            Trajectory::new(vec![p(0.0, 1.0), p(1.0, 1.0), p(2.0, 1.0)]),
        ]);
        assert_eq!(u.total_points(), 5);
        assert_eq!(u.total_segments(), 3);
        let r = u.mbr().unwrap();
        assert_eq!(r, Rect::new(p(0.0, 0.0), p(2.0, 1.0)));
    }

    #[test]
    fn truncated_takes_prefix() {
        let u = UserSet::from_vec(vec![
            Trajectory::two_point(p(0.0, 0.0), p(1.0, 0.0)),
            Trajectory::two_point(p(0.0, 1.0), p(1.0, 1.0)),
            Trajectory::two_point(p(0.0, 2.0), p(1.0, 2.0)),
        ]);
        let t = u.truncated(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t[1].source(), p(0.0, 1.0));
        assert_eq!(u.truncated(99).len(), 3);
    }

    #[test]
    fn empty_set_mbr_none() {
        assert!(UserSet::new().mbr().is_none());
    }
}
