//! Compact binary snapshots of datasets.
//!
//! Generating the paper-scale synthetic workloads (a million trips) takes a
//! few seconds; the experiment harness snapshots them to disk so repeated
//! benchmark invocations pay the cost once. The format is a trivial
//! length-prefixed little-endian layout built on [`bytes`] — not meant for
//! interchange, only as a deterministic local cache.

use crate::{Facility, FacilitySet, Trajectory, UserSet};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use tq_geometry::Point;

const MAGIC: u32 = 0x5451_4454; // "TQDT"
const VERSION: u16 = 1;

/// Errors produced when decoding a snapshot.
#[derive(Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer does not start with the snapshot magic number.
    BadMagic,
    /// The snapshot was written by an incompatible version.
    BadVersion(u16),
    /// The buffer ended before the declared contents.
    Truncated,
    /// A declared count is implausibly large for the remaining buffer.
    CorruptCount,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a TQ dataset snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::Truncated => write!(f, "snapshot buffer truncated"),
            SnapshotError::CorruptCount => write!(f, "snapshot declares an implausible count"),
        }
    }
}

impl std::error::Error for SnapshotError {}

fn put_points(buf: &mut BytesMut, pts: &[Point]) {
    buf.put_u32_le(pts.len() as u32);
    for p in pts {
        buf.put_f64_le(p.x);
        buf.put_f64_le(p.y);
    }
}

fn get_points(buf: &mut Bytes) -> Result<Vec<Point>, SnapshotError> {
    if buf.remaining() < 4 {
        return Err(SnapshotError::Truncated);
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n.saturating_mul(16) {
        return Err(SnapshotError::CorruptCount);
    }
    let mut pts = Vec::with_capacity(n);
    for _ in 0..n {
        let x = buf.get_f64_le();
        let y = buf.get_f64_le();
        pts.push(Point::new(x, y));
    }
    Ok(pts)
}

/// Encodes a user set and a facility set into one buffer.
pub fn encode(users: &UserSet, facilities: &FacilitySet) -> Bytes {
    let mut buf = BytesMut::with_capacity(
        16 + users.total_points() * 16 + facilities.total_stops() * 16,
    );
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(users.len() as u32);
    for (_, t) in users.iter() {
        put_points(&mut buf, t.points());
    }
    buf.put_u32_le(facilities.len() as u32);
    for (_, f) in facilities.iter() {
        put_points(&mut buf, f.stops());
    }
    buf.freeze()
}

/// Decodes a buffer produced by [`encode`].
pub fn decode(mut buf: Bytes) -> Result<(UserSet, FacilitySet), SnapshotError> {
    if buf.remaining() < 10 {
        return Err(SnapshotError::Truncated);
    }
    if buf.get_u32_le() != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let n_users = buf.get_u32_le() as usize;
    let mut users = Vec::with_capacity(n_users.min(1 << 24));
    for _ in 0..n_users {
        users.push(Trajectory::new(get_points(&mut buf)?));
    }
    if buf.remaining() < 4 {
        return Err(SnapshotError::Truncated);
    }
    let n_fac = buf.get_u32_le() as usize;
    let mut facilities = Vec::with_capacity(n_fac.min(1 << 24));
    for _ in 0..n_fac {
        facilities.push(Facility::new(get_points(&mut buf)?));
    }
    Ok((UserSet::from_vec(users), FacilitySet::from_vec(facilities)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn sample() -> (UserSet, FacilitySet) {
        let users = UserSet::from_vec(vec![
            Trajectory::two_point(p(0.5, 1.5), p(2.5, 3.5)),
            Trajectory::new(vec![p(1.0, 1.0), p(2.0, 2.0), p(3.0, 1.0)]),
        ]);
        let facilities = FacilitySet::from_vec(vec![
            Facility::new(vec![p(0.0, 0.0), p(1.0, 0.0)]),
        ]);
        (users, facilities)
    }

    #[test]
    fn roundtrip() {
        let (u, f) = sample();
        let buf = encode(&u, &f);
        let (u2, f2) = decode(buf).unwrap();
        assert_eq!(u.as_slice(), u2.as_slice());
        assert_eq!(f.as_slice(), f2.as_slice());
    }

    #[test]
    fn bad_magic_detected() {
        let mut raw = encode(&sample().0, &sample().1).to_vec();
        raw[0] ^= 0xFF;
        assert_eq!(decode(Bytes::from(raw)), Err(SnapshotError::BadMagic));
    }

    #[test]
    fn truncation_detected() {
        let raw = encode(&sample().0, &sample().1);
        let cut = raw.slice(0..raw.len() - 5);
        assert!(matches!(
            decode(cut),
            Err(SnapshotError::Truncated) | Err(SnapshotError::CorruptCount)
        ));
    }

    #[test]
    fn empty_sets_roundtrip() {
        // Note: trajectories/facilities themselves can't be empty, but the
        // sets can.
        let buf = encode(&UserSet::new(), &FacilitySet::new());
        let (u, f) = decode(buf).unwrap();
        assert!(u.is_empty());
        assert!(f.is_empty());
    }

    #[test]
    fn version_mismatch_detected() {
        let mut raw = encode(&sample().0, &sample().1).to_vec();
        raw[4] = 99;
        assert_eq!(
            decode(Bytes::from(raw)),
            Err(SnapshotError::BadVersion(99))
        );
    }
}
