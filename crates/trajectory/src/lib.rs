//! Trajectory and facility data model.
//!
//! The paper distinguishes two kinds of trajectories:
//!
//! * **user trajectories** `u ∈ U` — sequences of visited points (taxi
//!   pick-up/drop-off pairs, check-in sequences, GPS traces), modelled by
//!   [`Trajectory`], and
//! * **facility trajectories** `f ∈ F` — sequences of *stop* points of a
//!   candidate service route (e.g. a bus route), modelled by [`Facility`].
//!
//! [`UserSet`] and [`FacilitySet`] are the corresponding collections with the
//! bookkeeping (ids, bounding boxes, aggregate statistics) that index
//! construction and the experiment harness need. [`snapshot`] offers a tiny
//! length-prefixed binary (de)serialization so generated datasets can be
//! cached between benchmark runs.

#![warn(missing_docs)]

mod facility;
pub mod io;
pub mod snapshot;
mod trajectory;

pub use facility::{Facility, FacilityId, FacilitySet};
pub use io::LocalProjection;
pub use trajectory::{SegmentRef, Trajectory, TrajectoryId, UserSet};
