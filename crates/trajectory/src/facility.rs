use tq_geometry::{Point, Rect};

/// Identifier of a facility: its index in the owning [`FacilitySet`].
pub type FacilityId = u32;

/// A facility trajectory: the ordered stop points of a candidate service
/// route (bus stops, pick-up/drop-off bays, …).
///
/// A user point is *served* by the facility when it lies within the service
/// threshold `ψ` of at least one stop.
#[derive(Debug, Clone, PartialEq)]
pub struct Facility {
    stops: Vec<Point>,
}

impl Facility {
    /// Creates a facility from its stops.
    ///
    /// # Panics
    /// Panics when no stops are supplied or any coordinate is non-finite.
    pub fn new(stops: Vec<Point>) -> Self {
        assert!(!stops.is_empty(), "a facility needs at least one stop");
        assert!(
            stops.iter().all(Point::is_finite),
            "facility stop coordinates must be finite"
        );
        Facility { stops }
    }

    /// The ordered stop points.
    #[inline]
    pub fn stops(&self) -> &[Point] {
        &self.stops
    }

    /// Number of stops.
    #[inline]
    pub fn len(&self) -> usize {
        self.stops.len()
    }

    /// Always `false` (≥ 1 stop by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Minimum bounding rectangle of the stops.
    pub fn mbr(&self) -> Rect {
        Rect::bounding(self.stops.iter()).expect("non-empty by construction")
    }

    /// The paper's EMBR: the stop MBR expanded by `psi` on every side. Any
    /// user point served by this facility lies inside the EMBR.
    pub fn embr(&self, psi: f64) -> Rect {
        self.mbr().expand(psi)
    }

    /// Returns `true` when `p` is within `psi` of some stop.
    pub fn serves_point(&self, p: &Point, psi: f64) -> bool {
        let psi_sq = psi * psi;
        self.stops.iter().any(|s| s.dist_sq(p) <= psi_sq)
    }

    /// A copy keeping only the first `n` stops (used by the stop-count
    /// parameter sweeps; keeps at least one stop).
    pub fn truncated(&self, n: usize) -> Facility {
        Facility {
            stops: self.stops[..n.clamp(1, self.stops.len())].to_vec(),
        }
    }
}

/// An indexed collection of candidate facilities.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FacilitySet {
    facilities: Vec<Facility>,
}

impl FacilitySet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a set from facilities, assigning ids by position.
    pub fn from_vec(facilities: Vec<Facility>) -> Self {
        FacilitySet { facilities }
    }

    /// Adds a facility, returning its id.
    pub fn push(&mut self, f: Facility) -> FacilityId {
        let id = self.facilities.len() as FacilityId;
        self.facilities.push(f);
        id
    }

    /// Number of facilities, `|F|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.facilities.len()
    }

    /// Returns `true` when the set holds no facilities.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.facilities.is_empty()
    }

    /// The facility with id `id`.
    #[inline]
    pub fn get(&self, id: FacilityId) -> &Facility {
        &self.facilities[id as usize]
    }

    /// Iterates `(id, facility)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FacilityId, &Facility)> {
        self.facilities
            .iter()
            .enumerate()
            .map(|(i, f)| (i as FacilityId, f))
    }

    /// All facilities as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[Facility] {
        &self.facilities
    }

    /// Total number of stops across all facilities.
    pub fn total_stops(&self) -> usize {
        self.facilities.iter().map(Facility::len).sum()
    }

    /// A copy with only the first `n` facilities.
    pub fn truncated(&self, n: usize) -> FacilitySet {
        FacilitySet {
            facilities: self.facilities[..n.min(self.facilities.len())].to_vec(),
        }
    }

    /// A copy where every facility keeps only its first `stops` stops.
    pub fn with_stop_limit(&self, stops: usize) -> FacilitySet {
        FacilitySet {
            facilities: self.facilities.iter().map(|f| f.truncated(stops)).collect(),
        }
    }
}

impl std::ops::Index<FacilityId> for FacilitySet {
    type Output = Facility;
    #[inline]
    fn index(&self, id: FacilityId) -> &Facility {
        self.get(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn basic_accessors() {
        let f = Facility::new(vec![p(0.0, 0.0), p(2.0, 0.0), p(4.0, 0.0)]);
        assert_eq!(f.len(), 3);
        assert_eq!(f.stops()[1], p(2.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "at least one stop")]
    fn empty_facility_rejected() {
        Facility::new(vec![]);
    }

    #[test]
    fn embr_expands_mbr() {
        let f = Facility::new(vec![p(0.0, 0.0), p(4.0, 2.0)]);
        let e = f.embr(1.0);
        assert_eq!(e, Rect::new(p(-1.0, -1.0), p(5.0, 3.0)));
    }

    #[test]
    fn serves_point_threshold() {
        let f = Facility::new(vec![p(0.0, 0.0), p(10.0, 0.0)]);
        assert!(f.serves_point(&p(10.0, 3.0), 3.0));
        assert!(!f.serves_point(&p(5.0, 0.0), 3.0));
        assert!(f.serves_point(&p(3.0, 0.0), 3.0)); // inclusive
    }

    #[test]
    fn truncated_keeps_at_least_one_stop() {
        let f = Facility::new(vec![p(0.0, 0.0), p(1.0, 0.0)]);
        assert_eq!(f.truncated(0).len(), 1);
        assert_eq!(f.truncated(1).len(), 1);
        assert_eq!(f.truncated(5).len(), 2);
    }

    #[test]
    fn facility_set_operations() {
        let mut fs = FacilitySet::new();
        fs.push(Facility::new(vec![p(0.0, 0.0), p(1.0, 0.0)]));
        fs.push(Facility::new(vec![p(2.0, 0.0), p(3.0, 0.0), p(4.0, 0.0)]));
        assert_eq!(fs.len(), 2);
        assert_eq!(fs.total_stops(), 5);
        assert_eq!(fs.truncated(1).len(), 1);
        let limited = fs.with_stop_limit(2);
        assert_eq!(limited[1].len(), 2);
        assert_eq!(fs[1].len(), 3); // original untouched
    }
}
