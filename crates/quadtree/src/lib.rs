//! A capacity-split point quadtree with rectangular range queries.
//!
//! This is the "traditional index" the paper's baseline **BL** uses: user
//! trajectory *points* are indexed individually, and each facility is
//! evaluated by issuing one range query per stop (a ψ-box around the stop)
//! and post-processing the candidate users. The TQ-tree crates never use this
//! structure — it exists so the baseline comparison is faithful.
//!
//! The tree is generic over a `Copy` payload `T` (the baseline stores
//! `(TrajectoryId, point index)` pairs).

#![warn(missing_docs)]

use tq_geometry::{Point, Rect};

/// Default maximum tree depth; beyond this a leaf stops splitting even when
/// over capacity (protects against many coincident points).
pub const DEFAULT_MAX_DEPTH: u8 = 24;

#[derive(Debug, Clone)]
enum Node<T> {
    Leaf(Vec<(Point, T)>),
    Internal(Box<[Node<T>; 4]>),
}

impl<T: Copy> Node<T> {
    fn empty_leaf() -> Self {
        Node::Leaf(Vec::new())
    }
}

/// A point quadtree over a fixed bounding rectangle.
///
/// Leaves split into four children when they exceed `capacity` entries, up to
/// `max_depth` levels. Points outside the bounds are clamped onto the
/// boundary (consistent with [`tq_geometry::ZId::of_point`]).
#[derive(Debug, Clone)]
pub struct QuadTree<T> {
    root: Node<T>,
    bounds: Rect,
    capacity: usize,
    max_depth: u8,
    len: usize,
}

impl<T: Copy> QuadTree<T> {
    /// Creates an empty tree over `bounds` with leaf capacity `capacity`.
    ///
    /// # Panics
    /// Panics when `capacity == 0`.
    pub fn new(bounds: Rect, capacity: usize) -> Self {
        Self::with_max_depth(bounds, capacity, DEFAULT_MAX_DEPTH)
    }

    /// Like [`QuadTree::new`] with an explicit depth limit.
    pub fn with_max_depth(bounds: Rect, capacity: usize, max_depth: u8) -> Self {
        assert!(capacity > 0, "leaf capacity must be positive");
        QuadTree {
            root: Node::empty_leaf(),
            bounds,
            capacity,
            max_depth,
            len: 0,
        }
    }

    /// Builds a tree from an iterator of `(point, payload)` pairs.
    pub fn bulk_load<I>(bounds: Rect, capacity: usize, items: I) -> Self
    where
        I: IntoIterator<Item = (Point, T)>,
    {
        let mut t = Self::new(bounds, capacity);
        for (p, v) in items {
            t.insert(p, v);
        }
        t
    }

    /// Number of stored points.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the tree stores no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The tree's bounding rectangle.
    #[inline]
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// The leaf capacity the tree splits at — a build parameter persisted
    /// so a reloaded index can be reconstructed identically.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts a point with its payload. Out-of-bounds points are clamped.
    pub fn insert(&mut self, p: Point, value: T) {
        let p = Point::new(
            p.x.clamp(self.bounds.min.x, self.bounds.max.x),
            p.y.clamp(self.bounds.min.y, self.bounds.max.y),
        );
        let capacity = self.capacity;
        let max_depth = self.max_depth;
        Self::insert_rec(&mut self.root, self.bounds, 0, capacity, max_depth, p, value);
        self.len += 1;
    }

    fn insert_rec(
        node: &mut Node<T>,
        rect: Rect,
        depth: u8,
        capacity: usize,
        max_depth: u8,
        p: Point,
        value: T,
    ) {
        match node {
            Node::Leaf(items) => {
                items.push((p, value));
                if items.len() > capacity && depth < max_depth {
                    let drained = std::mem::take(items);
                    let mut children = Box::new([
                        Node::empty_leaf(),
                        Node::empty_leaf(),
                        Node::empty_leaf(),
                        Node::empty_leaf(),
                    ]);
                    for (q, v) in drained {
                        let quad = rect.quadrant_of(&q);
                        Self::insert_rec(
                            &mut children[quad.index() as usize],
                            rect.quadrant(quad),
                            depth + 1,
                            capacity,
                            max_depth,
                            q,
                            v,
                        );
                    }
                    *node = Node::Internal(children);
                }
            }
            Node::Internal(children) => {
                let quad = rect.quadrant_of(&p);
                Self::insert_rec(
                    &mut children[quad.index() as usize],
                    rect.quadrant(quad),
                    depth + 1,
                    capacity,
                    max_depth,
                    p,
                    value,
                );
            }
        }
    }

    /// Removes one stored entry matching `(p, value)` exactly (the point is
    /// clamped like [`QuadTree::insert`] does, so an insert can always be
    /// undone). Returns `false` when no such entry exists.
    ///
    /// Internal nodes whose subtree shrinks back to `capacity` entries
    /// collapse into a single leaf, so insert/remove churn leaves the same
    /// structure a fresh load of the surviving points produces.
    pub fn remove(&mut self, p: Point, value: &T) -> bool
    where
        T: PartialEq,
    {
        let p = Point::new(
            p.x.clamp(self.bounds.min.x, self.bounds.max.x),
            p.y.clamp(self.bounds.min.y, self.bounds.max.y),
        );
        let capacity = self.capacity;
        let removed = Self::remove_rec(&mut self.root, self.bounds, capacity, p, value);
        if removed {
            self.len -= 1;
        }
        removed
    }

    fn remove_rec(node: &mut Node<T>, rect: Rect, capacity: usize, p: Point, value: &T) -> bool
    where
        T: PartialEq,
    {
        match node {
            Node::Leaf(items) => match items.iter().position(|(q, v)| *q == p && v == value) {
                Some(i) => {
                    items.swap_remove(i);
                    true
                }
                None => false,
            },
            Node::Internal(children) => {
                let quad = rect.quadrant_of(&p);
                let removed = Self::remove_rec(
                    &mut children[quad.index() as usize],
                    rect.quadrant(quad),
                    capacity,
                    p,
                    value,
                );
                if removed && Self::subtree_len_capped(node, capacity).is_some() {
                    let mut gathered = Vec::new();
                    Self::drain(node, &mut gathered);
                    *node = Node::Leaf(gathered);
                }
                removed
            }
        }
    }

    /// Subtree entry count, or `None` once it exceeds `cap`.
    fn subtree_len_capped(node: &Node<T>, cap: usize) -> Option<usize> {
        match node {
            Node::Leaf(items) => (items.len() <= cap).then_some(items.len()),
            Node::Internal(children) => {
                let mut total = 0usize;
                for c in children.iter() {
                    total += Self::subtree_len_capped(c, cap)?;
                    if total > cap {
                        return None;
                    }
                }
                Some(total)
            }
        }
    }

    fn drain(node: &mut Node<T>, out: &mut Vec<(Point, T)>) {
        match node {
            Node::Leaf(items) => out.append(items),
            Node::Internal(children) => {
                for c in children.iter_mut() {
                    Self::drain(c, out);
                }
            }
        }
    }

    /// Visits every stored `(point, payload)` whose point lies in `range`.
    pub fn range_visit<F: FnMut(Point, T)>(&self, range: &Rect, mut visit: F) {
        Self::range_rec(&self.root, self.bounds, range, &mut visit);
    }

    fn range_rec<F: FnMut(Point, T)>(node: &Node<T>, rect: Rect, range: &Rect, visit: &mut F) {
        if !rect.intersects(range) {
            return;
        }
        match node {
            Node::Leaf(items) => {
                if range.contains_rect(&rect) {
                    for &(p, v) in items {
                        visit(p, v);
                    }
                } else {
                    for &(p, v) in items {
                        if range.contains(&p) {
                            visit(p, v);
                        }
                    }
                }
            }
            Node::Internal(children) => {
                for (i, child) in children.iter().enumerate() {
                    Self::range_rec(
                        child,
                        rect.quadrant(tq_geometry::Quadrant::from_index(i as u8)),
                        range,
                        visit,
                    );
                }
            }
        }
    }

    /// Collects every payload whose point lies in `range`.
    pub fn range_query(&self, range: &Rect) -> Vec<T> {
        let mut out = Vec::new();
        self.range_visit(range, |_, v| out.push(v));
        out
    }

    /// Collects every payload whose point lies within distance `psi` of `c`
    /// (circular range query — the box query refined by the exact test).
    pub fn within_query(&self, c: &Point, psi: f64) -> Vec<T> {
        let box_range = Rect::point(*c).expand(psi);
        let psi_sq = psi * psi;
        let mut out = Vec::new();
        self.range_visit(&box_range, |p, v| {
            if p.dist_sq(c) <= psi_sq {
                out.push(v);
            }
        });
        out
    }

    /// Number of nodes (internal + leaf), for diagnostics.
    pub fn node_count(&self) -> usize {
        fn rec<T>(n: &Node<T>) -> usize {
            match n {
                Node::Leaf(_) => 1,
                Node::Internal(c) => 1 + c.iter().map(rec).sum::<usize>(),
            }
        }
        rec(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn unit() -> Rect {
        Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0))
    }

    #[test]
    fn insert_and_count() {
        let mut t = QuadTree::new(unit(), 2);
        assert!(t.is_empty());
        for i in 0..10 {
            t.insert(Point::new(i as f64 / 10.0, 0.5), i);
        }
        assert_eq!(t.len(), 10);
        assert!(t.node_count() > 1, "tree should have split");
    }

    #[test]
    fn range_query_exact() {
        let mut t = QuadTree::new(unit(), 4);
        let pts = [
            (0.1, 0.1),
            (0.2, 0.2),
            (0.9, 0.9),
            (0.5, 0.5),
            (0.45, 0.55),
        ];
        for (i, &(x, y)) in pts.iter().enumerate() {
            t.insert(Point::new(x, y), i);
        }
        let mut got = t.range_query(&Rect::new(Point::new(0.4, 0.4), Point::new(0.6, 0.6)));
        got.sort_unstable();
        assert_eq!(got, vec![3, 4]);
    }

    #[test]
    fn within_query_is_circular() {
        let mut t = QuadTree::new(unit(), 4);
        t.insert(Point::new(0.5, 0.5), 0u32);
        t.insert(Point::new(0.6, 0.6), 1);
        t.insert(Point::new(0.5, 0.65), 2);
        // Box of radius 0.15 around (0.5,0.5) includes id 1 (corner), circle
        // does not: dist((0.5,0.5),(0.6,0.6)) ≈ 0.1414 < 0.15 — include it.
        // Use radius 0.12: box would include both, circle excludes id 1's
        // diagonal (0.1414 > 0.12) but includes id 2? dist=0.15>0.12. Only 0.
        let mut got = t.within_query(&Point::new(0.5, 0.5), 0.12);
        got.sort_unstable();
        assert_eq!(got, vec![0]);
        let mut got = t.within_query(&Point::new(0.5, 0.5), 0.1501);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn coincident_points_respect_max_depth() {
        let mut t = QuadTree::with_max_depth(unit(), 1, 4);
        for i in 0..100 {
            t.insert(Point::new(0.3, 0.3), i);
        }
        assert_eq!(t.len(), 100);
        assert_eq!(
            t.range_query(&Rect::point(Point::new(0.3, 0.3)).expand(0.01)).len(),
            100
        );
    }

    #[test]
    fn out_of_bounds_points_clamped() {
        let mut t = QuadTree::new(unit(), 4);
        t.insert(Point::new(5.0, 5.0), 7u32);
        let got = t.range_query(&Rect::new(Point::new(0.9, 0.9), Point::new(1.0, 1.0)));
        assert_eq!(got, vec![7]);
    }

    #[test]
    fn bulk_load_matches_inserts() {
        let items: Vec<(Point, usize)> = (0..50)
            .map(|i| (Point::new((i as f64 * 0.37) % 1.0, (i as f64 * 0.61) % 1.0), i))
            .collect();
        let t = QuadTree::bulk_load(unit(), 4, items.clone());
        assert_eq!(t.len(), 50);
        let all = t.range_query(&unit());
        assert_eq!(all.len(), 50);
    }

    #[test]
    fn randomized_against_linear_scan() {
        let mut rng = StdRng::seed_from_u64(42);
        let items: Vec<(Point, u32)> = (0..2000)
            .map(|i| (Point::new(rng.gen(), rng.gen()), i))
            .collect();
        let t = QuadTree::bulk_load(unit(), 8, items.clone());
        for _ in 0..50 {
            let a = Point::new(rng.gen(), rng.gen());
            let b = Point::new(rng.gen(), rng.gen());
            let range = Rect::new(a, b);
            let mut got = t.range_query(&range);
            got.sort_unstable();
            let mut want: Vec<u32> = items
                .iter()
                .filter(|(p, _)| range.contains(p))
                .map(|&(_, v)| v)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn remove_inverts_insert_and_collapses() {
        let mut rng = StdRng::seed_from_u64(7);
        let items: Vec<(Point, u32)> = (0..500)
            .map(|i| (Point::new(rng.gen(), rng.gen()), i))
            .collect();
        let mut t = QuadTree::bulk_load(unit(), 4, items.clone());
        let nodes_full = t.node_count();
        assert!(nodes_full > 1);
        // Remove everything but the first 3 points: the tree must collapse
        // back to a single leaf.
        for (p, v) in &items[3..] {
            assert!(t.remove(*p, v), "stored entry must be removable");
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.node_count(), 1, "subtree should have collapsed");
        let mut got = t.range_query(&unit());
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
        // Absent entries report false and change nothing.
        assert!(!t.remove(Point::new(0.5, 0.5), &999));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn remove_clamps_like_insert() {
        let mut t = QuadTree::new(unit(), 4);
        t.insert(Point::new(5.0, 5.0), 7u32);
        assert!(t.remove(Point::new(5.0, 5.0), &7), "clamped entry found");
        assert!(t.is_empty());
    }

    #[test]
    fn remove_one_of_coincident_duplicates() {
        let mut t = QuadTree::with_max_depth(unit(), 1, 4);
        for i in 0..10 {
            t.insert(Point::new(0.3, 0.3), i);
        }
        assert!(t.remove(Point::new(0.3, 0.3), &4));
        assert!(!t.remove(Point::new(0.3, 0.3), &4), "each entry once");
        assert_eq!(t.len(), 9);
    }

    proptest! {
        #[test]
        fn prop_range_equals_linear_scan(
            pts in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 0..200),
            qx in 0.0f64..1.0, qy in 0.0f64..1.0, qw in 0.0f64..1.0, qh in 0.0f64..1.0,
        ) {
            let items: Vec<(Point, usize)> = pts
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| (Point::new(x, y), i))
                .collect();
            let t = QuadTree::bulk_load(unit(), 4, items.clone());
            let range = Rect::new(Point::new(qx, qy), Point::new((qx + qw).min(1.0), (qy + qh).min(1.0)));
            let mut got = t.range_query(&range);
            got.sort_unstable();
            let mut want: Vec<usize> = items
                .iter()
                .filter(|(p, _)| range.contains(p))
                .map(|&(_, v)| v)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }

        #[test]
        fn prop_within_equals_linear_scan(
            pts in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 0..200),
            cx in 0.0f64..1.0, cy in 0.0f64..1.0, r in 0.0f64..0.5,
        ) {
            let items: Vec<(Point, usize)> = pts
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| (Point::new(x, y), i))
                .collect();
            let t = QuadTree::bulk_load(unit(), 4, items.clone());
            let c = Point::new(cx, cy);
            let mut got = t.within_query(&c, r);
            got.sort_unstable();
            let mut want: Vec<usize> = items
                .iter()
                .filter(|(p, _)| p.dist_sq(&c) <= r * r)
                .map(|&(_, v)| v)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }
}
