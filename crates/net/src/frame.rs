//! The transport envelope: length-framed, CRC-guarded frames.
//!
//! Every message — request or response — travels as one frame:
//!
//! ```text
//! ┌──────────┬──────┬──────────┬───────────────┬──────────┐
//! │ magic    │ kind │ len      │ body          │ crc      │
//! │ u32 LE   │ u8   │ u32 LE   │ len bytes     │ u32 LE   │
//! │ "TQN1"   │      │          │               │          │
//! └──────────┴──────┴──────────┴───────────────┴──────────┘
//!              └──────── crc32 covers this ────┘
//! ```
//!
//! The magic pins the stream to this protocol (a stray HTTP request dies
//! on byte 0); the CRC covers kind, length and body so a bit flip
//! anywhere after the magic is detected before the body is decoded. The
//! length is validated against a cap *before* any allocation, so a
//! hostile prefix cannot make the reader balloon.

use crate::NetError;
use bytes::{Bytes, BytesMut, BufMut};
use std::io::{ErrorKind, Read, Write};
use tq_store::crc::{crc32, Crc32};
use tq_store::StoreError;

/// The stream magic, `b"TQN1"` read little-endian.
pub const MAGIC: u32 = u32::from_le_bytes(*b"TQN1");

/// Bytes before the body: magic (4) + kind (1) + len (4).
pub const HEADER_LEN: usize = 9;

/// Bytes after the body: the CRC.
pub const TRAILER_LEN: usize = 4;

/// Assembles one complete frame around `body`.
pub fn frame(kind: u8, body: &[u8]) -> BytesMut {
    let mut buf = BytesMut::with_capacity(HEADER_LEN + body.len() + TRAILER_LEN);
    // The unsuffixed accessors are the vendored shim's little-endian
    // aliases — see vendor/README.md before swapping in crates.io `bytes`.
    buf.put_u32(MAGIC);
    buf.put_u8(kind);
    buf.put_u32(body.len() as u32);
    buf.put_slice(body);
    let crc = crc32(&buf.as_ref()[4..]);
    buf.put_u32(crc);
    buf
}

/// Writes one frame and flushes.
pub fn write_frame(w: &mut impl Write, kind: u8, body: &[u8]) -> Result<(), NetError> {
    w.write_all(frame(kind, body).as_ref())?;
    w.flush()?;
    Ok(())
}

/// A parsed frame header.
#[derive(Debug, Clone, Copy)]
pub struct Header {
    /// The frame kind byte (see [`crate::proto`]).
    pub kind: u8,
    /// The body length the prefix claims.
    pub len: u32,
}

/// Validates the 9 header bytes: magic, then length against `max_frame`.
pub fn parse_header(raw: &[u8; HEADER_LEN], max_frame: usize) -> Result<Header, NetError> {
    let magic = u32::from_le_bytes([raw[0], raw[1], raw[2], raw[3]]);
    if magic != MAGIC {
        return Err(NetError::Codec(StoreError::BadMagic {
            found: magic,
            expected: MAGIC,
        }));
    }
    let kind = raw[4];
    let len = u32::from_le_bytes([raw[5], raw[6], raw[7], raw[8]]);
    if len as u64 > max_frame as u64 {
        return Err(NetError::FrameTooLarge {
            len: len as u64,
            max: max_frame,
        });
    }
    Ok(Header { kind, len })
}

/// Checks the trailer CRC against the received kind, length and body.
pub fn verify_crc(header: Header, body: &[u8], stored: u32) -> Result<(), NetError> {
    let mut crc = Crc32::new();
    crc.update(&[header.kind]);
    crc.update(&header.len.to_le_bytes());
    crc.update(body);
    let computed = crc.finish();
    if computed != stored {
        return Err(NetError::Codec(StoreError::CrcMismatch { stored, computed }));
    }
    Ok(())
}

/// What one read attempt produced.
#[derive(Debug)]
pub enum Polled {
    /// A complete, CRC-verified frame.
    Frame {
        /// The frame kind byte.
        kind: u8,
        /// The frame body.
        body: Bytes,
    },
    /// The peer closed the stream cleanly at a frame boundary.
    Closed,
    /// `stop()` turned true before a full frame arrived.
    Stopped,
}

/// Reads exactly `buf.len()` bytes, tolerating `WouldBlock`/`TimedOut`
/// (socket read timeouts) and `Interrupted`, and polling `stop` between
/// attempts. Returns how many bytes landed before EOF or a stop.
fn read_full(
    r: &mut impl Read,
    buf: &mut [u8],
    stop: &impl Fn() -> bool,
) -> Result<(usize, bool), NetError> {
    let mut filled = 0;
    while filled < buf.len() {
        if stop() {
            return Ok((filled, true));
        }
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Ok((filled, false)),
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    Ok((filled, false))
}

/// Reads one frame, checking `stop` between socket reads (pair with a
/// socket read timeout so a quiet connection still polls the flag).
///
/// EOF at a frame boundary is [`Polled::Closed`]; EOF mid-frame is a
/// [`StoreError::Truncated`] codec error. The body is allocated only
/// after the length prefix passes the `max_frame` check.
pub fn read_frame_interruptible(
    r: &mut impl Read,
    max_frame: usize,
    stop: impl Fn() -> bool,
) -> Result<Polled, NetError> {
    let mut raw = [0u8; HEADER_LEN];
    let (filled, stopped) = read_full(r, &mut raw, &stop)?;
    if stopped {
        return Ok(Polled::Stopped);
    }
    if filled == 0 {
        return Ok(Polled::Closed);
    }
    if filled < HEADER_LEN {
        return Err(NetError::Codec(StoreError::Truncated));
    }
    let header = parse_header(&raw, max_frame)?;

    let mut rest = vec![0u8; header.len as usize + TRAILER_LEN];
    let (filled, stopped) = read_full(r, &mut rest, &stop)?;
    if stopped {
        return Ok(Polled::Stopped);
    }
    if filled < rest.len() {
        return Err(NetError::Codec(StoreError::Truncated));
    }
    let crc_at = header.len as usize;
    let stored = u32::from_le_bytes([
        rest[crc_at],
        rest[crc_at + 1],
        rest[crc_at + 2],
        rest[crc_at + 3],
    ]);
    rest.truncate(crc_at);
    verify_crc(header, &rest, stored)?;
    Ok(Polled::Frame {
        kind: header.kind,
        body: Bytes::from(rest),
    })
}

/// Reads one frame, blocking until it arrives. EOF at a frame boundary is
/// [`NetError::Closed`]; EOF mid-frame is a truncation codec error.
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> Result<(u8, Bytes), NetError> {
    match read_frame_interruptible(r, max_frame, || false)? {
        Polled::Frame { kind, body } => Ok((kind, body)),
        Polled::Closed => Err(NetError::Closed),
        Polled::Stopped => unreachable!("stop closure is constant false"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_roundtrip() {
        let body = b"maximum trajectory coverage".as_slice();
        let wire = frame(0x42, body);
        let (kind, got) = read_frame(&mut Cursor::new(wire.as_ref()), 1 << 20).unwrap();
        assert_eq!(kind, 0x42);
        assert_eq!(got.as_ref(), body);
    }

    #[test]
    fn zero_length_bodies_are_legal_frames() {
        let wire = frame(0x05, &[]);
        assert_eq!(wire.len(), HEADER_LEN + TRAILER_LEN);
        let (kind, body) = read_frame(&mut Cursor::new(wire.as_ref()), 1 << 20).unwrap();
        assert_eq!(kind, 0x05);
        assert!(body.is_empty());
    }

    #[test]
    fn hostile_length_prefix_is_rejected_before_allocation() {
        // Claim a 4 GiB body. If the reader allocated eagerly this test
        // would OOM; instead the header check refuses it outright.
        let mut wire = frame(0x02, b"xx").as_ref().to_vec();
        wire[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut Cursor::new(&wire[..]), 1 << 20).unwrap_err();
        match err {
            NetError::FrameTooLarge { len, max } => {
                assert_eq!(len, u32::MAX as u64);
                assert_eq!(max, 1 << 20);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_is_rejected_on_byte_zero() {
        let mut wire = frame(0x02, b"hello").as_ref().to_vec();
        wire[0] ^= 0xFF;
        let err = read_frame(&mut Cursor::new(&wire[..]), 1 << 20).unwrap_err();
        assert!(matches!(
            err,
            NetError::Codec(StoreError::BadMagic { .. })
        ));
    }

    #[test]
    fn any_single_bit_flip_after_the_magic_is_detected() {
        let wire = frame(0x03, b"coverage").as_ref().to_vec();
        for byte in 4..wire.len() {
            for bit in 0..8 {
                let mut bad = wire.clone();
                bad[byte] ^= 1 << bit;
                let out = read_frame(&mut Cursor::new(&bad[..]), 1 << 20);
                assert!(
                    out.is_err(),
                    "flip of byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn truncation_at_every_byte_is_detected() {
        let wire = frame(0x02, b"partial frames must not parse").as_ref().to_vec();
        for cut in 0..wire.len() {
            let out = read_frame(&mut Cursor::new(&wire[..cut]), 1 << 20);
            match out {
                Err(NetError::Closed) => assert_eq!(cut, 0, "Closed only at the boundary"),
                Err(_) => {}
                Ok(_) => panic!("prefix of {cut} bytes parsed as a frame"),
            }
        }
    }

    #[test]
    fn interruptible_reads_honor_the_stop_flag() {
        struct NeverReady;
        impl Read for NeverReady {
            fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(ErrorKind::WouldBlock, "poll"))
            }
        }
        let polled = read_frame_interruptible(&mut NeverReady, 1 << 20, || true).unwrap();
        assert!(matches!(polled, Polled::Stopped));
    }
}
