//! Networked serving for durable TQ-tree engines: the wire protocol, the
//! blocking client SDK and the threaded TCP server behind the `tqd`
//! daemon.
//!
//! The crate is three layers over one invariant:
//!
//! * **[`frame`]** — the transport envelope. Every message travels as one
//!   length-framed, CRC-guarded frame (`magic | kind | len | body | crc`);
//!   a reader can always tell a truncated or bit-flipped frame from a
//!   valid one before it touches the body.
//! * **[`proto`]** — the message vocabulary. [`proto::Request`] and
//!   [`proto::Response`] map frame kinds onto the `tq-core` wire codec
//!   ([`tq_core::wire`]): queries, answers and update batches cross the
//!   network as exactly the bytes the WAL and snapshot files already use.
//! * **[`client`] / [`server`]** — the endpoints. [`Client`] is a
//!   blocking, reconnect-with-backoff SDK; [`Server`] runs one thread per
//!   connection, each holding a lock-free
//!   [`Reader`](tq_core::engine::Reader) for queries while every update
//!   batch funnels through the engine's single writer
//!   ([`tq_core::writer::WriterHub`]).
//! * **[`repl`]** — the follower side of WAL-shipping replication:
//!   [`bootstrap_follower`] opens (or seeds) a local store from a
//!   primary's feed, and [`repl::ingest`] applies shipped records through
//!   the same idempotent stamped-replay path crash recovery uses. The
//!   primary side lives in [`tq_repl`] and is served by [`Server`] when
//!   [`ServerConfig::repl_dir`](server::ServerConfig::repl_dir) is set.
//!
//! The invariant: a networked answer is **bit-identical** to the answer an
//! in-process [`Engine`](tq_core::engine::Engine) at the same epoch
//! returns, and an acknowledged update batch is as durable as an
//! in-process [`Engine::apply`](tq_core::engine::Engine::apply) — the WAL
//! record is on disk before the ack frame is on the wire.

#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod proto;
pub mod repl;
pub mod server;

pub use client::{Client, ConnectConfig};
pub use proto::{
    Ack, ErrorCode, ErrorFrame, Request, Response, ServerInfo, ServerRole, StatusReport,
};
pub use repl::{bootstrap_follower, ingest, open_feed, FollowerEngine, IngestEnd};
pub use server::{FollowerParts, Server, ServerConfig, ServerHandle};

use tq_store::StoreError;

/// The protocol revision this build speaks. The handshake refuses any
/// other value — bump it whenever a frame body's byte layout changes.
/// v2 added replication: the hello/status bodies carry the node's role
/// and primary address, and the `repl-*` frame kinds exist.
/// v3 added observability: the status body carries cumulative
/// connection and panic counters, and the `metrics` frame kinds exist.
pub const PROTOCOL_VERSION: u16 = 3;

/// Default cap on a frame's body length (32 MiB). A hostile or corrupt
/// length prefix above the cap is rejected *before* any allocation.
pub const DEFAULT_MAX_FRAME: usize = 32 << 20;

/// Why a network operation failed.
#[derive(Debug)]
pub enum NetError {
    /// The socket failed (connect, read or write).
    Io(std::io::Error),
    /// The peer's bytes don't decode: bad magic, CRC mismatch, truncated
    /// frame, or a body the codec rejects.
    Codec(StoreError),
    /// The length prefix exceeds the configured cap; the frame was
    /// rejected without allocating.
    FrameTooLarge {
        /// The length the prefix claimed.
        len: u64,
        /// The configured cap.
        max: usize,
    },
    /// The peer sent a well-formed frame of a kind that makes no sense
    /// here (e.g. a request arriving at a client).
    Unexpected {
        /// The offending frame kind byte.
        kind: u8,
    },
    /// The server answered with a typed error frame.
    Remote(ErrorFrame),
    /// The *local* engine failed while following a primary: it refused a
    /// replicated batch, or the bootstrapped store would not open.
    Engine(tq_core::engine::EngineError),
    /// The peer closed the connection at a frame boundary.
    Closed,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::Codec(e) => write!(f, "wire codec error: {e}"),
            NetError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            NetError::Unexpected { kind } => {
                write!(f, "unexpected frame kind {kind:#04x}")
            }
            NetError::Remote(e) => write!(f, "server error: {e}"),
            NetError::Engine(e) => write!(f, "local engine error: {e}"),
            NetError::Closed => write!(f, "the peer closed the connection"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Codec(e) => Some(e),
            NetError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<StoreError> for NetError {
    fn from(e: StoreError) -> Self {
        NetError::Codec(e)
    }
}
