//! The follower side of WAL-shipping replication.
//!
//! A follower daemon runs two loops against one store: the ordinary
//! [`Server`](crate::Server) serving queries from its read plane (with
//! writes refused — [`crate::ErrorCode::ReadOnly`]), and an **ingest
//! loop** applying records shipped from the primary through the same
//! single-writer funnel, via the idempotent stamped-replay path
//! ([`WriterHandle::apply_replicated`]). This module owns the pieces
//! both loops share with the wire:
//!
//! * [`bootstrap_follower`] — dial the primary, announce what the local
//!   store already holds, and come back with an [`Engine`] guaranteed to
//!   be reachable from the primary's feed: either the local store was
//!   recent enough to catch up from WAL records alone, or the primary
//!   streamed its newest snapshot and the store was seeded from it
//!   ([`tq_store::Store::bootstrap`]).
//! * [`ingest`] — the record loop: decode each shipped record, apply it
//!   at its epoch stamp, acknowledge. Generic over the stream so the
//!   torture tests can drive it from in-memory buffers.
//!
//! Both ends are duplicate-tolerant by construction: a record at or
//! below the follower's epoch acknowledges without re-applying (the
//! same rule crash recovery uses), so reconnecting and re-catching-up
//! from any point is always safe.

use crate::client::dial;
use crate::frame::{read_frame, read_frame_interruptible, write_frame, Polled};
use crate::proto::{kind, Response};
use crate::{ConnectConfig, NetError};
use bytes::{Bytes, BytesMut};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::Path;
use tq_core::engine::Engine;
use tq_core::persist::decode_update_batch;
use tq_core::writer::{WriterError, WriterHandle};
use tq_repl::proto::{ReplAck, ReplHello, ReplRecord, SnapshotChunk, REPL_PROTOCOL_VERSION};
use tq_store::codec::Reader as CodecReader;
use tq_store::{snapshot_files, Store, StoreConfig, StoreError};

/// What [`bootstrap_follower`] hands back: a local engine caught up to
/// the primary's feed origin, and the feed connection positioned at the
/// start of the record stream.
pub struct FollowerEngine {
    /// The follower's engine — open it into a [`Server`](crate::Server)
    /// with [`ServerConfig::follow`](crate::server::ServerConfig::follow)
    /// set, then run [`ingest`] with the server's writer handle.
    pub engine: Engine,
    /// The feed connection; every frame from here on is a record (or a
    /// typed error).
    pub stream: TcpStream,
}

/// Why [`ingest`] returned without an error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestEnd {
    /// The primary (or the network between) closed the feed — reconnect
    /// with a fresh [`bootstrap_follower`], or promote.
    Disconnected,
    /// The stop closure fired, or the local writer stopped: the follower
    /// daemon is shutting down (or was promoted out from under the
    /// loop).
    Stopped,
}

/// Dials the primary at `primary` and brings the store at `dir` to a
/// state its feed can continue from.
///
/// * An existing store opens normally (crash recovery included) and its
///   epoch is announced; the primary then ships only newer records.
/// * An empty (or absent) directory announces nothing and receives the
///   primary's newest snapshot in chunks; the store is seeded from it
///   via [`Store::bootstrap`].
/// * An existing store **too far behind** the primary's WAL is wiped and
///   re-seeded the same way — safe here, and only here, because the
///   bootstrap runs before any server owns the engine.
///
/// The returned stream has consumed the feed's opening frame (the
/// position marker, or the snapshot transfer), so [`ingest`] starts
/// cleanly at the record stream.
pub fn bootstrap_follower(
    dir: &Path,
    config: StoreConfig,
    primary: &str,
    connect: &ConnectConfig,
) -> Result<FollowerEngine, NetError> {
    let engine = if has_store(dir) {
        Some(Engine::open_with(dir, config).map_err(NetError::Engine)?)
    } else {
        None
    };

    let mut stream = dial(primary, connect)?;
    let hello = ReplHello {
        protocol: REPL_PROTOCOL_VERSION,
        shard: 0,
        have_epoch: engine.as_ref().map(|e| e.epoch()),
    };
    let mut body = BytesMut::new();
    hello.encode(&mut body);
    write_frame(&mut stream, kind::REPL_HELLO, body.as_ref())?;

    // The primary always answers a valid hello immediately: a position
    // marker (WAL-only catch-up), the first snapshot chunk, or a typed
    // error.
    let (first_kind, first_body) = read_frame(&mut stream, connect.max_frame)?;
    let engine = match first_kind {
        kind::S_REPL_RECORD => {
            let record = decode_record(first_body)?;
            let mut engine = engine.ok_or(NetError::Unexpected { kind: first_kind })?;
            let ack = if record.payload.is_empty() {
                record.epoch
            } else {
                let updates = decode_update_batch(record.payload.as_ref())?;
                engine
                    .apply_replicated(&updates, record.epoch)
                    .map_err(NetError::Engine)?;
                engine.epoch()
            };
            send_ack(&mut stream, ack)?;
            engine
        }
        kind::S_REPL_SNAPSHOT => {
            // The primary decided WAL records can't reach us: whatever
            // the local store held is superseded by the transfer.
            drop(engine);
            if dir.exists() {
                std::fs::remove_dir_all(dir)?;
            }
            let (epoch, image) = collect_snapshot(&mut stream, connect.max_frame, first_body)?;
            Store::bootstrap(dir, config, epoch, &image)?;
            Engine::open_with(dir, config).map_err(NetError::Engine)?
        }
        other => return Err(reject(other, first_body)),
    };
    Ok(FollowerEngine { engine, stream })
}

/// Re-opens a feed for an already-running follower: dial, hello with
/// the follower's current epoch, consume the opening position marker.
/// Unlike [`bootstrap_follower`] this never touches the store — a
/// primary that answers with a snapshot transfer (the follower fell
/// behind the primary's retained WAL while disconnected) is surfaced
/// as [`NetError::Unexpected`]; restarting the daemon re-bootstraps.
pub fn open_feed(
    primary: &str,
    have_epoch: u64,
    connect: &ConnectConfig,
) -> Result<TcpStream, NetError> {
    let mut stream = dial(primary, connect)?;
    let hello = ReplHello {
        protocol: REPL_PROTOCOL_VERSION,
        shard: 0,
        have_epoch: Some(have_epoch),
    };
    let mut body = BytesMut::new();
    hello.encode(&mut body);
    write_frame(&mut stream, kind::REPL_HELLO, body.as_ref())?;
    let (frame_kind, body) = read_frame(&mut stream, connect.max_frame)?;
    match frame_kind {
        kind::S_REPL_RECORD => {
            let record = decode_record(body)?;
            if !record.payload.is_empty() {
                return Err(NetError::Unexpected { kind: frame_kind });
            }
            send_ack(&mut stream, have_epoch.max(record.epoch))?;
            Ok(stream)
        }
        other => Err(reject(other, body)),
    }
}

/// The follower's record loop: reads shipped records off `stream`,
/// applies each through the writer funnel at its epoch stamp, and
/// acknowledges with the epoch now durable locally. Duplicates (epoch
/// at or below the engine's) acknowledge without applying. Returns
/// [`IngestEnd::Disconnected`] when the feed closes — the caller
/// decides between reconnecting and promotion.
pub fn ingest<S: Read + Write>(
    stream: &mut S,
    writer: &WriterHandle,
    max_frame: usize,
    stop: impl Fn() -> bool,
) -> Result<IngestEnd, NetError> {
    loop {
        let (frame_kind, body) = match read_frame_interruptible(stream, max_frame, &stop)? {
            Polled::Frame { kind, body } => (kind, body),
            Polled::Closed => return Ok(IngestEnd::Disconnected),
            Polled::Stopped => return Ok(IngestEnd::Stopped),
        };
        match frame_kind {
            kind::S_REPL_RECORD => {
                let record = decode_record(body)?;
                let ack = if record.payload.is_empty() {
                    // Position marker: nothing to apply.
                    record.epoch
                } else {
                    let updates = decode_update_batch(record.payload.as_ref())?;
                    match writer.apply_replicated(updates, record.epoch) {
                        Ok(ack) => ack.epoch,
                        Err(WriterError::Stopped) => return Ok(IngestEnd::Stopped),
                        Err(WriterError::Engine(e)) => return Err(NetError::Engine(e)),
                    }
                };
                send_ack(stream, ack)?;
            }
            other => return Err(reject(other, body)),
        }
    }
}

/// Whether `dir` holds an openable store (any snapshot file).
fn has_store(dir: &Path) -> bool {
    dir.exists() && snapshot_files(dir).map(|files| !files.is_empty()).unwrap_or(false)
}

/// Accumulates a snapshot transfer whose first chunk already arrived,
/// acknowledging each chunk with the byte offset received so far.
fn collect_snapshot(
    stream: &mut TcpStream,
    max_frame: usize,
    first_body: Bytes,
) -> Result<(u64, Vec<u8>), NetError> {
    let mut chunk = decode_chunk(first_body)?;
    let epoch = chunk.epoch;
    let total = usize::try_from(chunk.total_len)
        .map_err(|_| corrupt("snapshot transfer larger than memory"))?;
    let mut image: Vec<u8> = Vec::with_capacity(total.min(64 << 20));
    loop {
        if chunk.epoch != epoch {
            return Err(corrupt(format!(
                "snapshot transfer switched epochs ({epoch} then {})",
                chunk.epoch
            )));
        }
        if chunk.offset != image.len() as u64 || chunk.total_len != total as u64 {
            return Err(corrupt(format!(
                "snapshot chunk at offset {} arrived with {} bytes received",
                chunk.offset,
                image.len()
            )));
        }
        image.extend_from_slice(chunk.data.as_ref());
        send_ack(stream, image.len() as u64)?;
        if image.len() >= total {
            return Ok((epoch, image));
        }
        let (frame_kind, body) = read_frame(stream, max_frame)?;
        if frame_kind != kind::S_REPL_SNAPSHOT {
            return Err(reject(frame_kind, body));
        }
        chunk = decode_chunk(body)?;
    }
}

fn decode_record(body: Bytes) -> Result<ReplRecord, NetError> {
    let mut r = CodecReader::new(body);
    Ok(ReplRecord::decode(&mut r).and_then(|rec| r.finish().map(|()| rec))?)
}

fn decode_chunk(body: Bytes) -> Result<SnapshotChunk, NetError> {
    let mut r = CodecReader::new(body);
    Ok(SnapshotChunk::decode(&mut r).and_then(|c| r.finish().map(|()| c))?)
}

fn send_ack(stream: &mut impl Write, epoch: u64) -> Result<(), NetError> {
    let mut body = BytesMut::new();
    ReplAck { epoch }.encode(&mut body);
    write_frame(stream, kind::REPL_ACK, body.as_ref())
}

fn corrupt(why: impl Into<String>) -> NetError {
    NetError::Codec(StoreError::Corrupt(why.into()))
}

/// An unexpected frame on a feed: surface a typed error frame as
/// [`NetError::Remote`], anything else as [`NetError::Unexpected`].
fn reject(frame_kind: u8, body: Bytes) -> NetError {
    match Response::from_frame(frame_kind, body) {
        Ok(Response::Error(e)) => NetError::Remote(e),
        _ => NetError::Unexpected { kind: frame_kind },
    }
}
