//! The threaded TCP server behind `tqd`.
//!
//! Threading model (one box per thread):
//!
//! ```text
//!             ┌────────────┐   TcpStream per conn   ┌──────────────┐
//!  clients ──▶│ accept loop│──────spawn────────────▶│ conn thread  │──┐
//!             └────────────┘                        │ (Reader:     │  │ apply /
//!                   │ polls stop flag               │  lock-free   │  │ checkpoint
//!                   ▼                               │  queries)    │  ▼
//!             joins conn threads                    └──────────────┘ WriterHandle
//!                                                        × N            │ mpsc
//!                                                                       ▼
//!                                                               ┌──────────────┐
//!                                                               │ writer thread│
//!                                                               │ (the Engine, │
//!                                                               │  WAL + pub)  │
//!                                                               └──────────────┘
//! ```
//!
//! Every connection thread holds its own read plane ([`ReadPlane`])
//! and answers queries from the latest published snapshot with zero
//! locks and zero engine mutation. Update batches — from any connection
//! — funnel through one [`WriterHub`] channel to the thread that owns
//! the control plane, preserving the single-writer invariant end to
//! end: the network layer adds fan-in, never a second writer. The
//! server is generic over [`ControlPlane`], so a plain
//! [`Engine`] and a sharded
//! [`ShardedEngine`](tq_core::sharding::ShardedEngine) serve the
//! identical wire protocol — `tqd` picks by auto-detecting the store
//! directory's layout.
//!
//! Graceful shutdown (a protocol `Shutdown` frame or
//! [`ServerHandle::shutdown`]) flips one stop flag; the accept loop stops
//! accepting, each connection thread notices at its next poll and closes,
//! and the writer takes a final checkpoint before handing the engine
//! back. [`ServerHandle::abort`] skips the final checkpoint — the crash
//! path the WAL exists for.

use crate::frame::{read_frame_interruptible, write_frame, Polled};
use crate::proto::{Ack, ErrorCode, ErrorFrame, Request, Response, ServerInfo, StatusReport};
use crate::{NetError, DEFAULT_MAX_FRAME, PROTOCOL_VERSION};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use tq_core::engine::{Engine, EngineError};
use tq_core::writer::{ControlPlane, ReadPlane, WriterError, WriterHandle, WriterHub};

/// Tuning for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Frame body cap for received frames (default 32 MiB).
    pub max_frame: usize,
    /// Socket read timeout; bounds how long a quiet connection takes to
    /// notice the stop flag (default 50 ms).
    pub poll: Duration,
    /// Take a final checkpoint on graceful shutdown (default true; only
    /// applies to durable engines).
    pub final_checkpoint: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_frame: DEFAULT_MAX_FRAME,
            poll: Duration::from_millis(50),
            final_checkpoint: true,
        }
    }
}

/// Counters every connection thread updates and `Status` reports.
struct Shared {
    stop: AtomicBool,
    connections: AtomicU64,
    queries_served: AtomicU64,
    batches_applied: AtomicU64,
    wal_batches: AtomicU64,
    panics: AtomicU64,
    durable: bool,
}

/// The TCP server. Construct through [`Server::start`].
pub struct Server;

impl Server {
    /// Binds `addr` (use port `0` for an ephemeral port — read the real
    /// one back from [`ServerHandle::addr`]), moves `engine` to its
    /// writer thread, and starts accepting connections.
    ///
    /// Generic over the [`ControlPlane`]: a plain [`Engine`] or a
    /// [`ShardedEngine`](tq_core::sharding::ShardedEngine) front end —
    /// connections serve off whichever read plane the engine pairs with,
    /// and the wire protocol is identical either way.
    pub fn start<C: ControlPlane>(
        engine: C,
        addr: &str,
        config: ServerConfig,
    ) -> Result<ServerHandle<C>, NetError> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            queries_served: AtomicU64::new(0),
            batches_applied: AtomicU64::new(0),
            wal_batches: AtomicU64::new(
                engine.persist_status().map_or(0, |s| s.wal_batches as u64),
            ),
            panics: AtomicU64::new(0),
            durable: engine.persist_status().is_some(),
        });
        let reader = engine.reader();
        let hub = WriterHub::spawn(engine);
        let writer = hub.handle();

        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            let config = config.clone();
            std::thread::spawn(move || {
                while !shared.stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let shared = Arc::clone(&shared);
                            let reader = reader.clone();
                            let writer = writer.clone();
                            let config = config.clone();
                            let conn = std::thread::spawn(move || {
                                serve_connection(stream, &shared, &reader, &writer, &config);
                            });
                            let mut held = conns.lock().unwrap_or_else(|e| e.into_inner());
                            held.retain(|h| !h.is_finished());
                            held.push(conn);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })
        };

        Ok(ServerHandle {
            addr: local,
            shared,
            accept,
            conns,
            hub,
            config,
        })
    }
}

/// The running server: its address, lifecycle, and the way to get the
/// engine back. Generic over the [`ControlPlane`] it owns (defaulting
/// to a plain [`Engine`]).
pub struct ServerHandle<C: ControlPlane = Engine> {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    hub: WriterHub<C>,
    config: ServerConfig,
}

impl<C: ControlPlane> ServerHandle<C> {
    /// The bound address (with the real port when `addr` asked for `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connection-thread panics caught so far (always `0` unless a bug
    /// slipped through — the torture tests assert on this).
    pub fn panics(&self) -> u64 {
        self.shared.panics.load(Ordering::SeqCst)
    }

    /// Blocks until a protocol `Shutdown` frame flips the stop flag, then
    /// finishes the graceful path and returns the engine.
    pub fn wait(self) -> Result<C, EngineError> {
        // The accept thread exits when the flag flips.
        let _ = self.accept.join();
        drain(&self.conns);
        self.hub.stop(self.config.final_checkpoint)
    }

    /// Graceful shutdown: stop accepting, drain connections, final
    /// checkpoint (per [`ServerConfig::final_checkpoint`]), return the
    /// engine.
    pub fn shutdown(self) -> Result<C, EngineError> {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.wait()
    }

    /// Hard stop *without* the final checkpoint: what a crash leaves
    /// behind, minus the process exit. The returned engine's store has
    /// whatever the WAL held — reopening the directory must replay every
    /// acknowledged batch.
    pub fn abort(self) -> Result<C, EngineError> {
        self.shared.stop.store(true, Ordering::SeqCst);
        let _ = self.accept.join();
        drain(&self.conns);
        self.hub.stop(false)
    }
}

fn drain(conns: &Mutex<Vec<JoinHandle<()>>>) {
    let held = std::mem::take(&mut *conns.lock().unwrap_or_else(|e| e.into_inner()));
    for conn in held {
        let _ = conn.join();
    }
}

/// One connection, start to finish. Never propagates a panic: request
/// handling runs under `catch_unwind` and a caught panic closes the
/// connection with a typed error after bumping the panic counter.
fn serve_connection<R: ReadPlane>(
    mut stream: TcpStream,
    shared: &Shared,
    reader: &R,
    writer: &WriterHandle,
    config: &ServerConfig,
) {
    shared.connections.fetch_add(1, Ordering::SeqCst);
    let _ = stream.set_read_timeout(Some(config.poll));
    let _ = stream.set_nodelay(true);

    let mut greeted = false;
    loop {
        let polled = read_frame_interruptible(&mut stream, config.max_frame, || {
            shared.stop.load(Ordering::SeqCst)
        });
        let (kind, body) = match polled {
            Ok(Polled::Frame { kind, body }) => (kind, body),
            Ok(Polled::Closed) => break,
            Ok(Polled::Stopped) => {
                send(
                    &mut stream,
                    &Response::Error(ErrorFrame {
                        code: ErrorCode::ShuttingDown,
                        message: "the daemon is shutting down".into(),
                    }),
                );
                break;
            }
            Err(e) => {
                // Bad magic, CRC mismatch, truncation, oversized length
                // prefix: reply with a typed protocol error (best effort —
                // the peer may already be gone) and close.
                send(&mut stream, &protocol_error(&e));
                break;
            }
        };

        let outcome = catch_unwind(AssertUnwindSafe(|| {
            handle_frame(kind, body, shared, reader, writer, &mut greeted)
        }));
        match outcome {
            Ok(Step::Reply(resp)) => {
                if !send(&mut stream, &resp) {
                    break;
                }
            }
            Ok(Step::ReplyClose(resp)) => {
                send(&mut stream, &resp);
                break;
            }
            Ok(Step::ShutDown(resp)) => {
                send(&mut stream, &resp);
                shared.stop.store(true, Ordering::SeqCst);
                break;
            }
            Err(_) => {
                shared.panics.fetch_add(1, Ordering::SeqCst);
                send(
                    &mut stream,
                    &Response::Error(ErrorFrame {
                        code: ErrorCode::Unsupported,
                        message: "internal error while serving the request".into(),
                    }),
                );
                break;
            }
        }
    }
    shared.connections.fetch_sub(1, Ordering::SeqCst);
}

enum Step {
    Reply(Response),
    ReplyClose(Response),
    ShutDown(Response),
}

fn handle_frame<R: ReadPlane>(
    kind: u8,
    body: bytes::Bytes,
    shared: &Shared,
    reader: &R,
    writer: &WriterHandle,
    greeted: &mut bool,
) -> Step {
    let request = match Request::from_frame(kind, body) {
        Ok(req) => req,
        Err(e) => return Step::ReplyClose(protocol_error(&e)),
    };

    // The handshake gate: nothing is served before a version-matched
    // Hello.
    if !*greeted {
        return match request {
            Request::Hello { version } if version == PROTOCOL_VERSION => {
                *greeted = true;
                Step::Reply(Response::Hello(server_info(reader, shared)))
            }
            Request::Hello { version } => Step::ReplyClose(Response::Error(ErrorFrame {
                code: ErrorCode::VersionMismatch,
                message: format!(
                    "server speaks protocol v{PROTOCOL_VERSION}, client sent v{version}"
                ),
            })),
            _ => Step::ReplyClose(Response::Error(ErrorFrame {
                code: ErrorCode::Protocol,
                message: "the first frame on a connection must be a hello".into(),
            })),
        };
    }

    match request {
        Request::Hello { .. } => Step::Reply(Response::Hello(server_info(reader, shared))),
        Request::Query(q) | Request::Explain(q) => {
            shared.queries_served.fetch_add(1, Ordering::SeqCst);
            match reader.query(q) {
                Ok(answer) => Step::Reply(Response::Answer(Box::new(answer))),
                Err(e) => engine_error(&e),
            }
        }
        Request::Apply(batch) => match writer.apply(batch) {
            Ok(ack) => {
                shared.batches_applied.fetch_add(1, Ordering::SeqCst);
                shared.wal_batches.store(ack.wal_batches, Ordering::SeqCst);
                Step::Reply(Response::Ack(Ack {
                    epoch: ack.epoch,
                    outcome: Some(ack.outcome),
                    wal_batches: ack.wal_batches,
                }))
            }
            Err(WriterError::Engine(e)) => engine_error(&e),
            Err(WriterError::Stopped) => Step::ReplyClose(Response::Error(ErrorFrame {
                code: ErrorCode::ShuttingDown,
                message: "the writer has stopped".into(),
            })),
        },
        Request::Checkpoint => match writer.checkpoint() {
            Ok(ack) => {
                shared.wal_batches.store(0, Ordering::SeqCst);
                Step::Reply(Response::Ack(Ack {
                    epoch: ack.epoch,
                    outcome: None,
                    wal_batches: 0,
                }))
            }
            Err(WriterError::Engine(e)) => engine_error(&e),
            Err(WriterError::Stopped) => Step::ReplyClose(Response::Error(ErrorFrame {
                code: ErrorCode::ShuttingDown,
                message: "the writer has stopped".into(),
            })),
        },
        Request::Status => Step::Reply(Response::Status(StatusReport {
            info: server_info(reader, shared),
            connections: shared.connections.load(Ordering::SeqCst),
            queries_served: shared.queries_served.load(Ordering::SeqCst),
            batches_applied: shared.batches_applied.load(Ordering::SeqCst),
            wal_batches: shared.wal_batches.load(Ordering::SeqCst),
        })),
        Request::Shutdown => Step::ShutDown(Response::Ack(Ack {
            epoch: reader.latest_epoch(),
            outcome: None,
            wal_batches: shared.wal_batches.load(Ordering::SeqCst),
        })),
    }
}

fn server_info<R: ReadPlane>(reader: &R, shared: &Shared) -> ServerInfo {
    let info = reader.info();
    ServerInfo {
        version: PROTOCOL_VERSION,
        epoch: info.epoch,
        backend: info.backend,
        users: info.users as u64,
        live_users: info.live_users as u64,
        facilities: info.facilities as u64,
        durable: shared.durable,
    }
}

/// An engine refusal is request-scoped: the snapshot and WAL are
/// untouched, so the connection stays usable.
fn engine_error(e: &EngineError) -> Step {
    Step::Reply(Response::Error(ErrorFrame {
        code: ErrorCode::Engine,
        message: e.to_string(),
    }))
}

fn protocol_error(e: &NetError) -> Response {
    Response::Error(ErrorFrame {
        code: ErrorCode::Protocol,
        message: e.to_string(),
    })
}

/// Best-effort response write; false means the peer is gone.
fn send(stream: &mut TcpStream, resp: &Response) -> bool {
    let (kind, body) = resp.to_frame();
    write_frame(stream, kind, body.as_ref()).is_ok()
}
