//! The threaded TCP server behind `tqd`.
//!
//! Threading model (one box per thread):
//!
//! ```text
//!             ┌────────────┐   TcpStream per conn   ┌──────────────┐
//!  clients ──▶│ accept loop│──────spawn────────────▶│ conn thread  │──┐
//!             └────────────┘                        │ (Reader:     │  │ apply /
//!                   │ polls stop flag               │  lock-free   │  │ checkpoint
//!                   ▼                               │  queries)    │  ▼
//!             joins conn threads                    └──────────────┘ WriterHandle
//!                                                        × N            │ mpsc
//!                                                                       ▼
//!                                                               ┌──────────────┐
//!                                                               │ writer thread│
//!                                                               │ (the Engine, │
//!                                                               │  WAL + pub)  │
//!                                                               └──────────────┘
//! ```
//!
//! Every connection thread holds its own read plane ([`ReadPlane`])
//! and answers queries from the latest published snapshot with zero
//! locks and zero engine mutation. Update batches — from any connection
//! — funnel through one [`WriterHub`] channel to the thread that owns
//! the control plane, preserving the single-writer invariant end to
//! end: the network layer adds fan-in, never a second writer. The
//! server is generic over [`ControlPlane`], so a plain
//! [`Engine`] and a sharded
//! [`ShardedEngine`](tq_core::sharding::ShardedEngine) serve the
//! identical wire protocol — `tqd` picks by auto-detecting the store
//! directory's layout.
//!
//! Graceful shutdown (a protocol `Shutdown` frame or
//! [`ServerHandle::shutdown`]) flips one stop flag; the accept loop stops
//! accepting, each connection thread notices at its next poll and closes,
//! and the writer takes a final checkpoint before handing the engine
//! back. [`ServerHandle::abort`] skips the final checkpoint — the crash
//! path the WAL exists for.

use crate::frame::{read_frame_interruptible, write_frame, Polled, HEADER_LEN, TRAILER_LEN};
use crate::proto::{
    kind, Ack, ErrorCode, ErrorFrame, Request, Response, ServerInfo, ServerRole, StatusReport,
};
use crate::{NetError, DEFAULT_MAX_FRAME, PROTOCOL_VERSION};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;
use tq_core::engine::{Engine, EngineError};
use tq_core::writer::{ControlPlane, ReadPlane, WriterError, WriterHandle, WriterHub, WriterOptions};
use tq_repl::proto::{ReplAck, ReplHello, ReplRecord, SnapshotChunk, REPL_PROTOCOL_VERSION};
use tq_repl::{plan_catch_up, CatchUpPlan, ReplicationHub};
use tq_store::codec::Reader as CodecReader;
use tq_store::store::WAL_FILE;
use tq_store::WalTailReader;

/// Bytes of snapshot image per [`SnapshotChunk`] frame during a
/// follower bootstrap transfer (1 MiB — well under any sane frame cap).
const SNAPSHOT_CHUNK_LEN: usize = 1 << 20;

/// Tuning for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Frame body cap for received frames (default 32 MiB).
    pub max_frame: usize,
    /// Socket read timeout; bounds how long a quiet connection takes to
    /// notice the stop flag (default 50 ms).
    pub poll: Duration,
    /// Take a final checkpoint on graceful shutdown (default true; only
    /// applies to durable engines).
    pub final_checkpoint: bool,
    /// Serve replication feeds from this store directory (the engine's
    /// own directory). `None` (the default) refuses `repl-hello` frames;
    /// set it on any durable node that should accept followers.
    pub repl_dir: Option<PathBuf>,
    /// Start as a read-only follower of the primary at this address:
    /// client writes are refused with a typed `read-only` error naming
    /// it, until a `Promote` frame (or [`FollowerParts::promote`]) flips
    /// the node to primary.
    pub follow: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_frame: DEFAULT_MAX_FRAME,
            poll: Duration::from_millis(50),
            final_checkpoint: true,
            repl_dir: None,
            follow: None,
        }
    }
}

/// Counters every connection thread updates and `Status` reports. The
/// statistic fields use `Relaxed` ordering throughout: they are
/// monotonic tallies read for reporting, not synchronization points.
/// Only `stop` and `follower` carry control-flow decisions and stay
/// `SeqCst`.
struct Shared {
    stop: AtomicBool,
    connections: AtomicU64,
    connections_total: AtomicU64,
    queries_served: AtomicU64,
    batches_applied: AtomicU64,
    wal_batches: AtomicU64,
    panics: AtomicU64,
    durable: bool,
    /// `true` while this node is a read-only follower.
    follower: AtomicBool,
    /// The primary's address, for redirecting writers (empty once
    /// promoted, or when this node started as a primary).
    primary: Mutex<String>,
}

impl Shared {
    fn role(&self) -> ServerRole {
        if self.follower.load(Ordering::SeqCst) {
            ServerRole::Follower
        } else {
            ServerRole::Primary
        }
    }

    fn primary_addr(&self) -> String {
        self.primary.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    fn become_primary(&self) {
        self.follower.store(false, Ordering::SeqCst);
        self.primary.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

/// The primary-side replication state a serving node carries: the
/// fan-out hub and the store directory feeds catch followers up from.
struct ReplState {
    hub: Arc<ReplicationHub>,
    dir: PathBuf,
}

/// The TCP server. Construct through [`Server::start`].
pub struct Server;

impl Server {
    /// Binds `addr` (use port `0` for an ephemeral port — read the real
    /// one back from [`ServerHandle::addr`]), moves `engine` to its
    /// writer thread, and starts accepting connections.
    ///
    /// Generic over the [`ControlPlane`]: a plain [`Engine`] or a
    /// [`ShardedEngine`](tq_core::sharding::ShardedEngine) front end —
    /// connections serve off whichever read plane the engine pairs with,
    /// and the wire protocol is identical either way.
    pub fn start<C: ControlPlane>(
        engine: C,
        addr: &str,
        config: ServerConfig,
    ) -> Result<ServerHandle<C>, NetError> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            connections_total: AtomicU64::new(0),
            queries_served: AtomicU64::new(0),
            batches_applied: AtomicU64::new(0),
            wal_batches: AtomicU64::new(
                engine.persist_status().map_or(0, |s| s.wal_batches as u64),
            ),
            panics: AtomicU64::new(0),
            durable: engine.persist_status().is_some(),
            follower: AtomicBool::new(config.follow.is_some()),
            primary: Mutex::new(config.follow.clone().unwrap_or_default()),
        });
        let repl = config.repl_dir.as_ref().map(|dir| {
            Arc::new(ReplState {
                hub: ReplicationHub::new(Some(dir.clone())),
                dir: dir.clone(),
            })
        });
        let reader = engine.reader();
        let hub = WriterHub::spawn_with(
            engine,
            WriterOptions {
                tap: repl.as_ref().map(|r| r.hub.tap()),
                read_only: config.follow.clone(),
                tick: None,
            },
        );
        let writer = hub.handle();

        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            let config = config.clone();
            let writer = writer.clone();
            let repl = repl.clone();
            std::thread::spawn(move || {
                while !shared.stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let shared = Arc::clone(&shared);
                            let reader = reader.clone();
                            let writer = writer.clone();
                            let config = config.clone();
                            let repl = repl.clone();
                            let conn = std::thread::spawn(move || {
                                serve_connection(
                                    stream,
                                    &shared,
                                    &reader,
                                    &writer,
                                    repl.as_deref(),
                                    &config,
                                );
                            });
                            let mut held = conns.lock().unwrap_or_else(|e| e.into_inner());
                            held.retain(|h| !h.is_finished());
                            held.push(conn);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })
        };

        Ok(ServerHandle {
            addr: local,
            shared,
            accept,
            conns,
            hub,
            writer,
            repl,
            config,
        })
    }
}

/// The running server: its address, lifecycle, and the way to get the
/// engine back. Generic over the [`ControlPlane`] it owns (defaulting
/// to a plain [`Engine`]).
pub struct ServerHandle<C: ControlPlane = Engine> {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    hub: WriterHub<C>,
    writer: WriterHandle,
    repl: Option<Arc<ReplState>>,
    config: ServerConfig,
}

impl<C: ControlPlane> ServerHandle<C> {
    /// The bound address (with the real port when `addr` asked for `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connection-thread panics caught so far (always `0` unless a bug
    /// slipped through — the torture tests assert on this).
    pub fn panics(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// A handle into the single-writer funnel — what a follower's ingest
    /// thread applies shipped records through while the server serves
    /// reads ([`FollowerParts`] bundles it with the role state).
    pub fn writer(&self) -> WriterHandle {
        self.writer.clone()
    }

    /// The replication hub's status, when this node serves feeds
    /// ([`ServerConfig::repl_dir`]).
    pub fn repl_status(&self) -> Option<tq_repl::HubStatus> {
        self.repl.as_ref().map(|r| r.hub.status())
    }

    /// The pieces a follower's ingest loop needs while the handle itself
    /// is parked in [`ServerHandle::wait`].
    pub fn follower_parts(&self) -> FollowerParts {
        FollowerParts {
            writer: self.writer.clone(),
            shared: Arc::clone(&self.shared),
        }
    }

    /// Blocks until a protocol `Shutdown` frame flips the stop flag, then
    /// finishes the graceful path and returns the engine.
    pub fn wait(self) -> Result<C, EngineError> {
        // The accept thread exits when the flag flips.
        let _ = self.accept.join();
        drain(&self.conns);
        self.hub.stop(self.config.final_checkpoint)
    }

    /// Graceful shutdown: stop accepting, drain connections, final
    /// checkpoint (per [`ServerConfig::final_checkpoint`]), return the
    /// engine.
    pub fn shutdown(self) -> Result<C, EngineError> {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.wait()
    }

    /// Hard stop *without* the final checkpoint: what a crash leaves
    /// behind, minus the process exit. The returned engine's store has
    /// whatever the WAL held — reopening the directory must replay every
    /// acknowledged batch.
    pub fn abort(self) -> Result<C, EngineError> {
        self.shared.stop.store(true, Ordering::SeqCst);
        let _ = self.accept.join();
        drain(&self.conns);
        self.hub.stop(false)
    }
}

fn drain(conns: &Mutex<Vec<JoinHandle<()>>>) {
    let held = std::mem::take(&mut *conns.lock().unwrap_or_else(|e| e.into_inner()));
    for conn in held {
        let _ = conn.join();
    }
}

/// What a follower daemon's ingest thread holds while the
/// [`ServerHandle`] is parked in [`ServerHandle::wait`]: the writer
/// funnel to apply shipped records through, and the shared role state.
#[derive(Clone)]
pub struct FollowerParts {
    writer: WriterHandle,
    shared: Arc<Shared>,
}

impl FollowerParts {
    /// The writer funnel — [`WriterHandle::apply_replicated`] is the
    /// ingest path.
    pub fn writer(&self) -> &WriterHandle {
        &self.writer
    }

    /// Whether the server is stopping — the ingest loop's exit signal.
    pub fn stopping(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Whether this node is still a follower (false after promotion).
    pub fn is_follower(&self) -> bool {
        self.shared.follower.load(Ordering::SeqCst)
    }

    /// Promotes this node to primary: the writer accepts client batches
    /// from the next message on, and status/hello frames report the
    /// primary role. Returns the epoch at promotion.
    pub fn promote(&self) -> Result<u64, WriterError> {
        let epoch = self.writer.promote()?;
        self.shared.become_primary();
        Ok(epoch)
    }
}

/// The network layer's metric handles, resolved once per process.
struct NetMetrics {
    conns_opened: &'static tq_obs::Counter,
    conns_active: &'static tq_obs::Gauge,
    bytes_in: &'static tq_obs::Counter,
    bytes_out: &'static tq_obs::Counter,
    panics: &'static tq_obs::Counter,
}

fn net_metrics() -> &'static NetMetrics {
    static METRICS: OnceLock<NetMetrics> = OnceLock::new();
    METRICS.get_or_init(|| NetMetrics {
        conns_opened: tq_obs::counter("tq_net_connections_total", ""),
        conns_active: tq_obs::gauge("tq_net_connections_active", ""),
        bytes_in: tq_obs::counter("tq_net_bytes_in_total", ""),
        bytes_out: tq_obs::counter("tq_net_bytes_out_total", ""),
        panics: tq_obs::counter("tq_net_panics_total", ""),
    })
}

/// The per-kind received-frame counter. Unknown kinds still count (as
/// `unknown`) — they produce a typed protocol error, not silence.
fn frame_kind_counter(kind: u8) -> &'static tq_obs::Counter {
    let label = match kind {
        kind::HELLO => "kind=\"hello\"",
        kind::QUERY => "kind=\"query\"",
        kind::EXPLAIN => "kind=\"explain\"",
        kind::APPLY => "kind=\"apply\"",
        kind::CHECKPOINT => "kind=\"checkpoint\"",
        kind::STATUS => "kind=\"status\"",
        kind::SHUTDOWN => "kind=\"shutdown\"",
        kind::REPL_HELLO => "kind=\"repl-hello\"",
        kind::PROMOTE => "kind=\"promote\"",
        kind::REPL_ACK => "kind=\"repl-ack\"",
        kind::METRICS => "kind=\"metrics\"",
        _ => "kind=\"unknown\"",
    };
    tq_obs::counter("tq_net_frames_total", label)
}

/// Counts one received frame's wire footprint (header + body + CRC).
fn note_frame_in(kind: u8, body_len: usize) {
    if tq_obs::enabled() {
        frame_kind_counter(kind).incr();
        net_metrics()
            .bytes_in
            .add((HEADER_LEN + body_len + TRAILER_LEN) as u64);
    }
}

/// Counts one sent frame's wire footprint (header + body + CRC).
fn note_frame_out(body_len: usize) {
    if tq_obs::enabled() {
        net_metrics()
            .bytes_out
            .add((HEADER_LEN + body_len + TRAILER_LEN) as u64);
    }
}

/// One connection, start to finish. Never propagates a panic: request
/// handling runs under `catch_unwind` and a caught panic closes the
/// connection with a typed error after bumping the panic counter.
fn serve_connection<R: ReadPlane>(
    mut stream: TcpStream,
    shared: &Shared,
    reader: &R,
    writer: &WriterHandle,
    repl: Option<&ReplState>,
    config: &ServerConfig,
) {
    shared.connections.fetch_add(1, Ordering::Relaxed);
    shared.connections_total.fetch_add(1, Ordering::Relaxed);
    net_metrics().conns_opened.incr();
    net_metrics().conns_active.inc();
    let _ = stream.set_read_timeout(Some(config.poll));
    let _ = stream.set_nodelay(true);

    let mut greeted = false;
    loop {
        let polled = read_frame_interruptible(&mut stream, config.max_frame, || {
            shared.stop.load(Ordering::SeqCst)
        });
        let (kind, body) = match polled {
            Ok(Polled::Frame { kind, body }) => {
                note_frame_in(kind, body.len());
                (kind, body)
            }
            Ok(Polled::Closed) => break,
            Ok(Polled::Stopped) => {
                send(
                    &mut stream,
                    &Response::Error(ErrorFrame {
                        code: ErrorCode::ShuttingDown,
                        message: "the daemon is shutting down".into(),
                    }),
                );
                break;
            }
            Err(e) => {
                // Bad magic, CRC mismatch, truncation, oversized length
                // prefix: reply with a typed protocol error (best effort —
                // the peer may already be gone) and close.
                send(&mut stream, &protocol_error(&e));
                break;
            }
        };

        if kind == kind::REPL_HELLO {
            // The connection becomes a replication feed: it leaves the
            // request/response loop for the lockstep ship/ack protocol
            // and closes when the follower (or the server) goes away.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                serve_feed(&mut stream, body, shared, repl, config);
            }));
            if outcome.is_err() {
                shared.panics.fetch_add(1, Ordering::Relaxed);
                net_metrics().panics.incr();
            }
            break;
        }

        let outcome = catch_unwind(AssertUnwindSafe(|| {
            handle_frame(kind, body, shared, reader, writer, repl, &mut greeted)
        }));
        match outcome {
            Ok(Step::Reply(resp)) => {
                if !send(&mut stream, &resp) {
                    break;
                }
            }
            Ok(Step::ReplyClose(resp)) => {
                send(&mut stream, &resp);
                break;
            }
            Ok(Step::ShutDown(resp)) => {
                send(&mut stream, &resp);
                shared.stop.store(true, Ordering::SeqCst);
                break;
            }
            Err(_) => {
                shared.panics.fetch_add(1, Ordering::Relaxed);
                net_metrics().panics.incr();
                send(
                    &mut stream,
                    &Response::Error(ErrorFrame {
                        code: ErrorCode::Unsupported,
                        message: "internal error while serving the request".into(),
                    }),
                );
                break;
            }
        }
    }
    shared.connections.fetch_sub(1, Ordering::Relaxed);
    // The active gauge decrement is saturating and never gated, so a
    // metrics toggle mid-connection cannot wrap it.
    net_metrics().conns_active.dec();
}

enum Step {
    Reply(Response),
    ReplyClose(Response),
    ShutDown(Response),
}

fn handle_frame<R: ReadPlane>(
    kind: u8,
    body: bytes::Bytes,
    shared: &Shared,
    reader: &R,
    writer: &WriterHandle,
    repl: Option<&ReplState>,
    greeted: &mut bool,
) -> Step {
    let request = match Request::from_frame(kind, body) {
        Ok(req) => req,
        Err(e) => return Step::ReplyClose(protocol_error(&e)),
    };

    // The handshake gate: nothing is served before a version-matched
    // Hello.
    if !*greeted {
        return match request {
            Request::Hello { version } if version == PROTOCOL_VERSION => {
                *greeted = true;
                Step::Reply(Response::Hello(server_info(reader, shared)))
            }
            Request::Hello { version } => Step::ReplyClose(Response::Error(ErrorFrame {
                code: ErrorCode::VersionMismatch,
                message: format!(
                    "server speaks protocol v{PROTOCOL_VERSION}, client sent v{version}"
                ),
            })),
            _ => Step::ReplyClose(Response::Error(ErrorFrame {
                code: ErrorCode::Protocol,
                message: "the first frame on a connection must be a hello".into(),
            })),
        };
    }

    match request {
        Request::Hello { .. } => Step::Reply(Response::Hello(server_info(reader, shared))),
        Request::Query(q) | Request::Explain(q) => {
            shared.queries_served.fetch_add(1, Ordering::Relaxed);
            match reader.query(q) {
                Ok(answer) => Step::Reply(Response::Answer(Box::new(answer))),
                Err(e) => engine_error(&e),
            }
        }
        Request::Apply(batch) => match writer.apply(batch) {
            Ok(ack) => {
                shared.batches_applied.fetch_add(1, Ordering::Relaxed);
                shared.wal_batches.store(ack.wal_batches, Ordering::Relaxed);
                Step::Reply(Response::Ack(Ack {
                    epoch: ack.epoch,
                    outcome: Some(ack.outcome),
                    wal_batches: ack.wal_batches,
                }))
            }
            Err(WriterError::Engine(e)) => engine_error(&e),
            Err(WriterError::Stopped) => Step::ReplyClose(Response::Error(ErrorFrame {
                code: ErrorCode::ShuttingDown,
                message: "the writer has stopped".into(),
            })),
        },
        Request::Checkpoint => match writer.checkpoint() {
            Ok(ack) => {
                shared.wal_batches.store(0, Ordering::Relaxed);
                Step::Reply(Response::Ack(Ack {
                    epoch: ack.epoch,
                    outcome: None,
                    wal_batches: 0,
                }))
            }
            Err(WriterError::Engine(e)) => engine_error(&e),
            Err(WriterError::Stopped) => Step::ReplyClose(Response::Error(ErrorFrame {
                code: ErrorCode::ShuttingDown,
                message: "the writer has stopped".into(),
            })),
        },
        Request::Status => {
            let repl_status = repl.map(|r| r.hub.status());
            Step::Reply(Response::Status(StatusReport {
                info: server_info(reader, shared),
                connections: shared.connections.load(Ordering::Relaxed),
                queries_served: shared.queries_served.load(Ordering::Relaxed),
                batches_applied: shared.batches_applied.load(Ordering::Relaxed),
                wal_batches: shared.wal_batches.load(Ordering::Relaxed),
                followers: repl_status.as_ref().map_or(0, |s| s.followers.len() as u64),
                last_shipped: repl_status.as_ref().map_or(0, |s| s.last_shipped),
                min_acked: repl_status.as_ref().and_then(|s| s.min_acked).unwrap_or(0),
                connections_total: shared.connections_total.load(Ordering::Relaxed),
                panics: shared.panics.load(Ordering::Relaxed),
            }))
        }
        Request::Metrics => Step::Reply(Response::Metrics(tq_obs::snapshot().render())),
        Request::Promote => match writer.promote() {
            Ok(epoch) => {
                shared.become_primary();
                Step::Reply(Response::Ack(Ack {
                    epoch,
                    outcome: None,
                    wal_batches: shared.wal_batches.load(Ordering::Relaxed),
                }))
            }
            Err(WriterError::Engine(e)) => engine_error(&e),
            Err(WriterError::Stopped) => Step::ReplyClose(Response::Error(ErrorFrame {
                code: ErrorCode::ShuttingDown,
                message: "the writer has stopped".into(),
            })),
        },
        Request::Shutdown => Step::ShutDown(Response::Ack(Ack {
            epoch: reader.latest_epoch(),
            outcome: None,
            wal_batches: shared.wal_batches.load(Ordering::Relaxed),
        })),
    }
}

fn server_info<R: ReadPlane>(reader: &R, shared: &Shared) -> ServerInfo {
    let info = reader.info();
    ServerInfo {
        version: PROTOCOL_VERSION,
        epoch: info.epoch,
        backend: info.backend,
        users: info.users as u64,
        live_users: info.live_users as u64,
        facilities: info.facilities as u64,
        durable: shared.durable,
        role: shared.role(),
        primary: shared.primary_addr(),
    }
}

/// An engine refusal is request-scoped: the snapshot and WAL are
/// untouched, so the connection stays usable. A follower's write
/// refusal gets its own code so clients can redirect to the primary.
fn engine_error(e: &EngineError) -> Step {
    let code = match e {
        EngineError::ReadOnly { .. } => ErrorCode::ReadOnly,
        _ => ErrorCode::Engine,
    };
    Step::Reply(Response::Error(ErrorFrame {
        code,
        message: e.to_string(),
    }))
}

fn protocol_error(e: &NetError) -> Response {
    Response::Error(ErrorFrame {
        code: ErrorCode::Protocol,
        message: e.to_string(),
    })
}

/// Best-effort response write; false means the peer is gone.
fn send(stream: &mut TcpStream, resp: &Response) -> bool {
    let (kind, body) = resp.to_frame();
    note_frame_out(body.len());
    write_frame(stream, kind, body.as_ref()).is_ok()
}

/// One replication feed, start to finish: validate the hello, register
/// with the hub *before* touching disk, catch the follower up (snapshot
/// and/or WAL records), then relay live records — every ship in
/// lockstep with the follower's `repl-ack`.
fn serve_feed(
    stream: &mut TcpStream,
    hello_body: bytes::Bytes,
    shared: &Shared,
    repl: Option<&ReplState>,
    config: &ServerConfig,
) {
    let mut r = CodecReader::new(hello_body);
    let hello = match ReplHello::decode(&mut r).and_then(|h| r.finish().map(|()| h)) {
        Ok(h) => h,
        Err(e) => {
            send(
                stream,
                &Response::Error(ErrorFrame {
                    code: ErrorCode::Protocol,
                    message: format!("bad repl-hello body: {e}"),
                }),
            );
            return;
        }
    };
    if hello.protocol != REPL_PROTOCOL_VERSION {
        send(
            stream,
            &Response::Error(ErrorFrame {
                code: ErrorCode::VersionMismatch,
                message: format!(
                    "server speaks replication protocol v{REPL_PROTOCOL_VERSION}, \
                     follower sent v{}",
                    hello.protocol
                ),
            }),
        );
        return;
    }
    if hello.shard != 0 {
        send(
            stream,
            &Response::Error(ErrorFrame {
                code: ErrorCode::Unsupported,
                message: format!(
                    "per-shard feeds are not served yet (requested shard {})",
                    hello.shard
                ),
            }),
        );
        return;
    }
    let Some(state) = repl else {
        send(
            stream,
            &Response::Error(ErrorFrame {
                code: ErrorCode::Unsupported,
                message: "this daemon does not serve replication feeds \
                          (no replicable store directory)"
                    .into(),
            }),
        );
        return;
    };
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "unknown".into());
    // Register before any disk read: from here on, every published
    // record is either already durable (the catch-up phase reads it)
    // or queued (the live phase relays it) — overlap is deduped by
    // epoch stamp on the follower.
    let (id, queue) = state.hub.register(peer);
    let _ = run_feed(stream, shared, state, config, hello.have_epoch, id, &queue);
    state.hub.deregister(id);
}

fn run_feed(
    stream: &mut TcpStream,
    shared: &Shared,
    state: &ReplState,
    config: &ServerConfig,
    have_epoch: Option<u64>,
    id: u64,
    queue: &Receiver<ReplRecord>,
) -> Result<(), NetError> {
    let mut last_sent = match plan_catch_up(&state.dir, have_epoch) {
        Ok(CatchUpPlan::WalOnly { from }) => {
            // Open the stream explicitly: an empty-payload position
            // marker tells the follower the feed is live from `from`,
            // so its bootstrap returns without waiting for a first real
            // record (which may never come on an idle primary).
            ship(
                stream,
                shared,
                config,
                ReplRecord {
                    epoch: from,
                    payload: bytes::Bytes::new(),
                },
            )?;
            from
        }
        Ok(CatchUpPlan::Snapshot { path, epoch }) => {
            send_snapshot(stream, shared, config, &path, epoch)?;
            epoch
        }
        Err(e) => {
            send(
                stream,
                &Response::Error(ErrorFrame {
                    code: ErrorCode::Engine,
                    message: format!("cannot plan follower catch-up: {e}"),
                }),
            );
            return Ok(());
        }
    };

    // WAL catch-up: ship every durable record above the follower's
    // position. The tail reader holds the WAL's inode open, so a
    // concurrent checkpoint rebasing the file cannot yank records out
    // from under this loop; anything appended after registration is in
    // the queue as well.
    if let Ok(mut wal) = WalTailReader::open(&state.dir.join(WAL_FILE)) {
        while let Some(record) = wal.poll().map_err(NetError::Codec)? {
            if record.epoch <= last_sent {
                continue;
            }
            last_sent = record.epoch;
            let acked = ship(
                stream,
                shared,
                config,
                ReplRecord {
                    epoch: record.epoch,
                    payload: record.payload,
                },
            )?;
            state.hub.note_shipped(last_sent);
            state.hub.note_ack(id, acked);
        }
    }

    // Live phase: relay the hub queue until the follower drops, the
    // server stops, or the queue overflows (the follower reconnects and
    // re-catches-up from disk in that case).
    loop {
        if shared.stop.load(Ordering::SeqCst) || state.hub.is_overflowed(id) {
            return Ok(());
        }
        match queue.recv_timeout(config.poll) {
            Ok(record) => {
                if record.epoch <= last_sent {
                    continue;
                }
                last_sent = record.epoch;
                let acked = ship(stream, shared, config, record)?;
                state.hub.note_ack(id, acked);
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return Ok(()),
        }
    }
}

/// Streams one snapshot file to a bootstrapping follower in
/// [`SNAPSHOT_CHUNK_LEN`] pieces, awaiting the lockstep ack after each.
/// An empty snapshot still sends one empty chunk so the follower learns
/// `total_len` and the epoch.
fn send_snapshot(
    stream: &mut TcpStream,
    shared: &Shared,
    config: &ServerConfig,
    path: &std::path::Path,
    epoch: u64,
) -> Result<(), NetError> {
    let data = std::fs::read(path)?;
    let total_len = data.len() as u64;
    let mut offset = 0usize;
    loop {
        let end = (offset + SNAPSHOT_CHUNK_LEN).min(data.len());
        let chunk = SnapshotChunk {
            epoch,
            offset: offset as u64,
            total_len,
            data: bytes::Bytes::from(data[offset..end].to_vec()),
        };
        let mut body = bytes::BytesMut::new();
        chunk.encode(&mut body);
        note_frame_out(body.len());
        write_frame(stream, kind::S_REPL_SNAPSHOT, body.as_ref())?;
        await_ack(stream, shared, config)?;
        offset = end;
        if offset >= data.len() {
            return Ok(());
        }
    }
}

/// Ships one record frame and blocks for its lockstep ack, returning the
/// epoch the follower reports as durably applied.
fn ship(
    stream: &mut TcpStream,
    shared: &Shared,
    config: &ServerConfig,
    record: ReplRecord,
) -> Result<u64, NetError> {
    let mut body = bytes::BytesMut::new();
    record.encode(&mut body);
    note_frame_out(body.len());
    write_frame(stream, kind::S_REPL_RECORD, body.as_ref())?;
    await_ack(stream, shared, config)
}

/// Blocks for the follower's `repl-ack`, honouring the stop flag.
fn await_ack(
    stream: &mut TcpStream,
    shared: &Shared,
    config: &ServerConfig,
) -> Result<u64, NetError> {
    let polled = read_frame_interruptible(stream, config.max_frame, || {
        shared.stop.load(Ordering::SeqCst)
    })?;
    match polled {
        Polled::Frame { kind: k, body } if k == kind::REPL_ACK => {
            note_frame_in(k, body.len());
            let mut r = CodecReader::new(body);
            let ack = ReplAck::decode(&mut r).and_then(|a| r.finish().map(|()| a))?;
            Ok(ack.epoch)
        }
        Polled::Frame { kind: k, .. } => Err(NetError::Unexpected { kind: k }),
        Polled::Closed | Polled::Stopped => Err(NetError::Closed),
    }
}
