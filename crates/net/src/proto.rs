//! The message vocabulary: what the frame kinds mean and how each body is
//! encoded.
//!
//! Bodies reuse the `tq-core` wire codec ([`tq_core::wire`]) wholesale —
//! a [`Query`], an [`Answer`] or a `Vec<Update>` crosses the network as
//! exactly the bytes the snapshot and WAL files already use, so there is
//! one byte layout to fuzz, not three. Every decode ends with
//! [`Reader::finish`]: trailing garbage after a well-formed body is a
//! protocol error, not padding.
//!
//! Frame kinds (requests have the high bit clear, responses set):
//!
//! | kind   | body                      | meaning                          |
//! |--------|---------------------------|----------------------------------|
//! | `0x01` | `u16` version             | handshake hello                  |
//! | `0x02` | [`Query`]                 | run a query                      |
//! | `0x03` | [`Query`]                 | run a query (explain emphasis)   |
//! | `0x04` | `Vec<Update>`             | apply one update batch           |
//! | `0x05` | empty                     | checkpoint now                   |
//! | `0x06` | empty                     | status report                    |
//! | `0x07` | empty                     | graceful daemon shutdown         |
//! | `0x08` | `ReplHello` (tq-repl)     | open a replication feed          |
//! | `0x09` | empty                     | promote a follower to primary    |
//! | `0x0A` | `ReplAck` (tq-repl)       | follower feed acknowledgement    |
//! | `0x0B` | empty                     | metrics snapshot                 |
//! | `0x81` | [`ServerInfo`]            | handshake accepted               |
//! | `0x82` | [`Answer`]                | query answer + explain           |
//! | `0x83` | [`Ack`]                   | batch / checkpoint / shutdown ack|
//! | `0x84` | [`StatusReport`]          | status report                    |
//! | `0x85` | [`ErrorFrame`]            | typed error                      |
//! | `0x86` | `ReplRecord` (tq-repl)    | one shipped WAL record           |
//! | `0x87` | `SnapshotChunk` (tq-repl) | one snapshot-transfer chunk      |
//! | `0x88` | `String`                  | rendered metrics snapshot        |
//!
//! The `repl-*` bodies (`0x08`, `0x0A`, `0x86`, `0x87`) are owned by
//! [`tq_repl::proto`] and never appear inside [`Request`]/[`Response`] —
//! a feed connection leaves the request/response rhythm after its hello
//! and is handled by the dedicated feed loop ([`crate::repl`]).

use crate::NetError;
use bytes::{BufMut, Bytes, BytesMut};
use tq_core::dynamic::{BatchOutcome, Update};
use tq_core::engine::{Answer, BackendKind, Query};
use tq_store::{Decode, Encode, Reader};
use tq_store::StoreError;

/// Frame kind bytes for requests.
pub mod kind {
    /// Handshake hello (client → server, first frame on a connection).
    pub const HELLO: u8 = 0x01;
    /// Run a query.
    pub const QUERY: u8 = 0x02;
    /// Run a query, asked for its explain record.
    pub const EXPLAIN: u8 = 0x03;
    /// Apply one update batch through the single writer.
    pub const APPLY: u8 = 0x04;
    /// Take an explicit checkpoint.
    pub const CHECKPOINT: u8 = 0x05;
    /// Report serving status.
    pub const STATUS: u8 = 0x06;
    /// Gracefully shut the daemon down.
    pub const SHUTDOWN: u8 = 0x07;
    /// Open a replication feed (body: `tq_repl::proto::ReplHello`).
    /// Takes the place of the handshake hello on a feed connection.
    pub const REPL_HELLO: u8 = 0x08;
    /// Promote a follower to primary (empty body).
    pub const PROMOTE: u8 = 0x09;
    /// Follower feed acknowledgement (body: `tq_repl::proto::ReplAck`).
    pub const REPL_ACK: u8 = 0x0A;
    /// Ask for a metrics snapshot (empty body).
    pub const METRICS: u8 = 0x0B;
    /// Handshake accepted (server → client).
    pub const S_HELLO: u8 = 0x81;
    /// A query answer.
    pub const S_ANSWER: u8 = 0x82;
    /// A batch, checkpoint or shutdown acknowledgement.
    pub const S_ACK: u8 = 0x83;
    /// A status report.
    pub const S_STATUS: u8 = 0x84;
    /// A typed error.
    pub const S_ERROR: u8 = 0x85;
    /// One shipped WAL record (body: `tq_repl::proto::ReplRecord`).
    pub const S_REPL_RECORD: u8 = 0x86;
    /// One snapshot-transfer chunk (body: `tq_repl::proto::SnapshotChunk`).
    pub const S_REPL_SNAPSHOT: u8 = 0x87;
    /// A rendered metrics snapshot (body: `String`).
    pub const S_METRICS: u8 = 0x88;
}

/// A client-to-server message.
#[derive(Debug, Clone)]
pub enum Request {
    /// The handshake: must be the first frame on every connection.
    Hello {
        /// The protocol revision the client speaks.
        version: u16,
    },
    /// Run a query against the latest published snapshot.
    Query(Query),
    /// Same as [`Request::Query`]; spelled separately so traffic captures
    /// show intent (the client's `explain` call).
    Explain(Query),
    /// Apply one update batch. The body bytes are identical to the WAL
    /// record payload for the same batch.
    Apply(Vec<Update>),
    /// Snapshot the engine to disk now.
    Checkpoint,
    /// Report serving status.
    Status,
    /// Drain connections, take a final checkpoint, exit.
    Shutdown,
    /// Promote a follower to primary: its writer funnel starts accepting
    /// direct applies. Idempotent on a node that is already primary.
    Promote,
    /// Report a rendered metrics snapshot (`tq metrics --connect`).
    Metrics,
}

/// A server-to-client message.
#[derive(Debug, Clone)]
pub enum Response {
    /// Handshake accepted.
    Hello(ServerInfo),
    /// The answer (with its explain record) to a query.
    Answer(Box<Answer>),
    /// Acknowledgement of an apply, checkpoint or shutdown.
    Ack(Ack),
    /// The status report.
    Status(StatusReport),
    /// The metrics snapshot, rendered as `name{label} value` text lines.
    Metrics(String),
    /// A typed error. The connection may stay open (engine errors) or
    /// close right after (protocol errors).
    Error(ErrorFrame),
}

/// Which side of replication a daemon is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerRole {
    /// Accepts direct writes (and feeds followers, when configured).
    Primary,
    /// Read-only standby applying a primary's shipped WAL records.
    Follower,
}

impl std::fmt::Display for ServerRole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerRole::Primary => write!(f, "primary"),
            ServerRole::Follower => write!(f, "follower"),
        }
    }
}

impl Encode for ServerRole {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(match self {
            ServerRole::Primary => 0,
            ServerRole::Follower => 1,
        });
    }
}

impl Decode for ServerRole {
    const MIN_SIZE: usize = 1;

    fn decode(r: &mut Reader) -> Result<Self, StoreError> {
        match r.u8()? {
            0 => Ok(ServerRole::Primary),
            1 => Ok(ServerRole::Follower),
            other => Err(StoreError::Corrupt(format!("server role {other}"))),
        }
    }
}

/// What the server tells a client at handshake time.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerInfo {
    /// The protocol revision the server speaks.
    pub version: u16,
    /// The epoch of the latest published snapshot.
    pub epoch: u64,
    /// The index backend serving queries.
    pub backend: BackendKind,
    /// Total user trajectories (including tombstones).
    pub users: u64,
    /// Live user trajectories.
    pub live_users: u64,
    /// Candidate facilities.
    pub facilities: u64,
    /// Whether the engine persists to a store (WAL + snapshots).
    pub durable: bool,
    /// Whether this daemon accepts writes or replicates a primary.
    pub role: ServerRole,
    /// Address of the primary this follower replicates from; empty on a
    /// primary. Clients redirect writes here.
    pub primary: String,
}

impl Encode for ServerInfo {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u16_le(self.version);
        buf.put_u64_le(self.epoch);
        self.backend.encode(buf);
        buf.put_u64_le(self.users);
        buf.put_u64_le(self.live_users);
        buf.put_u64_le(self.facilities);
        buf.put_u8(self.durable as u8);
        self.role.encode(buf);
        self.primary.encode(buf);
    }
}

impl Decode for ServerInfo {
    const MIN_SIZE: usize = 2 + 8 + 1 + 8 + 8 + 8 + 1 + 1 + 4;

    fn decode(r: &mut Reader) -> Result<Self, StoreError> {
        Ok(ServerInfo {
            version: r.u16()?,
            epoch: r.u64()?,
            backend: BackendKind::decode(r)?,
            users: r.u64()?,
            live_users: r.u64()?,
            facilities: r.u64()?,
            durable: decode_bool(r)?,
            role: ServerRole::decode(r)?,
            primary: String::decode(r)?,
        })
    }
}

/// Acknowledgement of an apply, checkpoint or shutdown request.
#[derive(Debug, Clone)]
pub struct Ack {
    /// The engine epoch after the request.
    pub epoch: u64,
    /// For applies, what the batch did; absent on checkpoint/shutdown.
    pub outcome: Option<BatchOutcome>,
    /// WAL batches pending since the last checkpoint.
    pub wal_batches: u64,
}

impl Encode for Ack {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.epoch);
        self.outcome.encode(buf);
        buf.put_u64_le(self.wal_batches);
    }
}

impl Decode for Ack {
    const MIN_SIZE: usize = 8 + 1 + 8;

    fn decode(r: &mut Reader) -> Result<Self, StoreError> {
        Ok(Ack {
            epoch: r.u64()?,
            outcome: Option::<BatchOutcome>::decode(r)?,
            wal_batches: r.u64()?,
        })
    }
}

/// A serving status report (`tq status --connect`).
#[derive(Debug, Clone)]
pub struct StatusReport {
    /// Everything the handshake reports, at report time.
    pub info: ServerInfo,
    /// Connections currently open (including the one asking).
    pub connections: u64,
    /// Queries answered since the daemon started.
    pub queries_served: u64,
    /// Update batches applied since the daemon started.
    pub batches_applied: u64,
    /// WAL batches pending since the last checkpoint (as of the most
    /// recent apply or checkpoint).
    pub wal_batches: u64,
    /// Replication followers currently fed by this daemon.
    pub followers: u64,
    /// Epoch of the newest record offered to any follower feed (`0` when
    /// none were).
    pub last_shipped: u64,
    /// The slowest follower's acknowledged epoch; `last_shipped` minus
    /// this is the replication lag. `0` with no followers.
    pub min_acked: u64,
    /// Connections accepted since the daemon started (cumulative, unlike
    /// `connections` which counts currently-open ones).
    pub connections_total: u64,
    /// Connection-handler panics caught since the daemon started. Always
    /// `0` on a healthy daemon.
    pub panics: u64,
}

impl Encode for StatusReport {
    fn encode(&self, buf: &mut BytesMut) {
        self.info.encode(buf);
        buf.put_u64_le(self.connections);
        buf.put_u64_le(self.queries_served);
        buf.put_u64_le(self.batches_applied);
        buf.put_u64_le(self.wal_batches);
        buf.put_u64_le(self.followers);
        buf.put_u64_le(self.last_shipped);
        buf.put_u64_le(self.min_acked);
        buf.put_u64_le(self.connections_total);
        buf.put_u64_le(self.panics);
    }
}

impl Decode for StatusReport {
    const MIN_SIZE: usize = ServerInfo::MIN_SIZE + 72;

    fn decode(r: &mut Reader) -> Result<Self, StoreError> {
        Ok(StatusReport {
            info: ServerInfo::decode(r)?,
            connections: r.u64()?,
            queries_served: r.u64()?,
            batches_applied: r.u64()?,
            wal_batches: r.u64()?,
            followers: r.u64()?,
            last_shipped: r.u64()?,
            min_acked: r.u64()?,
            connections_total: r.u64()?,
            panics: r.u64()?,
        })
    }
}

impl std::fmt::Display for StatusReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "epoch {} | backend {} | protocol v{}",
            self.info.epoch, self.info.backend, self.info.version
        )?;
        writeln!(
            f,
            "users {} ({} live) | facilities {} | durable {}",
            self.info.users, self.info.live_users, self.info.facilities, self.info.durable
        )?;
        writeln!(
            f,
            "connections {} ({} total) | queries {} | batches {} | wal pending {} | panics {}",
            self.connections,
            self.connections_total,
            self.queries_served,
            self.batches_applied,
            self.wal_batches,
            self.panics
        )?;
        match self.info.role {
            ServerRole::Follower => {
                write!(f, "role follower | primary {}", self.info.primary)
            }
            ServerRole::Primary if self.followers > 0 => write!(
                f,
                "role primary | followers {} | shipped epoch {} | acked epoch {} (lag {})",
                self.followers,
                self.last_shipped,
                self.min_acked,
                self.last_shipped.saturating_sub(self.min_acked)
            ),
            ServerRole::Primary => write!(f, "role primary | followers 0"),
        }
    }
}

/// What class of failure an [`ErrorFrame`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame or body was malformed; the server closes the connection
    /// after sending this.
    Protocol,
    /// The handshake offered a protocol revision the server does not
    /// speak; the connection closes.
    VersionMismatch,
    /// The engine rejected a well-formed request (unknown candidate,
    /// k = 0, update validation, checkpoint on a non-durable engine, …);
    /// the connection stays open.
    Engine,
    /// A well-formed request the server cannot serve here.
    Unsupported,
    /// The daemon is draining connections for shutdown.
    ShuttingDown,
    /// The write was sent to a read-only follower; the message names the
    /// primary to redirect to. The connection stays open (reads are
    /// fine).
    ReadOnly,
}

impl ErrorCode {
    fn to_u16(self) -> u16 {
        match self {
            ErrorCode::Protocol => 1,
            ErrorCode::VersionMismatch => 2,
            ErrorCode::Engine => 3,
            ErrorCode::Unsupported => 4,
            ErrorCode::ShuttingDown => 5,
            ErrorCode::ReadOnly => 6,
        }
    }

    fn from_u16(v: u16) -> Result<Self, StoreError> {
        Ok(match v {
            1 => ErrorCode::Protocol,
            2 => ErrorCode::VersionMismatch,
            3 => ErrorCode::Engine,
            4 => ErrorCode::Unsupported,
            5 => ErrorCode::ShuttingDown,
            6 => ErrorCode::ReadOnly,
            other => return Err(StoreError::Corrupt(format!("error code {other}"))),
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::Protocol => "protocol",
            ErrorCode::VersionMismatch => "version-mismatch",
            ErrorCode::Engine => "engine",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::ReadOnly => "read-only",
        };
        write!(f, "{name}")
    }
}

/// A typed error the server sends instead of an answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorFrame {
    /// The failure class.
    pub code: ErrorCode,
    /// A human-readable description.
    pub message: String,
}

impl std::fmt::Display for ErrorFrame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for ErrorFrame {}

impl Encode for ErrorFrame {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u16_le(self.code.to_u16());
        self.message.encode(buf);
    }
}

impl Decode for ErrorFrame {
    const MIN_SIZE: usize = 2 + 4;

    fn decode(r: &mut Reader) -> Result<Self, StoreError> {
        Ok(ErrorFrame {
            code: ErrorCode::from_u16(r.u16()?)?,
            message: String::decode(r)?,
        })
    }
}

fn decode_bool(r: &mut Reader) -> Result<bool, StoreError> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(StoreError::Corrupt(format!("bool byte {other}"))),
    }
}

fn decode_body<T: Decode>(body: Bytes) -> Result<T, NetError> {
    let mut r = Reader::new(body);
    let value = T::decode(&mut r)?;
    r.finish()?;
    Ok(value)
}

impl Request {
    /// Encodes to the frame kind byte and body.
    pub fn to_frame(&self) -> (u8, BytesMut) {
        let mut buf = BytesMut::new();
        let kind = match self {
            Request::Hello { version } => {
                buf.put_u16_le(*version);
                kind::HELLO
            }
            Request::Query(q) => {
                q.encode(&mut buf);
                kind::QUERY
            }
            Request::Explain(q) => {
                q.encode(&mut buf);
                kind::EXPLAIN
            }
            Request::Apply(batch) => {
                batch.encode(&mut buf);
                kind::APPLY
            }
            Request::Checkpoint => kind::CHECKPOINT,
            Request::Status => kind::STATUS,
            Request::Shutdown => kind::SHUTDOWN,
            Request::Promote => kind::PROMOTE,
            Request::Metrics => kind::METRICS,
        };
        (kind, buf)
    }

    /// Decodes a frame. Unknown kinds are [`NetError::Unexpected`];
    /// trailing bytes after a well-formed body are a codec error.
    pub fn from_frame(kind: u8, body: Bytes) -> Result<Request, NetError> {
        Ok(match kind {
            kind::HELLO => Request::Hello {
                version: decode_body::<WireU16>(body)?.0,
            },
            kind::QUERY => Request::Query(decode_body(body)?),
            kind::EXPLAIN => Request::Explain(decode_body(body)?),
            kind::APPLY => Request::Apply(decode_body(body)?),
            kind::CHECKPOINT => {
                expect_empty(&body)?;
                Request::Checkpoint
            }
            kind::STATUS => {
                expect_empty(&body)?;
                Request::Status
            }
            kind::SHUTDOWN => {
                expect_empty(&body)?;
                Request::Shutdown
            }
            kind::PROMOTE => {
                expect_empty(&body)?;
                Request::Promote
            }
            kind::METRICS => {
                expect_empty(&body)?;
                Request::Metrics
            }
            other => return Err(NetError::Unexpected { kind: other }),
        })
    }
}

impl Response {
    /// Encodes to the frame kind byte and body.
    pub fn to_frame(&self) -> (u8, BytesMut) {
        let mut buf = BytesMut::new();
        let kind = match self {
            Response::Hello(info) => {
                info.encode(&mut buf);
                kind::S_HELLO
            }
            Response::Answer(a) => {
                a.encode(&mut buf);
                kind::S_ANSWER
            }
            Response::Ack(a) => {
                a.encode(&mut buf);
                kind::S_ACK
            }
            Response::Status(s) => {
                s.encode(&mut buf);
                kind::S_STATUS
            }
            Response::Metrics(text) => {
                text.encode(&mut buf);
                kind::S_METRICS
            }
            Response::Error(e) => {
                e.encode(&mut buf);
                kind::S_ERROR
            }
        };
        (kind, buf)
    }

    /// Decodes a frame. Unknown kinds are [`NetError::Unexpected`].
    pub fn from_frame(kind: u8, body: Bytes) -> Result<Response, NetError> {
        Ok(match kind {
            kind::S_HELLO => Response::Hello(decode_body(body)?),
            kind::S_ANSWER => Response::Answer(Box::new(decode_body(body)?)),
            kind::S_ACK => Response::Ack(decode_body(body)?),
            kind::S_STATUS => Response::Status(decode_body(body)?),
            kind::S_METRICS => Response::Metrics(decode_body(body)?),
            kind::S_ERROR => Response::Error(decode_body(body)?),
            other => return Err(NetError::Unexpected { kind: other }),
        })
    }
}

fn expect_empty(body: &Bytes) -> Result<(), NetError> {
    if body.is_empty() {
        Ok(())
    } else {
        Err(NetError::Codec(StoreError::Corrupt(format!(
            "{} trailing bytes on a bodyless request",
            body.len()
        ))))
    }
}

/// A bare little-endian `u16` body (the hello payload).
struct WireU16(u16);

impl Decode for WireU16 {
    const MIN_SIZE: usize = 2;

    fn decode(r: &mut Reader) -> Result<Self, StoreError> {
        Ok(WireU16(r.u16()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_core::engine::Algorithm;

    fn roundtrip_request(req: Request) -> Request {
        let (kind, body) = req.to_frame();
        Request::from_frame(kind, body.freeze()).unwrap()
    }

    fn roundtrip_response(resp: Response) -> Response {
        let (kind, body) = resp.to_frame();
        Response::from_frame(kind, body.freeze()).unwrap()
    }

    #[test]
    fn requests_roundtrip() {
        match roundtrip_request(Request::Hello { version: 7 }) {
            Request::Hello { version } => assert_eq!(version, 7),
            other => panic!("{other:?}"),
        }
        let q = Query::max_cov(3)
            .algorithm(Algorithm::TwoStep)
            .candidates(&[1, 4, 9])
            .seed(42);
        match roundtrip_request(Request::Query(q.clone())) {
            Request::Query(back) => assert_eq!(format!("{back:?}"), format!("{q:?}")),
            other => panic!("{other:?}"),
        }
        match roundtrip_request(Request::Apply(vec![Update::Remove(3)])) {
            Request::Apply(batch) => assert_eq!(batch.len(), 1),
            other => panic!("{other:?}"),
        }
        for req in [
            Request::Checkpoint,
            Request::Status,
            Request::Shutdown,
            Request::Promote,
            Request::Metrics,
        ] {
            let (kind, body) = req.to_frame();
            assert!(body.is_empty());
            Request::from_frame(kind, body.freeze()).unwrap();
        }
    }

    #[test]
    fn responses_roundtrip() {
        let info = ServerInfo {
            version: 1,
            epoch: 12,
            backend: BackendKind::TqTree,
            users: 100,
            live_users: 98,
            facilities: 40,
            durable: true,
            role: ServerRole::Follower,
            primary: "127.0.0.1:4321".into(),
        };
        match roundtrip_response(Response::Hello(info.clone())) {
            Response::Hello(back) => assert_eq!(back, info),
            other => panic!("{other:?}"),
        }
        let ack = Ack {
            epoch: 13,
            outcome: Some(BatchOutcome {
                inserted: vec![5, 6],
                ..BatchOutcome::default()
            }),
            wal_batches: 4,
        };
        match roundtrip_response(Response::Ack(ack)) {
            Response::Ack(back) => {
                assert_eq!(back.epoch, 13);
                assert_eq!(back.outcome.unwrap().inserted, vec![5, 6]);
                assert_eq!(back.wal_batches, 4);
            }
            other => panic!("{other:?}"),
        }
        let status = StatusReport {
            info,
            connections: 3,
            queries_served: 250,
            batches_applied: 12,
            wal_batches: 4,
            followers: 2,
            last_shipped: 12,
            min_acked: 11,
            connections_total: 9,
            panics: 0,
        };
        match roundtrip_response(Response::Status(status.clone())) {
            Response::Status(back) => {
                assert_eq!(format!("{back}"), format!("{status}"));
            }
            other => panic!("{other:?}"),
        }
        let metrics = "tq_queries_total{backend=\"tq-tree\"} 3\n".to_string();
        match roundtrip_response(Response::Metrics(metrics.clone())) {
            Response::Metrics(back) => assert_eq!(back, metrics),
            other => panic!("{other:?}"),
        }
        let err = ErrorFrame {
            code: ErrorCode::Engine,
            message: "k exceeds the candidate count".into(),
        };
        match roundtrip_response(Response::Error(err.clone())) {
            Response::Error(back) => assert_eq!(back, err),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_kinds_and_trailing_bytes_are_rejected() {
        assert!(matches!(
            Request::from_frame(0x77, Bytes::new()),
            Err(NetError::Unexpected { kind: 0x77 })
        ));
        assert!(matches!(
            Response::from_frame(kind::QUERY, Bytes::new()),
            Err(NetError::Unexpected { .. })
        ));
        // A status request must have an empty body.
        assert!(Request::from_frame(kind::STATUS, Bytes::from_static(b"x")).is_err());
        // Trailing garbage after a valid hello is rejected by finish().
        let mut buf = BytesMut::new();
        buf.put_u16_le(1);
        buf.put_u8(0xEE);
        assert!(Request::from_frame(kind::HELLO, buf.freeze()).is_err());
        // Every error code survives the wire.
        for code in [
            ErrorCode::Protocol,
            ErrorCode::VersionMismatch,
            ErrorCode::Engine,
            ErrorCode::Unsupported,
            ErrorCode::ShuttingDown,
            ErrorCode::ReadOnly,
        ] {
            let e = ErrorFrame { code, message: String::new() };
            match roundtrip_response(Response::Error(e)) {
                Response::Error(back) => assert_eq!(back.code, code),
                other => panic!("{other:?}"),
            }
        }
    }
}
