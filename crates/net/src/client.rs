//! The blocking client SDK: dial, handshake, then call methods that each
//! map to one request/response frame pair.

use crate::frame::{read_frame, write_frame};
use crate::proto::{Ack, Request, Response, ServerInfo, StatusReport};
use crate::{NetError, DEFAULT_MAX_FRAME, PROTOCOL_VERSION};
use std::net::TcpStream;
use std::time::Duration;
use tq_core::dynamic::Update;
use tq_core::engine::{Answer, Explain, Query};

/// How [`Client::connect_with`] dials and frames.
#[derive(Debug, Clone)]
pub struct ConnectConfig {
    /// Dial attempts before giving up (covers the race against a daemon
    /// that is still binding its listener).
    pub attempts: u32,
    /// Backoff before the second attempt; doubles per retry.
    pub initial_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Frame body cap for *received* frames.
    pub max_frame: usize,
}

impl Default for ConnectConfig {
    fn default() -> Self {
        ConnectConfig {
            attempts: 10,
            initial_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            max_frame: DEFAULT_MAX_FRAME,
        }
    }
}

/// A blocking connection to a `tqd` daemon.
///
/// One request/response pair is in flight at a time; clone nothing —
/// open one client per thread (the server is happy to hold many
/// connections). Dropping the client closes the connection; the daemon
/// keeps running.
pub struct Client {
    stream: TcpStream,
    addr: String,
    config: ConnectConfig,
    info: ServerInfo,
}

impl Client {
    /// Dials `addr` with [`ConnectConfig::default`] and handshakes.
    pub fn connect(addr: &str) -> Result<Client, NetError> {
        Client::connect_with(addr, ConnectConfig::default())
    }

    /// Dials `addr`, retrying with exponential backoff, then handshakes.
    /// The handshake refuses a server speaking a different
    /// [`PROTOCOL_VERSION`] (surfaced as [`NetError::Remote`] with code
    /// [`crate::ErrorCode::VersionMismatch`]).
    pub fn connect_with(addr: &str, config: ConnectConfig) -> Result<Client, NetError> {
        let mut stream = dial(addr, &config)?;
        let info = handshake(&mut stream, config.max_frame)?;
        Ok(Client {
            stream,
            addr: addr.to_string(),
            config,
            info,
        })
    }

    /// Drops the current socket and re-dials the same address with the
    /// same backoff schedule, handshaking anew. State on the server is
    /// per-request, so a reconnected client continues where it left off.
    pub fn reconnect(&mut self) -> Result<(), NetError> {
        let mut stream = dial(&self.addr, &self.config)?;
        self.info = handshake(&mut stream, self.config.max_frame)?;
        self.stream = stream;
        Ok(())
    }

    /// What the server reported at handshake time.
    pub fn info(&self) -> &ServerInfo {
        &self.info
    }

    /// Runs a query on the daemon's latest published snapshot.
    pub fn query(&mut self, query: Query) -> Result<Answer, NetError> {
        match self.call(Request::Query(query))? {
            Response::Answer(a) => Ok(*a),
            other => Err(unexpected(&other)),
        }
    }

    /// Runs a query and returns its explain record.
    pub fn explain(&mut self, query: Query) -> Result<Explain, NetError> {
        match self.call(Request::Explain(query))? {
            Response::Answer(a) => Ok(a.explain),
            other => Err(unexpected(&other)),
        }
    }

    /// Applies one update batch through the daemon's single writer. The
    /// returned ack means the batch is published — and, on a durable
    /// daemon, already in the WAL.
    pub fn apply(&mut self, batch: Vec<Update>) -> Result<Ack, NetError> {
        match self.call(Request::Apply(batch))? {
            Response::Ack(a) => Ok(a),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the daemon to checkpoint now.
    pub fn checkpoint(&mut self) -> Result<Ack, NetError> {
        match self.call(Request::Checkpoint)? {
            Response::Ack(a) => Ok(a),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches a serving status report.
    pub fn status(&mut self) -> Result<StatusReport, NetError> {
        match self.call(Request::Status)? {
            Response::Status(s) => Ok(s),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the daemon to shut down gracefully (drain connections, final
    /// checkpoint). Consumes the client — the connection is useless after
    /// the ack.
    pub fn shutdown_server(mut self) -> Result<Ack, NetError> {
        match self.call(Request::Shutdown)? {
            Response::Ack(a) => Ok(a),
            other => Err(unexpected(&other)),
        }
    }

    /// One request/response round trip. A typed error frame becomes
    /// [`NetError::Remote`].
    pub fn call(&mut self, request: Request) -> Result<Response, NetError> {
        let (kind, body) = request.to_frame();
        write_frame(&mut self.stream, kind, body.as_ref())?;
        let (kind, body) = read_frame(&mut self.stream, self.config.max_frame)?;
        match Response::from_frame(kind, body)? {
            Response::Error(e) => Err(NetError::Remote(e)),
            other => Ok(other),
        }
    }
}

fn unexpected(resp: &Response) -> NetError {
    NetError::Unexpected {
        kind: resp.to_frame().0,
    }
}

fn handshake(stream: &mut TcpStream, max_frame: usize) -> Result<ServerInfo, NetError> {
    let (kind, body) = Request::Hello {
        version: PROTOCOL_VERSION,
    }
    .to_frame();
    write_frame(stream, kind, body.as_ref())?;
    let (kind, body) = read_frame(stream, max_frame)?;
    match Response::from_frame(kind, body)? {
        Response::Hello(info) => Ok(info),
        Response::Error(e) => Err(NetError::Remote(e)),
        other => Err(unexpected(&other)),
    }
}

fn dial(addr: &str, config: &ConnectConfig) -> Result<TcpStream, NetError> {
    let mut backoff = config.initial_backoff;
    let mut last_err = None;
    for attempt in 0..config.attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(config.max_backoff);
        }
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream.set_nodelay(true).ok();
                return Ok(stream);
            }
            Err(e) => last_err = Some(e),
        }
    }
    Err(NetError::Io(last_err.unwrap_or_else(|| {
        std::io::Error::other("no dial attempts configured")
    })))
}
