//! The blocking client SDK: dial, handshake, then call methods that each
//! map to one request/response frame pair.
//!
//! A client may hold **several addresses** (comma-separated in
//! [`Client::connect`]) — a primary and its standbys. Reads fail over to
//! the next address when the connection drops; a write refused with
//! [`ErrorCode::ReadOnly`] redirects once to the primary the follower
//! named in its handshake.

use crate::frame::{read_frame, write_frame};
use crate::proto::{Ack, ErrorCode, Request, Response, ServerInfo, StatusReport};
use crate::{NetError, DEFAULT_MAX_FRAME, PROTOCOL_VERSION};
use std::net::TcpStream;
use std::time::Duration;
use tq_core::dynamic::Update;
use tq_core::engine::{Answer, Explain, Query};

/// How [`Client::connect_with`] dials and frames.
#[derive(Debug, Clone)]
pub struct ConnectConfig {
    /// Dial attempts before giving up (covers the race against a daemon
    /// that is still binding its listener).
    pub attempts: u32,
    /// Backoff before the second attempt; doubles per retry.
    pub initial_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Frame body cap for *received* frames.
    pub max_frame: usize,
}

impl Default for ConnectConfig {
    fn default() -> Self {
        ConnectConfig {
            attempts: 10,
            initial_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            max_frame: DEFAULT_MAX_FRAME,
        }
    }
}

/// A blocking connection to a `tqd` daemon.
///
/// One request/response pair is in flight at a time; clone nothing —
/// open one client per thread (the server is happy to hold many
/// connections). Dropping the client closes the connection; the daemon
/// keeps running.
pub struct Client {
    stream: TcpStream,
    /// Every address this client may serve from; `active` indexes the
    /// one currently connected.
    addrs: Vec<String>,
    active: usize,
    config: ConnectConfig,
    info: ServerInfo,
}

impl Client {
    /// Dials `addr` with [`ConnectConfig::default`] and handshakes.
    /// `addr` may be a comma-separated list (`"primary:4100,standby:4101"`):
    /// the first address that connects wins, and later failures rotate
    /// through the rest.
    pub fn connect(addr: &str) -> Result<Client, NetError> {
        Client::connect_with(addr, ConnectConfig::default())
    }

    /// Dials `addr` (or the first reachable of a comma-separated list),
    /// retrying with exponential backoff, then handshakes. The handshake
    /// refuses a server speaking a different [`PROTOCOL_VERSION`]
    /// (surfaced as [`NetError::Remote`] with code
    /// [`crate::ErrorCode::VersionMismatch`]).
    pub fn connect_with(addr: &str, config: ConnectConfig) -> Result<Client, NetError> {
        let addrs: Vec<String> = addr
            .split(',')
            .map(str::trim)
            .filter(|a| !a.is_empty())
            .map(str::to_string)
            .collect();
        if addrs.is_empty() {
            return Err(NetError::Io(std::io::Error::other("no address to dial")));
        }
        let mut last = None;
        for (active, candidate) in addrs.iter().enumerate() {
            match dial(candidate, &config).and_then(|mut stream| {
                handshake(&mut stream, config.max_frame).map(|info| (stream, info))
            }) {
                Ok((stream, info)) => {
                    return Ok(Client {
                        stream,
                        addrs,
                        active,
                        config,
                        info,
                    })
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("at least one address was tried"))
    }

    /// Drops the current socket and re-dials, handshaking anew — the
    /// current address first, then the rest of the list in rotation.
    /// State on the server is per-request, so a reconnected client
    /// continues where it left off.
    pub fn reconnect(&mut self) -> Result<(), NetError> {
        let mut last = None;
        for step in 0..self.addrs.len() {
            let candidate = (self.active + step) % self.addrs.len();
            match dial(&self.addrs[candidate], &self.config).and_then(|mut stream| {
                handshake(&mut stream, self.config.max_frame).map(|info| (stream, info))
            }) {
                Ok((stream, info)) => {
                    self.stream = stream;
                    self.info = info;
                    self.active = candidate;
                    return Ok(());
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("at least one address was tried"))
    }

    /// What the server reported at handshake time.
    pub fn info(&self) -> &ServerInfo {
        &self.info
    }

    /// The address currently connected.
    pub fn addr(&self) -> &str {
        &self.addrs[self.active]
    }

    /// Runs a query on the daemon's latest published snapshot. Fails
    /// over: a dropped connection reconnects (rotating through the
    /// address list) and retries once.
    pub fn query(&mut self, query: Query) -> Result<Answer, NetError> {
        match self.call_failover(Request::Query(query))? {
            Response::Answer(a) => Ok(*a),
            other => Err(unexpected(&other)),
        }
    }

    /// Runs a query and returns its explain record. Fails over like
    /// [`Client::query`].
    pub fn explain(&mut self, query: Query) -> Result<Explain, NetError> {
        match self.call_failover(Request::Explain(query))? {
            Response::Answer(a) => Ok(a.explain),
            other => Err(unexpected(&other)),
        }
    }

    /// Applies one update batch through the daemon's single writer. The
    /// returned ack means the batch is published — and, on a durable
    /// daemon, already in the WAL.
    ///
    /// A follower refuses writes with [`ErrorCode::ReadOnly`]; this call
    /// then redirects **once** to the primary the follower named at
    /// handshake, reconnecting and retrying there.
    pub fn apply(&mut self, batch: Vec<Update>) -> Result<Ack, NetError> {
        let (kind, body) = Request::Apply(batch).to_frame();
        let response = match self.call_frame(kind, body.as_ref()) {
            Err(NetError::Remote(e)) if e.code == ErrorCode::ReadOnly => {
                self.redirect_to_primary(NetError::Remote(e))?;
                self.call_frame(kind, body.as_ref())?
            }
            other => other?,
        };
        match response {
            Response::Ack(a) => Ok(a),
            other => Err(unexpected(&other)),
        }
    }

    /// Promotes the connected daemon — a follower — to primary: it
    /// accepts writes from the ack on.
    pub fn promote(&mut self) -> Result<Ack, NetError> {
        match self.call(Request::Promote)? {
            Response::Ack(a) => Ok(a),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the daemon to checkpoint now.
    pub fn checkpoint(&mut self) -> Result<Ack, NetError> {
        match self.call(Request::Checkpoint)? {
            Response::Ack(a) => Ok(a),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches a serving status report. Fails over like [`Client::query`].
    pub fn status(&mut self) -> Result<StatusReport, NetError> {
        match self.call_failover(Request::Status)? {
            Response::Status(s) => Ok(s),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the daemon's metrics snapshot, rendered as `name{label}
    /// value` text lines. Fails over like [`Client::query`].
    pub fn metrics(&mut self) -> Result<String, NetError> {
        match self.call_failover(Request::Metrics)? {
            Response::Metrics(text) => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the daemon to shut down gracefully (drain connections, final
    /// checkpoint). Consumes the client — the connection is useless after
    /// the ack.
    pub fn shutdown_server(mut self) -> Result<Ack, NetError> {
        match self.call(Request::Shutdown)? {
            Response::Ack(a) => Ok(a),
            other => Err(unexpected(&other)),
        }
    }

    /// One request/response round trip. A typed error frame becomes
    /// [`NetError::Remote`].
    pub fn call(&mut self, request: Request) -> Result<Response, NetError> {
        let (kind, body) = request.to_frame();
        self.call_frame(kind, body.as_ref())
    }

    /// A round trip that survives one dropped connection: on an I/O
    /// error or a clean close, reconnect (rotating through the address
    /// list) and resend the identical frame once. Used by the read-side
    /// calls — idempotent by nature — never by [`Client::apply`].
    fn call_failover(&mut self, request: Request) -> Result<Response, NetError> {
        let (kind, body) = request.to_frame();
        match self.call_frame(kind, body.as_ref()) {
            Err(NetError::Io(_) | NetError::Closed) => {
                self.reconnect()?;
                self.call_frame(kind, body.as_ref())
            }
            other => other,
        }
    }

    fn call_frame(&mut self, kind: u8, body: &[u8]) -> Result<Response, NetError> {
        write_frame(&mut self.stream, kind, body)?;
        let (kind, body) = read_frame(&mut self.stream, self.config.max_frame)?;
        match Response::from_frame(kind, body)? {
            Response::Error(e) => Err(NetError::Remote(e)),
            other => Ok(other),
        }
    }

    /// Moves the connection to the primary the current server named at
    /// handshake. `refused` is returned unchanged when no primary is
    /// known (already on the primary, or pre-replication server).
    fn redirect_to_primary(&mut self, refused: NetError) -> Result<(), NetError> {
        let primary = self.info.primary.clone();
        if primary.is_empty() || self.addrs[self.active] == primary {
            return Err(refused);
        }
        match self.addrs.iter().position(|a| *a == primary) {
            Some(i) => self.active = i,
            None => {
                self.addrs.push(primary);
                self.active = self.addrs.len() - 1;
            }
        }
        let mut stream = dial(&self.addrs[self.active], &self.config)?;
        self.info = handshake(&mut stream, self.config.max_frame)?;
        self.stream = stream;
        Ok(())
    }
}

fn unexpected(resp: &Response) -> NetError {
    NetError::Unexpected {
        kind: resp.to_frame().0,
    }
}

fn handshake(stream: &mut TcpStream, max_frame: usize) -> Result<ServerInfo, NetError> {
    let (kind, body) = Request::Hello {
        version: PROTOCOL_VERSION,
    }
    .to_frame();
    write_frame(stream, kind, body.as_ref())?;
    let (kind, body) = read_frame(stream, max_frame)?;
    match Response::from_frame(kind, body)? {
        Response::Hello(info) => Ok(info),
        Response::Error(e) => Err(NetError::Remote(e)),
        other => Err(unexpected(&other)),
    }
}

pub(crate) fn dial(addr: &str, config: &ConnectConfig) -> Result<TcpStream, NetError> {
    let mut backoff = config.initial_backoff;
    let mut last_err = None;
    for attempt in 0..config.attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(backoff + jitter(addr, attempt, backoff));
            backoff = (backoff * 2).min(config.max_backoff);
        }
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream.set_nodelay(true).ok();
                return Ok(stream);
            }
            Err(e) => last_err = Some(e),
        }
    }
    Err(NetError::Io(last_err.unwrap_or_else(|| {
        std::io::Error::other("no dial attempts configured")
    })))
}

/// Up to 25% of extra sleep per retry, spread deterministically by
/// (address, pid, attempt) through an xorshift mix — so a fleet of
/// clients reconnecting after a primary restart doesn't stampede the
/// listener in lockstep, without an RNG dependency.
fn jitter(addr: &str, attempt: u32, backoff: Duration) -> Duration {
    let mut seed = 0x9e37_79b9_7f4a_7c15u64
        ^ ((std::process::id() as u64) << 32)
        ^ u64::from(attempt);
    for b in addr.bytes() {
        seed = seed.rotate_left(8) ^ u64::from(b);
    }
    seed ^= seed << 13;
    seed ^= seed >> 7;
    seed ^= seed << 17;
    (backoff / 1024) * ((seed % 256) as u32)
}
