//! The binary codec: [`Encode`]/[`Decode`] over the `bytes` shim, plus the
//! checked [`Reader`] that makes decoding total (error-returning) instead
//! of panicking.
//!
//! Layout rules, shared by every implementation:
//!
//! * everything is **little-endian**;
//! * `f64`s travel as their raw bits (`to_le_bytes`/`from_le_bytes`), so
//!   values — including `-0.0` and NaN payloads — roundtrip bit-exactly;
//! * collections are length-prefixed with a `u32` count, and the count is
//!   sanity-checked against the bytes actually remaining *before* any
//!   allocation, so a corrupt count cannot balloon memory;
//! * decoding never panics: the raw [`bytes::Buf`] accessors panic on
//!   underflow, so all reads go through [`Reader`], which checks
//!   [`Reader::remaining`] first and returns [`StoreError::Truncated`].

use crate::StoreError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use tq_geometry::{Point, Rect, ZId};
use tq_trajectory::{Facility, FacilitySet, Trajectory, UserSet};

/// Checked sequential reader over a [`Bytes`] view.
///
/// Wraps the panicking [`Buf`] accessors of the vendored shim with
/// remaining-length checks; every method returns [`StoreError::Truncated`]
/// instead of panicking when the buffer runs out.
#[derive(Debug, Clone)]
pub struct Reader {
    buf: Bytes,
}

impl Reader {
    /// A reader over the whole view.
    pub fn new(buf: Bytes) -> Reader {
        Reader { buf }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    fn need(&self, n: usize) -> Result<(), StoreError> {
        if self.buf.remaining() < n {
            return Err(StoreError::Truncated);
        }
        Ok(())
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, StoreError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, StoreError> {
        self.need(2)?;
        Ok(self.buf.get_u16_le())
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, StoreError> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    /// Reads a little-endian `f64` (raw bits, bit-exact).
    pub fn f64(&mut self) -> Result<f64, StoreError> {
        self.need(8)?;
        Ok(self.buf.get_f64_le())
    }

    /// Reads a `u32` element count for a collection whose elements encode
    /// to at least `min_elem_size` bytes each, rejecting counts the
    /// remaining buffer cannot possibly satisfy (the guard that keeps a
    /// corrupt count from allocating gigabytes).
    pub fn count(&mut self, min_elem_size: usize) -> Result<usize, StoreError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_size.max(1)) > self.buf.remaining() {
            return Err(StoreError::Corrupt(format!(
                "count {n} exceeds the {} bytes remaining",
                self.buf.remaining()
            )));
        }
        Ok(n)
    }

    /// Consumes `n` raw bytes as a sub-view (shares the allocation).
    pub fn take(&mut self, n: usize) -> Result<Bytes, StoreError> {
        self.need(n)?;
        let out = self.buf.slice(0..n);
        self.buf = self.buf.slice(n..self.buf.len());
        Ok(out)
    }

    /// Reads a LEB128 varint written by [`put_varint_u32`].
    pub fn varint_u32(&mut self) -> Result<u32, StoreError> {
        let mut out = 0u64;
        for shift in (0..35).step_by(7) {
            let byte = self.u8()?;
            out |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                if out > u32::MAX as u64 {
                    return Err(StoreError::Corrupt("varint exceeds u32".into()));
                }
                return Ok(out as u32);
            }
        }
        Err(StoreError::Corrupt("varint runs past 5 bytes".into()))
    }

    /// Errors unless the buffer was consumed exactly.
    pub fn finish(self) -> Result<(), StoreError> {
        if self.buf.remaining() != 0 {
            return Err(StoreError::Corrupt(format!(
                "{} trailing bytes after the decoded value",
                self.buf.remaining()
            )));
        }
        Ok(())
    }
}

/// A value that can be appended to an output buffer.
pub trait Encode {
    /// Appends the binary form of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);
}

/// A value that can be read back from a [`Reader`].
pub trait Decode: Sized {
    /// Minimum number of bytes any encoding of `Self` occupies — used to
    /// sanity-check collection counts before allocating.
    const MIN_SIZE: usize;

    /// Decodes one value, consuming exactly what [`Encode::encode`] wrote.
    fn decode(r: &mut Reader) -> Result<Self, StoreError>;
}

macro_rules! scalar_codec {
    ($ty:ty, $size:expr, $put:ident, $get:ident) => {
        impl Encode for $ty {
            fn encode(&self, buf: &mut BytesMut) {
                buf.$put(*self);
            }
        }
        impl Decode for $ty {
            const MIN_SIZE: usize = $size;
            fn decode(r: &mut Reader) -> Result<Self, StoreError> {
                r.$get()
            }
        }
    };
}

scalar_codec!(u8, 1, put_u8, u8);
scalar_codec!(u16, 2, put_u16_le, u16);
scalar_codec!(u32, 4, put_u32_le, u32);
scalar_codec!(u64, 8, put_u64_le, u64);
scalar_codec!(f64, 8, put_f64_le, f64);

impl Encode for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self as u8);
    }
}

impl Decode for bool {
    const MIN_SIZE: usize = 1;
    fn decode(r: &mut Reader) -> Result<Self, StoreError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(StoreError::Corrupt(format!("bool byte {other}"))),
        }
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.len() as u32);
        buf.put_slice(self.as_bytes());
    }
}

impl Decode for String {
    const MIN_SIZE: usize = 4;
    fn decode(r: &mut Reader) -> Result<Self, StoreError> {
        let n = r.count(1)?;
        let raw = r.take(n)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| StoreError::Corrupt("string is not UTF-8".into()))
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    const MIN_SIZE: usize = 1;
    fn decode(r: &mut Reader) -> Result<Self, StoreError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            other => Err(StoreError::Corrupt(format!("option byte {other}"))),
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    const MIN_SIZE: usize = A::MIN_SIZE + B::MIN_SIZE;
    fn decode(r: &mut Reader) -> Result<Self, StoreError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.len() as u32);
        for item in self {
            item.encode(buf);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    const MIN_SIZE: usize = 4;
    fn decode(r: &mut Reader) -> Result<Self, StoreError> {
        let n = r.count(T::MIN_SIZE)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl Encode for Point {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_f64_le(self.x);
        buf.put_f64_le(self.y);
    }
}

impl Decode for Point {
    const MIN_SIZE: usize = 16;
    fn decode(r: &mut Reader) -> Result<Self, StoreError> {
        Ok(Point::new(r.f64()?, r.f64()?))
    }
}

impl Encode for Rect {
    fn encode(&self, buf: &mut BytesMut) {
        self.min.encode(buf);
        self.max.encode(buf);
    }
}

impl Decode for Rect {
    const MIN_SIZE: usize = 32;
    fn decode(r: &mut Reader) -> Result<Self, StoreError> {
        let min = Point::decode(r)?;
        let max = Point::decode(r)?;
        if !(min.is_finite() && max.is_finite()) {
            return Err(StoreError::Corrupt("non-finite rectangle corner".into()));
        }
        // `Rect::new` normalizes corners; encoded rects are already
        // normalized, so this is the identity on well-formed input.
        Ok(Rect::new(min, max))
    }
}

impl Encode for ZId {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.path_bits());
        buf.put_u8(self.depth());
    }
}

impl Decode for ZId {
    const MIN_SIZE: usize = 9;
    fn decode(r: &mut Reader) -> Result<Self, StoreError> {
        let path = r.u64()?;
        let depth = r.u8()?;
        ZId::from_raw(path, depth)
            .ok_or_else(|| StoreError::Corrupt(format!("invalid z-id ({path:#x}, {depth})")))
    }
}

/// Decodes a point sequence that must satisfy the [`Trajectory`] /
/// [`Facility`] constructor contracts (≥ `min_points` finite points), so
/// decoding corrupt data returns an error instead of tripping their
/// asserts.
///
/// Points are the bulk of any trajectory store, so this takes the whole
/// `n × 16`-byte run with a single bounds check and parses it with
/// `chunks_exact` — the per-element checked-reader overhead would
/// otherwise dominate a cold start.
fn decode_checked_points(
    r: &mut Reader,
    min_points: usize,
    what: &str,
) -> Result<Vec<Point>, StoreError> {
    let n = r.count(Point::MIN_SIZE)?;
    if n < min_points {
        return Err(StoreError::Corrupt(format!(
            "{what} with {n} points (needs ≥ {min_points})"
        )));
    }
    let raw = r.take(n * Point::MIN_SIZE)?;
    let mut pts = Vec::with_capacity(n);
    for c in raw.as_ref().chunks_exact(Point::MIN_SIZE) {
        let x = f64::from_le_bytes(c[0..8].try_into().expect("16-byte chunk"));
        let y = f64::from_le_bytes(c[8..16].try_into().expect("16-byte chunk"));
        pts.push(Point::new(x, y));
    }
    if !pts.iter().all(Point::is_finite) {
        return Err(StoreError::Corrupt(format!("{what} with non-finite point")));
    }
    Ok(pts)
}

impl Encode for Trajectory {
    fn encode(&self, buf: &mut BytesMut) {
        self.points().to_vec().encode(buf);
    }
}

impl Decode for Trajectory {
    const MIN_SIZE: usize = 4 + 2 * Point::MIN_SIZE;
    fn decode(r: &mut Reader) -> Result<Self, StoreError> {
        Ok(Trajectory::new(decode_checked_points(r, 2, "trajectory")?))
    }
}

impl Encode for Facility {
    fn encode(&self, buf: &mut BytesMut) {
        self.stops().to_vec().encode(buf);
    }
}

impl Decode for Facility {
    const MIN_SIZE: usize = 4 + Point::MIN_SIZE;
    fn decode(r: &mut Reader) -> Result<Self, StoreError> {
        Ok(Facility::new(decode_checked_points(r, 1, "facility")?))
    }
}

impl Encode for UserSet {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.len() as u32);
        for (_, t) in self.iter() {
            t.encode(buf);
        }
    }
}

impl Decode for UserSet {
    const MIN_SIZE: usize = 4;
    fn decode(r: &mut Reader) -> Result<Self, StoreError> {
        let n = r.count(Trajectory::MIN_SIZE)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(Trajectory::decode(r)?);
        }
        Ok(UserSet::from_vec(out))
    }
}

impl Encode for FacilitySet {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.len() as u32);
        for (_, f) in self.iter() {
            f.encode(buf);
        }
    }
}

impl Decode for FacilitySet {
    const MIN_SIZE: usize = 4;
    fn decode(r: &mut Reader) -> Result<Self, StoreError> {
        let n = r.count(Facility::MIN_SIZE)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(Facility::decode(r)?);
        }
        Ok(FacilitySet::from_vec(out))
    }
}

/// Appends `v` LEB128-encoded (7 bits per byte, low first, high bit =
/// continuation) — 1 byte for values below 128, which is what makes
/// delta-encoded id sequences cheap.
pub fn put_varint_u32(buf: &mut BytesMut, mut v: u32) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Encodes a bool slice as a packed little-endian bitmap (count, then
/// `ceil(n/64)` words, bit `i % 64` of word `i / 64`).
pub fn encode_bitmap(bits: &[bool], buf: &mut BytesMut) {
    buf.put_u32_le(bits.len() as u32);
    let mut word = 0u64;
    for (i, &b) in bits.iter().enumerate() {
        if b {
            word |= 1 << (i % 64);
        }
        if i % 64 == 63 {
            buf.put_u64_le(word);
            word = 0;
        }
    }
    if !bits.len().is_multiple_of(64) {
        buf.put_u64_le(word);
    }
}

/// Decodes a bitmap written by [`encode_bitmap`].
pub fn decode_bitmap(r: &mut Reader) -> Result<Vec<bool>, StoreError> {
    let n = r.u32()? as usize;
    let words = n.div_ceil(64);
    if words.saturating_mul(8) > r.remaining() {
        return Err(StoreError::Corrupt(format!(
            "bitmap of {n} bits exceeds the buffer"
        )));
    }
    let mut out = Vec::with_capacity(n);
    let mut word = 0u64;
    for i in 0..n {
        if i % 64 == 0 {
            word = r.u64()?;
        }
        out.push(word >> (i % 64) & 1 == 1);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = BytesMut::with_capacity(64);
        v.encode(&mut buf);
        let mut r = Reader::new(buf.freeze());
        assert_eq!(T::decode(&mut r).unwrap(), v);
        r.finish().unwrap();
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(0xABu8);
        roundtrip(0xABCDu16);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(u64::MAX - 7);
        roundtrip(-0.0f64);
        roundtrip(true);
        roundtrip(vec![1u32, 2, 3]);
    }

    #[test]
    fn wire_vocabulary_roundtrips() {
        // The tq-net request/response vocabulary rides on these.
        roundtrip(String::new());
        roundtrip("ψ-radius naïveté".to_string());
        roundtrip(None::<u64>);
        roundtrip(Some(0xFACEu32));
        roundtrip(Some("typed error".to_string()));
        roundtrip((7u32, -0.5f64));
        roundtrip(vec![(0u32, 1.5f64), (9, -0.0)]);
        roundtrip(Some(vec![3u32, 1, 4]));
    }

    #[test]
    fn corrupt_wire_vocabulary_is_rejected() {
        // Non-UTF-8 string bytes.
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32_le(2);
        buf.put_slice(&[0xFF, 0xFE]);
        assert!(String::decode(&mut Reader::new(buf.freeze())).is_err());

        // String length exceeding the buffer (hostile count).
        let mut buf = BytesMut::with_capacity(8);
        buf.put_u32_le(u32::MAX);
        assert!(matches!(
            String::decode(&mut Reader::new(buf.freeze())),
            Err(StoreError::Corrupt(_))
        ));

        // Invalid option discriminant.
        let mut buf = BytesMut::with_capacity(4);
        buf.put_u8(9);
        assert!(Option::<u8>::decode(&mut Reader::new(buf.freeze())).is_err());
    }

    #[test]
    fn geometry_roundtrips() {
        roundtrip(Point::new(1.5, -2.5));
        roundtrip(Rect::new(Point::new(0.0, 0.0), Point::new(3.0, 4.0)));
        let z = ZId::of_point(
            &Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)),
            &Point::new(0.3, 0.7),
            9,
        );
        roundtrip(z);
    }

    #[test]
    fn trajectory_and_sets_roundtrip() {
        let p = |x: f64, y: f64| Point::new(x, y);
        roundtrip(Trajectory::new(vec![p(0.0, 0.0), p(1.0, 2.0), p(3.0, 1.0)]));
        roundtrip(Facility::new(vec![p(5.0, 5.0)]));
        roundtrip(UserSet::from_vec(vec![
            Trajectory::two_point(p(0.0, 0.0), p(1.0, 1.0)),
        ]));
        roundtrip(FacilitySet::from_vec(vec![
            Facility::new(vec![p(0.0, 0.0), p(1.0, 0.0)]),
        ]));
        roundtrip(UserSet::new());
        roundtrip(FacilitySet::new());
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        let mut buf = BytesMut::with_capacity(64);
        Trajectory::two_point(Point::new(0.0, 0.0), Point::new(1.0, 1.0)).encode(&mut buf);
        let bytes = buf.freeze();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(bytes.slice(0..cut));
            assert!(Trajectory::decode(&mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_values_are_rejected() {
        // One-point trajectory.
        let mut buf = BytesMut::with_capacity(32);
        vec![Point::new(0.0, 0.0)].encode(&mut buf);
        assert!(Trajectory::decode(&mut Reader::new(buf.freeze())).is_err());

        // Non-finite coordinate.
        let mut buf = BytesMut::with_capacity(48);
        buf.put_u32_le(2);
        buf.put_f64_le(f64::NAN);
        buf.put_f64_le(0.0);
        buf.put_f64_le(1.0);
        buf.put_f64_le(1.0);
        assert!(Trajectory::decode(&mut Reader::new(buf.freeze())).is_err());

        // Implausible count.
        let mut buf = BytesMut::with_capacity(8);
        buf.put_u32_le(u32::MAX);
        assert!(matches!(
            Vec::<u64>::decode(&mut Reader::new(buf.freeze())),
            Err(StoreError::Corrupt(_))
        ));

        // Invalid bool and z-id depth.
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(7);
        assert!(bool::decode(&mut Reader::new(buf.freeze())).is_err());
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u64_le(0);
        buf.put_u8(99); // depth > MAX_Z_DEPTH
        assert!(ZId::decode(&mut Reader::new(buf.freeze())).is_err());
    }

    #[test]
    fn varints_roundtrip() {
        let vals = [0u32, 1, 127, 128, 300, 16_383, 16_384, u32::MAX];
        let mut buf = BytesMut::with_capacity(64);
        for v in vals {
            put_varint_u32(&mut buf, v);
        }
        let mut r = Reader::new(buf.freeze());
        for v in vals {
            assert_eq!(r.varint_u32().unwrap(), v);
        }
        r.finish().unwrap();
        // Overlong and truncated forms error.
        let mut r = Reader::new(Bytes::from(vec![0x80u8, 0x80, 0x80, 0x80, 0x80, 0x01]));
        assert!(r.varint_u32().is_err());
        let mut r = Reader::new(Bytes::from(vec![0x80u8]));
        assert!(r.varint_u32().is_err());
        // 5-byte encodings above u32::MAX error.
        let mut r = Reader::new(Bytes::from(vec![0xFFu8, 0xFF, 0xFF, 0xFF, 0x7F]));
        assert!(r.varint_u32().is_err());
    }

    #[test]
    fn bitmaps_roundtrip() {
        for n in [0usize, 1, 63, 64, 65, 200] {
            let bits: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
            let mut buf = BytesMut::with_capacity(64);
            encode_bitmap(&bits, &mut buf);
            let mut r = Reader::new(buf.freeze());
            assert_eq!(decode_bitmap(&mut r).unwrap(), bits, "n = {n}");
            r.finish().unwrap();
        }
    }

    #[test]
    fn float_bits_survive() {
        let vals = [0.0f64, -0.0, 1.0 / 3.0, f64::MIN_POSITIVE, f64::MAX];
        let mut buf = BytesMut::with_capacity(64);
        for v in vals {
            v.encode(&mut buf);
        }
        let mut r = Reader::new(buf.freeze());
        for v in vals {
            assert_eq!(r.f64().unwrap().to_bits(), v.to_bits());
        }
    }
}
