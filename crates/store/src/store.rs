//! The store directory: snapshot files + WAL, with atomic publication,
//! checkpointing and recovery.
//!
//! ```text
//! <dir>/
//!   snapshot-00000000000000000042.tqs   one engine image per checkpoint
//!   snapshot-00000000000000000117.tqs   (newest valid one wins on open)
//!   wal.tql                             Update batches since the newest
//! ```
//!
//! Invariants the layout maintains:
//!
//! * a snapshot file becomes visible **atomically** (written to a `.tmp`
//!   name, fsynced, renamed into place, directory fsynced) — a reader or
//!   a crash never observes a half-written snapshot under its final name;
//! * the WAL is truncated only **after** the checkpoint snapshot is
//!   durably in place, so every state is recoverable at every instant:
//!   a crash between the two leaves a new snapshot plus the *previous*
//!   checkpoint's WAL, which recovery discards by its lineage header
//!   (and would skip record-by-record via epoch stamps regardless);
//! * opening never trusts file names: each candidate snapshot (newest
//!   epoch first) is read and CRC-verified — read errors count as
//!   corruption — and the first valid one is used, so a corrupt latest
//!   snapshot degrades to the previous checkpoint instead of failing the
//!   open. The WAL replays only onto the exact checkpoint it continues
//!   ([`wal`] module docs): records of a lost newer lineage are
//!   discarded rather than silently replayed onto older state.

use crate::snapshot::{self, SnapshotFile, SnapshotMeta};
use crate::wal::{self, SyncPolicy, WalRecord, WalSummary, WalWriter};
use crate::StoreError;
use bytes::Bytes;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Registry handles for the store's metrics, interned once. WAL append
/// latency includes the fsync when the [`SyncPolicy`] syncs per append —
/// that *is* the acknowledged-batch durability cost operators care about.
struct StoreMetrics {
    wal_appends: &'static tq_obs::Counter,
    wal_append_ns: &'static tq_obs::Histogram,
    wal_bytes: &'static tq_obs::Counter,
    checkpoints: &'static tq_obs::Counter,
    checkpoint_stage_ns: &'static tq_obs::Histogram,
    checkpoint_commit_ns: &'static tq_obs::Histogram,
    checkpoint_bytes: &'static tq_obs::Gauge,
    recoveries: &'static tq_obs::Counter,
    recovery_ns: &'static tq_obs::Histogram,
    recovery_wal_records: &'static tq_obs::Gauge,
}

fn metrics() -> &'static StoreMetrics {
    static M: OnceLock<StoreMetrics> = OnceLock::new();
    M.get_or_init(|| StoreMetrics {
        wal_appends: tq_obs::counter("tq_wal_appends_total", ""),
        wal_append_ns: tq_obs::histogram("tq_wal_append_ns", ""),
        wal_bytes: tq_obs::counter("tq_wal_bytes_total", ""),
        checkpoints: tq_obs::counter("tq_checkpoints_total", ""),
        checkpoint_stage_ns: tq_obs::histogram("tq_checkpoint_stage_ns", ""),
        checkpoint_commit_ns: tq_obs::histogram("tq_checkpoint_commit_ns", ""),
        checkpoint_bytes: tq_obs::gauge("tq_checkpoint_bytes", ""),
        recoveries: tq_obs::counter("tq_recoveries_total", ""),
        recovery_ns: tq_obs::histogram("tq_recovery_ns", ""),
        recovery_wal_records: tq_obs::gauge("tq_recovery_wal_records", ""),
    })
}

/// Name of the WAL file inside a store directory.
pub const WAL_FILE: &str = "wal.tql";
/// Prefix of snapshot files inside a store directory.
pub const SNAPSHOT_PREFIX: &str = "snapshot-";
/// Extension of snapshot files.
pub const SNAPSHOT_EXT: &str = "tqs";
/// Scratch name a WAL rebase writes before renaming over [`WAL_FILE`].
const WAL_REBASE_FILE: &str = "wal.tql.new";

/// Tunables of a [`Store`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// When WAL appends reach the disk ([`SyncPolicy::Always`] by
    /// default: an acknowledged batch is a durable batch).
    pub sync: SyncPolicy,
    /// Auto-checkpoint threshold: after this many WAL batches the engine
    /// writes a fresh snapshot and truncates the WAL on its own. `0`
    /// disables the threshold (checkpoints happen only on explicit
    /// `Engine::checkpoint` calls).
    pub checkpoint_every: usize,
    /// How many snapshot files to retain after a checkpoint (at least 1;
    /// keeping 2 means a corrupt newest snapshot still recovers from the
    /// previous one).
    pub keep_snapshots: usize,
    /// Run threshold auto-checkpoints on a background thread instead of
    /// the write path: the engine encodes the image from its published
    /// immutable snapshot and stages it to disk off-thread, so an apply
    /// that trips [`StoreConfig::checkpoint_every`] acks without waiting
    /// for the snapshot write. Update batches appended while the image is
    /// staging are rebased onto the new checkpoint when it commits
    /// ([`Store::commit_snapshot`]). Explicit checkpoints stay
    /// synchronous. Off by default.
    pub background_checkpoints: bool,
    /// Age-based checkpoint scheduling: once the newest checkpoint is
    /// older than this *and* the WAL holds at least one batch, the store
    /// reports a checkpoint due ([`Store::checkpoint_due_by_age`]) even
    /// though [`StoreConfig::checkpoint_every`] hasn't tripped — so a
    /// long-idle primary still compacts its log instead of carrying a
    /// short WAL tail forever. The timer is *polled*, not threaded: the
    /// single-writer funnel's idle tick asks on the write thread and
    /// routes a due checkpoint through the same (background, when
    /// configured) path as the batch-count threshold. `None` (the
    /// default) disables it.
    pub checkpoint_max_age: Option<Duration>,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            sync: SyncPolicy::Always,
            checkpoint_every: 512,
            keep_snapshots: 2,
            background_checkpoints: false,
            checkpoint_max_age: None,
        }
    }
}

/// What [`Store::open`] recovered.
#[derive(Debug)]
pub struct Recovered {
    /// The newest valid snapshot.
    pub snapshot: SnapshotFile,
    /// The *replayable* WAL records: the valid prefix of a log whose
    /// lineage header matches the recovered snapshot (empty otherwise).
    /// Records at or below the snapshot epoch are already reflected in
    /// the snapshot and must still be skipped by the replayer.
    pub wal_records: Vec<WalRecord>,
    /// The WAL read summary (tail/lineage diagnostics).
    pub wal_summary: WalSummary,
}

/// An open store directory: the durable half of an engine.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    config: StoreConfig,
    writer: WalWriter,
    wal_batches: usize,
    last_checkpoint: Instant,
}

/// Lists `(epoch, path)` of every well-named snapshot file, newest first
/// — the one listing recovery ([`Store::open`]), diagnostics (`inspect`)
/// *and* replication catch-up use, so none of them can disagree about
/// what a store contains.
pub fn snapshot_files(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(stem) = name
            .strip_prefix(SNAPSHOT_PREFIX)
            .and_then(|s| s.strip_suffix(&format!(".{SNAPSHOT_EXT}")))
        else {
            continue;
        };
        if let Ok(epoch) = stem.parse::<u64>() {
            out.push((epoch, path));
        }
    }
    out.sort_by_key(|(epoch, _)| std::cmp::Reverse(*epoch));
    Ok(out)
}

fn snapshot_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("{SNAPSHOT_PREFIX}{epoch:020}.{SNAPSHOT_EXT}"))
}

/// Removes `snapshot-*.tmp` and `wal.tql.new` leftovers of interrupted
/// checkpoints. They are invisible to recovery (never under their final
/// names) but would otherwise leak one full engine image per crashed
/// checkpoint forever.
fn remove_stale_tmp(dir: &Path) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.filter_map(|e| e.ok()) {
        let path = entry.path();
        let is_stale_tmp = path.file_name().and_then(|n| n.to_str()).is_some_and(|n| {
            (n.starts_with(SNAPSHOT_PREFIX) && n.ends_with(".tmp")) || n == WAL_REBASE_FILE
        });
        if is_stale_tmp {
            let _ = fs::remove_file(path);
        }
    }
}

/// Best-effort directory fsync (makes the rename itself durable; not
/// supported on every platform, hence not fatal).
fn sync_dir(dir: &Path) {
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
}

impl Store {
    /// Creates a fresh store in `dir` (creating the directory if needed).
    /// Refuses with [`StoreError::AlreadyExists`] when the directory
    /// already holds a store — open that with `Engine::open` instead of
    /// silently overwriting its history.
    pub fn create(dir: &Path, config: StoreConfig) -> Result<Store, StoreError> {
        fs::create_dir_all(dir)?;
        remove_stale_tmp(dir);
        if !snapshot_files(dir)?.is_empty() || dir.join(WAL_FILE).exists() {
            return Err(StoreError::AlreadyExists(dir.to_path_buf()));
        }
        // Parent epoch 0 is a placeholder: the caller's first checkpoint
        // recreates the log bound to the real snapshot epoch, and records
        // without any snapshot can never replay anyway.
        let writer = WalWriter::create(&dir.join(WAL_FILE), 0, config.sync)?;
        Ok(Store {
            dir: dir.to_path_buf(),
            config,
            writer,
            wal_batches: 0,
            last_checkpoint: Instant::now(),
        })
    }

    /// Seeds a store directory from a received snapshot image — the
    /// follower side of replication bootstrap. Writes the image under its
    /// final `snapshot-{epoch}.tqs` name (atomic tmp + rename, synced)
    /// and a fresh empty WAL bound to it, after which a normal
    /// `Engine::open` recovers the transferred state exactly. Refuses a
    /// directory that already holds a store, like [`Store::create`].
    pub fn bootstrap(
        dir: &Path,
        config: StoreConfig,
        epoch: u64,
        snapshot_bytes: &[u8],
    ) -> Result<(), StoreError> {
        fs::create_dir_all(dir)?;
        remove_stale_tmp(dir);
        if !snapshot_files(dir)?.is_empty() || dir.join(WAL_FILE).exists() {
            return Err(StoreError::AlreadyExists(dir.to_path_buf()));
        }
        // Validate before publishing: a corrupted transfer must fail the
        // bootstrap, not plant a snapshot recovery will refuse later.
        let decoded = snapshot::decode(Bytes::from(snapshot_bytes.to_vec()))?;
        if decoded.meta.epoch != epoch {
            return Err(StoreError::Corrupt(format!(
                "bootstrap snapshot declares epoch {}, transfer said {epoch}",
                decoded.meta.epoch
            )));
        }
        let tmp_path = snapshot_path(dir, epoch).with_extension("tmp");
        let mut f = fs::File::create(&tmp_path)?;
        f.write_all(snapshot_bytes)?;
        f.sync_data()?;
        drop(f);
        fs::rename(&tmp_path, snapshot_path(dir, epoch))?;
        sync_dir(dir);
        WalWriter::create(&dir.join(WAL_FILE), epoch, config.sync)?;
        Ok(())
    }

    /// Opens an existing store: picks the newest snapshot that passes
    /// CRC validation (falling back to older ones), reads the WAL's
    /// longest valid prefix, truncates any torn tail so subsequent
    /// appends extend the valid prefix, and returns both.
    pub fn open(dir: &Path, config: StoreConfig) -> Result<(Store, Recovered), StoreError> {
        let start = Instant::now();
        remove_stale_tmp(dir);
        let candidates = snapshot_files(dir)?;
        if candidates.is_empty() {
            return Err(StoreError::NoSnapshot);
        }
        let mut snapshot = None;
        for (_, path) in &candidates {
            // A read error is treated exactly like a CRC failure: disk rot
            // often surfaces as EIO, and the point of keeping older
            // checkpoints is surviving precisely that.
            let Ok(raw) = fs::read(path) else { continue };
            match snapshot::decode(Bytes::from(raw)) {
                Ok(file) => {
                    snapshot = Some(file);
                    break;
                }
                Err(_) => continue, // corrupt — try the previous checkpoint
            }
        }
        let snapshot = snapshot.ok_or(StoreError::NoSnapshot)?;

        let epoch = snapshot.meta.epoch;
        let wal_path = dir.join(WAL_FILE);
        let (wal_records, wal_summary, writer) = if wal_path.exists() {
            let (records, mut summary) = wal::read(&wal_path)?;
            if summary.parent_epoch.is_some_and(|parent| parent <= epoch) {
                // Exact lineage, or an *ancestor*: the log is bound to an
                // older checkpoint of the same linear history (a crash
                // landed between a background checkpoint's snapshot
                // rename and its WAL rebase). The snapshot descends from
                // every record at or below its epoch, so the replayer's
                // stamp skip lands exactly on the suffix the snapshot
                // lacks.
                let writer = WalWriter::open_after_recovery(
                    &wal_path,
                    summary.valid_bytes,
                    summary.parent_epoch.unwrap_or(epoch),
                    config.sync,
                )?;
                (records, summary, writer)
            } else {
                // The log continues a *newer* checkpoint, now lost to
                // corruption. Its records presuppose state this snapshot
                // does not have — replaying them would silently corrupt
                // the engine — so recovery lands on this checkpoint's
                // exact state and the log restarts bound to it.
                summary.tail_note = Some(format!(
                    "records discarded: log continues checkpoint epoch {:?}, \
                     recovered snapshot is epoch {epoch}",
                    summary.parent_epoch
                ));
                let writer = WalWriter::create(&wal_path, epoch, config.sync)?;
                (Vec::new(), summary, writer)
            }
        } else {
            // A store without a WAL (e.g. copied snapshot only) is a
            // store with zero pending batches.
            let writer = WalWriter::create(&wal_path, epoch, config.sync)?;
            (
                Vec::new(),
                WalSummary {
                    parent_epoch: Some(epoch),
                    records: 0,
                    valid_bytes: 0,
                    total_bytes: 0,
                    epoch_range: None,
                    tail_note: None,
                },
                writer,
            )
        };
        let store = Store {
            dir: dir.to_path_buf(),
            config,
            writer,
            // Records the snapshot already contains don't count against
            // the next checkpoint threshold.
            wal_batches: wal_records.iter().filter(|r| r.epoch > epoch).count(),
            // File mtimes are not trustworthy across hosts; age-based
            // scheduling restarts its clock at open.
            last_checkpoint: Instant::now(),
        };
        metrics().recovery_ns.record(start.elapsed());
        metrics().recoveries.incr();
        metrics().recovery_wal_records.set(wal_records.len() as u64);
        Ok((
            store,
            Recovered {
                snapshot,
                wal_records,
                wal_summary,
            },
        ))
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configuration this store was opened with.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Number of batches currently in the WAL (since the last checkpoint).
    pub fn wal_batches(&self) -> usize {
        self.wal_batches
    }

    /// Whether the auto-checkpoint threshold has been reached.
    pub fn should_checkpoint(&self) -> bool {
        self.config.checkpoint_every > 0 && self.wal_batches >= self.config.checkpoint_every
    }

    /// Whether [`StoreConfig::checkpoint_max_age`] has elapsed since the
    /// last checkpoint (or open) with batches still sitting in the WAL.
    /// Always `false` when no age is configured or the WAL is empty — an
    /// idle store with nothing to compact never churns snapshots.
    pub fn checkpoint_due_by_age(&self) -> bool {
        self.config
            .checkpoint_max_age
            .is_some_and(|age| self.wal_batches > 0 && self.last_checkpoint.elapsed() >= age)
    }

    /// Appends one encoded batch to the WAL (fsynced per the
    /// [`SyncPolicy`]). Called *before* the batch publishes.
    pub fn append_batch(&mut self, epoch: u64, payload: &[u8]) -> Result<(), StoreError> {
        let start = Instant::now();
        self.writer.append(epoch, payload)?;
        metrics().wal_append_ns.record(start.elapsed());
        self.wal_batches += 1;
        metrics().wal_appends.incr();
        metrics().wal_bytes.add(payload.len() as u64);
        Ok(())
    }

    /// Checkpoints: durably writes a new snapshot (atomic tmp + rename),
    /// **then** rebases the WAL onto it and prunes snapshots beyond
    /// [`StoreConfig::keep_snapshots`]. Returns the snapshot path.
    pub fn checkpoint(&mut self, meta: &SnapshotMeta, body: &[u8]) -> Result<PathBuf, StoreError> {
        let tmp_path = Store::stage_snapshot(&self.dir, meta, body)?;
        self.commit_snapshot(meta.epoch, &tmp_path)
    }

    /// The slow half of a checkpoint: encodes and durably writes the
    /// snapshot image under its `.tmp` name. Needs no store handle — a
    /// background checkpoint runs this without blocking WAL appends; the
    /// image becomes part of the store only at [`Store::commit_snapshot`].
    pub fn stage_snapshot(
        dir: &Path,
        meta: &SnapshotMeta,
        body: &[u8],
    ) -> Result<PathBuf, StoreError> {
        let start = Instant::now();
        let tmp_path = snapshot_path(dir, meta.epoch).with_extension("tmp");
        let encoded = snapshot::encode(meta, body);
        metrics().checkpoint_bytes.set(encoded.len() as u64);
        let mut f = fs::File::create(&tmp_path)?;
        f.write_all(encoded.as_ref())?;
        f.sync_data()?;
        metrics().checkpoint_stage_ns.record(start.elapsed());
        Ok(tmp_path)
    }

    /// The fast half of a checkpoint: renames a staged snapshot into
    /// place, **then** rebases the WAL onto it — batches appended while
    /// the image was staging (stamped above `epoch`) are carried into a
    /// fresh log bound to the new checkpoint; the rest are dropped. Both
    /// transitions are rename-atomic, and a crash between them leaves the
    /// old log as a valid *ancestor* lineage that [`Store::open`] still
    /// replays, so no acknowledged batch is ever lost.
    pub fn commit_snapshot(&mut self, epoch: u64, tmp_path: &Path) -> Result<PathBuf, StoreError> {
        let start = Instant::now();
        let final_path = snapshot_path(&self.dir, epoch);
        fs::rename(tmp_path, &final_path)?;
        sync_dir(&self.dir);

        let wal_path = self.dir.join(WAL_FILE);
        let (records, _) = wal::read(&wal_path)?;
        let rebase_path = self.dir.join(WAL_REBASE_FILE);
        let mut writer = WalWriter::create(&rebase_path, epoch, self.config.sync)?;
        let mut survivors = 0usize;
        for record in records.iter().filter(|r| r.epoch > epoch) {
            writer.append(record.epoch, record.payload.as_ref())?;
            survivors += 1;
        }
        writer.sync()?;
        fs::rename(&rebase_path, &wal_path)?;
        sync_dir(&self.dir);
        // The writer's descriptor follows the rename: it now appends to
        // the live `wal.tql`.
        self.writer = writer;
        self.wal_batches = survivors;
        self.last_checkpoint = Instant::now();

        for (_, stale) in snapshot_files(&self.dir)?
            .into_iter()
            .skip(self.config.keep_snapshots.max(1))
        {
            let _ = fs::remove_file(stale);
        }
        metrics().checkpoint_commit_ns.record(start.elapsed());
        metrics().checkpoints.incr();
        Ok(final_path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::BACKEND_TQTREE;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tq-store-dir-{}-{name}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn meta(epoch: u64) -> SnapshotMeta {
        SnapshotMeta {
            epoch,
            backend: BACKEND_TQTREE,
            scenario: 0,
            users: 10,
            live: 10,
            facilities: 3,
            tree_nodes: 1,
            tree_items: 10,
        }
    }

    #[test]
    fn create_checkpoint_open_cycle() {
        let dir = tmp_dir("cycle");
        let mut store = Store::create(&dir, StoreConfig::default()).unwrap();
        store.checkpoint(&meta(0), b"state at epoch zero").unwrap();
        store.append_batch(1, b"batch one").unwrap();
        store.append_batch(2, b"batch two").unwrap();
        drop(store);

        let (store, recovered) = Store::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(recovered.snapshot.meta.epoch, 0);
        assert_eq!(recovered.snapshot.body.as_ref(), b"state at epoch zero");
        assert_eq!(recovered.wal_records.len(), 2);
        assert_eq!(store.wal_batches(), 2);
    }

    #[test]
    fn create_refuses_existing_store() {
        let dir = tmp_dir("refuse");
        let mut store = Store::create(&dir, StoreConfig::default()).unwrap();
        store.checkpoint(&meta(0), b"x").unwrap();
        drop(store);
        assert!(matches!(
            Store::create(&dir, StoreConfig::default()),
            Err(StoreError::AlreadyExists(_))
        ));
    }

    #[test]
    fn checkpoint_truncates_wal_and_prunes() {
        let dir = tmp_dir("prune");
        let cfg = StoreConfig {
            keep_snapshots: 2,
            ..StoreConfig::default()
        };
        let mut store = Store::create(&dir, cfg).unwrap();
        store.checkpoint(&meta(0), b"s0").unwrap();
        for e in [5u64, 9, 12] {
            store.append_batch(e, b"b").unwrap();
            store.checkpoint(&meta(e), format!("s{e}").as_bytes()).unwrap();
            assert_eq!(store.wal_batches(), 0);
        }
        let files = snapshot_files(&dir).unwrap();
        assert_eq!(files.len(), 2, "pruned to keep_snapshots");
        assert_eq!(files[0].0, 12);
        assert_eq!(files[1].0, 9);
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_to_previous() {
        let dir = tmp_dir("fallback");
        let mut store = Store::create(&dir, StoreConfig::default()).unwrap();
        store.checkpoint(&meta(3), b"good old state").unwrap();
        store.checkpoint(&meta(8), b"bad new state").unwrap();
        // Corrupt the newest file.
        let newest = snapshot_path(&dir, 8);
        let mut raw = fs::read(&newest).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0xFF;
        fs::write(&newest, raw).unwrap();

        let (_, recovered) = Store::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(recovered.snapshot.meta.epoch, 3);
        assert_eq!(recovered.snapshot.body.as_ref(), b"good old state");
    }

    #[test]
    fn wal_of_a_lost_newer_checkpoint_is_discarded_not_replayed() {
        // checkpoint A → checkpoint B (WAL recreated, bound to B) →
        // append records on B's lineage → B's snapshot rots away.
        let dir = tmp_dir("lineage");
        let mut store = Store::create(&dir, StoreConfig::default()).unwrap();
        store.checkpoint(&meta(3), b"state A").unwrap();
        store.checkpoint(&meta(8), b"state B").unwrap();
        store.append_batch(9, b"presupposes state B").unwrap();
        drop(store);
        let newest = snapshot_path(&dir, 8);
        let mut raw = fs::read(&newest).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0xFF;
        fs::write(&newest, raw).unwrap();

        let (store, recovered) = Store::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(recovered.snapshot.meta.epoch, 3);
        assert!(
            recovered.wal_records.is_empty(),
            "records of the lost lineage must not replay onto epoch 3"
        );
        assert!(recovered.wal_summary.tail_note.is_some());
        assert_eq!(store.wal_batches(), 0);
        // The recreated log is bound to the recovered checkpoint.
        let (_, summary) = wal::read(&dir.join(WAL_FILE)).unwrap();
        assert_eq!(summary.parent_epoch, Some(3));
    }

    #[test]
    fn open_without_snapshot_errors() {
        let dir = tmp_dir("empty");
        fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            Store::open(&dir, StoreConfig::default()),
            Err(StoreError::NoSnapshot)
        ));
    }

    #[test]
    fn commit_rebases_batches_appended_while_staging() {
        // Background-checkpoint interleaving: batches land in the WAL
        // after the image is staged but before it commits. The commit
        // must carry exactly the batches the snapshot lacks.
        let dir = tmp_dir("rebase");
        let mut store = Store::create(&dir, StoreConfig::default()).unwrap();
        store.checkpoint(&meta(0), b"s0").unwrap();
        store.append_batch(1, b"in the image").unwrap();
        store.append_batch(2, b"in the image too").unwrap();
        let tmp = Store::stage_snapshot(&dir, &meta(2), b"s2").unwrap();
        store.append_batch(3, b"staged past me").unwrap();
        store.append_batch(4, b"me too").unwrap();
        store.commit_snapshot(2, &tmp).unwrap();
        assert_eq!(store.wal_batches(), 2);
        store.append_batch(5, b"after commit").unwrap();
        drop(store);

        let (store, recovered) = Store::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(recovered.snapshot.meta.epoch, 2);
        let epochs: Vec<u64> = recovered.wal_records.iter().map(|r| r.epoch).collect();
        assert_eq!(epochs, vec![3, 4, 5]);
        assert_eq!(recovered.wal_records[0].payload.as_ref(), b"staged past me");
        assert_eq!(store.wal_batches(), 3);
    }

    #[test]
    fn ancestor_lineage_wal_replays_after_crash_before_rebase() {
        // A crash between a committed snapshot's rename and its WAL
        // rebase leaves the log bound to the *previous* checkpoint. The
        // snapshot descends from that lineage, so the records above its
        // epoch must replay rather than be discarded.
        let dir = tmp_dir("ancestor");
        let mut store = Store::create(&dir, StoreConfig::default()).unwrap();
        store.checkpoint(&meta(0), b"s0").unwrap();
        store.append_batch(1, b"b1").unwrap();
        store.append_batch(2, b"b2").unwrap();
        store.append_batch(3, b"b3").unwrap();
        // Simulate the crash: the epoch-2 snapshot lands, the rebase
        // never runs (the WAL stays bound to epoch 0).
        let tmp = Store::stage_snapshot(&dir, &meta(2), b"s2").unwrap();
        fs::rename(&tmp, snapshot_path(&dir, 2)).unwrap();
        drop(store);

        let (store, recovered) = Store::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(recovered.snapshot.meta.epoch, 2);
        // All records come back (the replayer skips by stamp), but only
        // the post-snapshot ones count against the threshold.
        assert_eq!(recovered.wal_records.len(), 3);
        assert_eq!(store.wal_batches(), 1);
        assert!(recovered.wal_summary.tail_note.is_none());
    }

    #[test]
    fn checkpoint_age_needs_both_elapsed_time_and_pending_batches() {
        let dir = tmp_dir("age");
        let cfg = StoreConfig {
            checkpoint_every: 1_000_000,
            checkpoint_max_age: Some(Duration::from_millis(30)),
            ..StoreConfig::default()
        };
        let mut store = Store::create(&dir, cfg).unwrap();
        store.checkpoint(&meta(0), b"s0").unwrap();
        // Idle with an empty WAL: never due, no matter how old.
        std::thread::sleep(Duration::from_millis(60));
        assert!(!store.checkpoint_due_by_age());
        // A pending batch alone isn't enough either — the clock restarts
        // at the checkpoint above, not at the append.
        store.append_batch(1, b"b1").unwrap();
        assert!(store.checkpoint_due_by_age(), "age elapsed with a pending batch");
        store.checkpoint(&meta(1), b"s1").unwrap();
        store.append_batch(2, b"b2").unwrap();
        assert!(!store.checkpoint_due_by_age(), "fresh checkpoint resets the clock");
        std::thread::sleep(Duration::from_millis(60));
        assert!(store.checkpoint_due_by_age());
        // No age configured: always false.
        let dir2 = tmp_dir("age-off");
        let mut plain = Store::create(&dir2, StoreConfig::default()).unwrap();
        plain.checkpoint(&meta(0), b"s0").unwrap();
        plain.append_batch(1, b"b").unwrap();
        std::thread::sleep(Duration::from_millis(10));
        assert!(!plain.checkpoint_due_by_age());
    }

    #[test]
    fn bootstrap_seeds_an_openable_store() {
        // Encode a snapshot the way a primary's checkpoint would, ship
        // its raw file bytes, and bootstrap a fresh directory from them.
        let src = tmp_dir("bootstrap-src");
        let mut primary = Store::create(&src, StoreConfig::default()).unwrap();
        let path = primary.checkpoint(&meta(7), b"shipped state").unwrap();
        let image = fs::read(path).unwrap();

        let dst = tmp_dir("bootstrap-dst");
        Store::bootstrap(&dst, StoreConfig::default(), 7, &image).unwrap();
        let (store, recovered) = Store::open(&dst, StoreConfig::default()).unwrap();
        assert_eq!(recovered.snapshot.meta.epoch, 7);
        assert_eq!(recovered.snapshot.body.as_ref(), b"shipped state");
        assert_eq!(store.wal_batches(), 0);
        let (_, summary) = wal::read(&dst.join(WAL_FILE)).unwrap();
        assert_eq!(summary.parent_epoch, Some(7));

        // Refuses an existing store and a corrupted/mislabeled image.
        assert!(matches!(
            Store::bootstrap(&dst, StoreConfig::default(), 7, &image),
            Err(StoreError::AlreadyExists(_))
        ));
        let dst2 = tmp_dir("bootstrap-bad");
        assert!(Store::bootstrap(&dst2, StoreConfig::default(), 8, &image).is_err());
        let mut bad = image.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xFF;
        assert!(Store::bootstrap(&dst2, StoreConfig::default(), 7, &bad).is_err());
    }

    #[test]
    fn should_checkpoint_threshold() {
        let dir = tmp_dir("threshold");
        let cfg = StoreConfig {
            checkpoint_every: 2,
            ..StoreConfig::default()
        };
        let mut store = Store::create(&dir, cfg).unwrap();
        store.checkpoint(&meta(0), b"s").unwrap();
        assert!(!store.should_checkpoint());
        store.append_batch(1, b"b").unwrap();
        assert!(!store.should_checkpoint());
        store.append_batch(2, b"b").unwrap();
        assert!(store.should_checkpoint());
    }
}
