//! The store directory: snapshot files + WAL, with atomic publication,
//! checkpointing and recovery.
//!
//! ```text
//! <dir>/
//!   snapshot-00000000000000000042.tqs   one engine image per checkpoint
//!   snapshot-00000000000000000117.tqs   (newest valid one wins on open)
//!   wal.tql                             Update batches since the newest
//! ```
//!
//! Invariants the layout maintains:
//!
//! * a snapshot file becomes visible **atomically** (written to a `.tmp`
//!   name, fsynced, renamed into place, directory fsynced) — a reader or
//!   a crash never observes a half-written snapshot under its final name;
//! * the WAL is truncated only **after** the checkpoint snapshot is
//!   durably in place, so every state is recoverable at every instant:
//!   a crash between the two leaves a new snapshot plus the *previous*
//!   checkpoint's WAL, which recovery discards by its lineage header
//!   (and would skip record-by-record via epoch stamps regardless);
//! * opening never trusts file names: each candidate snapshot (newest
//!   epoch first) is read and CRC-verified — read errors count as
//!   corruption — and the first valid one is used, so a corrupt latest
//!   snapshot degrades to the previous checkpoint instead of failing the
//!   open. The WAL replays only onto the exact checkpoint it continues
//!   ([`wal`] module docs): records of a lost newer lineage are
//!   discarded rather than silently replayed onto older state.

use crate::snapshot::{self, SnapshotFile, SnapshotMeta};
use crate::wal::{self, SyncPolicy, WalRecord, WalSummary, WalWriter};
use crate::StoreError;
use bytes::Bytes;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Name of the WAL file inside a store directory.
pub const WAL_FILE: &str = "wal.tql";
/// Prefix of snapshot files inside a store directory.
pub const SNAPSHOT_PREFIX: &str = "snapshot-";
/// Extension of snapshot files.
pub const SNAPSHOT_EXT: &str = "tqs";

/// Tunables of a [`Store`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// When WAL appends reach the disk ([`SyncPolicy::Always`] by
    /// default: an acknowledged batch is a durable batch).
    pub sync: SyncPolicy,
    /// Auto-checkpoint threshold: after this many WAL batches the engine
    /// writes a fresh snapshot and truncates the WAL on its own. `0`
    /// disables the threshold (checkpoints happen only on explicit
    /// `Engine::checkpoint` calls).
    pub checkpoint_every: usize,
    /// How many snapshot files to retain after a checkpoint (at least 1;
    /// keeping 2 means a corrupt newest snapshot still recovers from the
    /// previous one).
    pub keep_snapshots: usize,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            sync: SyncPolicy::Always,
            checkpoint_every: 512,
            keep_snapshots: 2,
        }
    }
}

/// What [`Store::open`] recovered.
#[derive(Debug)]
pub struct Recovered {
    /// The newest valid snapshot.
    pub snapshot: SnapshotFile,
    /// The *replayable* WAL records: the valid prefix of a log whose
    /// lineage header matches the recovered snapshot (empty otherwise).
    /// Records at or below the snapshot epoch are already reflected in
    /// the snapshot and must still be skipped by the replayer.
    pub wal_records: Vec<WalRecord>,
    /// The WAL read summary (tail/lineage diagnostics).
    pub wal_summary: WalSummary,
}

/// An open store directory: the durable half of an engine.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    config: StoreConfig,
    writer: WalWriter,
    wal_batches: usize,
}

/// Lists `(epoch, path)` of every well-named snapshot file, newest first
/// — the one listing both recovery ([`Store::open`]) and diagnostics
/// (`inspect`) use, so the two can never disagree about what a store
/// contains.
pub(crate) fn snapshot_files(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(stem) = name
            .strip_prefix(SNAPSHOT_PREFIX)
            .and_then(|s| s.strip_suffix(&format!(".{SNAPSHOT_EXT}")))
        else {
            continue;
        };
        if let Ok(epoch) = stem.parse::<u64>() {
            out.push((epoch, path));
        }
    }
    out.sort_by_key(|(epoch, _)| std::cmp::Reverse(*epoch));
    Ok(out)
}

fn snapshot_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("{SNAPSHOT_PREFIX}{epoch:020}.{SNAPSHOT_EXT}"))
}

/// Removes `snapshot-*.tmp` leftovers of interrupted checkpoints. They
/// are invisible to recovery (never under their final name) but would
/// otherwise leak one full engine image per crashed checkpoint forever.
fn remove_stale_tmp(dir: &Path) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.filter_map(|e| e.ok()) {
        let path = entry.path();
        let is_stale_tmp = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with(SNAPSHOT_PREFIX) && n.ends_with(".tmp"));
        if is_stale_tmp {
            let _ = fs::remove_file(path);
        }
    }
}

/// Best-effort directory fsync (makes the rename itself durable; not
/// supported on every platform, hence not fatal).
fn sync_dir(dir: &Path) {
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
}

impl Store {
    /// Creates a fresh store in `dir` (creating the directory if needed).
    /// Refuses with [`StoreError::AlreadyExists`] when the directory
    /// already holds a store — open that with `Engine::open` instead of
    /// silently overwriting its history.
    pub fn create(dir: &Path, config: StoreConfig) -> Result<Store, StoreError> {
        fs::create_dir_all(dir)?;
        remove_stale_tmp(dir);
        if !snapshot_files(dir)?.is_empty() || dir.join(WAL_FILE).exists() {
            return Err(StoreError::AlreadyExists(dir.to_path_buf()));
        }
        // Parent epoch 0 is a placeholder: the caller's first checkpoint
        // recreates the log bound to the real snapshot epoch, and records
        // without any snapshot can never replay anyway.
        let writer = WalWriter::create(&dir.join(WAL_FILE), 0, config.sync)?;
        Ok(Store {
            dir: dir.to_path_buf(),
            config,
            writer,
            wal_batches: 0,
        })
    }

    /// Opens an existing store: picks the newest snapshot that passes
    /// CRC validation (falling back to older ones), reads the WAL's
    /// longest valid prefix, truncates any torn tail so subsequent
    /// appends extend the valid prefix, and returns both.
    pub fn open(dir: &Path, config: StoreConfig) -> Result<(Store, Recovered), StoreError> {
        remove_stale_tmp(dir);
        let candidates = snapshot_files(dir)?;
        if candidates.is_empty() {
            return Err(StoreError::NoSnapshot);
        }
        let mut snapshot = None;
        for (_, path) in &candidates {
            // A read error is treated exactly like a CRC failure: disk rot
            // often surfaces as EIO, and the point of keeping older
            // checkpoints is surviving precisely that.
            let Ok(raw) = fs::read(path) else { continue };
            match snapshot::decode(Bytes::from(raw)) {
                Ok(file) => {
                    snapshot = Some(file);
                    break;
                }
                Err(_) => continue, // corrupt — try the previous checkpoint
            }
        }
        let snapshot = snapshot.ok_or(StoreError::NoSnapshot)?;

        let epoch = snapshot.meta.epoch;
        let wal_path = dir.join(WAL_FILE);
        let (wal_records, wal_summary, writer) = if wal_path.exists() {
            let (records, mut summary) = wal::read(&wal_path)?;
            if summary.parent_epoch == Some(epoch) {
                let writer = WalWriter::open_after_recovery(
                    &wal_path,
                    summary.valid_bytes,
                    epoch,
                    config.sync,
                )?;
                (records, summary, writer)
            } else {
                // Lineage mismatch: the log continues a different
                // checkpoint (usually the newest snapshot, now lost to
                // corruption, or a checkpoint whose WAL-truncate was
                // interrupted). Its records presuppose state this
                // snapshot does not have — replaying them would silently
                // corrupt the engine — so recovery lands on this
                // checkpoint's exact state and the log restarts bound to
                // it.
                summary.tail_note = Some(format!(
                    "records discarded: log continues checkpoint epoch {:?}, \
                     recovered snapshot is epoch {epoch}",
                    summary.parent_epoch
                ));
                let writer = WalWriter::create(&wal_path, epoch, config.sync)?;
                (Vec::new(), summary, writer)
            }
        } else {
            // A store without a WAL (e.g. copied snapshot only) is a
            // store with zero pending batches.
            let writer = WalWriter::create(&wal_path, epoch, config.sync)?;
            (
                Vec::new(),
                WalSummary {
                    parent_epoch: Some(epoch),
                    records: 0,
                    valid_bytes: 0,
                    total_bytes: 0,
                    epoch_range: None,
                    tail_note: None,
                },
                writer,
            )
        };
        let store = Store {
            dir: dir.to_path_buf(),
            config,
            writer,
            wal_batches: wal_records.len(),
        };
        Ok((
            store,
            Recovered {
                snapshot,
                wal_records,
                wal_summary,
            },
        ))
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configuration this store was opened with.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Number of batches currently in the WAL (since the last checkpoint).
    pub fn wal_batches(&self) -> usize {
        self.wal_batches
    }

    /// Whether the auto-checkpoint threshold has been reached.
    pub fn should_checkpoint(&self) -> bool {
        self.config.checkpoint_every > 0 && self.wal_batches >= self.config.checkpoint_every
    }

    /// Appends one encoded batch to the WAL (fsynced per the
    /// [`SyncPolicy`]). Called *before* the batch publishes.
    pub fn append_batch(&mut self, epoch: u64, payload: &[u8]) -> Result<(), StoreError> {
        self.writer.append(epoch, payload)?;
        self.wal_batches += 1;
        Ok(())
    }

    /// Checkpoints: durably writes a new snapshot (atomic tmp + rename),
    /// **then** truncates the WAL and prunes snapshots beyond
    /// [`StoreConfig::keep_snapshots`]. Returns the snapshot path.
    pub fn checkpoint(&mut self, meta: &SnapshotMeta, body: &[u8]) -> Result<PathBuf, StoreError> {
        let final_path = snapshot_path(&self.dir, meta.epoch);
        let tmp_path = final_path.with_extension("tmp");
        let encoded = snapshot::encode(meta, body);
        {
            let mut f = fs::File::create(&tmp_path)?;
            f.write_all(encoded.as_ref())?;
            f.sync_data()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        sync_dir(&self.dir);

        // Only now is it safe to drop the logged batches; the fresh log
        // is bound to the snapshot it continues from.
        self.writer = WalWriter::create(&self.dir.join(WAL_FILE), meta.epoch, self.config.sync)?;
        self.wal_batches = 0;

        for (_, stale) in snapshot_files(&self.dir)?
            .into_iter()
            .skip(self.config.keep_snapshots.max(1))
        {
            let _ = fs::remove_file(stale);
        }
        Ok(final_path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::BACKEND_TQTREE;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tq-store-dir-{}-{name}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn meta(epoch: u64) -> SnapshotMeta {
        SnapshotMeta {
            epoch,
            backend: BACKEND_TQTREE,
            scenario: 0,
            users: 10,
            live: 10,
            facilities: 3,
            tree_nodes: 1,
            tree_items: 10,
        }
    }

    #[test]
    fn create_checkpoint_open_cycle() {
        let dir = tmp_dir("cycle");
        let mut store = Store::create(&dir, StoreConfig::default()).unwrap();
        store.checkpoint(&meta(0), b"state at epoch zero").unwrap();
        store.append_batch(1, b"batch one").unwrap();
        store.append_batch(2, b"batch two").unwrap();
        drop(store);

        let (store, recovered) = Store::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(recovered.snapshot.meta.epoch, 0);
        assert_eq!(recovered.snapshot.body.as_ref(), b"state at epoch zero");
        assert_eq!(recovered.wal_records.len(), 2);
        assert_eq!(store.wal_batches(), 2);
    }

    #[test]
    fn create_refuses_existing_store() {
        let dir = tmp_dir("refuse");
        let mut store = Store::create(&dir, StoreConfig::default()).unwrap();
        store.checkpoint(&meta(0), b"x").unwrap();
        drop(store);
        assert!(matches!(
            Store::create(&dir, StoreConfig::default()),
            Err(StoreError::AlreadyExists(_))
        ));
    }

    #[test]
    fn checkpoint_truncates_wal_and_prunes() {
        let dir = tmp_dir("prune");
        let cfg = StoreConfig {
            keep_snapshots: 2,
            ..StoreConfig::default()
        };
        let mut store = Store::create(&dir, cfg).unwrap();
        store.checkpoint(&meta(0), b"s0").unwrap();
        for e in [5u64, 9, 12] {
            store.append_batch(e, b"b").unwrap();
            store.checkpoint(&meta(e), format!("s{e}").as_bytes()).unwrap();
            assert_eq!(store.wal_batches(), 0);
        }
        let files = snapshot_files(&dir).unwrap();
        assert_eq!(files.len(), 2, "pruned to keep_snapshots");
        assert_eq!(files[0].0, 12);
        assert_eq!(files[1].0, 9);
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_to_previous() {
        let dir = tmp_dir("fallback");
        let mut store = Store::create(&dir, StoreConfig::default()).unwrap();
        store.checkpoint(&meta(3), b"good old state").unwrap();
        store.checkpoint(&meta(8), b"bad new state").unwrap();
        // Corrupt the newest file.
        let newest = snapshot_path(&dir, 8);
        let mut raw = fs::read(&newest).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0xFF;
        fs::write(&newest, raw).unwrap();

        let (_, recovered) = Store::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(recovered.snapshot.meta.epoch, 3);
        assert_eq!(recovered.snapshot.body.as_ref(), b"good old state");
    }

    #[test]
    fn wal_of_a_lost_newer_checkpoint_is_discarded_not_replayed() {
        // checkpoint A → checkpoint B (WAL recreated, bound to B) →
        // append records on B's lineage → B's snapshot rots away.
        let dir = tmp_dir("lineage");
        let mut store = Store::create(&dir, StoreConfig::default()).unwrap();
        store.checkpoint(&meta(3), b"state A").unwrap();
        store.checkpoint(&meta(8), b"state B").unwrap();
        store.append_batch(9, b"presupposes state B").unwrap();
        drop(store);
        let newest = snapshot_path(&dir, 8);
        let mut raw = fs::read(&newest).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0xFF;
        fs::write(&newest, raw).unwrap();

        let (store, recovered) = Store::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(recovered.snapshot.meta.epoch, 3);
        assert!(
            recovered.wal_records.is_empty(),
            "records of the lost lineage must not replay onto epoch 3"
        );
        assert!(recovered.wal_summary.tail_note.is_some());
        assert_eq!(store.wal_batches(), 0);
        // The recreated log is bound to the recovered checkpoint.
        let (_, summary) = wal::read(&dir.join(WAL_FILE)).unwrap();
        assert_eq!(summary.parent_epoch, Some(3));
    }

    #[test]
    fn open_without_snapshot_errors() {
        let dir = tmp_dir("empty");
        fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            Store::open(&dir, StoreConfig::default()),
            Err(StoreError::NoSnapshot)
        ));
    }

    #[test]
    fn should_checkpoint_threshold() {
        let dir = tmp_dir("threshold");
        let cfg = StoreConfig {
            checkpoint_every: 2,
            ..StoreConfig::default()
        };
        let mut store = Store::create(&dir, cfg).unwrap();
        store.checkpoint(&meta(0), b"s").unwrap();
        assert!(!store.should_checkpoint());
        store.append_batch(1, b"b").unwrap();
        assert!(!store.should_checkpoint());
        store.append_batch(2, b"b").unwrap();
        assert!(store.should_checkpoint());
    }
}
