//! Durable state for TQ engines — the storage layer under
//! [`tq_core`](../tq_core/index.html)'s `Engine`.
//!
//! The TQ-tree and its served tables are expensive to construct, yet
//! without this crate every process rebuilt them from raw trajectory data
//! and every applied update batch died with the process. `tq-store`
//! provides the two durable artifacts a serving system needs, plus the
//! codec and file plumbing beneath them:
//!
//! * **Snapshot files** ([`snapshot`]) — a versioned, length-prefixed,
//!   checksummed binary image of an engine's full state at one epoch
//!   (user trajectories, facilities, service model, backend build
//!   parameters, and the TQ-tree arena itself, so loading is `O(read)`
//!   rather than `O(rebuild)`).
//! * **A write-ahead log** ([`wal`]) — one CRC-framed record per applied
//!   `Update` batch, stamped with the epoch the batch published, with a
//!   configurable [`SyncPolicy`]. Recovery reads the *longest valid
//!   prefix*: torn tails and bit-flipped records are detected by CRC and
//!   cleanly ignored, never panicked on.
//! * **A store directory** ([`store::Store`]) — `snapshot-<epoch>.tqs`
//!   files plus `wal.tql`, with atomic (write-temp-then-rename) snapshot
//!   publication, checkpoint/truncate, and stale-snapshot pruning.
//!
//! The division of labour with `tq-core`: this crate owns the *format*
//! (framing, checksums, file layout, recovery rules) and the codecs for
//! the geometry/trajectory vocabulary it can see; `tq-core` encodes its
//! own engine and arena state through the [`codec`] traits and drives
//! `Store` from `Engine::apply`/`checkpoint`/`open`.
//!
//! Everything is little-endian and bit-exact: an `f64` travels as its raw
//! bits, so a loaded engine answers queries bit-identical to the engine
//! that wrote the files.

#![warn(missing_docs)]

pub mod codec;
pub mod crc;
pub mod inspect;
pub mod manifest;
pub mod replmeta;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use codec::{Decode, Encode, Reader};
pub use replmeta::ReplMeta;
pub use snapshot::{SnapshotFile, SnapshotMeta, BACKEND_BASELINE, BACKEND_TQTREE};
pub use store::{snapshot_files, Store, StoreConfig};
pub use wal::{SyncPolicy, WalRecord, WalSummary, WalTailReader, WalWriter};

/// Errors of the storage layer.
///
/// Decoding errors are deliberately coarse: recovery code treats any of
/// them as "this file (or record) is not usable", logs the reason, and
/// falls back — to an older snapshot, or to the WAL prefix before the bad
/// record. Nothing in this crate panics on malformed input.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// The buffer does not start with the expected magic number.
    BadMagic {
        /// What the file claimed to be.
        found: u32,
        /// What the caller expected.
        expected: u32,
    },
    /// The file was written by an unsupported format version.
    BadVersion(u16),
    /// The buffer ended before the declared contents.
    Truncated,
    /// A checksum mismatch: the payload was torn or bit-flipped.
    CrcMismatch {
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum computed over the payload actually read.
        computed: u32,
    },
    /// The bytes decoded, but describe an impossible value (a count that
    /// exceeds the buffer, a non-finite coordinate, a dangling index…).
    Corrupt(String),
    /// No usable snapshot exists in the store directory.
    NoSnapshot,
    /// `persist_to` was pointed at a directory that already holds a store
    /// (open it with `Engine::open` instead of overwriting it).
    AlreadyExists(std::path::PathBuf),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "I/O error: {e}"),
            StoreError::BadMagic { found, expected } => write!(
                f,
                "bad magic {found:#010x} (expected {expected:#010x}) — not a tq-store file"
            ),
            StoreError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            StoreError::Truncated => write!(f, "buffer truncated before declared contents"),
            StoreError::CrcMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            StoreError::Corrupt(why) => write!(f, "corrupt contents: {why}"),
            StoreError::NoSnapshot => write!(f, "store holds no usable snapshot"),
            StoreError::AlreadyExists(p) => write!(
                f,
                "{} already holds a tq-store; open it instead of persisting over it",
                p.display()
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}
