//! The update write-ahead log: CRC-framed `Update`-batch records with a
//! configurable fsync policy and longest-valid-prefix recovery.
//!
//! ```text
//! file   = header record*
//! header = magic "TQWL" (u32) | version (u16) | parent epoch (u64) | header crc (u32)
//! record = payload_len (u32) | epoch (u64) | crc (u32) | payload
//! ```
//!
//! The header's **parent epoch** names the checkpoint snapshot this WAL
//! continues from (the log is recreated at every checkpoint). Recovery
//! replays records only onto that exact snapshot: if the parent
//! snapshot is lost to bit rot and an older checkpoint is used instead,
//! the records presuppose state the older snapshot does not have —
//! replaying them there would silently corrupt the engine (e.g. inserts
//! assigned the wrong trajectory ids), so they are discarded and the
//! open recovers the older checkpoint's exact state.
//!
//! `crc` is CRC-32 over the epoch bytes followed by the payload, so a
//! record torn anywhere — length field, epoch, checksum, payload — fails
//! verification. [`read`] returns the **longest valid prefix**: it stops
//! at the first record whose frame is incomplete or whose CRC mismatches
//! and reports why in the [`WalSummary`], but never errors on (let alone
//! panics over) a damaged tail — a torn tail is the *expected* state
//! after a crash mid-append. The payload is opaque here; `tq-core`
//! encodes one applied `Update` batch per record, stamped with the epoch
//! that batch published.

use crate::crc::Crc32;
use crate::StoreError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::Path;

/// WAL file magic, `"TQWL"`.
pub const MAGIC: u32 = u32::from_le_bytes(*b"TQWL");
/// Current WAL format version.
pub const VERSION: u16 = 1;
/// File-header size in bytes (magic + version + parent epoch + CRC).
pub const HEADER_LEN: u64 = 18;
/// Per-record frame size (length + epoch + CRC) before the payload.
pub const FRAME_LEN: usize = 16;

/// When the WAL writer calls `fsync`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` after every appended record — a batch acknowledged is a
    /// batch on disk. The durable default.
    Always,
    /// `fsync` every `n` records (and on explicit [`WalWriter::sync`]).
    /// A crash can lose up to the last `n - 1` acknowledged batches.
    EveryN(u32),
    /// Never `fsync`; the OS flushes when it pleases. Fastest, weakest.
    Never,
}

/// One valid WAL record.
#[derive(Debug, Clone)]
pub struct WalRecord {
    /// The epoch the logged batch published.
    pub epoch: u64,
    /// The opaque batch payload.
    pub payload: Bytes,
}

/// What [`read`] found in a WAL file.
#[derive(Debug, Clone)]
pub struct WalSummary {
    /// Epoch of the checkpoint snapshot this WAL continues from
    /// (`None` when the file header itself was torn).
    pub parent_epoch: Option<u64>,
    /// Number of valid records (the recovered prefix).
    pub records: usize,
    /// Byte length of the valid prefix (header + valid records) — the
    /// offset a writer should truncate to before appending.
    pub valid_bytes: u64,
    /// Total file length in bytes.
    pub total_bytes: u64,
    /// Epochs of the first and last valid record.
    pub epoch_range: Option<(u64, u64)>,
    /// Why reading stopped before the end of the file, when it did.
    pub tail_note: Option<String>,
}

/// Encodes one record frame + payload.
fn encode_record(epoch: u64, payload: &[u8]) -> BytesMut {
    let mut crc = Crc32::new();
    crc.update(&epoch.to_le_bytes());
    crc.update(payload);
    let mut buf = BytesMut::with_capacity(FRAME_LEN + payload.len());
    buf.put_u32_le(payload.len() as u32);
    buf.put_u64_le(epoch);
    buf.put_u32_le(crc.finish());
    buf.put_slice(payload);
    buf
}

/// Reads a WAL file, returning its longest valid record prefix.
///
/// Errors only when the file cannot be read at all or is recognizably
/// *not* a WAL (wrong magic on a file long enough to carry one, or a
/// future format version). Torn headers, torn records and bit-flipped
/// records are not errors — they terminate the prefix, with the reason
/// recorded in [`WalSummary::tail_note`].
pub fn read(path: &Path) -> Result<(Vec<WalRecord>, WalSummary), StoreError> {
    let mut raw = Vec::new();
    File::open(path)?.read_to_end(&mut raw)?;
    let total_bytes = raw.len() as u64;
    let bytes: Bytes = raw.into();

    if total_bytes < HEADER_LEN {
        // A crash during WAL creation can leave a short stub; there is
        // nothing it could contain.
        return Ok((
            Vec::new(),
            WalSummary {
                parent_epoch: None,
                records: 0,
                valid_bytes: 0,
                total_bytes,
                epoch_range: None,
                tail_note: Some("torn file header".into()),
            },
        ));
    }
    let mut header = bytes.slice(0..HEADER_LEN as usize);
    let magic = header.get_u32_le();
    if magic != MAGIC {
        return Err(StoreError::BadMagic {
            found: magic,
            expected: MAGIC,
        });
    }
    let version = header.get_u16_le();
    if version != VERSION {
        return Err(StoreError::BadVersion(version));
    }
    let parent_epoch = header.get_u64_le();
    let stored_crc = header.get_u32_le();
    let computed = crate::crc::crc32(bytes.slice(0..HEADER_LEN as usize - 4).as_ref());
    if stored_crc != computed {
        // The lineage field decides whether acknowledged records replay;
        // a rotted header must be a loud error, never a silent discard.
        return Err(StoreError::CrcMismatch {
            stored: stored_crc,
            computed,
        });
    }

    let mut records = Vec::new();
    let mut offset = HEADER_LEN as usize;
    let mut tail_note = None;
    while offset < bytes.len() {
        let remaining = bytes.len() - offset;
        if remaining < FRAME_LEN {
            tail_note = Some(format!("torn frame ({remaining} trailing bytes)"));
            break;
        }
        let mut frame = bytes.slice(offset..offset + FRAME_LEN);
        let len = frame.get_u32_le() as usize;
        let epoch = frame.get_u64_le();
        let stored_crc = frame.get_u32_le();
        if len > remaining - FRAME_LEN {
            tail_note = Some(format!(
                "torn record at offset {offset} (declares {len} payload bytes, {} remain)",
                remaining - FRAME_LEN
            ));
            break;
        }
        let payload = bytes.slice(offset + FRAME_LEN..offset + FRAME_LEN + len);
        let mut crc = Crc32::new();
        crc.update(&epoch.to_le_bytes());
        crc.update(payload.as_ref());
        if crc.finish() != stored_crc {
            tail_note = Some(format!("checksum mismatch at offset {offset}"));
            break;
        }
        records.push(WalRecord { epoch, payload });
        offset += FRAME_LEN + len;
    }
    let epoch_range = match (records.first(), records.last()) {
        (Some(a), Some(b)) => Some((a.epoch, b.epoch)),
        _ => None,
    };
    let summary = WalSummary {
        parent_epoch: Some(parent_epoch),
        records: records.len(),
        valid_bytes: offset as u64,
        total_bytes,
        epoch_range,
        tail_note,
    };
    Ok((records, summary))
}

/// A tail-following WAL reader: yields valid records one at a time and
/// treats an incomplete or torn tail as a *re-pollable* end of stream.
///
/// Unlike [`read`] (recovery: slurp the whole file once), this reader is
/// built for **live following** — a replication feed reading the WAL
/// while the writer is still appending to it. [`WalTailReader::poll`]
/// returns `Ok(Some(record))` for each fully written, CRC-valid record
/// and `Ok(None)` when the bytes at the current offset do not (yet) form
/// one: a short frame, a payload still being written, or a checksum that
/// doesn't match. The offset only advances past *valid* records, so a
/// `None` caused by a torn in-progress append resolves itself on the
/// next poll once the writer finishes — and every record is observed
/// exactly once, in file order.
///
/// A mid-file bit flip is indistinguishable from a torn tail by design
/// (same longest-valid-prefix rule as recovery): the reader parks at the
/// damage and keeps returning `None` rather than guessing at record
/// boundaries beyond it.
#[derive(Debug)]
pub struct WalTailReader {
    file: File,
    offset: u64,
    parent_epoch: u64,
}

impl WalTailReader {
    /// Opens the WAL at `path` for tail following, validating the file
    /// header (magic, version, header CRC) up front. Errors if the file
    /// is missing, shorter than a header, or not a WAL — a tail follower
    /// attaches to a store that already exists, so a torn header is the
    /// caller's problem, not an empty stream.
    pub fn open(path: &Path) -> Result<WalTailReader, StoreError> {
        let mut file = File::open(path)?;
        let mut header = [0u8; HEADER_LEN as usize];
        file.read_exact(&mut header).map_err(|_| StoreError::Truncated)?;
        let mut buf = Bytes::from(header.to_vec());
        let magic = buf.get_u32_le();
        if magic != MAGIC {
            return Err(StoreError::BadMagic {
                found: magic,
                expected: MAGIC,
            });
        }
        let version = buf.get_u16_le();
        if version != VERSION {
            return Err(StoreError::BadVersion(version));
        }
        let parent_epoch = buf.get_u64_le();
        let stored_crc = buf.get_u32_le();
        let computed = crate::crc::crc32(&header[..HEADER_LEN as usize - 4]);
        if stored_crc != computed {
            return Err(StoreError::CrcMismatch {
                stored: stored_crc,
                computed,
            });
        }
        Ok(WalTailReader {
            file,
            offset: HEADER_LEN,
            parent_epoch,
        })
    }

    /// Epoch of the checkpoint snapshot this WAL continues from.
    pub fn parent_epoch(&self) -> u64 {
        self.parent_epoch
    }

    /// Byte offset of the next unread record (header + consumed records).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Returns the next valid record, or `Ok(None)` if the file currently
    /// ends (cleanly or torn) at the reader's offset. `None` is not
    /// final: poll again after the writer appends more.
    pub fn poll(&mut self) -> Result<Option<WalRecord>, StoreError> {
        let len = self.file.metadata()?.len();
        if len < self.offset + FRAME_LEN as u64 {
            return Ok(None);
        }
        self.file.seek(SeekFrom::Start(self.offset))?;
        let mut frame = [0u8; FRAME_LEN];
        self.file.read_exact(&mut frame)?;
        let mut buf = Bytes::from(frame.to_vec());
        let payload_len = buf.get_u32_le() as u64;
        let epoch = buf.get_u64_le();
        let stored_crc = buf.get_u32_le();
        if len < self.offset + FRAME_LEN as u64 + payload_len {
            // Payload still being written (or the tail is torn): not a
            // record yet. A corrupt length field parks here forever,
            // which is the safe reading of unverifiable bytes.
            return Ok(None);
        }
        let mut payload = vec![0u8; payload_len as usize];
        self.file.read_exact(&mut payload)?;
        let mut crc = Crc32::new();
        crc.update(&epoch.to_le_bytes());
        crc.update(&payload);
        if crc.finish() != stored_crc {
            return Ok(None);
        }
        self.offset += FRAME_LEN as u64 + payload_len;
        Ok(Some(WalRecord {
            epoch,
            payload: payload.into(),
        }))
    }
}

/// An append handle over a WAL file.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    policy: SyncPolicy,
    since_sync: u32,
}

impl WalWriter {
    /// Creates (or truncates to empty) the WAL at `path` and writes the
    /// file header — including the epoch of the checkpoint snapshot this
    /// log continues from — synced.
    pub fn create(
        path: &Path,
        parent_epoch: u64,
        policy: SyncPolicy,
    ) -> Result<WalWriter, StoreError> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        let mut header = BytesMut::with_capacity(HEADER_LEN as usize);
        header.put_u32_le(MAGIC);
        header.put_u16_le(VERSION);
        header.put_u64_le(parent_epoch);
        let body = header.freeze();
        let mut full = BytesMut::with_capacity(HEADER_LEN as usize);
        full.put_slice(body.as_ref());
        full.put_u32_le(crate::crc::crc32(body.as_ref()));
        file.write_all(full.freeze().as_ref())?;
        file.sync_data()?;
        Ok(WalWriter {
            file,
            policy,
            since_sync: 0,
        })
    }

    /// Opens an existing WAL for appending after recovery: truncates the
    /// file to `valid_bytes` (discarding any torn tail so fresh appends
    /// land on the valid prefix) and seeks to the end. When `valid_bytes`
    /// is shorter than a file header — a torn stub — the file is
    /// recreated. A clean WAL (no torn tail) opens without truncating or
    /// fsyncing, keeping the no-crash reopen path free of write
    /// amplification.
    pub fn open_after_recovery(
        path: &Path,
        valid_bytes: u64,
        parent_epoch: u64,
        policy: SyncPolicy,
    ) -> Result<WalWriter, StoreError> {
        if valid_bytes < HEADER_LEN {
            return WalWriter::create(path, parent_epoch, policy);
        }
        let mut file = OpenOptions::new().write(true).open(path)?;
        if file.metadata()?.len() != valid_bytes {
            file.set_len(valid_bytes)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok(WalWriter {
            file,
            policy,
            since_sync: 0,
        })
    }

    /// Appends one record and applies the [`SyncPolicy`]. The frame and
    /// payload go down in a single `write_all`, narrowing (not closing —
    /// that is what the CRC is for) the torn-write window.
    pub fn append(&mut self, epoch: u64, payload: &[u8]) -> Result<(), StoreError> {
        let record = encode_record(epoch, payload);
        self.file.write_all(record.freeze().as_ref())?;
        match self.policy {
            SyncPolicy::Always => self.sync()?,
            SyncPolicy::EveryN(n) => {
                self.since_sync += 1;
                if self.since_sync >= n.max(1) {
                    self.sync()?;
                }
            }
            SyncPolicy::Never => {}
        }
        Ok(())
    }

    /// Forces an `fsync` now, regardless of policy.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.file.sync_data()?;
        self.since_sync = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tq-store-wal-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.tql")
    }

    fn write_three(path: &Path) {
        let mut w = WalWriter::create(path, 9, SyncPolicy::Always).unwrap();
        w.append(1, b"first batch").unwrap();
        w.append(2, b"second").unwrap();
        w.append(3, b"the third and final batch").unwrap();
    }

    #[test]
    fn roundtrip_and_summary() {
        let path = tmp("roundtrip");
        write_three(&path);
        let (records, summary) = read(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].payload.as_ref(), b"first batch");
        assert_eq!(records[2].epoch, 3);
        assert_eq!(summary.epoch_range, Some((1, 3)));
        assert_eq!(summary.parent_epoch, Some(9));
        assert_eq!(summary.valid_bytes, summary.total_bytes);
        assert!(summary.tail_note.is_none());
    }

    #[test]
    fn truncation_at_every_byte_recovers_a_record_prefix() {
        let path = tmp("truncate");
        write_three(&path);
        let full = std::fs::read(&path).unwrap();
        let boundaries: Vec<u64> = {
            let (records, _) = read(&path).unwrap();
            let mut acc = HEADER_LEN;
            let mut b = vec![acc];
            for r in &records {
                acc += (FRAME_LEN + r.payload.len()) as u64;
                b.push(acc);
            }
            b
        };
        let cut_path = path.with_extension("cut");
        for cut in 0..=full.len() {
            std::fs::write(&cut_path, &full[..cut]).unwrap();
            let (records, summary) = read(&cut_path).unwrap();
            // The recovered prefix is exactly the records whose bytes are
            // fully inside the cut.
            let expect = if (cut as u64) < HEADER_LEN {
                0
            } else {
                boundaries.iter().filter(|&&b| b <= cut as u64).count() - 1
            };
            assert_eq!(records.len(), expect, "cut at {cut}");
            assert!(summary.valid_bytes <= cut as u64);
            if cut < full.len() {
                assert!(summary.tail_note.is_some() || summary.valid_bytes == cut as u64);
            }
        }
    }

    #[test]
    fn bit_flips_cut_the_prefix_cleanly() {
        let path = tmp("bitflip");
        write_three(&path);
        let full = std::fs::read(&path).unwrap();
        let flip_path = path.with_extension("flip");
        for byte in HEADER_LEN as usize..full.len() {
            let mut bad = full.clone();
            bad[byte] ^= 0x40;
            std::fs::write(&flip_path, &bad).unwrap();
            let (records, summary) = read(&flip_path).unwrap();
            assert!(records.len() < 3, "flip at {byte} went unnoticed");
            // Whatever survives is a prefix with intact payloads.
            for (i, r) in records.iter().enumerate() {
                assert_eq!(r.epoch, i as u64 + 1);
            }
            assert!(summary.tail_note.is_some());
        }
    }

    #[test]
    fn torn_stub_reads_as_empty() {
        let path = tmp("stub");
        std::fs::write(&path, b"TQ").unwrap();
        let (records, summary) = read(&path).unwrap();
        assert!(records.is_empty());
        assert_eq!(summary.valid_bytes, 0);
        assert!(summary.tail_note.is_some());
    }

    #[test]
    fn foreign_file_is_refused() {
        let path = tmp("foreign");
        std::fs::write(&path, b"#!/bin/sh\necho not a wal\n").unwrap();
        assert!(matches!(read(&path), Err(StoreError::BadMagic { .. })));
    }

    #[test]
    fn append_after_recovery_truncates_the_torn_tail() {
        let path = tmp("reopen");
        write_three(&path);
        // Tear the last record.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let (records, summary) = read(&path).unwrap();
        assert_eq!(records.len(), 2);
        let mut w = WalWriter::open_after_recovery(
            &path,
            summary.valid_bytes,
            9,
            SyncPolicy::Always,
        )
        .unwrap();
        w.append(7, b"after recovery").unwrap();
        let (records, summary) = read(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[2].epoch, 7);
        assert!(summary.tail_note.is_none());
    }

    #[test]
    fn tail_reader_sees_mid_stream_appends_exactly_once() {
        let path = tmp("tail-live");
        let mut w = WalWriter::create(&path, 0, SyncPolicy::Always).unwrap();
        w.append(1, b"one").unwrap();
        let mut r = WalTailReader::open(&path).unwrap();
        assert_eq!(r.parent_epoch(), 0);
        assert_eq!(r.poll().unwrap().unwrap().epoch, 1);
        // Mid-stream: the reader has drained the file...
        assert!(r.poll().unwrap().is_none());
        assert!(r.poll().unwrap().is_none());
        // ...then the writer appends. Each new record is observed exactly
        // once, in order, with no re-delivery of the consumed prefix.
        w.append(2, b"two").unwrap();
        w.append(3, b"three").unwrap();
        let mut seen = Vec::new();
        while let Some(rec) = r.poll().unwrap() {
            seen.push(rec.epoch);
        }
        assert_eq!(seen, vec![2, 3]);
        w.append(4, b"four").unwrap();
        assert_eq!(r.poll().unwrap().unwrap().epoch, 4);
        assert!(r.poll().unwrap().is_none());
    }

    #[test]
    fn tail_reader_truncation_at_every_byte_is_a_clean_end() {
        let path = tmp("tail-truncate");
        write_three(&path);
        let full = std::fs::read(&path).unwrap();
        let cut_path = path.with_extension("cut");
        for cut in HEADER_LEN as usize..=full.len() {
            std::fs::write(&cut_path, &full[..cut]).unwrap();
            let mut r = WalTailReader::open(&cut_path).unwrap();
            // Drain: whatever is recoverable comes out exactly once, and
            // the torn tail is a clean None — never a panic or an error.
            let mut epochs = Vec::new();
            while let Some(rec) = r.poll().unwrap() {
                epochs.push(rec.epoch);
            }
            let expect: Vec<u64> = {
                let (records, _) = read(&cut_path).unwrap();
                records.iter().map(|rec| rec.epoch).collect()
            };
            assert_eq!(epochs, expect, "cut at {cut}");
            // Still parked: repeated polls stay None, no duplicates.
            assert!(r.poll().unwrap().is_none(), "cut at {cut}");
            // The writer finishing the torn append un-parks the reader
            // without replaying the already-consumed prefix.
            std::fs::write(&cut_path, &full).unwrap();
            let resumed: Vec<u64> =
                std::iter::from_fn(|| r.poll().unwrap()).map(|rec| rec.epoch).collect();
            let all: Vec<u64> = epochs.iter().chain(resumed.iter()).copied().collect();
            assert_eq!(all, vec![1, 2, 3], "cut at {cut}");
        }
    }

    #[test]
    fn tail_reader_parks_at_bit_flips() {
        let path = tmp("tail-flip");
        write_three(&path);
        let full = std::fs::read(&path).unwrap();
        let flip_path = path.with_extension("flip");
        for byte in HEADER_LEN as usize..full.len() {
            let mut bad = full.clone();
            bad[byte] ^= 0x10;
            std::fs::write(&flip_path, &bad).unwrap();
            let mut r = WalTailReader::open(&flip_path).unwrap();
            let mut n = 0usize;
            while let Some(rec) = r.poll().unwrap() {
                // Records delivered before the damage are intact.
                assert_eq!(rec.epoch, n as u64 + 1, "flip at {byte}");
                n += 1;
            }
            assert!(n < 3, "flip at {byte} went unnoticed");
        }
    }

    #[test]
    fn tail_reader_refuses_torn_or_foreign_headers() {
        let path = tmp("tail-header");
        std::fs::write(&path, b"TQ").unwrap();
        assert!(WalTailReader::open(&path).is_err());
        std::fs::write(&path, b"#!/bin/sh\necho not a wal\n").unwrap();
        assert!(matches!(
            WalTailReader::open(&path),
            Err(StoreError::BadMagic { .. })
        ));
    }

    #[test]
    fn every_n_policy_counts(){
        let path = tmp("everyn");
        let mut w = WalWriter::create(&path, 0, SyncPolicy::EveryN(2)).unwrap();
        for e in 0..5u64 {
            w.append(e, b"x").unwrap();
        }
        w.sync().unwrap();
        let (records, _) = read(&path).unwrap();
        assert_eq!(records.len(), 5);
    }
}
