//! The snapshot file format: one checksummed binary image of an engine's
//! full state at one epoch.
//!
//! ```text
//! offset  size  field
//!      0     4  magic "TQSN"
//!      4     2  format version (currently 1)
//!      6     1  backend tag (0 = TQ-tree, 1 = BL baseline)
//!      7     1  scenario tag (0 transit / 1 point-count / 2 length)
//!      8     8  epoch
//!     16     8  user trajectory count (including removed tombstones)
//!     24     8  live trajectory count
//!     32     8  facility count
//!     40     8  TQ-tree arena slots (0 for the baseline backend)
//!     48     8  TQ-tree stored items (0 for the baseline backend)
//!     56     8  body length in bytes
//!     64     4  CRC-32 of the body
//!     68     4  CRC-32 of the 68 header bytes above
//!     72     …  body (opaque to this module; tq-core's engine codec)
//! ```
//!
//! The header carries redundant counts purely so `tq inspect` can
//! describe a file — even a corrupt one — without decoding the body; the
//! body is the single source of truth for the engine state. Both CRCs
//! must verify before [`decode`] hands the body out.

use crate::crc::crc32;
use crate::{Reader, StoreError};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Snapshot file magic, `"TQSN"`.
pub const MAGIC: u32 = u32::from_le_bytes(*b"TQSN");
/// Current snapshot format version.
pub const VERSION: u16 = 1;
/// Backend tag: the TQ-tree (arena serialized in the body).
pub const BACKEND_TQTREE: u8 = 0;
/// Backend tag: the BL point-quadtree baseline (rebuilt from the decoded
/// users on load).
pub const BACKEND_BASELINE: u8 = 1;

/// Fixed header size in bytes (everything before the body).
pub const HEADER_LEN: usize = 72;

/// The self-describing header of a snapshot file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Publication epoch the snapshot captures.
    pub epoch: u64,
    /// Backend tag ([`BACKEND_TQTREE`] or [`BACKEND_BASELINE`]).
    pub backend: u8,
    /// Service scenario tag (0 transit / 1 point-count / 2 length).
    pub scenario: u8,
    /// Total user trajectories, including removed tombstones.
    pub users: u64,
    /// Live (not removed) trajectories.
    pub live: u64,
    /// Candidate facilities.
    pub facilities: u64,
    /// TQ-tree arena slots (live + reclaimed), 0 for the baseline.
    pub tree_nodes: u64,
    /// Items stored in the TQ-tree, 0 for the baseline.
    pub tree_items: u64,
}

impl SnapshotMeta {
    /// Human-readable backend name for reports.
    pub fn backend_name(&self) -> &'static str {
        match self.backend {
            BACKEND_TQTREE => "tq-tree",
            BACKEND_BASELINE => "baseline",
            _ => "unknown",
        }
    }

    /// Human-readable scenario name for reports.
    pub fn scenario_name(&self) -> &'static str {
        match self.scenario {
            0 => "transit",
            1 => "point-count",
            2 => "length",
            _ => "unknown",
        }
    }
}

/// A fully validated snapshot file: its header plus the opaque body.
#[derive(Debug, Clone)]
pub struct SnapshotFile {
    /// The validated header.
    pub meta: SnapshotMeta,
    /// The body bytes (CRC already verified).
    pub body: Bytes,
}

/// Encodes a complete snapshot file (header + CRCs + body).
pub fn encode(meta: &SnapshotMeta, body: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(HEADER_LEN + body.len());
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u8(meta.backend);
    buf.put_u8(meta.scenario);
    buf.put_u64_le(meta.epoch);
    buf.put_u64_le(meta.users);
    buf.put_u64_le(meta.live);
    buf.put_u64_le(meta.facilities);
    buf.put_u64_le(meta.tree_nodes);
    buf.put_u64_le(meta.tree_items);
    buf.put_u64_le(body.len() as u64);
    buf.put_u32_le(crc32(body));
    let header = buf.freeze();
    let mut out = BytesMut::with_capacity(HEADER_LEN + body.len());
    out.put_slice(header.as_ref());
    out.put_u32_le(crc32(header.as_ref()));
    out.put_slice(body);
    out.freeze()
}

/// Reads and validates the header only. Returns the meta plus the stored
/// body length and body CRC (still unverified — callers that need the
/// body go through [`decode`]).
pub fn read_header(bytes: &Bytes) -> Result<(SnapshotMeta, u64, u32), StoreError> {
    if bytes.len() < HEADER_LEN {
        return Err(StoreError::Truncated);
    }
    let stored_header_crc = {
        let mut tail = bytes.slice(HEADER_LEN - 4..HEADER_LEN);
        tail.get_u32_le()
    };
    let computed = crc32(bytes.slice(0..HEADER_LEN - 4).as_ref());
    if stored_header_crc != computed {
        return Err(StoreError::CrcMismatch {
            stored: stored_header_crc,
            computed,
        });
    }
    let mut r = Reader::new(bytes.slice(0..HEADER_LEN - 4));
    let magic = r.u32()?;
    if magic != MAGIC {
        return Err(StoreError::BadMagic {
            found: magic,
            expected: MAGIC,
        });
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(StoreError::BadVersion(version));
    }
    let backend = r.u8()?;
    let scenario = r.u8()?;
    let meta = SnapshotMeta {
        backend,
        scenario,
        epoch: r.u64()?,
        users: r.u64()?,
        live: r.u64()?,
        facilities: r.u64()?,
        tree_nodes: r.u64()?,
        tree_items: r.u64()?,
    };
    let body_len = r.u64()?;
    let body_crc = r.u32()?;
    Ok((meta, body_len, body_crc))
}

/// Decodes and fully validates a snapshot file (both CRCs, exact length).
pub fn decode(bytes: Bytes) -> Result<SnapshotFile, StoreError> {
    let (meta, body_len, body_crc) = read_header(&bytes)?;
    let expected_total = HEADER_LEN as u64 + body_len;
    if (bytes.len() as u64) < expected_total {
        return Err(StoreError::Truncated);
    }
    if bytes.len() as u64 > expected_total {
        return Err(StoreError::Corrupt(format!(
            "{} trailing bytes after the declared body",
            bytes.len() as u64 - expected_total
        )));
    }
    let body = bytes.slice(HEADER_LEN..bytes.len());
    let computed = crc32(body.as_ref());
    if computed != body_crc {
        return Err(StoreError::CrcMismatch {
            stored: body_crc,
            computed,
        });
    }
    Ok(SnapshotFile { meta, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> SnapshotMeta {
        SnapshotMeta {
            epoch: 42,
            backend: BACKEND_TQTREE,
            scenario: 1,
            users: 1000,
            live: 990,
            facilities: 64,
            tree_nodes: 37,
            tree_items: 990,
        }
    }

    #[test]
    fn roundtrip() {
        let body = b"engine state goes here".to_vec();
        let file = encode(&meta(), &body);
        let decoded = decode(file).unwrap();
        assert_eq!(decoded.meta, meta());
        assert_eq!(decoded.body.as_ref(), body.as_slice());
        assert_eq!(decoded.meta.backend_name(), "tq-tree");
        assert_eq!(decoded.meta.scenario_name(), "point-count");
    }

    #[test]
    fn every_truncation_is_detected() {
        let file = encode(&meta(), b"0123456789");
        for cut in 0..file.len() {
            assert!(decode(file.slice(0..cut)).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let file = encode(&meta(), b"0123456789");
        let raw = file.to_vec();
        for byte in 0..raw.len() {
            let mut flipped = raw.clone();
            flipped[byte] ^= 0x10;
            assert!(
                decode(Bytes::from(flipped)).is_err(),
                "flip at byte {byte} undetected"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut raw = encode(&meta(), b"body").to_vec();
        raw.push(0);
        assert!(matches!(
            decode(Bytes::from(raw)),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn wrong_magic_and_version() {
        let mut raw = encode(&meta(), b"body").to_vec();
        raw[0] ^= 0xFF;
        // Header CRC catches it first — either error is fine, never a panic.
        assert!(decode(Bytes::from(raw)).is_err());
    }
}
