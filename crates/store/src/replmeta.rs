//! Replication-position metadata: a tiny sidecar file in a store
//! directory recording how far a primary has shipped its WAL.
//!
//! ```text
//! repl.tqr = magic "TQRP" (4) | version (u16) | last shipped epoch (u64)
//!            | last acked epoch (u64) | crc32 of everything after magic
//! ```
//!
//! The file is *advisory*: replication correctness rests on epoch
//! stamps, not on this record (a follower re-negotiates its position at
//! every `repl-hello`). It exists so `tq inspect` can report the
//! replication position of a cold store directory, and it is written
//! atomically (tmp + rename) by the primary's `ReplicationHub` whenever
//! a follower acknowledges records — never on the write path itself.

use crate::codec::Reader;
use crate::crc::crc32;
use crate::StoreError;
use bytes::{BufMut, Bytes, BytesMut};
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// File name of the replication metadata inside a store directory.
pub const REPL_META_FILE: &str = "repl.tqr";
/// Magic bytes opening a replication metadata file.
pub const REPL_META_MAGIC: [u8; 4] = *b"TQRP";
/// Replication metadata format version this build writes.
pub const REPL_META_VERSION: u16 = 1;

/// The recorded replication position of a primary's store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplMeta {
    /// Epoch of the newest WAL record handed to any follower feed.
    pub last_shipped: u64,
    /// Newest epoch acknowledged by *every* connected follower at write
    /// time (the slowest follower's position; equal to `last_shipped`
    /// when all followers are caught up).
    pub last_acked: u64,
}

impl ReplMeta {
    /// Serializes the metadata (magic + body + CRC).
    pub fn encode(&self) -> Bytes {
        let mut body = BytesMut::new();
        body.put_u16_le(REPL_META_VERSION);
        body.put_u64_le(self.last_shipped);
        body.put_u64_le(self.last_acked);
        let crc = crc32(body.as_ref());
        let mut out = BytesMut::with_capacity(4 + body.len() + 4);
        out.put_slice(&REPL_META_MAGIC);
        out.put_slice(body.as_ref());
        out.put_u32_le(crc);
        out.freeze()
    }

    /// Parses a metadata file, verifying magic, version and CRC.
    pub fn decode(bytes: &[u8]) -> Result<ReplMeta, StoreError> {
        if bytes.len() < 4 + 4 || bytes[..4] != REPL_META_MAGIC {
            return Err(StoreError::Corrupt("bad replication metadata magic".into()));
        }
        let body = &bytes[4..bytes.len() - 4];
        let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
        if crc32(body) != stored {
            return Err(StoreError::Corrupt("replication metadata CRC mismatch".into()));
        }
        let mut r = Reader::new(Bytes::from(body.to_vec()));
        let version = r.u16()?;
        if version != REPL_META_VERSION {
            return Err(StoreError::Corrupt(format!(
                "unsupported replication metadata version {version}"
            )));
        }
        let meta = ReplMeta {
            last_shipped: r.u64()?,
            last_acked: r.u64()?,
        };
        r.finish()?;
        Ok(meta)
    }

    /// Writes the metadata atomically (tmp + rename). No fsync: the file
    /// is advisory, and the write happens per follower ack.
    pub fn write(&self, dir: &Path) -> Result<(), StoreError> {
        let tmp = dir.join("repl.tqr.tmp");
        let mut f = fs::File::create(&tmp)?;
        f.write_all(self.encode().as_ref())?;
        drop(f);
        fs::rename(&tmp, dir.join(REPL_META_FILE))?;
        Ok(())
    }

    /// Reads and parses `DIR/repl.tqr`.
    pub fn read(dir: &Path) -> Result<ReplMeta, StoreError> {
        let bytes = fs::read(dir.join(REPL_META_FILE))?;
        ReplMeta::decode(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let meta = ReplMeta {
            last_shipped: 42,
            last_acked: 40,
        };
        assert_eq!(ReplMeta::decode(meta.encode().as_ref()).unwrap(), meta);
    }

    #[test]
    fn corruption_is_detected() {
        let mut enc = ReplMeta {
            last_shipped: 7,
            last_acked: 7,
        }
        .encode()
        .to_vec();
        for i in 0..enc.len() {
            enc[i] ^= 0x20;
            assert!(ReplMeta::decode(&enc).is_err(), "byte {i} accepted");
            enc[i] ^= 0x20;
        }
        assert!(ReplMeta::decode(&enc[..5]).is_err());
    }

    #[test]
    fn write_read_cycle() {
        let dir = std::env::temp_dir().join(format!("tq-replmeta-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let meta = ReplMeta {
            last_shipped: 9,
            last_acked: 3,
        };
        meta.write(&dir).unwrap();
        assert_eq!(ReplMeta::read(&dir).unwrap(), meta);
    }
}
