//! CRC-32 (IEEE 802.3, the zlib/gzip polynomial), table-driven.
//!
//! Every length-prefixed payload in the snapshot and WAL formats carries
//! one of these so recovery can tell a torn or bit-flipped record from a
//! valid one. CRC-32 is not cryptographic — it guards against the failure
//! modes crash recovery actually faces (truncation, zero-fill, single-bit
//! rot), not against an adversary.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Eight 256-entry lookup tables (slicing-by-8), built at compile time.
/// `TABLES[0]` is the classic byte-at-a-time table; `TABLES[k]` advances a
/// byte through `k` additional zero bytes, which is what lets the hot loop
/// fold eight input bytes per iteration (~8x the byte-wise throughput —
/// snapshot bodies are megabytes, and the whole body is checksummed on
/// every load).
const TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
};

/// A streaming CRC-32 state.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// A fresh checksum state.
    pub fn new() -> Crc32 {
        Crc32 { state: !0 }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let one = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
            let two = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
            crc = TABLES[7][(one & 0xFF) as usize]
                ^ TABLES[6][((one >> 8) & 0xFF) as usize]
                ^ TABLES[5][((one >> 16) & 0xFF) as usize]
                ^ TABLES[4][(one >> 24) as usize]
                ^ TABLES[3][(two & 0xFF) as usize]
                ^ TABLES[2][((two >> 8) & 0xFF) as usize]
                ^ TABLES[1][((two >> 16) & 0xFF) as usize]
                ^ TABLES[0][(two >> 24) as usize];
        }
        for &b in chunks.remainder() {
            let idx = (crc ^ b as u32) & 0xFF;
            crc = (crc >> 8) ^ TABLES[0][idx as usize];
        }
        self.state = crc;
    }

    /// The final checksum value.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(data));
    }

    /// Byte-at-a-time reference the sliced hot loop must agree with.
    fn crc32_bytewise(bytes: &[u8]) -> u32 {
        let mut crc = !0u32;
        for &b in bytes {
            let idx = (crc ^ b as u32) & 0xFF;
            crc = (crc >> 8) ^ TABLES[0][idx as usize];
        }
        !crc
    }

    #[test]
    fn sliced_path_matches_bytewise_at_every_length() {
        let data: Vec<u8> = (0..257u32).map(|i| (i * 131 % 251) as u8).collect();
        for len in 0..data.len() {
            assert_eq!(crc32(&data[..len]), crc32_bytewise(&data[..len]), "len {len}");
        }
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = vec![0u8; 64];
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), base, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
