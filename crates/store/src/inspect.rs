//! Shell-level diagnostics: describe a store directory, a snapshot file
//! or a WAL file — including corrupt ones — without loading an engine.
//!
//! This is the substance behind `tq inspect <path>`: when a store refuses
//! to open, the operator points `inspect` at it and reads *which* file is
//! damaged, *where* the WAL's valid prefix ends, and what the headers
//! claim, instead of staring at an opaque error.

use crate::manifest::{is_sharded_dir, PartitionerSpec, ShardManifest, ROUTING_FILE};
use crate::replmeta::{ReplMeta, REPL_META_FILE, REPL_META_MAGIC};
use crate::snapshot;
use crate::store::{snapshot_files, WAL_FILE};
use crate::{wal, StoreError};
use bytes::Bytes;
use std::fmt::Write as _;
use std::path::Path;

/// Renders a report for `path`: a store directory (sharded or single), one
/// `.tqs` snapshot file, or one `.tql` WAL file (detected by magic, not
/// extension).
pub fn report(path: &Path) -> Result<String, StoreError> {
    if path.is_dir() {
        if is_sharded_dir(path) {
            return report_sharded_dir(path);
        }
        return report_dir(path);
    }
    let raw = std::fs::read(path)?;
    let bytes = Bytes::from(raw);
    // Dispatch on magic so misnamed files still get the right report.
    if bytes.len() >= 4 {
        let magic = u32::from_le_bytes([
            bytes.as_ref()[0],
            bytes.as_ref()[1],
            bytes.as_ref()[2],
            bytes.as_ref()[3],
        ]);
        if magic == wal::MAGIC {
            return report_wal(path);
        }
        if bytes.as_ref()[..4] == REPL_META_MAGIC {
            return report_repl_meta_bytes(path, bytes.as_ref());
        }
    }
    report_snapshot_bytes(path, bytes)
}

fn report_dir(dir: &Path) -> Result<String, StoreError> {
    let mut out = format!("store directory {}\n", dir.display());
    // The exact candidate list recovery would consider, in the order it
    // would consider it.
    let snapshots = snapshot_files(dir)?;
    if snapshots.is_empty() {
        out.push_str("  no snapshot files\n");
    }
    for (_, path) in &snapshots {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
        let result = std::fs::read(path)
            .map_err(StoreError::Io)
            .and_then(|raw| report_snapshot_bytes(path, Bytes::from(raw)));
        match result {
            Ok(r) => out.push_str(&r),
            Err(e) => {
                let _ = writeln!(out, "snapshot {name}\n  UNUSABLE: {e}");
            }
        }
    }
    let wal_path = dir.join(WAL_FILE);
    if wal_path.exists() {
        // A damaged WAL header must still yield a report — diagnosing
        // damaged stores is this function's whole purpose.
        match report_wal(&wal_path) {
            Ok(r) => out.push_str(&r),
            Err(e) => {
                let _ = writeln!(out, "wal {WAL_FILE}\n  UNUSABLE: {e}");
            }
        }
    } else {
        out.push_str("  no WAL file\n");
    }
    let repl_path = dir.join(REPL_META_FILE);
    if repl_path.exists() {
        match std::fs::read(&repl_path)
            .map_err(StoreError::Io)
            .and_then(|raw| report_repl_meta_bytes(&repl_path, &raw))
        {
            Ok(r) => out.push_str(&r),
            Err(e) => {
                let _ = writeln!(out, "replication {REPL_META_FILE}\n  UNUSABLE: {e}");
            }
        }
    }
    Ok(out)
}

fn report_repl_meta_bytes(path: &Path, raw: &[u8]) -> Result<String, StoreError> {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
    let meta = ReplMeta::decode(raw)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "replication {name}: last shipped epoch {}, last acked epoch {} (lag {})",
        meta.last_shipped,
        meta.last_acked,
        meta.last_shipped.saturating_sub(meta.last_acked),
    );
    Ok(out)
}

/// A sharded root: manifest summary, routing-log summary, then each
/// shard's store report in turn. A damaged manifest, routing log or
/// shard never aborts the report — the whole point is diagnosing
/// directories that refuse to open.
fn report_sharded_dir(dir: &Path) -> Result<String, StoreError> {
    let mut out = format!("sharded store {}\n", dir.display());
    let shards = match ShardManifest::read(dir) {
        Ok(manifest) => {
            let rule = match &manifest.partitioner {
                PartitionerSpec::Hash => "hash".to_string(),
                PartitionerSpec::ZRange { depth, splits, .. } => format!(
                    "z-range (depth {depth}, {} split boundaries)",
                    splits.len()
                ),
            };
            let _ = writeln!(
                out,
                "  manifest: {} shards, {rule} partitioner",
                manifest.shards
            );
            manifest.shards as usize
        }
        Err(e) => {
            let _ = writeln!(out, "  manifest UNUSABLE: {e}");
            // Fall back to the shard directories that physically exist so
            // the per-shard verdicts still print.
            (0..)
                .take_while(|&i| ShardManifest::shard_dir(dir, i).is_dir())
                .count()
        }
    };
    let routing = dir.join(ROUTING_FILE);
    if routing.exists() {
        match report_wal(&routing) {
            Ok(r) => out.push_str(&r),
            Err(e) => {
                let _ = writeln!(out, "wal {ROUTING_FILE}\n  UNUSABLE: {e}");
            }
        }
    } else {
        out.push_str("  no routing log\n");
    }
    for i in 0..shards {
        let shard_dir = ShardManifest::shard_dir(dir, i);
        let _ = writeln!(out, "shard {i:03}:");
        let shard_report = if shard_dir.is_dir() {
            report_dir(&shard_dir)
        } else {
            Err(StoreError::Corrupt("shard directory missing".into()))
        };
        match shard_report {
            Ok(r) => {
                for line in r.lines().skip(1) {
                    let _ = writeln!(out, "  {line}");
                }
            }
            Err(e) => {
                let _ = writeln!(out, "  UNUSABLE: {e}");
            }
        }
    }
    Ok(out)
}

fn report_snapshot_bytes(path: &Path, bytes: Bytes) -> Result<String, StoreError> {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
    let (meta, body_len, body_crc) = snapshot::read_header(&bytes)?;
    let mut out = String::new();
    let _ = writeln!(out, "snapshot {name} (format v{})", snapshot::VERSION);
    let _ = writeln!(
        out,
        "  epoch {}  backend {}  scenario {}",
        meta.epoch,
        meta.backend_name(),
        meta.scenario_name()
    );
    let _ = writeln!(
        out,
        "  {} users ({} live), {} facilities, {} tree arena slots, {} stored items",
        meta.users, meta.live, meta.facilities, meta.tree_nodes, meta.tree_items
    );
    let body_ok = match snapshot::decode(bytes.clone()) {
        Ok(_) => "verified".to_string(),
        Err(e) => format!("FAILED ({e})"),
    };
    let _ = writeln!(
        out,
        "  body {} bytes, crc {body_crc:#010x} {body_ok}",
        body_len
    );
    Ok(out)
}

fn report_wal(path: &Path) -> Result<String, StoreError> {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
    let (records, summary) = wal::read(path)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "wal {name}: {} valid records, {} of {} bytes valid, continues checkpoint epoch {}",
        summary.records,
        summary.valid_bytes,
        summary.total_bytes,
        summary
            .parent_epoch
            .map(|e| e.to_string())
            .unwrap_or_else(|| "?".into()),
    );
    if let Some((lo, hi)) = summary.epoch_range {
        let _ = writeln!(out, "  epochs {lo}..={hi}");
    }
    if let Some(note) = &summary.tail_note {
        let _ = writeln!(out, "  tail ignored: {note}");
    }
    // A compact per-record summary; long logs elide the middle.
    let show = 8usize;
    for (i, r) in records.iter().enumerate() {
        if records.len() > 2 * show && i == show {
            let _ = writeln!(out, "  … {} more records …", records.len() - 2 * show);
        }
        if records.len() > 2 * show && (show..records.len() - show).contains(&i) {
            continue;
        }
        let _ = writeln!(
            out,
            "  record {i}: epoch {}, {} payload bytes",
            r.epoch,
            r.payload.len()
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{SnapshotMeta, BACKEND_BASELINE};
    use crate::store::{Store, StoreConfig};

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tq-store-inspect-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn reports_a_whole_store() {
        let dir = tmp_dir("whole");
        let mut store = Store::create(&dir, StoreConfig::default()).unwrap();
        let meta = SnapshotMeta {
            epoch: 7,
            backend: BACKEND_BASELINE,
            scenario: 2,
            users: 5,
            live: 5,
            facilities: 2,
            tree_nodes: 0,
            tree_items: 0,
        };
        store.checkpoint(&meta, b"body bytes").unwrap();
        store.append_batch(8, b"payload").unwrap();

        let r = report(&dir).unwrap();
        assert!(r.contains("epoch 7"), "{r}");
        assert!(r.contains("baseline"), "{r}");
        assert!(r.contains("length"), "{r}");
        assert!(r.contains("verified"), "{r}");
        assert!(r.contains("1 valid records"), "{r}");
        assert!(r.contains("epoch 8"), "{r}");
    }

    #[test]
    fn reports_corruption_without_failing() {
        let dir = tmp_dir("corrupt");
        let mut store = Store::create(&dir, StoreConfig::default()).unwrap();
        let meta = SnapshotMeta {
            epoch: 1,
            backend: 0,
            scenario: 0,
            users: 1,
            live: 1,
            facilities: 1,
            tree_nodes: 1,
            tree_items: 1,
        };
        store.checkpoint(&meta, b"0123456789").unwrap();
        store.append_batch(2, b"tail me").unwrap();
        // Flip a body byte of the snapshot and tear the WAL.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let p = entry.unwrap().path();
            let mut raw = std::fs::read(&p).unwrap();
            if p.extension().is_some_and(|e| e == "tqs") {
                let last = raw.len() - 1;
                raw[last] ^= 0xFF;
            } else {
                raw.truncate(raw.len() - 2);
            }
            std::fs::write(&p, raw).unwrap();
        }
        let r = report(&dir).unwrap();
        assert!(r.contains("FAILED"), "{r}");
        assert!(r.contains("tail ignored"), "{r}");
    }

    #[test]
    fn reports_a_sharded_store_with_one_corrupted_shard() {
        use crate::manifest::{PartitionerSpec, ShardManifest};

        let dir = tmp_dir("sharded");
        std::fs::create_dir_all(&dir).unwrap();
        ShardManifest {
            shards: 2,
            partitioner: PartitionerSpec::Hash,
        }
        .write(&dir)
        .unwrap();
        crate::wal::WalWriter::create(
            &dir.join(crate::manifest::ROUTING_FILE),
            0,
            crate::SyncPolicy::Always,
        )
        .unwrap()
        .append(1, b"routing record")
        .unwrap();
        let meta = SnapshotMeta {
            epoch: 3,
            backend: BACKEND_BASELINE,
            scenario: 0,
            users: 4,
            live: 4,
            facilities: 2,
            tree_nodes: 0,
            tree_items: 0,
        };
        for shard in 0..2usize {
            let shard_dir = ShardManifest::shard_dir(&dir, shard);
            let mut store = Store::create(&shard_dir, StoreConfig::default()).unwrap();
            store.checkpoint(&meta, b"shard body").unwrap();
            store.append_batch(4, b"payload").unwrap();
        }
        // Deliberately corrupt shard 1's snapshot body: its verdict must
        // flip to FAILED while shard 0 still reads verified — and the
        // report must never error out.
        let shard1 = ShardManifest::shard_dir(&dir, 1);
        for entry in std::fs::read_dir(&shard1).unwrap() {
            let p = entry.unwrap().path();
            if p.extension().is_some_and(|e| e == "tqs") {
                let mut raw = std::fs::read(&p).unwrap();
                let last = raw.len() - 1;
                raw[last] ^= 0xFF;
                std::fs::write(&p, raw).unwrap();
            }
        }

        let r = report(&dir).unwrap();
        assert!(r.contains("sharded store"), "{r}");
        assert!(r.contains("2 shards, hash partitioner"), "{r}");
        assert!(r.contains("wal routing.tql: 1 valid records"), "{r}");
        assert!(r.contains("shard 000:"), "{r}");
        assert!(r.contains("shard 001:"), "{r}");
        assert!(r.contains("verified"), "{r}");
        assert!(r.contains("FAILED"), "{r}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_missing_shard_directory_reports_instead_of_failing() {
        use crate::manifest::{PartitionerSpec, ShardManifest};

        let dir = tmp_dir("missing-shard");
        std::fs::create_dir_all(&dir).unwrap();
        ShardManifest {
            shards: 2,
            partitioner: PartitionerSpec::Hash,
        }
        .write(&dir)
        .unwrap();
        // No routing log, no shard directories at all.
        let r = report(&dir).unwrap();
        assert!(r.contains("no routing log"), "{r}");
        assert!(r.contains("UNUSABLE: corrupt contents: shard directory missing"), "{r}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reports_replication_position_when_metadata_is_present() {
        let dir = tmp_dir("replmeta");
        let mut store = Store::create(&dir, StoreConfig::default()).unwrap();
        let meta = SnapshotMeta {
            epoch: 2,
            backend: BACKEND_BASELINE,
            scenario: 0,
            users: 3,
            live: 3,
            facilities: 1,
            tree_nodes: 0,
            tree_items: 0,
        };
        store.checkpoint(&meta, b"body").unwrap();
        // Without the sidecar file the report says nothing about
        // replication; with it, the position shows up.
        let before = report(&dir).unwrap();
        assert!(!before.contains("replication"), "{before}");
        ReplMeta {
            last_shipped: 9,
            last_acked: 6,
        }
        .write(&dir)
        .unwrap();
        let r = report(&dir).unwrap();
        assert!(
            r.contains("replication repl.tqr: last shipped epoch 9, last acked epoch 6 (lag 3)"),
            "{r}"
        );
        // Magic dispatch works on the bare file too, even misnamed.
        let moved = dir.join("renamed.bin");
        std::fs::copy(dir.join("repl.tqr"), &moved).unwrap();
        let r = report(&moved).unwrap();
        assert!(r.contains("last shipped epoch 9"), "{r}");
        // A corrupted sidecar degrades to UNUSABLE, never an error.
        let mut raw = std::fs::read(dir.join("repl.tqr")).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0xFF;
        std::fs::write(dir.join("repl.tqr"), raw).unwrap();
        let r = report(&dir).unwrap();
        assert!(r.contains("UNUSABLE"), "{r}");
    }

    #[test]
    fn misnamed_wal_detected_by_magic() {
        let dir = tmp_dir("misnamed");
        std::fs::create_dir_all(&dir).unwrap();
        let wal_path = dir.join("weird-name.bin");
        crate::wal::WalWriter::create(&wal_path, 0, crate::SyncPolicy::Always)
            .unwrap()
            .append(3, b"x")
            .unwrap();
        let r = report(&wal_path).unwrap();
        assert!(r.contains("valid records"), "{r}");
    }
}
