//! Manifest for **sharded** store directories.
//!
//! A sharded store root looks like
//!
//! ```text
//! DIR/
//!   shards.tqm     manifest: shard count + partitioner (this file)
//!   routing.tql    routing log (standard WAL framing, parent epoch 0)
//!   shard-000/     per-shard Store (snapshots + WAL)
//!   shard-001/
//!   ...
//! ```
//!
//! The manifest is tiny, written once at creation (and rewritten only when
//! a lossy recovery rebases the routing log), and carries its own CRC so a
//! torn write is detected rather than misread. Layout after the 4-byte
//! magic `TQSH`:
//!
//! ```text
//! u16  format version (1)
//! u16  shard count
//! u8   partitioner tag (0 = hash, 1 = z-range)
//!      z-range only:
//!        4 x f64   root rect (min.x, min.y, max.x, max.y)
//!        u8        z depth
//!        u32 count, then per split: u64 path bits + u8 depth
//! u32  CRC-32 of everything after the magic
//! ```

use crate::codec::Reader;
use crate::crc::crc32;
use crate::StoreError;
use bytes::{BufMut, Bytes, BytesMut};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use tq_geometry::{Point, Rect};

/// File name of the manifest inside a sharded root directory.
pub const MANIFEST_FILE: &str = "shards.tqm";
/// File name of the routing log inside a sharded root directory.
pub const ROUTING_FILE: &str = "routing.tql";
/// Magic bytes opening a manifest file.
pub const MANIFEST_MAGIC: [u8; 4] = *b"TQSH";
/// Manifest format version this build writes.
pub const MANIFEST_VERSION: u16 = 1;

/// How a sharded front end assigns a trajectory to a shard — the durable
/// description, kept deliberately independent of `tq-core` types so the
/// store crate can verify a directory without the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionerSpec {
    /// Content hash of the trajectory, modulo the shard count.
    Hash,
    /// Z-order split: the trajectory's first point is mapped to a Z-cell
    /// of `depth` under `root`, then binary-searched against `splits`
    /// (shard count − 1 boundaries, each `(path_bits, depth)` of a
    /// [`tq_geometry::ZId`]).
    ZRange {
        /// Root rectangle of the Z-space.
        root: Rect,
        /// Depth at which trajectory anchors are z-coded.
        depth: u8,
        /// Sorted shard boundaries as raw `(path_bits, depth)` pairs.
        splits: Vec<(u64, u8)>,
    },
}

/// Decoded contents of a `shards.tqm` manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardManifest {
    /// Number of shard subdirectories (`shard-000` .. `shard-{n-1:03}`).
    pub shards: u16,
    /// Partitioner rule.
    pub partitioner: PartitionerSpec,
}

impl ShardManifest {
    /// Serializes the manifest (magic + body + CRC).
    pub fn encode(&self) -> Bytes {
        let mut body = BytesMut::new();
        body.put_u16_le(MANIFEST_VERSION);
        body.put_u16_le(self.shards);
        match &self.partitioner {
            PartitionerSpec::Hash => body.put_u8(0),
            PartitionerSpec::ZRange { root, depth, splits } => {
                body.put_u8(1);
                body.put_f64_le(root.min.x);
                body.put_f64_le(root.min.y);
                body.put_f64_le(root.max.x);
                body.put_f64_le(root.max.y);
                body.put_u8(*depth);
                body.put_u32_le(splits.len() as u32);
                for (path, d) in splits {
                    body.put_u64_le(*path);
                    body.put_u8(*d);
                }
            }
        }
        let crc = crc32(body.as_ref());
        let mut out = BytesMut::with_capacity(4 + body.len() + 4);
        out.put_slice(&MANIFEST_MAGIC);
        out.put_slice(body.as_ref());
        out.put_u32_le(crc);
        out.freeze()
    }

    /// Parses a manifest, verifying magic, version, CRC, and field sanity.
    pub fn decode(bytes: &[u8]) -> Result<ShardManifest, StoreError> {
        if bytes.len() < 4 + 4 || bytes[..4] != MANIFEST_MAGIC {
            return Err(StoreError::Corrupt("bad manifest magic".into()));
        }
        let body = &bytes[4..bytes.len() - 4];
        let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
        if crc32(body) != stored {
            return Err(StoreError::Corrupt("manifest CRC mismatch".into()));
        }
        let mut r = Reader::new(Bytes::from(body));
        let version = r.u16()?;
        if version != MANIFEST_VERSION {
            return Err(StoreError::Corrupt(format!(
                "unsupported manifest version {version}"
            )));
        }
        let shards = r.u16()?;
        if shards == 0 {
            return Err(StoreError::Corrupt("manifest declares zero shards".into()));
        }
        let partitioner = match r.u8()? {
            0 => PartitionerSpec::Hash,
            1 => {
                let min = Point::new(r.f64()?, r.f64()?);
                let max = Point::new(r.f64()?, r.f64()?);
                let depth = r.u8()?;
                let n = r.count(9)?;
                let mut splits = Vec::with_capacity(n);
                for _ in 0..n {
                    splits.push((r.u64()?, r.u8()?));
                }
                PartitionerSpec::ZRange {
                    root: Rect::new(min, max),
                    depth,
                    splits,
                }
            }
            tag => {
                return Err(StoreError::Corrupt(format!(
                    "unknown partitioner tag {tag}"
                )))
            }
        };
        r.finish()?;
        Ok(ShardManifest { shards, partitioner })
    }

    /// Writes the manifest atomically (tmp + rename + dir sync).
    pub fn write(&self, dir: &Path) -> Result<(), StoreError> {
        let tmp = dir.join("shards.tqm.tmp");
        let path = dir.join(MANIFEST_FILE);
        let mut f = fs::File::create(&tmp)?;
        f.write_all(self.encode().as_ref())?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, &path)?;
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    /// Reads and parses `DIR/shards.tqm`.
    pub fn read(dir: &Path) -> Result<ShardManifest, StoreError> {
        let bytes = fs::read(dir.join(MANIFEST_FILE))?;
        ShardManifest::decode(&bytes)
    }

    /// Path of shard `i`'s store directory under `dir`.
    pub fn shard_dir(dir: &Path, shard: usize) -> PathBuf {
        dir.join(format!("shard-{shard:03}"))
    }
}

/// True if `dir` looks like a sharded store root (has a manifest file).
pub fn is_sharded_dir(dir: &Path) -> bool {
    dir.join(MANIFEST_FILE).is_file()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zrange() -> ShardManifest {
        ShardManifest {
            shards: 4,
            partitioner: PartitionerSpec::ZRange {
                root: Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 50.0)),
                depth: 16,
                splits: vec![(0x1000 << 32, 16), (0x2000 << 32, 16), (0x3000 << 32, 16)],
            },
        }
    }

    #[test]
    fn roundtrip_hash_and_zrange() {
        for m in [
            ShardManifest {
                shards: 2,
                partitioner: PartitionerSpec::Hash,
            },
            zrange(),
        ] {
            let enc = m.encode();
            assert_eq!(ShardManifest::decode(enc.as_ref()).unwrap(), m);
        }
    }

    #[test]
    fn corruption_is_detected() {
        let mut enc = zrange().encode().to_vec();
        // Flip one bit in every byte position in turn: each must fail
        // (magic, CRC, or structural), never panic or misread.
        for i in 0..enc.len() {
            enc[i] ^= 0x40;
            assert!(ShardManifest::decode(&enc).is_err(), "byte {i} accepted");
            enc[i] ^= 0x40;
        }
        let short = &enc[..6];
        assert!(ShardManifest::decode(short).is_err());
    }

    #[test]
    fn zero_shards_rejected() {
        let m = ShardManifest {
            shards: 0,
            partitioner: PartitionerSpec::Hash,
        };
        assert!(ShardManifest::decode(m.encode().as_ref()).is_err());
    }
}
