//! Uniform wrappers over the compared methods.
//!
//! The paper compares, for kMaxRRST: **BL** (point-quadtree baseline),
//! **TQ(B)** (hierarchy only) and **TQ(Z)** (hierarchy + z-ordering); and
//! for MaxkCovRST: **G-BL**, **G-TQ(B)**, **G-TQ(Z)** and **Gn-TQ(Z)**.
//! These helpers build the three indexes consistently and expose
//! one-call-per-method entry points so every figure module reads the same.

use tq_baseline::BaselineIndex;
use tq_core::maxcov::{genetic, greedy, CovOutcome, GeneticConfig, ServedTable};
use tq_core::service::ServiceModel;
use tq_core::tqtree::{Placement, Storage, TqTree, TqTreeConfig};
use tq_trajectory::{FacilitySet, UserSet};

/// The kMaxRRST method family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Point-quadtree baseline.
    Bl,
    /// TQ-tree with flat per-node lists.
    TqBasic,
    /// TQ-tree with z-ordered per-node lists.
    TqZ,
}

impl Method {
    /// Display label as used in the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            Method::Bl => "BL",
            Method::TqBasic => "TQ(B)",
            Method::TqZ => "TQ(Z)",
        }
    }
}

/// The three indexes over one user set.
pub struct Indexes {
    /// The paper's BL index.
    pub bl: BaselineIndex,
    /// TQ(B).
    pub tq_basic: TqTree,
    /// TQ(Z).
    pub tq_z: TqTree,
}

/// Builds all three indexes with a given placement and β.
pub fn build_indexes(users: &UserSet, placement: Placement, beta: usize) -> Indexes {
    Indexes {
        bl: BaselineIndex::build_with_capacity(users, beta),
        tq_basic: TqTree::build(users, TqTreeConfig::basic(placement).with_beta(beta)),
        tq_z: TqTree::build(users, TqTreeConfig::z_order(placement).with_beta(beta)),
    }
}

impl Indexes {
    /// Service value of one facility through `method`.
    pub fn evaluate(
        &self,
        method: Method,
        users: &UserSet,
        model: &ServiceModel,
        facility: &tq_trajectory::Facility,
    ) -> f64 {
        match method {
            Method::Bl => self.bl.evaluate(users, model, facility).value,
            Method::TqBasic => {
                tq_core::evaluate_service(&self.tq_basic, users, model, facility).value
            }
            Method::TqZ => tq_core::evaluate_service(&self.tq_z, users, model, facility).value,
        }
    }

    /// kMaxRRST through `method`; returns the ranked result.
    pub fn top_k(
        &self,
        method: Method,
        users: &UserSet,
        model: &ServiceModel,
        facilities: &FacilitySet,
        k: usize,
    ) -> Vec<(u32, f64)> {
        match method {
            Method::Bl => self.bl.top_k(users, model, facilities, k).ranked,
            Method::TqBasic => {
                tq_core::top_k_facilities(&self.tq_basic, users, model, facilities, k).ranked
            }
            Method::TqZ => {
                tq_core::top_k_facilities(&self.tq_z, users, model, facilities, k).ranked
            }
        }
    }

    /// MaxkCovRST greedy through `method` (G-BL / G-TQ(B) / G-TQ(Z)).
    pub fn greedy_cov(
        &self,
        method: Method,
        users: &UserSet,
        model: &ServiceModel,
        facilities: &FacilitySet,
        k: usize,
    ) -> CovOutcome {
        let table = self.served_table(method, users, model, facilities);
        greedy(&table, users, model, k)
    }

    /// The genetic competitor over the TQ(Z) evaluation (Gn-TQ(Z)).
    pub fn genetic_cov(
        &self,
        users: &UserSet,
        model: &ServiceModel,
        facilities: &FacilitySet,
        k: usize,
    ) -> CovOutcome {
        let table = self.served_table(Method::TqZ, users, model, facilities);
        genetic(&table, users, model, k, &GeneticConfig::default())
    }

    /// The [`ServedTable`] built through `method`'s evaluator.
    pub fn served_table(
        &self,
        method: Method,
        users: &UserSet,
        model: &ServiceModel,
        facilities: &FacilitySet,
    ) -> ServedTable {
        match method {
            Method::Bl => self.bl.served_table(users, model, facilities),
            Method::TqBasic => ServedTable::build(&self.tq_basic, users, model, facilities),
            Method::TqZ => ServedTable::build(&self.tq_z, users, model, facilities),
        }
    }
}

/// Marker that all storage variants exist (compile-time sanity for the
/// method mapping above).
pub const STORAGES: [Storage; 2] = [Storage::Basic, Storage::ZOrder];

#[cfg(test)]
mod tests {
    use super::*;
    use tq_core::service::Scenario;
    use tq_datagen::{bus_routes, taxi_trips, CityModel};

    #[test]
    fn all_methods_agree_on_values() {
        let city = CityModel::synthetic(3, 6, 5_000.0);
        let users = taxi_trips(&city, 800, 1);
        let facilities = bus_routes(&city, 8, 10, 2_000.0, 2);
        let model = ServiceModel::new(Scenario::Transit, 150.0);
        let idx = build_indexes(&users, Placement::TwoPoint, 32);
        for (_, f) in facilities.iter() {
            let bl = idx.evaluate(Method::Bl, &users, &model, f);
            let tb = idx.evaluate(Method::TqBasic, &users, &model, f);
            let tz = idx.evaluate(Method::TqZ, &users, &model, f);
            assert!((bl - tb).abs() < 1e-9);
            assert!((bl - tz).abs() < 1e-9);
        }
        // And on the top-k ranking values.
        let want: Vec<f64> = idx
            .top_k(Method::Bl, &users, &model, &facilities, 4)
            .iter()
            .map(|(_, v)| *v)
            .collect();
        for m in [Method::TqBasic, Method::TqZ] {
            let got: Vec<f64> = idx
                .top_k(m, &users, &model, &facilities, 4)
                .iter()
                .map(|(_, v)| *v)
                .collect();
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-9, "{m:?}");
            }
        }
    }

    #[test]
    fn greedy_families_agree() {
        let city = CityModel::synthetic(4, 6, 5_000.0);
        let users = taxi_trips(&city, 500, 3);
        let facilities = bus_routes(&city, 10, 8, 2_000.0, 4);
        let model = ServiceModel::new(Scenario::Transit, 150.0);
        let idx = build_indexes(&users, Placement::TwoPoint, 32);
        let a = idx.greedy_cov(Method::Bl, &users, &model, &facilities, 3);
        let b = idx.greedy_cov(Method::TqBasic, &users, &model, &facilities, 3);
        let c = idx.greedy_cov(Method::TqZ, &users, &model, &facilities, 3);
        assert_eq!(a.value, b.value);
        assert_eq!(b.value, c.value);
        assert_eq!(a.chosen, c.chosen);
    }
}
