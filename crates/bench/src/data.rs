//! Dataset construction with in-memory and on-disk caching.
//!
//! Paper-scale generation (a million trips) costs seconds; the harness
//! snapshots generated sets under `target/tq-datasets/` (via the
//! `tq-trajectory` snapshot format) so repeated invocations pay once.
//! Reduced-scale sets are generated on the fly. Everything is deterministic,
//! so the cache is purely an accelerator. Dataset builds for a sweep fan out
//! across `std::thread::scope` threads; the cache map is guarded by a
//! `std::sync::Mutex`.

use crate::Scale;
use std::collections::HashMap;
use std::sync::Mutex;
use std::path::PathBuf;
use std::sync::OnceLock;
use tq_datagen::presets;
use tq_trajectory::{snapshot, FacilitySet, UserSet};

/// The paper's default parameters (Table III, defaults in bold per
/// DESIGN.md §3).
pub mod defaults {
    /// Default number of user trajectories (NYT, 1 day).
    pub const USERS: usize = 357_139;
    /// Default facility count `N`.
    pub const FACILITIES: usize = 128;
    /// Default stops per facility `S`.
    pub const STOPS: usize = 32;
    /// Default result count `k`.
    pub const K: usize = 8;
    /// Default service radius ψ (metres).
    pub const PSI: f64 = super::presets::DEFAULT_PSI;
    /// Default TQ-tree bucket size β.
    pub const BETA: usize = 64;
}

fn cache_dir() -> PathBuf {
    let dir = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target"))
        .join("tq-datasets");
    let _ = std::fs::create_dir_all(&dir);
    dir
}

type UserCache = Mutex<HashMap<String, std::sync::Arc<UserSet>>>;

fn user_cache() -> &'static UserCache {
    static CACHE: OnceLock<UserCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Loads (or generates + snapshots) a user set by key.
fn cached_users(key: String, generate: impl FnOnce() -> UserSet) -> std::sync::Arc<UserSet> {
    if let Some(hit) = user_cache().lock().expect("cache poisoned").get(&key) {
        return hit.clone();
    }
    let path = cache_dir().join(format!("{key}.tqd"));
    let users = match std::fs::read(&path) {
        Ok(bytes) => match snapshot::decode(bytes.into()) {
            Ok((users, _)) => users,
            Err(_) => {
                // Stale/corrupt snapshot: regenerate and overwrite.
                let users = generate();
                let _ = std::fs::write(&path, snapshot::encode(&users, &FacilitySet::new()));
                users
            }
        },
        Err(_) => {
            let users = generate();
            let _ = std::fs::write(&path, snapshot::encode(&users, &FacilitySet::new()));
            users
        }
    };
    let arc = std::sync::Arc::new(users);
    user_cache()
        .lock()
        .expect("cache poisoned")
        .insert(key, arc.clone());
    arc
}

/// NYT-like taxi trips at `n` users (cached).
pub fn nyt(n: usize) -> std::sync::Arc<UserSet> {
    cached_users(format!("nyt-{n}"), move || presets::nyt_like(n))
}

/// NYF-like check-ins at `n` users (cached).
pub fn nyf(n: usize) -> std::sync::Arc<UserSet> {
    cached_users(format!("nyf-{n}"), move || presets::nyf_like(n))
}

/// BJG-like GPS traces at `n` users (cached).
pub fn bjg(n: usize) -> std::sync::Arc<UserSet> {
    cached_users(format!("bjg-{n}"), move || presets::bjg_like(n))
}

/// The user-count sweep of Fig. 6(a)/7(a)/10(a): NYT 0.5/1/2/3 "days",
/// scaled by `scale`.
pub fn nyt_sweep(scale: Scale) -> Vec<(String, std::sync::Arc<UserSet>)> {
    // Fan the generation out: each size is independent.
    let sizes: Vec<usize> = presets::NYT_SIZES.iter().map(|&s| scale.users(s)).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = sizes
            .iter()
            .map(|&n| scope.spawn(move || nyt(n)))
            .collect();
        handles
            .into_iter()
            .zip(presets::NYT_LABELS)
            .map(|(h, label)| (label.to_string(), h.join().expect("generation panicked")))
            .collect()
    })
}

/// NY-like bus routes (`n` routes × `stops` stops).
pub fn ny_routes(n: usize, stops: usize) -> FacilitySet {
    presets::ny_bus(n, stops)
}

/// Beijing-like bus routes.
pub fn bj_routes(n: usize, stops: usize) -> FacilitySet {
    presets::bj_bus(n, stops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_returns_same_data() {
        let a = nyt(2_000);
        let b = nyt(2_000);
        assert_eq!(a.as_slice(), b.as_slice());
        assert_eq!(a.len(), 2_000);
    }

    #[test]
    fn sweep_has_four_increasing_sizes() {
        let sweep = nyt_sweep(Scale::Reduced);
        assert_eq!(sweep.len(), 4);
        assert!(sweep.windows(2).all(|w| w[0].1.len() < w[1].1.len()));
    }

    #[test]
    fn defaults_match_design_doc() {
        assert_eq!(defaults::USERS, 357_139);
        assert_eq!(defaults::STOPS, 32);
        assert_eq!(defaults::K, 8);
    }
}
