//! Figure 9: kMaxRRST on BJG (Geolife-like) GPS traces.
//!
//! Per the paper, the (small) BJG dataset is evaluated with the *segmented*
//! TQ-tree, treating every consecutive point pair as a trajectory unit.
//! Methods: BL, TQ(B), TQ(Z) with Beijing bus routes as candidates.

use crate::data::{self, defaults};
use crate::methods::{build_indexes, Method};
use crate::report::{Series, Unit};
use crate::{timed, Scale};
use tq_core::service::{Scenario, ServiceModel};
use tq_core::tqtree::Placement;
use tq_datagen::presets;
use tq_trajectory::{FacilitySet, UserSet};

const METHODS: [Method; 3] = [Method::Bl, Method::TqBasic, Method::TqZ];

fn bjg_users(scale: Scale) -> std::sync::Arc<UserSet> {
    // BJG is small (30,266); at reduced scale keep a quarter so the long
    // traces still dominate index shape.
    let n = match scale {
        Scale::Reduced => presets::BJG_SIZE / 4,
        Scale::Full => presets::BJG_SIZE,
    };
    data::bjg(n)
}

fn model() -> ServiceModel {
    ServiceModel::new(Scenario::PointCount, defaults::PSI)
}

fn row(
    idx: &crate::methods::Indexes,
    users: &UserSet,
    model: &ServiceModel,
    facilities: &FacilitySet,
) -> Vec<Option<f64>> {
    METHODS
        .iter()
        .map(|&m| {
            let (_, secs) = timed(|| idx.top_k(m, users, model, facilities, defaults::K));
            Some(secs)
        })
        .collect()
}

/// Fig 9(a): time vs stops per facility on BJG.
pub fn run_a(scale: Scale) -> String {
    let users = bjg_users(scale);
    let idx = build_indexes(&users, Placement::Segmented, defaults::BETA);
    let model = model();
    let mut series = Series::new(
        "Fig 9(a) — kMaxRRST BJG segmented: time (s) vs stops per facility",
        "stops",
        &["BL", "TQ(B)", "TQ(Z)"],
        Unit::Seconds,
    );
    for stops in [8usize, 16, 32, 64, 128, 256, 512] {
        let facilities = data::bj_routes(defaults::FACILITIES, stops);
        series.push(stops.to_string(), row(&idx, &users, &model, &facilities));
    }
    series.render()
}

/// Fig 9(b): time vs number of facilities on BJG.
pub fn run_b(scale: Scale) -> String {
    let users = bjg_users(scale);
    let idx = build_indexes(&users, Placement::Segmented, defaults::BETA);
    let model = model();
    let mut series = Series::new(
        "Fig 9(b) — kMaxRRST BJG segmented: time (s) vs candidate facilities",
        "facilities",
        &["BL", "TQ(B)", "TQ(Z)"],
        Unit::Seconds,
    );
    for n in [16usize, 32, 64, 128, 256, 512] {
        let facilities = data::bj_routes(n, defaults::STOPS);
        series.push(n.to_string(), row(&idx, &users, &model, &facilities));
    }
    series.render()
}
