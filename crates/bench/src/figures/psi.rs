//! ψ sensitivity (paper §VI-B.1(iii), described in the text, no figure).
//!
//! The paper observes no significant runtime change for the TQ methods as ψ
//! grows, while BL degrades (larger range queries return more candidates).
//! This experiment sweeps ψ over 100–800 m at otherwise default settings.

use crate::data::{self, defaults};
use crate::methods::{build_indexes, Method};
use crate::report::{Series, Unit};
use crate::{timed, Scale};
use tq_core::service::{Scenario, ServiceModel};
use tq_core::tqtree::Placement;

/// Runs the ψ sweep for single-facility service evaluation.
pub fn run(scale: Scale) -> String {
    let users = data::nyt(scale.users(defaults::USERS));
    let facilities = data::ny_routes(10, defaults::STOPS);
    let idx = build_indexes(&users, Placement::TwoPoint, defaults::BETA);
    let mut series = Series::new(
        "ψ sensitivity — service value: time (s) vs ψ (m), NYT",
        "psi",
        &["BL", "TQ(B)", "TQ(Z)"],
        Unit::Seconds,
    );
    for psi in [100.0f64, 200.0, 400.0, 800.0] {
        let model = ServiceModel::new(Scenario::Transit, psi);
        let row = [Method::Bl, Method::TqBasic, Method::TqZ]
            .iter()
            .map(|&m| {
                let (_, secs) = timed(|| {
                    let mut acc = 0.0;
                    for (_, f) in facilities.iter() {
                        acc += idx.evaluate(m, &users, &model, f);
                    }
                    acc
                });
                Some(secs / facilities.len() as f64)
            })
            .collect();
        series.push(format!("{psi}"), row);
    }
    series.render()
}
