//! Figure 7: kMaxRRST query time on NYT (two-point trips).
//!
//! Four sweeps: (a) user trajectories, (b) k, (c) stops per facility,
//! (d) number of candidate facilities. Methods: BL, TQ(B), TQ(Z). Expected
//! shape: TQ(Z) 2–3 orders of magnitude below BL throughout; BL flat in k;
//! all growing with stops and facilities.

use crate::data::{self, defaults};
use crate::methods::{build_indexes, Indexes, Method};
use crate::report::{Series, Unit};
use crate::{timed, Scale};
use tq_core::service::{Scenario, ServiceModel};
use tq_core::tqtree::Placement;
use tq_trajectory::{FacilitySet, UserSet};

const METHODS: [Method; 3] = [Method::Bl, Method::TqBasic, Method::TqZ];

fn topk_row(
    idx: &Indexes,
    users: &UserSet,
    model: &ServiceModel,
    facilities: &FacilitySet,
    k: usize,
) -> Vec<Option<f64>> {
    METHODS
        .iter()
        .map(|&m| {
            let (_, secs) = timed(|| idx.top_k(m, users, model, facilities, k));
            Some(secs)
        })
        .collect()
}

/// Fig 7(a): kMaxRRST time vs number of user trajectories.
pub fn run_a(scale: Scale) -> String {
    let model = ServiceModel::new(Scenario::Transit, defaults::PSI);
    let facilities = data::ny_routes(defaults::FACILITIES, defaults::STOPS);
    let mut series = Series::new(
        "Fig 7(a) — kMaxRRST: time (s) vs user trajectories (NYT days)",
        "days",
        &["BL", "TQ(B)", "TQ(Z)"],
        Unit::Seconds,
    );
    for (label, users) in data::nyt_sweep(scale) {
        let idx = build_indexes(&users, Placement::TwoPoint, defaults::BETA);
        series.push(
            format!("{label} ({})", users.len()),
            topk_row(&idx, &users, &model, &facilities, defaults::K),
        );
    }
    series.render()
}

/// Fig 7(b): kMaxRRST time vs k.
pub fn run_b(scale: Scale) -> String {
    let model = ServiceModel::new(Scenario::Transit, defaults::PSI);
    let users = data::nyt(scale.users(defaults::USERS));
    let facilities = data::ny_routes(defaults::FACILITIES, defaults::STOPS);
    let idx = build_indexes(&users, Placement::TwoPoint, defaults::BETA);
    let mut series = Series::new(
        "Fig 7(b) — kMaxRRST: time (s) vs k (NYT)",
        "k",
        &["BL", "TQ(B)", "TQ(Z)"],
        Unit::Seconds,
    );
    for k in [4usize, 8, 16, 32] {
        series.push(
            k.to_string(),
            topk_row(&idx, &users, &model, &facilities, k),
        );
    }
    series.render()
}

/// Fig 7(c): kMaxRRST time vs stops per facility.
pub fn run_c(scale: Scale) -> String {
    let model = ServiceModel::new(Scenario::Transit, defaults::PSI);
    let users = data::nyt(scale.users(defaults::USERS));
    let idx = build_indexes(&users, Placement::TwoPoint, defaults::BETA);
    let mut series = Series::new(
        "Fig 7(c) — kMaxRRST: time (s) vs stops per facility (NYT)",
        "stops",
        &["BL", "TQ(B)", "TQ(Z)"],
        Unit::Seconds,
    );
    for stops in [8usize, 16, 32, 64, 128, 256, 512] {
        let facilities = data::ny_routes(defaults::FACILITIES, stops);
        series.push(
            stops.to_string(),
            topk_row(&idx, &users, &model, &facilities, defaults::K),
        );
    }
    series.render()
}

/// Fig 7(d): kMaxRRST time vs number of candidate facilities.
pub fn run_d(scale: Scale) -> String {
    let model = ServiceModel::new(Scenario::Transit, defaults::PSI);
    let users = data::nyt(scale.users(defaults::USERS));
    let idx = build_indexes(&users, Placement::TwoPoint, defaults::BETA);
    let mut series = Series::new(
        "Fig 7(d) — kMaxRRST: time (s) vs candidate facilities (NYT)",
        "facilities",
        &["BL", "TQ(B)", "TQ(Z)"],
        Unit::Seconds,
    );
    for n in [16usize, 32, 64, 128, 256, 512] {
        let facilities = data::ny_routes(n, defaults::STOPS);
        series.push(
            n.to_string(),
            topk_row(&idx, &users, &model, &facilities, defaults::K),
        );
    }
    series.render()
}
