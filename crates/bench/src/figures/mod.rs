//! One module per reproduced figure/table (paper §VI).
//!
//! Every module exposes `run(scale) -> String`: it executes the experiment
//! and renders the paper-shaped series. The [`REGISTRY`] maps CLI names to
//! experiments so `experiments fig7c` reruns exactly one of them.

pub mod ablation_beta;
pub mod fig10;
pub mod fig11;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod psi;
pub mod table_build;

use crate::Scale;

/// An experiment entry: CLI name, what it reproduces, and the runner.
pub struct Experiment {
    /// CLI name (e.g. `fig7a`).
    pub name: &'static str,
    /// Human description.
    pub what: &'static str,
    /// Runner.
    pub run: fn(Scale) -> String,
}

/// All experiments, in paper order.
pub const REGISTRY: &[Experiment] = &[
    Experiment {
        name: "fig6a",
        what: "Fig 6(a): service-value time vs #user trajectories (NYT)",
        run: fig6::run_a,
    },
    Experiment {
        name: "fig6b",
        what: "Fig 6(b): service-value time vs #stops (NYT)",
        run: fig6::run_b,
    },
    Experiment {
        name: "fig7a",
        what: "Fig 7(a): kMaxRRST time vs #user trajectories (NYT)",
        run: fig7::run_a,
    },
    Experiment {
        name: "fig7b",
        what: "Fig 7(b): kMaxRRST time vs k (NYT)",
        run: fig7::run_b,
    },
    Experiment {
        name: "fig7c",
        what: "Fig 7(c): kMaxRRST time vs #stops (NYT)",
        run: fig7::run_c,
    },
    Experiment {
        name: "fig7d",
        what: "Fig 7(d): kMaxRRST time vs #facilities (NYT)",
        run: fig7::run_d,
    },
    Experiment {
        name: "fig8a",
        what: "Fig 8(a): kMaxRRST time vs #stops, multipoint NYF (S-TQ vs F-TQ)",
        run: fig8::run_a,
    },
    Experiment {
        name: "fig8b",
        what: "Fig 8(b): kMaxRRST time vs #facilities, multipoint NYF (S-TQ vs F-TQ)",
        run: fig8::run_b,
    },
    Experiment {
        name: "fig9a",
        what: "Fig 9(a): kMaxRRST time vs #stops, BJG segmented",
        run: fig9::run_a,
    },
    Experiment {
        name: "fig9b",
        what: "Fig 9(b): kMaxRRST time vs #facilities, BJG segmented",
        run: fig9::run_b,
    },
    Experiment {
        name: "fig10a",
        what: "Fig 10(a): MaxkCovRST time vs #user trajectories (NYT)",
        run: fig10::run_a,
    },
    Experiment {
        name: "fig10b",
        what: "Fig 10(b): MaxkCovRST users served vs #user trajectories (NYT)",
        run: fig10::run_b,
    },
    Experiment {
        name: "fig10c",
        what: "Fig 10(c): MaxkCovRST time vs #facilities (NYT)",
        run: fig10::run_c,
    },
    Experiment {
        name: "fig10d",
        what: "Fig 10(d): MaxkCovRST users served vs #facilities (NYT)",
        run: fig10::run_d,
    },
    Experiment {
        name: "fig11a",
        what: "Fig 11(a): MaxkCovRST approximation ratio vs #user trajectories",
        run: fig11::run_a,
    },
    Experiment {
        name: "fig11b",
        what: "Fig 11(b): MaxkCovRST approximation ratio vs #facilities",
        run: fig11::run_b,
    },
    Experiment {
        name: "table_build",
        what: "Index-construction times (paper §VI-B.4)",
        run: table_build::run,
    },
    Experiment {
        name: "psi",
        what: "ψ sensitivity of service evaluation (paper §VI-B.1(iii))",
        run: psi::run,
    },
    Experiment {
        name: "ablation_beta",
        what: "Ablation: bucket size β for TQ(Z)",
        run: ablation_beta::run,
    },
];

/// Looks an experiment up by name.
pub fn find(name: &str) -> Option<&'static Experiment> {
    REGISTRY.iter().find(|e| e.name == name)
}
