//! Figure 8: kMaxRRST on multipoint NYF check-ins — segmented (S-TQ) vs
//! full-trajectory (F-TQ) index generalizations, each in Basic and Z-order
//! storage, against BL.
//!
//! Expected shape (paper §VI-B.3): F-TQ beats S-TQ (far fewer stored items),
//! the S-TQ(B)→S-TQ(Z) gap is smaller than on two-point data, and every
//! TQ variant beats BL.

use crate::data::{self, defaults};
use crate::report::{Series, Unit};
use crate::{timed, Scale};
use tq_baseline::BaselineIndex;
use tq_core::service::{Scenario, ServiceModel};
use tq_core::tqtree::{Placement, TqTree, TqTreeConfig};
use tq_datagen::presets;
use tq_trajectory::{FacilitySet, UserSet};

const LABELS: [&str; 5] = ["BL", "S-TQ(B)", "S-TQ(Z)", "F-TQ(B)", "F-TQ(Z)"];

struct MultiIndexes {
    bl: BaselineIndex,
    s_b: TqTree,
    s_z: TqTree,
    f_b: TqTree,
    f_z: TqTree,
}

fn build(users: &UserSet) -> MultiIndexes {
    MultiIndexes {
        bl: BaselineIndex::build_with_capacity(users, defaults::BETA),
        s_b: TqTree::build(
            users,
            TqTreeConfig::basic(Placement::Segmented).with_beta(defaults::BETA),
        ),
        s_z: TqTree::build(
            users,
            TqTreeConfig::z_order(Placement::Segmented).with_beta(defaults::BETA),
        ),
        f_b: TqTree::build(
            users,
            TqTreeConfig::basic(Placement::FullTrajectory).with_beta(defaults::BETA),
        ),
        f_z: TqTree::build(
            users,
            TqTreeConfig::z_order(Placement::FullTrajectory).with_beta(defaults::BETA),
        ),
    }
}

fn row(
    idx: &MultiIndexes,
    users: &UserSet,
    model: &ServiceModel,
    facilities: &FacilitySet,
    k: usize,
) -> Vec<Option<f64>> {
    let mut out = Vec::with_capacity(5);
    let (_, t) = timed(|| idx.bl.top_k(users, model, facilities, k));
    out.push(Some(t));
    for tree in [&idx.s_b, &idx.s_z, &idx.f_b, &idx.f_z] {
        let (_, t) = timed(|| tq_core::top_k_facilities(tree, users, model, facilities, k));
        out.push(Some(t));
    }
    out
}

/// The multipoint scenario: point-count service over check-in sequences.
fn model() -> ServiceModel {
    ServiceModel::new(Scenario::PointCount, defaults::PSI)
}

fn nyf_users(scale: Scale) -> std::sync::Arc<UserSet> {
    data::nyf(scale.users(presets::NYF_SIZE))
}

/// Fig 8(a): time vs stops per facility on NYF.
pub fn run_a(scale: Scale) -> String {
    let users = nyf_users(scale);
    let idx = build(&users);
    let model = model();
    let mut series = Series::new(
        "Fig 8(a) — kMaxRRST multipoint NYF: time (s) vs stops per facility",
        "stops",
        &LABELS,
        Unit::Seconds,
    );
    for stops in [8usize, 16, 32, 64, 128, 256, 512] {
        let facilities = data::ny_routes(defaults::FACILITIES, stops);
        series.push(
            stops.to_string(),
            row(&idx, &users, &model, &facilities, defaults::K),
        );
    }
    series.render()
}

/// Fig 8(b): time vs number of facilities on NYF.
pub fn run_b(scale: Scale) -> String {
    let users = nyf_users(scale);
    let idx = build(&users);
    let model = model();
    let mut series = Series::new(
        "Fig 8(b) — kMaxRRST multipoint NYF: time (s) vs candidate facilities",
        "facilities",
        &LABELS,
        Unit::Seconds,
    );
    for n in [16usize, 32, 64, 128, 256, 512] {
        let facilities = data::ny_routes(n, defaults::STOPS);
        series.push(
            n.to_string(),
            row(&idx, &users, &model, &facilities, defaults::K),
        );
    }
    series.render()
}
