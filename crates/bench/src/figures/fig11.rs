//! Figure 11: MaxkCovRST approximation ratio against the exact optimum.
//!
//! Ratio = solver value / exact value, with the exact optimum computed by
//! the branch-and-bound of `tq_core::maxcov::exact` (candidate counts follow
//! the paper's Fig 11(b): up to 64; k = 4 keeps the search exact in
//! seconds). Expected shape: G-TQ(Z) ≥ 0.9 everywhere and usually ≈ 1;
//! Gn-TQ(Z) below greedy, degrading with more facilities.

use crate::data::{self, defaults};
use crate::methods::{build_indexes, Method};
use crate::report::{Series, Unit};
use crate::Scale;
use tq_core::maxcov::{exact, genetic, greedy, GeneticConfig};
use tq_core::service::{Scenario, ServiceModel};
use tq_core::tqtree::Placement;

/// k for the ratio experiments (exact must stay feasible).
const RATIO_K: usize = 4;

/// B&B node budget; exceeded → the row reports `-` rather than a
/// pseudo-exact number.
const NODE_BUDGET: usize = 50_000_000;

fn ratios(
    users: &tq_trajectory::UserSet,
    facilities: &tq_trajectory::FacilitySet,
) -> Vec<Option<f64>> {
    let model = ServiceModel::new(Scenario::Transit, defaults::PSI);
    let idx = build_indexes(users, Placement::TwoPoint, defaults::BETA);
    let table = idx.served_table(Method::TqZ, users, &model, facilities);
    let g = greedy(&table, users, &model, RATIO_K);
    let gn = genetic(&table, users, &model, RATIO_K, &GeneticConfig::default());
    match exact(&table, users, &model, RATIO_K, Some(NODE_BUDGET)) {
        Some(e) if e.value > 0.0 => {
            vec![Some(g.value / e.value), Some(gn.value / e.value)]
        }
        Some(_) => vec![Some(1.0), Some(1.0)], // nothing servable: trivially optimal
        None => vec![None, None],
    }
}

/// Fig 11(a): approximation ratio vs user trajectories (N = 32 facilities).
pub fn run_a(scale: Scale) -> String {
    let facilities = data::ny_routes(32, defaults::STOPS);
    let mut series = Series::new(
        "Fig 11(a) — MaxkCovRST approximation ratio vs user trajectories (N=32, k=4)",
        "days",
        &["G-TQ(Z)", "Gn-TQ(Z)"],
        Unit::Ratio,
    );
    for (label, users) in data::nyt_sweep(scale) {
        series.push(
            format!("{label} ({})", users.len()),
            ratios(&users, &facilities),
        );
    }
    series.render()
}

/// Fig 11(b): approximation ratio vs candidate facilities (16/32/64).
pub fn run_b(scale: Scale) -> String {
    let users = data::nyt(scale.users(defaults::USERS));
    let mut series = Series::new(
        "Fig 11(b) — MaxkCovRST approximation ratio vs candidate facilities (k=4)",
        "facilities",
        &["G-TQ(Z)", "Gn-TQ(Z)"],
        Unit::Ratio,
    );
    for n in [16usize, 32, 64] {
        let facilities = data::ny_routes(n, defaults::STOPS);
        series.push(n.to_string(), ratios(&users, &facilities));
    }
    series.render()
}
