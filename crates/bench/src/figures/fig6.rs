//! Figure 6: service-value computation time for a single facility.
//!
//! (a) varies the number of NYT user trajectories (0.5/1/2/3 days);
//! (b) varies the number of stops per facility (8..512).
//! Methods: BL, TQ(B), TQ(Z). Expected shape: TQ(B) ≈ 1 order of magnitude
//! faster than BL, TQ(Z) another 1–2 orders faster than TQ(B).

use crate::data::{self, defaults};
use crate::methods::{build_indexes, Method};
use crate::report::{Series, Unit};
use crate::{timed, Scale};
use tq_core::service::{Scenario, ServiceModel};
use tq_core::tqtree::Placement;

const METHODS: [Method; 3] = [Method::Bl, Method::TqBasic, Method::TqZ];

/// Number of query facilities averaged per measurement (the paper averages
/// 100 query sets; Criterion provides the rigorous statistics, the harness
/// averages enough to be stable).
fn queries(scale: Scale) -> usize {
    match scale {
        Scale::Reduced => 10,
        Scale::Full => 25,
    }
}

/// Average per-facility evaluation time for each method.
fn avg_eval(
    idx: &crate::methods::Indexes,
    users: &tq_trajectory::UserSet,
    model: &ServiceModel,
    facilities: &tq_trajectory::FacilitySet,
    n_queries: usize,
) -> Vec<Option<f64>> {
    METHODS
        .iter()
        .map(|&m| {
            let n = n_queries.min(facilities.len());
            let (_, secs) = timed(|| {
                let mut acc = 0.0;
                for (_, f) in facilities.iter().take(n) {
                    acc += idx.evaluate(m, users, model, f);
                }
                acc
            });
            Some(secs / n as f64)
        })
        .collect()
}

/// Fig 6(a): time to compute the service value vs number of trajectories.
pub fn run_a(scale: Scale) -> String {
    let model = ServiceModel::new(Scenario::Transit, defaults::PSI);
    let facilities = data::ny_routes(queries(scale), defaults::STOPS);
    let mut series = Series::new(
        "Fig 6(a) — service value: time (s) vs user trajectories (NYT days)",
        "days",
        &["BL", "TQ(B)", "TQ(Z)"],
        Unit::Seconds,
    );
    for (label, users) in data::nyt_sweep(scale) {
        let idx = build_indexes(&users, Placement::TwoPoint, defaults::BETA);
        series.push(
            format!("{label} ({})", users.len()),
            avg_eval(&idx, &users, &model, &facilities, queries(scale)),
        );
    }
    series.render()
}

/// Fig 6(b): time to compute the service value vs stops per facility.
pub fn run_b(scale: Scale) -> String {
    let model = ServiceModel::new(Scenario::Transit, defaults::PSI);
    let users = data::nyt(scale.users(defaults::USERS));
    let idx = build_indexes(&users, Placement::TwoPoint, defaults::BETA);
    let mut series = Series::new(
        "Fig 6(b) — service value: time (s) vs stops per facility (NYT)",
        "stops",
        &["BL", "TQ(B)", "TQ(Z)"],
        Unit::Seconds,
    );
    for stops in [8usize, 16, 32, 64, 128, 256, 512] {
        let facilities = data::ny_routes(queries(scale), stops);
        series.push(
            stops.to_string(),
            avg_eval(&idx, &users, &model, &facilities, queries(scale)),
        );
    }
    series.render()
}
