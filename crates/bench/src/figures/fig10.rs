//! Figure 10: MaxkCovRST — runtime and solution quality.
//!
//! Methods: G-BL (greedy over baseline evaluation), G-TQ(B), G-TQ(Z)
//! (greedy over TQ-tree evaluation; TQ(Z) additionally uses the two-step
//! candidate narrowing), and Gn-TQ(Z) (genetic, 20 iterations).
//! (a)/(c) report runtime, (b)/(d) the number of users served. Expected
//! shape: G-TQ(Z) fastest by a wide margin; greedy quality ≥ genetic,
//! with the genetic gap widening at large facility counts.

use crate::data::{self, defaults};
use crate::methods::{build_indexes, Indexes, Method};
use crate::report::{Series, Unit};
use crate::{timed, Scale};
use tq_core::maxcov::two_step_greedy;
use tq_core::service::{Scenario, ServiceModel};
use tq_core::tqtree::Placement;
use tq_trajectory::{FacilitySet, UserSet};

const LABELS: [&str; 4] = ["G-BL", "G-TQ(B)", "G-TQ(Z)", "Gn-TQ(Z)"];

fn model() -> ServiceModel {
    ServiceModel::new(Scenario::Transit, defaults::PSI)
}

/// Runs all four solvers, returning `(times, users_served)` rows.
fn rows(
    idx: &Indexes,
    users: &UserSet,
    model: &ServiceModel,
    facilities: &FacilitySet,
    k: usize,
) -> (Vec<Option<f64>>, Vec<Option<f64>>) {
    let mut times = Vec::with_capacity(4);
    let mut served = Vec::with_capacity(4);

    let (out, t) = timed(|| idx.greedy_cov(Method::Bl, users, model, facilities, k));
    times.push(Some(t));
    served.push(Some(out.users_served as f64));

    let (out, t) = timed(|| idx.greedy_cov(Method::TqBasic, users, model, facilities, k));
    times.push(Some(t));
    served.push(Some(out.users_served as f64));

    // G-TQ(Z) is the paper's two-step greedy: kMaxRRST narrowing + greedy.
    let (out, t) = timed(|| two_step_greedy(&idx.tq_z, users, model, facilities, k, None));
    times.push(Some(t));
    served.push(Some(out.users_served as f64));

    let (out, t) = timed(|| idx.genetic_cov(users, model, facilities, k));
    times.push(Some(t));
    served.push(Some(out.users_served as f64));

    (times, served)
}

fn sweep_users(scale: Scale) -> (Series, Series) {
    let model = model();
    let facilities = data::ny_routes(defaults::FACILITIES, defaults::STOPS);
    let mut time_series = Series::new(
        "Fig 10(a) — MaxkCovRST: time (s) vs user trajectories (NYT days)",
        "days",
        &LABELS,
        Unit::Seconds,
    );
    let mut served_series = Series::new(
        "Fig 10(b) — MaxkCovRST: users served vs user trajectories (NYT days)",
        "days",
        &LABELS,
        Unit::Count,
    );
    for (label, users) in data::nyt_sweep(scale) {
        let idx = build_indexes(&users, Placement::TwoPoint, defaults::BETA);
        let (t, s) = rows(&idx, &users, &model, &facilities, defaults::K);
        let x = format!("{label} ({})", users.len());
        time_series.push(x.clone(), t);
        served_series.push(x, s);
    }
    (time_series, served_series)
}

fn sweep_facilities(scale: Scale) -> (Series, Series) {
    let model = model();
    let users = data::nyt(scale.users(defaults::USERS));
    let idx = build_indexes(&users, Placement::TwoPoint, defaults::BETA);
    let mut time_series = Series::new(
        "Fig 10(c) — MaxkCovRST: time (s) vs candidate facilities (NYT)",
        "facilities",
        &LABELS,
        Unit::Seconds,
    );
    let mut served_series = Series::new(
        "Fig 10(d) — MaxkCovRST: users served vs candidate facilities (NYT)",
        "facilities",
        &LABELS,
        Unit::Count,
    );
    for n in [16usize, 32, 64, 128, 256, 512] {
        let facilities = data::ny_routes(n, defaults::STOPS);
        let (t, s) = rows(&idx, &users, &model, &facilities, defaults::K);
        time_series.push(n.to_string(), t);
        served_series.push(n.to_string(), s);
    }
    (time_series, served_series)
}

/// Fig 10(a): runtime vs users.
pub fn run_a(scale: Scale) -> String {
    sweep_users(scale).0.render()
}

/// Fig 10(b): users served vs users.
pub fn run_b(scale: Scale) -> String {
    sweep_users(scale).1.render()
}

/// Fig 10(c): runtime vs facilities.
pub fn run_c(scale: Scale) -> String {
    sweep_facilities(scale).0.render()
}

/// Fig 10(d): users served vs facilities.
pub fn run_d(scale: Scale) -> String {
    sweep_facilities(scale).1.render()
}
