//! Ablation: TQ-tree bucket size β.
//!
//! β controls both leaf capacity and z-cell size. The paper fixes β to a
//! block size; this ablation (called out in DESIGN.md §5) checks how
//! sensitive TQ(Z) query time is to the choice, sweeping β over 16–256 for
//! both the single-facility evaluation and the full kMaxRRST query.

use crate::data::{self, defaults};
use crate::report::{Series, Unit};
use crate::{timed, Scale};
use tq_core::service::{Scenario, ServiceModel};
use tq_core::tqtree::{Placement, TqTree, TqTreeConfig};

/// Runs the β sweep.
pub fn run(scale: Scale) -> String {
    let users = data::nyt(scale.users(defaults::USERS));
    let facilities = data::ny_routes(defaults::FACILITIES, defaults::STOPS);
    let model = ServiceModel::new(Scenario::Transit, defaults::PSI);
    let mut series = Series::new(
        "Ablation — TQ(Z) vs β: build / evaluate / kMaxRRST time (s), NYT",
        "beta",
        &["build", "evaluate", "kMaxRRST"],
        Unit::Seconds,
    );
    for beta in [16usize, 32, 64, 128, 256] {
        let (tree, t_build) = timed(|| {
            TqTree::build(
                &users,
                TqTreeConfig::z_order(Placement::TwoPoint).with_beta(beta),
            )
        });
        let (_, t_eval) = timed(|| {
            let mut acc = 0.0;
            for (_, f) in facilities.iter().take(10) {
                acc += tq_core::evaluate_service(&tree, &users, &model, f).value;
            }
            acc
        });
        let (_, t_topk) = timed(|| {
            tq_core::top_k_facilities(&tree, &users, &model, &facilities, defaults::K)
        });
        series.push(
            beta.to_string(),
            vec![Some(t_build), Some(t_eval / 10.0), Some(t_topk)],
        );
    }
    series.render()
}
