//! Index construction times (paper §VI-B.4, reported in the text).
//!
//! The paper: TQ(B) builds in 0.74/0.95/2.42/3.74 s and TQ(Z) in
//! 1.03/1.86/4.23/9.95 s for the four NYT sizes (Java, i5-3570K). We report
//! the same sweep plus the BL point quadtree for context. Expected shape:
//! build time grows roughly linearly; TQ(Z) costs a small constant factor
//! over TQ(B) for the z-ordering.

use crate::data::{self, defaults};
use crate::report::{Series, Unit};
use crate::{timed, Scale};
use tq_baseline::BaselineIndex;
use tq_core::tqtree::{Placement, TqTree, TqTreeConfig};

/// Runs the construction-time sweep.
pub fn run(scale: Scale) -> String {
    let mut series = Series::new(
        "Index construction: time (s) vs user trajectories (NYT days)",
        "days",
        &["BL", "TQ(B)", "TQ(Z)"],
        Unit::Seconds,
    );
    for (label, users) in data::nyt_sweep(scale) {
        let (_, t_bl) = timed(|| BaselineIndex::build_with_capacity(&users, defaults::BETA));
        let (tqb, t_b) = timed(|| {
            TqTree::build(
                &users,
                TqTreeConfig::basic(Placement::TwoPoint).with_beta(defaults::BETA),
            )
        });
        let (tqz, t_z) = timed(|| {
            TqTree::build(
                &users,
                TqTreeConfig::z_order(Placement::TwoPoint).with_beta(defaults::BETA),
            )
        });
        assert_eq!(tqb.item_count(), users.len());
        assert_eq!(tqz.item_count(), users.len());
        series.push(
            format!("{label} ({})", users.len()),
            vec![Some(t_bl), Some(t_b), Some(t_z)],
        );
    }
    series.render()
}
