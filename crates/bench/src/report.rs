//! Fixed-width series printing in the shape of the paper's figures.
//!
//! Each figure becomes a small table: the x-axis parameter in the first
//! column, one column per compared method. Runtimes print in seconds with
//! enough significant digits to read orders of magnitude at a glance, which
//! is what the paper's log-scale plots convey.

use std::fmt::Write as _;

/// A figure-shaped result table: x-axis labels × method series.
pub struct Series {
    title: String,
    x_name: String,
    methods: Vec<String>,
    rows: Vec<(String, Vec<Option<f64>>)>,
    unit: Unit,
}

/// How cell values are formatted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Runtimes in seconds (scientific-ish formatting).
    Seconds,
    /// Plain counts (users served).
    Count,
    /// Ratios in [0, 1].
    Ratio,
}

impl Series {
    /// Creates an empty series table.
    pub fn new(
        title: impl Into<String>,
        x_name: impl Into<String>,
        methods: &[&str],
        unit: Unit,
    ) -> Series {
        Series {
            title: title.into(),
            x_name: x_name.into(),
            methods: methods.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            unit,
        }
    }

    /// Appends one x-axis row. `values` must align with the methods; `None`
    /// prints as `-` (method not run at this point).
    pub fn push(&mut self, x: impl Into<String>, values: Vec<Option<f64>>) {
        assert_eq!(
            values.len(),
            self.methods.len(),
            "row width must match method count"
        );
        self.rows.push((x.into(), values));
    }

    fn format_cell(&self, v: Option<f64>) -> String {
        match v {
            None => "-".to_string(),
            Some(v) => match self.unit {
                Unit::Seconds => {
                    if v >= 100.0 {
                        format!("{v:.1}")
                    } else if v >= 0.01 {
                        format!("{v:.4}")
                    } else {
                        format!("{v:.6}")
                    }
                }
                Unit::Count => format!("{}", v.round() as i64),
                Unit::Ratio => format!("{v:.4}"),
            },
        }
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "\n## {}", self.title);
        let width = 12usize;
        let xw = self
            .rows
            .iter()
            .map(|(x, _)| x.len())
            .chain([self.x_name.len()])
            .max()
            .unwrap_or(8)
            + 2;
        let _ = write!(out, "{:<xw$}", self.x_name);
        for m in &self.methods {
            let _ = write!(out, "{m:>width$}");
        }
        let _ = writeln!(out);
        for (x, values) in &self.rows {
            let _ = write!(out, "{x:<xw$}");
            for &v in values {
                let cell = self.format_cell(v);
                let _ = write!(out, "{cell:>width$}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Ratio between two methods' values at every row — handy for the
    /// "orders of magnitude" claims.
    pub fn speedup(&self, slow: &str, fast: &str) -> Vec<Option<f64>> {
        let si = self.methods.iter().position(|m| m == slow);
        let fi = self.methods.iter().position(|m| m == fast);
        let (Some(si), Some(fi)) = (si, fi) else {
            return vec![None; self.rows.len()];
        };
        self.rows
            .iter()
            .map(|(_, v)| match (v[si], v[fi]) {
                (Some(s), Some(f)) if f > 0.0 => Some(s / f),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_fixed_width_table() {
        let mut s = Series::new("Fig X", "users", &["BL", "TQ(Z)"], Unit::Seconds);
        s.push("1000", vec![Some(1.25), Some(0.001)]);
        s.push("2000", vec![Some(2.5), None]);
        let r = s.render();
        assert!(r.contains("Fig X"));
        assert!(r.contains("BL"));
        assert!(r.contains("1.2500"));
        assert!(r.contains('-'));
        // Two data rows + header + title.
        assert!(r.lines().count() >= 4);
    }

    #[test]
    fn speedup_computed_rowwise() {
        let mut s = Series::new("t", "x", &["BL", "TQ(Z)"], Unit::Seconds);
        s.push("a", vec![Some(10.0), Some(0.1)]);
        s.push("b", vec![Some(1.0), Some(0.0)]);
        let sp = s.speedup("BL", "TQ(Z)");
        assert_eq!(sp[0], Some(100.0));
        assert_eq!(sp[1], None);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut s = Series::new("t", "x", &["a", "b"], Unit::Count);
        s.push("r", vec![Some(1.0)]);
    }
}
