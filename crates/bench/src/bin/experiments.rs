//! Experiment runner: regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p tq-bench --release --bin experiments            # all, reduced scale
//! cargo run -p tq-bench --release --bin experiments -- --full  # paper scale
//! cargo run -p tq-bench --release --bin experiments -- fig7c fig11b
//! cargo run -p tq-bench --release --bin experiments -- --list
//! ```

use tq_bench::figures::{find, REGISTRY};
use tq_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Reduced;
    let mut names: Vec<String> = Vec::new();
    for a in &args {
        match a.as_str() {
            "--full" => scale = Scale::Full,
            "--reduced" => scale = Scale::Reduced,
            "--list" => {
                println!("available experiments:");
                for e in REGISTRY {
                    println!("  {:<14} {}", e.name, e.what);
                }
                return;
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--full|--reduced] [--list] [names...]\n\
                     Runs the paper's experiments (all by default). See --list."
                );
                return;
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}; try --help");
                std::process::exit(2);
            }
            name => names.push(name.to_string()),
        }
    }

    let selected: Vec<&'static tq_bench::figures::Experiment> = if names.is_empty() {
        REGISTRY.iter().collect()
    } else {
        names
            .iter()
            .map(|n| {
                find(n).unwrap_or_else(|| {
                    eprintln!("unknown experiment {n}; try --list");
                    std::process::exit(2);
                })
            })
            .collect()
    };

    println!(
        "# TQ-tree experiment harness — scale: {:?} ({} experiment{})",
        scale,
        selected.len(),
        if selected.len() == 1 { "" } else { "s" }
    );
    let total_start = std::time::Instant::now();
    for e in selected {
        eprintln!("[running] {} — {}", e.name, e.what);
        let start = std::time::Instant::now();
        let output = (e.run)(scale);
        print!("{output}");
        eprintln!(
            "[done]    {} in {:.1}s",
            e.name,
            start.elapsed().as_secs_f64()
        );
    }
    eprintln!(
        "[all done] total {:.1}s",
        total_start.elapsed().as_secs_f64()
    );
}
