//! Experiment harness reproducing every figure and table of the paper.
//!
//! The `experiments` binary (`cargo run -p tq-bench --release --bin
//! experiments -- [names] [--full]`) regenerates the series behind each of
//! the paper's figures; the Criterion benches under `benches/` provide
//! statistically robust micro-measurements of the same operations.
//!
//! Layout:
//!
//! * [`data`] — scale handling (reduced vs paper-scale) and cached dataset
//!   construction,
//! * [`methods`] — uniform wrappers for the compared methods (BL, TQ(B),
//!   TQ(Z), and the MaxkCovRST solver family),
//! * [`report`] — fixed-width series/table printing in the paper's shape,
//! * [`figures`] — one module per figure/table of the paper's §VI.

pub mod data;
pub mod figures;
pub mod methods;
pub mod report;

/// Experiment scale.
///
/// `Reduced` shrinks the user sets ~16× so the full suite completes in
/// minutes; `Full` uses the paper's exact cardinalities (NYT-3 = 1,032,637
/// trips). The *shape* conclusions are identical; EXPERIMENTS.md records
/// measurements at both scales where run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~16× smaller user sets; minutes for the whole suite.
    Reduced,
    /// The paper's cardinalities.
    Full,
}

impl Scale {
    /// Scales a paper-sized user count.
    pub fn users(self, paper: usize) -> usize {
        match self {
            Scale::Reduced => (paper / 16).max(1_000),
            Scale::Full => paper,
        }
    }
}

/// Times a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}
