//! Criterion bench behind Figs 8/9: multipoint trajectories through the
//! segmented (S-TQ) and full-trajectory (F-TQ) index generalizations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tq_bench::data;
use tq_core::service::{Scenario, ServiceModel};
use tq_core::tqtree::{Placement, Storage, TqTree, TqTreeConfig};

fn bench_nyf_variants(c: &mut Criterion) {
    let model = ServiceModel::new(Scenario::PointCount, data::defaults::PSI);
    let users = data::nyf(20_000);
    let facilities = data::ny_routes(32, data::defaults::STOPS);
    let variants = [
        ("S-TQ(B)", Placement::Segmented, Storage::Basic),
        ("S-TQ(Z)", Placement::Segmented, Storage::ZOrder),
        ("F-TQ(B)", Placement::FullTrajectory, Storage::Basic),
        ("F-TQ(Z)", Placement::FullTrajectory, Storage::ZOrder),
    ];
    let mut group = c.benchmark_group("fig8_multipoint_nyf");
    group.sample_size(10);
    for (label, placement, storage) in variants {
        let cfg = TqTreeConfig {
            beta: data::defaults::BETA,
            storage,
            placement,
            max_depth: 20,
        };
        let tree = TqTree::build(&users, cfg);
        group.bench_with_input(BenchmarkId::new(label, "topk"), &(), |b, _| {
            b.iter(|| {
                tq_core::top_k_facilities(&tree, &users, &model, &facilities, data::defaults::K)
            })
        });
    }
    group.finish();
}

fn bench_bjg_segmented(c: &mut Criterion) {
    let model = ServiceModel::new(Scenario::PointCount, data::defaults::PSI);
    let users = data::bjg(4_000);
    let facilities = data::bj_routes(32, data::defaults::STOPS);
    let mut group = c.benchmark_group("fig9_bjg_segmented");
    group.sample_size(10);
    for (label, storage) in [("TQ(B)", Storage::Basic), ("TQ(Z)", Storage::ZOrder)] {
        let cfg = TqTreeConfig {
            beta: data::defaults::BETA,
            storage,
            placement: Placement::Segmented,
            max_depth: 20,
        };
        let tree = TqTree::build(&users, cfg);
        group.bench_with_input(BenchmarkId::new(label, "topk"), &(), |b, _| {
            b.iter(|| {
                tq_core::top_k_facilities(&tree, &users, &model, &facilities, data::defaults::K)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nyf_variants, bench_bjg_segmented);
criterion_main!(benches);
