//! Replication bench: what serving WAL-shipping feeds costs the
//! primary's write path.
//!
//! Three measured sections over identical durable engines on one seeded
//! NYT-like stream:
//!
//! 1. **bare funnel** — acked update batches per second through a
//!    daemon that serves no replication feeds (the `tqd` write path as
//!    it was before replication existed: WAL append, publish, ack).
//! 2. **shipping cost** — the same funnel feeding an ack-only sink
//!    follower: every record crosses the wire and is acknowledged, but
//!    nothing re-applies it. This isolates what the *primary* pays for
//!    replication — the post-ack tap, the batch encoding, the feed
//!    thread, the position bookkeeping — and is the parity target:
//!    within ~10% of the bare figure.
//! 3. **warm standby** — a full follower applying every record into its
//!    own durable engine. On a multi-core host this pipelines behind the
//!    primary; on a single-core host it halves the machine's apply
//!    budget, so the printed figure measures the box, not the write
//!    path.
//!
//! The bench asserts *correctness*, not speed ratios (loopback
//! throughput on a shared CI box is too noisy to gate): every acked
//! batch must reach each follower — zero replication lag at the end —
//! and the standby must finish on the primary's exact epoch. Alongside
//! the human output the bench writes `BENCH_repl.json` (to the working
//! directory) for machine consumption.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use bytes::BytesMut;
use tq_core::dynamic::Update;
use tq_core::engine::Engine;
use tq_core::service::{Scenario, ServiceModel};
use tq_core::tqtree::{Placement, TqTreeConfig};
use tq_core::StoreConfig;
use tq_datagen::{presets, stream_scenario, StreamKind};
use tq_net::frame::{read_frame_interruptible, write_frame, Polled};
use tq_net::proto::kind;
use tq_net::{
    bootstrap_follower, ingest, Client, ConnectConfig, Server, ServerConfig, ServerHandle,
    DEFAULT_MAX_FRAME,
};
use tq_repl::proto::{ReplAck, ReplRecord};
use tq_store::codec::Reader as CodecReader;

const USERS: usize = 2_000;
const ROUTES: usize = 32;
const STOPS: usize = 12;
const BATCH: usize = 50;
const N_BATCHES: usize = 2_000;
/// Wall time per measured section.
const DURATION: Duration = Duration::from_millis(1200);

fn scratch(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("tq-repl-bench-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&path);
    path
}

/// A fresh durable primary over the shared stream's initial state.
fn build_primary(dir: &Path) -> (Engine, Vec<Vec<Update>>) {
    let city = presets::ny_city();
    let trace = stream_scenario(&city, StreamKind::Taxi, USERS, N_BATCHES * BATCH, 0.5, 0x9A5);
    let facilities =
        tq_datagen::bus_routes(&city, ROUTES, STOPS, presets::ROUTE_LENGTH, 0x9A5 ^ 0xB05);
    let batches = trace.update_batches(BATCH);
    let mut engine = Engine::builder(ServiceModel::new(Scenario::Transit, presets::DEFAULT_PSI))
        .users(trace.initial)
        .facilities(facilities)
        .tree_config(TqTreeConfig::z_order(Placement::TwoPoint).with_beta(64))
        .bounds(trace.bounds)
        .persist_with(dir, StoreConfig::default())
        .build()
        .expect("bench engine builds");
    engine.warm();
    (engine, batches)
}

fn serve_replicating(engine: Engine, dir: &Path) -> ServerHandle {
    Server::start(
        engine,
        "127.0.0.1:0",
        ServerConfig {
            repl_dir: Some(dir.to_path_buf()),
            ..ServerConfig::default()
        },
    )
    .expect("ephemeral bind")
}

/// Applies batches through one client until the deadline; returns
/// (acked batches per second, last acked epoch, batches applied).
fn funnel_bps(addr: &str, batches: &[Vec<Update>]) -> (f64, u64, usize) {
    let mut client = Client::connect(addr).expect("bench writer connects");
    let mut applied = 0usize;
    let mut last_ack = 0u64;
    let start = Instant::now();
    for batch in batches {
        if start.elapsed() >= DURATION {
            break;
        }
        last_ack = client.apply(batch.clone()).expect("bench batches are valid").epoch;
        applied += 1;
    }
    (applied as f64 / start.elapsed().as_secs_f64(), last_ack, applied)
}

/// Blocks until the primary's hub reports zero lag against `target`.
fn await_zero_lag(handle: &ServerHandle, target: u64, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let status = handle.repl_status().expect("primary serves feeds");
        if status.min_acked == Some(status.last_shipped) && status.last_shipped >= target {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{what} never caught up to epoch {target}: {status:?}"
        );
        thread::sleep(Duration::from_millis(20));
    }
}

/// An ack-only follower: drains the feed and acknowledges every record
/// without applying anything. Returns the drain thread; flip `stop` and
/// join to shut it down.
fn spawn_sink(addr: &str, have_epoch: u64, stop: Arc<AtomicBool>) -> thread::JoinHandle<()> {
    let mut feed = tq_net::open_feed(addr, have_epoch, &ConnectConfig::default())
        .expect("sink feed opens");
    feed.set_read_timeout(Some(Duration::from_millis(20)))
        .expect("read timeout");
    thread::spawn(move || loop {
        match read_frame_interruptible(&mut feed, DEFAULT_MAX_FRAME, || {
            stop.load(Ordering::Relaxed)
        }) {
            Ok(Polled::Frame { kind: k, body }) if k == kind::S_REPL_RECORD => {
                let mut r = CodecReader::new(body);
                let Ok(record) = ReplRecord::decode(&mut r) else {
                    return;
                };
                let mut buf = BytesMut::new();
                ReplAck {
                    epoch: record.epoch,
                }
                .encode(&mut buf);
                if write_frame(&mut feed, kind::REPL_ACK, buf.as_ref()).is_err() {
                    return;
                }
            }
            _ => return,
        }
    })
}

fn main() {
    println!(
        "repl bench: {USERS} trajectories, batches of {BATCH} events over loopback TCP\n"
    );

    // -- 1: the bare funnel (no feeds served) -------------------------------
    let bare_dir = scratch("bare");
    let (engine, batches) = build_primary(&bare_dir);
    let handle = Server::start(engine, "127.0.0.1:0", ServerConfig::default())
        .expect("ephemeral bind");
    let (bare_bps, _, applied) = funnel_bps(&handle.addr().to_string(), &batches);
    println!(
        "bare funnel:                      {bare_bps:>9.0} acked batches/s ({applied} batches)"
    );
    handle.shutdown().expect("graceful shutdown");
    let _ = std::fs::remove_dir_all(&bare_dir);

    // -- 2: shipping cost on the write path (ack-only sink) ------------------
    let ship_dir = scratch("ship");
    let (engine, batches) = build_primary(&ship_dir);
    let start_epoch = engine.epoch();
    let primary = serve_replicating(engine, &ship_dir);
    let primary_addr = primary.addr().to_string();
    let stop = Arc::new(AtomicBool::new(false));
    let sink = spawn_sink(&primary_addr, start_epoch, Arc::clone(&stop));

    let (ship_bps, last_ack, applied) = funnel_bps(&primary_addr, &batches);
    await_zero_lag(&primary, last_ack, "the sink");
    println!(
        "funnel + live feed (ack sink):    {ship_bps:>9.0} acked batches/s ({applied} batches)"
    );
    println!(
        "shipping cost:                    {:>8.1}% of bare throughput retained",
        100.0 * ship_bps / bare_bps
    );
    stop.store(true, Ordering::Relaxed);
    sink.join().expect("sink thread");
    assert_eq!(primary.panics(), 0, "primary caught a handler panic");
    primary.shutdown().expect("graceful shutdown");
    let _ = std::fs::remove_dir_all(&ship_dir);

    // -- 3: a full warm standby applying every record ------------------------
    let primary_dir = scratch("primary");
    let follower_dir = scratch("follower");
    let (engine, batches) = build_primary(&primary_dir);
    let primary = serve_replicating(engine, &primary_dir);
    let primary_addr = primary.addr().to_string();

    let boot = bootstrap_follower(
        &follower_dir,
        StoreConfig::default(),
        &primary_addr,
        &ConnectConfig::default(),
    )
    .expect("follower bootstraps");
    let follower = Server::start(
        boot.engine,
        "127.0.0.1:0",
        ServerConfig {
            repl_dir: Some(follower_dir.clone()),
            follow: Some(primary_addr.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("follower binds");
    let parts = follower.follower_parts();
    let mut stream = boot.stream;
    stream
        .set_read_timeout(Some(Duration::from_millis(20)))
        .expect("read timeout");
    let ingest_thread = thread::spawn(move || {
        let done = || parts.stopping() || !parts.is_follower();
        let _ = ingest(&mut stream, parts.writer(), DEFAULT_MAX_FRAME, done);
    });

    let (standby_bps, last_ack, applied) = funnel_bps(&primary_addr, &batches);
    println!(
        "funnel + warm standby:            {standby_bps:>9.0} acked batches/s ({applied} batches)"
    );

    // Correctness gate: zero lag, and the standby finished on the
    // primary's exact epoch.
    await_zero_lag(&primary, last_ack, "the standby");
    let mut probe = Client::connect(&follower.addr().to_string()).expect("probe connects");
    let follower_epoch = probe.status().expect("follower status").info.epoch;
    assert_eq!(follower_epoch, last_ack, "standby stopped short of the primary");
    drop(probe);

    assert_eq!(primary.panics(), 0, "primary caught a handler panic");
    assert_eq!(follower.panics(), 0, "follower caught a handler panic");
    follower.shutdown().expect("follower shutdown");
    ingest_thread.join().expect("ingest thread");
    let engine = primary.shutdown().expect("primary shutdown");
    assert_eq!(engine.epoch(), last_ack);
    println!("\nzero lag at epoch {last_ack}; graceful shutdown");
    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&follower_dir);

    let json = format!(
        "{{\n  \"users\": {USERS},\n  \"batch\": {BATCH},\n  \
         \"bare_bps\": {bare_bps:.0},\n  \"ship_bps\": {ship_bps:.0},\n  \
         \"standby_bps\": {standby_bps:.0},\n  \
         \"ship_retained\": {:.3},\n  \
         \"final_epoch\": {last_ack},\n  \
         \"gate\": \"zero replication lag, standby on the primary's epoch\",\n  \
         \"pass\": true\n}}\n",
        ship_bps / bare_bps,
    );
    let json_path = std::env::current_dir().unwrap().join("BENCH_repl.json");
    std::fs::write(&json_path, json).unwrap();
    println!("wrote {}", json_path.display());
}
