//! Criterion bench behind Fig 10: the MaxkCovRST solver family — plus the
//! serial-vs-parallel candidate-evaluation comparison (the dominant cost of
//! every solver is the `ServedTable` build, which fans out per-facility).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;
use tq_bench::data;
use tq_bench::methods::{build_indexes, Method};
use tq_core::maxcov::{two_step_greedy, ServedTable};
use tq_core::service::{Scenario, ServiceModel};
use tq_core::tqtree::Placement;

fn bench_solvers(c: &mut Criterion) {
    let model = ServiceModel::new(Scenario::Transit, data::defaults::PSI);
    let users = data::nyt(40_000);
    let facilities = data::ny_routes(64, data::defaults::STOPS);
    let idx = build_indexes(&users, Placement::TwoPoint, data::defaults::BETA);
    let k = data::defaults::K;
    let mut group = c.benchmark_group("fig10_maxkcov_solvers");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("G-BL", k), |b| {
        b.iter(|| idx.greedy_cov(Method::Bl, &users, &model, &facilities, k))
    });
    group.bench_function(BenchmarkId::new("G-TQ(B)", k), |b| {
        b.iter(|| idx.greedy_cov(Method::TqBasic, &users, &model, &facilities, k))
    });
    group.bench_function(BenchmarkId::new("G-TQ(Z)", k), |b| {
        b.iter(|| two_step_greedy(&idx.tq_z, &users, &model, &facilities, k, None))
    });
    group.bench_function(BenchmarkId::new("Gn-TQ(Z)", k), |b| {
        b.iter(|| idx.genetic_cov(&users, &model, &facilities, k))
    });
    group.finish();
}

fn bench_parallel_table(c: &mut Criterion) {
    let model = ServiceModel::new(Scenario::Transit, data::defaults::PSI);
    let users = data::nyt(40_000);
    let facilities = data::ny_routes(128, data::defaults::STOPS);
    let idx = build_indexes(&users, Placement::TwoPoint, data::defaults::BETA);

    // Criterion drives all measurement; the closures additionally record
    // their own wall-clock samples so the speedup line below reuses the
    // same runs instead of measuring the configurations twice.
    let samples: Mutex<HashMap<usize, Vec<f64>>> = Mutex::new(HashMap::new());
    let mut group = c.benchmark_group("maxkcov_parallel_table");
    group.sample_size(9);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("build", format!("{threads}t")),
            &threads,
            |b, &t| {
                b.iter(|| {
                    let start = Instant::now();
                    let table =
                        ServedTable::build_parallel(&idx.tq_z, &users, &model, &facilities, t);
                    samples
                        .lock()
                        .expect("sample sink poisoned")
                        .entry(t)
                        .or_default()
                        .push(start.elapsed().as_secs_f64());
                    table
                })
            },
        );
    }
    group.finish();

    let samples = samples.into_inner().expect("sample sink poisoned");
    let median = |t: usize| -> Option<f64> {
        let mut v = samples.get(&t)?.clone();
        v.sort_by(f64::total_cmp);
        (!v.is_empty()).then(|| v[v.len() / 2])
    };
    // Absent under `cargo bench ... -- <filter>` that excludes a config.
    if let (Some(serial), Some(parallel)) = (median(1), median(4)) {
        println!(
            "\nparallel-path speedup (ServedTable build, 128 facilities, 4 threads, \
             {} cores): {:.2}x  (serial {:.3}s → parallel {:.3}s)",
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            serial / parallel,
            serial,
            parallel,
        );
    }
}

criterion_group!(benches, bench_solvers, bench_parallel_table);
criterion_main!(benches);
