//! Criterion bench behind Fig 10: the MaxkCovRST solver family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tq_bench::data;
use tq_bench::methods::{build_indexes, Method};
use tq_core::maxcov::two_step_greedy;
use tq_core::service::{Scenario, ServiceModel};
use tq_core::tqtree::Placement;

fn bench_solvers(c: &mut Criterion) {
    let model = ServiceModel::new(Scenario::Transit, data::defaults::PSI);
    let users = data::nyt(40_000);
    let facilities = data::ny_routes(64, data::defaults::STOPS);
    let idx = build_indexes(&users, Placement::TwoPoint, data::defaults::BETA);
    let k = data::defaults::K;
    let mut group = c.benchmark_group("fig10_maxkcov_solvers");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("G-BL", k), |b| {
        b.iter(|| idx.greedy_cov(Method::Bl, &users, &model, &facilities, k))
    });
    group.bench_function(BenchmarkId::new("G-TQ(B)", k), |b| {
        b.iter(|| idx.greedy_cov(Method::TqBasic, &users, &model, &facilities, k))
    });
    group.bench_function(BenchmarkId::new("G-TQ(Z)", k), |b| {
        b.iter(|| two_step_greedy(&idx.tq_z, &users, &model, &facilities, k, None))
    });
    group.bench_function(BenchmarkId::new("Gn-TQ(Z)", k), |b| {
        b.iter(|| idx.genetic_cov(&users, &model, &facilities, k))
    });
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
