//! Criterion bench behind the index-construction table (paper §VI-B.4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tq_baseline::BaselineIndex;
use tq_bench::data;
use tq_core::tqtree::{Placement, TqTree, TqTreeConfig};

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    for n in [20_000usize, 40_000, 80_000] {
        let users = data::nyt(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("BL", n), &n, |b, _| {
            b.iter(|| BaselineIndex::build_with_capacity(&users, data::defaults::BETA))
        });
        group.bench_with_input(BenchmarkId::new("TQ(B)", n), &n, |b, _| {
            b.iter(|| {
                TqTree::build(
                    &users,
                    TqTreeConfig::basic(Placement::TwoPoint).with_beta(data::defaults::BETA),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("TQ(Z)", n), &n, |b, _| {
            b.iter(|| {
                TqTree::build(
                    &users,
                    TqTreeConfig::z_order(Placement::TwoPoint).with_beta(data::defaults::BETA),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
