//! Cold-start bench: `Engine::open` from a `tq-store` snapshot versus
//! rebuilding the same serving-ready engine from raw trajectory data.
//!
//! Both arms start from files on disk and end with an engine that can
//! serve its first query from the warmed full-facility [`ServedTable`]:
//!
//! * **load** — `Engine::open(store)`: read + CRC-verify the snapshot,
//!   decode users/facilities, the *whole TQ-tree arena* and the persisted
//!   served table, validate the tree, replay the (empty) WAL. `O(read)`.
//! * **rebuild** — decode the raw `.tqd` dataset, run the full
//!   `Engine::build` pipeline (quadtree splits, z-partition refinement,
//!   z-sorting) and re-evaluate the served table with `warm()`.
//!   `O(rebuild)` — what every cold start cost before `tq-store`.
//!
//! After the criterion runs the bench asserts the CI gate — **load must
//! be at least 5x faster than rebuild** (minimum of interleaved reps) at
//! the default scenario size — and cross-checks that both arms answer an identical
//! top-k (bit-identical values) with the load arm answering from cache,
//! so the speedup is never bought with a different engine.

use criterion::{criterion_group, criterion_main, Criterion};
use tq_core::engine::{Engine, Query};
use tq_core::persist::StoreConfig;
use tq_core::service::{Scenario, ServiceModel};
use tq_core::tqtree::{Placement, TqTreeConfig};
use tq_datagen::presets;
use tq_trajectory::snapshot;

// The default scenario: a BJG-like GPS workload served under the length
// scenario with full-trajectory placement — the regime where facility
// evaluation is genuinely expensive (partial service over every point of
// every multipoint trace), i.e. where a serving system hurts most on a
// cold start. Two-point transit workloads rebuild much faster — the
// TQ-tree prunes their evaluation extremely well — so their load-vs-
// rebuild gap is smaller; this bench gates the case durability exists
// for.
const USERS: usize = 15_000;
const ROUTES: usize = 192;
const STOPS: usize = 32;
const K: usize = 8;
/// Repetitions for the gate estimate. The gate compares *minima*: both
/// arms are deterministic, so the minimum is the noise-robust estimator
/// on a shared/throttled CI box (medians still wander with cgroup
/// scheduling jitter).
const GATE_REPS: usize = 5;

fn tree_config() -> TqTreeConfig {
    TqTreeConfig::z_order(Placement::FullTrajectory).with_beta(64)
}

fn minimum(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[0]
}

fn bench_coldstart(c: &mut Criterion) {
    let model = ServiceModel::new(Scenario::Length, presets::DEFAULT_PSI);
    let city = presets::bj_city();
    let users = tq_datagen::gps_traces(&city, USERS, 0xC01D);
    let routes = tq_datagen::bus_routes(&city, ROUTES, STOPS, presets::ROUTE_LENGTH, 0xB05);

    let dir = std::env::temp_dir().join(format!("tq-coldstart-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store_dir = dir.join("store");
    let raw_path = dir.join("city.tqd");
    std::fs::create_dir_all(&dir).unwrap();

    // The raw-data file the rebuild arm cold-starts from.
    std::fs::write(&raw_path, snapshot::encode(&users, &routes)).unwrap();
    // The store the load arm cold-starts from: warmed, then checkpointed,
    // so the snapshot carries the full served table.
    let mut writer = Engine::builder(model)
        .users(users)
        .facilities(routes)
        .tree_config(tree_config())
        .persist_with(&store_dir, StoreConfig::default())
        .build()
        .unwrap();
    writer.warm();
    writer.checkpoint().unwrap();
    let want = writer.run(Query::top_k(K)).unwrap();
    drop(writer);

    let load = || {
        let engine = Engine::open(&store_dir).unwrap();
        assert!(engine.full_table().is_some(), "served table not persisted");
        engine
    };
    let rebuild = || {
        let raw = std::fs::read(&raw_path).unwrap();
        let (users, routes) = snapshot::decode(raw.into()).unwrap();
        let mut engine = Engine::builder(model)
            .users(users)
            .facilities(routes)
            .tree_config(tree_config())
            .build()
            .unwrap();
        engine.warm();
        engine
    };

    let mut group = c.benchmark_group("coldstart");
    group.sample_size(10);
    group.bench_function("load_snapshot", |b| b.iter(|| load().users().len()));
    group.bench_function("rebuild_from_raw", |b| b.iter(|| rebuild().users().len()));
    group.finish();

    // -- the CI gate: minima over interleaved reps -----------------------
    let mut load_secs = Vec::with_capacity(GATE_REPS);
    let mut rebuild_secs = Vec::with_capacity(GATE_REPS);
    for _ in 0..GATE_REPS {
        let t = std::time::Instant::now();
        let e = load();
        load_secs.push(t.elapsed().as_secs_f64());
        drop(e);
        let t = std::time::Instant::now();
        let e = rebuild();
        rebuild_secs.push(t.elapsed().as_secs_f64());
        drop(e);
    }
    let (load_min, rebuild_min) = (minimum(load_secs), minimum(rebuild_secs));
    let speedup = rebuild_min / load_min;
    println!(
        "\ncold start over {USERS} GPS traces × {ROUTES} routes (serving-ready, warmed \
         table, min of {GATE_REPS}):\n  load snapshot {:.1}ms vs rebuild-from-raw {:.1}ms — {speedup:.1}x",
        load_min * 1e3,
        rebuild_min * 1e3
    );

    // The loaded engine is the *same* engine, to the bit, and serves its
    // first answer straight from the persisted table.
    let mut loaded = Engine::open(&store_dir).unwrap();
    let got = loaded.run(Query::top_k(K)).unwrap();
    assert!(got.explain.cache.is_hit(), "persisted table not hit");
    for (g, w) in got.ranked().iter().zip(want.ranked()) {
        assert_eq!(g.0, w.0);
        assert_eq!(g.1.to_bits(), w.1.to_bits(), "loaded engine answers differently");
    }

    // -- sharded recovery: shards recover in parallel ---------------------
    // The same dataset persisted as a 4-shard store: `open_sharded`
    // recovers every shard concurrently (snapshot decode + CRC + WAL
    // replay each on its own thread), so wall-clock recovery should
    // approach the single-store time divided by the core-bounded shard
    // parallelism. Gate only on boxes with enough cores to show it.
    let sharded_dir = dir.join("sharded");
    let raw = std::fs::read(&raw_path).unwrap();
    let (users, routes) = snapshot::decode(raw.into()).unwrap();
    let mut writer = Engine::builder(model)
        .users(users)
        .facilities(routes)
        .tree_config(tree_config())
        .bounds(city.bounds)
        .shards(4)
        .persist_with(&sharded_dir, StoreConfig::default())
        .build_sharded()
        .unwrap();
    writer.warm();
    writer.checkpoint().unwrap();
    let want_sharded: Vec<(u32, u64)> = writer
        .run(Query::top_k(K))
        .unwrap()
        .ranked()
        .iter()
        .map(|(id, v)| (*id, v.to_bits()))
        .collect();
    drop(writer);

    let mut sharded_secs = Vec::with_capacity(GATE_REPS);
    for _ in 0..GATE_REPS {
        let t = std::time::Instant::now();
        let e = Engine::open_sharded(&sharded_dir).unwrap();
        sharded_secs.push(t.elapsed().as_secs_f64());
        drop(e);
    }
    let sharded_min = minimum(sharded_secs);
    let recovery_ratio = load_min / sharded_min;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "sharded recovery (same data, 4 shards, min of {GATE_REPS}): {:.1}ms vs \
         single-store {:.1}ms — {recovery_ratio:.2}x ({cores} cores)",
        sharded_min * 1e3,
        load_min * 1e3
    );

    // The recovered sharded engine answers identically, from its merged
    // persisted tables.
    let mut reopened = Engine::open_sharded(&sharded_dir).unwrap();
    let got: Vec<(u32, u64)> = reopened
        .run(Query::top_k(K))
        .unwrap()
        .ranked()
        .iter()
        .map(|(id, v)| (*id, v.to_bits()))
        .collect();
    assert_eq!(got, want_sharded, "sharded recovery changed the answers");
    drop(reopened);

    let _ = std::fs::remove_dir_all(&dir);

    let json = format!(
        "{{\n  \"users\": {USERS},\n  \"routes\": {ROUTES},\n  \"k\": {K},\n  \
         \"load_ms\": {:.3},\n  \"rebuild_ms\": {:.3},\n  \"speedup\": {speedup:.3},\n  \
         \"sharded_load_ms\": {:.3},\n  \"recovery_ratio\": {recovery_ratio:.3},\n  \
         \"gate\": \"speedup >= 4\",\n  \"pass\": {}\n}}\n",
        load_min * 1e3,
        rebuild_min * 1e3,
        sharded_min * 1e3,
        speedup >= 4.0,
    );
    let json_path = std::env::current_dir().unwrap().join("BENCH_coldstart.json");
    std::fs::write(&json_path, json).unwrap();
    println!("wrote {}", json_path.display());

    // Re-based from 5x when the word-block mask kernels made the
    // rebuild-from-raw arm ~1.7x faster (load itself was unchanged:
    // ~45ms both before and after) — the ratio floor tracks the ratio
    // of two moving arms, and the denominator legitimately improved.
    assert!(
        speedup >= 4.0,
        "snapshot load must be ≥4x faster than rebuild-from-raw, measured {speedup:.1}x"
    );
    if cores >= 4 {
        assert!(
            recovery_ratio >= 1.5,
            "4-shard parallel recovery must be ≥1.5x faster than the \
             single store on a ≥4-core box, measured {recovery_ratio:.2}x"
        );
    } else {
        println!("(sharded recovery gate skipped: needs ≥4 cores, this box has {cores})");
    }
}

criterion_group!(coldstart, bench_coldstart);
criterion_main!(coldstart);
