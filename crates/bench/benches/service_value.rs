//! Criterion bench behind Fig 6: single-facility service value evaluation
//! for BL, TQ(B) and TQ(Z), varying user count and stop count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tq_bench::data;
use tq_bench::methods::{build_indexes, Method};
use tq_core::service::{Scenario, ServiceModel};
use tq_core::tqtree::Placement;

const METHODS: [Method; 3] = [Method::Bl, Method::TqBasic, Method::TqZ];

fn bench_vs_users(c: &mut Criterion) {
    let model = ServiceModel::new(Scenario::Transit, data::defaults::PSI);
    let facilities = data::ny_routes(8, data::defaults::STOPS);
    let mut group = c.benchmark_group("fig6a_service_value_vs_users");
    group.sample_size(10);
    for n in [20_000usize, 40_000, 80_000] {
        let users = data::nyt(n);
        let idx = build_indexes(&users, Placement::TwoPoint, data::defaults::BETA);
        for m in METHODS {
            group.bench_with_input(
                BenchmarkId::new(m.label(), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let mut acc = 0.0;
                        for (_, f) in facilities.iter() {
                            acc += idx.evaluate(m, &users, &model, f);
                        }
                        acc
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_vs_stops(c: &mut Criterion) {
    let model = ServiceModel::new(Scenario::Transit, data::defaults::PSI);
    let users = data::nyt(40_000);
    let idx = build_indexes(&users, Placement::TwoPoint, data::defaults::BETA);
    let mut group = c.benchmark_group("fig6b_service_value_vs_stops");
    group.sample_size(10);
    for stops in [8usize, 32, 128, 512] {
        let facilities = data::ny_routes(8, stops);
        for m in METHODS {
            group.bench_with_input(
                BenchmarkId::new(m.label(), stops),
                &stops,
                |b, _| {
                    b.iter(|| {
                        let mut acc = 0.0;
                        for (_, f) in facilities.iter() {
                            acc += idx.evaluate(m, &users, &model, f);
                        }
                        acc
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_vs_users, bench_vs_stops);
criterion_main!(benches);
