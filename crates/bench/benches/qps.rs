//! Serving-throughput bench: read scaling across snapshot reader threads,
//! and aggregate read throughput under an in-flight update stream versus
//! the single-session baseline.
//!
//! Three sections, all on one seeded NYT-like dataset:
//!
//! 1. **read scaling** — `serve` with 1, 2 and 4 client threads and no
//!    updates: queries per second against frozen snapshots (each answer a
//!    memo hit, so this measures the serving loop, not evaluation).
//! 2. **mixed workload** — the architecture claim: 4 concurrent clients
//!    with the single writer streaming update batches, versus one session
//!    interleaving the same queries and the same update stream on one
//!    thread (what `Engine::run(&mut self)` forced before the
//!    read/control-plane split). The bench asserts the concurrent
//!    arm clears **2× the single-session qps** and prints the measured
//!    ratio.
//! 3. **writer stall** — total writer busy time and the worst single
//!    batch publish during the mixed run: the longest a *new* snapshot
//!    request can lag the freshest data. Readers never pause — they keep
//!    answering on the epoch they hold.
//!
//! A fifth section gates the observability layer: the instrumented stack
//! versus the same stack with recording disabled must be within 2% qps
//! (best ratio over chunk-interleaved reps), and answers must be
//! bit-identical either
//! way. Alongside the human output the bench writes `BENCH_qps.json`
//! (to the working directory) for machine consumption.

use std::time::{Duration, Instant};
use tq_core::dynamic::Update;
use tq_core::engine::{Engine, Query, QueryResult};
use tq_core::serve::{serve, serve_sharded, ServeConfig, Workload};
use tq_core::service::{Scenario, ServiceModel};
use tq_core::sharding::ShardedEngine;
use tq_core::tqtree::{Placement, TqTreeConfig};
use tq_datagen::{presets, stream_scenario, StreamKind};

const USERS: usize = 4_000;
const ROUTES: usize = 64;
const STOPS: usize = 12;
const K: usize = 8;
/// Events per update batch.
const BATCH: usize = 50;
/// Batches generated — enough that neither arm drains the stream: the
/// mixed sections model a *saturating* writer (batches applied
/// back-to-back for the whole run, 50% expiries so the live set stays
/// near its initial size), the regime the read/control-plane split exists
/// for.
const N_BATCHES: usize = 2_500;
/// Wall time per measured section.
const DURATION: Duration = Duration::from_millis(1500);
const CLIENTS: usize = 4;
/// Reps per gate estimate; each interleaves both arms and the gate keeps
/// the cleanest rep — the noise-robust shape on a shared CI box.
const GATE_REPS: usize = 5;
/// Queries per overhead-gate rep, split evenly across the two arms.
const GATE_QUERIES: usize = 2_000;
/// Off/on chunk pairs interleaved within each overhead-gate rep.
const GATE_CHUNKS: usize = 4;
/// The observability overhead ceiling: instrumented ≤ 1.02× bare.
const OBS_GATE: f64 = 1.02;

fn build_engine() -> (Engine, Vec<Vec<Update>>) {
    let city = presets::ny_city();
    let trace = stream_scenario(&city, StreamKind::Taxi, USERS, N_BATCHES * BATCH, 0.5, 0x9A5);
    let facilities = tq_datagen::bus_routes(
        &city,
        ROUTES,
        STOPS,
        presets::ROUTE_LENGTH,
        0x9A5 ^ 0xB05,
    );
    let batches = trace.update_batches(BATCH);
    let mut engine = Engine::builder(ServiceModel::new(Scenario::Transit, presets::DEFAULT_PSI))
        .users(trace.initial)
        .facilities(facilities)
        .tree_config(TqTreeConfig::z_order(Placement::TwoPoint).with_beta(64))
        .bounds(trace.bounds)
        .build()
        .expect("bench engine builds");
    engine.warm();
    (engine, batches)
}

fn build_sharded_engine(shards: usize) -> ShardedEngine {
    let city = presets::ny_city();
    let trace = stream_scenario(&city, StreamKind::Taxi, USERS, 1, 0.5, 0x9A5);
    let facilities = tq_datagen::bus_routes(
        &city,
        ROUTES,
        STOPS,
        presets::ROUTE_LENGTH,
        0x9A5 ^ 0xB05,
    );
    Engine::builder(ServiceModel::new(Scenario::Transit, presets::DEFAULT_PSI))
        .users(trace.initial)
        .facilities(facilities)
        .tree_config(TqTreeConfig::z_order(Placement::TwoPoint).with_beta(64))
        .bounds(trace.bounds)
        .shards(shards)
        .build_sharded()
        .expect("bench sharded engine builds")
}

/// Memo-missing scripts: rotating candidate subsets, so every query pays
/// a real table build — the work the scatter over shards parallelizes.
fn subset_queries() -> Vec<Query> {
    (0..6u32)
        .map(|i| {
            let ids: Vec<u32> = (0..24u32).map(|j| (i * 7 + j * 2) % ROUTES as u32).collect();
            Query::top_k(K).candidates(&ids).threads(1)
        })
        .collect()
}

fn queries() -> Vec<Query> {
    // One evaluation thread per query in *both* arms: what the serve
    // shards' session budget picks on this box anyway, pinned explicitly
    // so the single-session arm runs the identical query plan (per-round
    // fan-out of a cache-hit greedy solve costs more in thread spawns
    // than the work it splits).
    //
    // The serving mix: both query families answered from the maintained
    // (incrementally patched) full table — the steady-state traffic this
    // architecture serves. Index-searching misses are measured per query
    // by the `kmaxrrst` bench instead; here they would drown the
    // serving-loop signal in memory-bandwidth-bound evaluation.
    vec![Query::top_k(K).threads(1), Query::max_cov(K).threads(1)]
}

/// The pre-split serving model: one session, one thread, queries and
/// update batches interleaved through `&mut self` — every batch stalls
/// the reader. Returns achieved qps, batches applied, and the fraction of
/// wall time reads were stalled inside `apply`.
fn single_session_mixed(engine: &mut Engine, batches: &[Vec<Update>]) -> (f64, u64, f64) {
    let script = queries();
    let mut cursor = 0usize;
    let mut answered = 0u64;
    let mut applied = 0u64;
    let mut stalled = Duration::ZERO;
    let mut batch_iter = batches.iter();
    let start = Instant::now();
    let deadline = start + DURATION;
    loop {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        // Saturating writer, same as serve's (update_pause = 0): the next
        // batch is always due.
        if let Some(batch) = batch_iter.next() {
            let t = Instant::now();
            engine.apply(batch).expect("bench batches are valid");
            stalled += t.elapsed();
            applied += 1;
        }
        engine
            .run(script[cursor % script.len()].clone())
            .expect("bench queries are valid");
        cursor += 1;
        answered += 1;
    }
    let wall = start.elapsed();
    (
        answered as f64 / wall.as_secs_f64(),
        applied,
        stalled.as_secs_f64() / wall.as_secs_f64(),
    )
}

fn main() {
    println!("qps bench: {USERS} trajectories, {ROUTES} routes × {STOPS} stops, k={K}");
    println!("queries: top-{K} + max-cov-{K}, both served from the maintained table\n");

    // -- 1: read scaling over frozen snapshots ------------------------------
    println!("read scaling (no updates, {:.1}s per point):", DURATION.as_secs_f64());
    let mut base_qps = 0.0;
    let mut scaling: Vec<(usize, f64)> = Vec::new();
    for clients in [1usize, 2, 4] {
        let (mut engine, _) = build_engine();
        let workload = Workload {
            queries: queries(),
            update_batches: Vec::new(),
        };
        let config = ServeConfig {
            clients,
            duration: DURATION,
            ..ServeConfig::default()
        };
        let report = serve(&mut engine, &workload, &config).expect("serve runs");
        assert_eq!(report.epoch_regressions(), 0);
        if clients == 1 {
            base_qps = report.qps;
        }
        scaling.push((clients, report.qps));
        println!(
            "  {clients} client(s): {:>8.0} qps  ({:.2}x vs 1 client, mean queue {:.4}ms)",
            report.qps,
            report.qps / base_qps,
            report.mean_queued().as_secs_f64() * 1e3,
        );
    }

    // -- 2: mixed workload — single session vs concurrent serving ----------
    println!("\nmixed workload (batches of {BATCH} events, writer saturated — applied back-to-back):");
    let (mut engine, batches) = build_engine();
    let (serial_qps, serial_batches, stall) = single_session_mixed(&mut engine, &batches);
    println!(
        "  single session (reads stall on writes): {serial_qps:>8.0} qps \
         ({serial_batches} batches applied, reads stalled {:.0}% of the run)",
        stall * 100.0
    );

    let (mut engine, batches) = build_engine();
    let workload = Workload {
        queries: queries(),
        update_batches: batches,
    };
    let config = ServeConfig {
        clients: CLIENTS,
        duration: DURATION,
        update_pause: Duration::ZERO,
        ..ServeConfig::default()
    };
    let report = serve(&mut engine, &workload, &config).expect("serve runs");
    assert_eq!(report.epoch_regressions(), 0);
    let ratio = report.qps / serial_qps;
    println!(
        "  {CLIENTS} concurrent clients + writer:        {:>8.0} qps \
         ({} batches applied) → {ratio:.2}x",
        report.qps, report.batches_applied
    );

    // -- 3: writer stall ----------------------------------------------------
    println!(
        "\nwriter stall during the concurrent run: busy {:.3}s of {:.3}s \
         ({:.1}%), worst single publish {:.3}ms — readers never paused \
         (epochs {}..={}, {} regressions)",
        report.writer_busy.as_secs_f64(),
        report.wall.as_secs_f64(),
        100.0 * report.writer_busy.as_secs_f64() / report.wall.as_secs_f64(),
        report.max_publish.as_secs_f64() * 1e3,
        report.first_epoch,
        report.last_epoch,
        report.epoch_regressions(),
    );

    assert!(
        report.batches_applied > 0,
        "the mixed run must actually stream updates"
    );
    assert!(
        ratio > 2.0,
        "concurrent serving must clear 2x the single-session qps with an \
         in-flight update stream (got {ratio:.2}x: {:.0} vs {serial_qps:.0})",
        report.qps
    );

    // -- 4: sharded scatter–gather ------------------------------------------
    // Memo-missing subset queries, so each answer pays a table build the
    // shards split; 2 clients keep the client × shard thread product
    // within a small core count.
    println!(
        "\nsharded scatter–gather (memo-missing subset queries, 2 clients, \
         {:.1}s per point):",
        DURATION.as_secs_f64()
    );
    let sharded_config = ServeConfig {
        clients: 2,
        duration: DURATION,
        ..ServeConfig::default()
    };
    let workload = Workload {
        queries: subset_queries(),
        update_batches: Vec::new(),
    };
    let mut qps_at = [0.0f64; 2];
    let mut ranked_at: Vec<Vec<(u32, u64)>> = Vec::new();
    for (slot, shards) in [1usize, 4].into_iter().enumerate() {
        let mut engine = build_sharded_engine(shards);
        let report = serve_sharded(&mut engine, &workload, &sharded_config).expect("serve runs");
        assert_eq!(report.epoch_regressions(), 0);
        qps_at[slot] = report.qps;
        let answer = engine.run(subset_queries()[0].clone()).expect("subset query runs");
        ranked_at.push(
            answer
                .ranked()
                .iter()
                .map(|(id, v)| (*id, v.to_bits()))
                .collect(),
        );
        println!("  {shards} shard(s): {:>8.0} qps", report.qps);
    }
    assert_eq!(
        ranked_at[0], ranked_at[1],
        "1-shard and 4-shard answers must be bit-identical"
    );
    let sharded_ratio = qps_at[1] / qps_at[0];
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("  4 shards vs 1: {sharded_ratio:.2}x aggregate qps ({cores} cores)");
    if cores >= 4 {
        assert!(
            sharded_ratio > 1.5,
            "4-shard scatter–gather must clear 1.5x the 1-shard qps on a \
             ≥4-core box (got {sharded_ratio:.2}x: {:.0} vs {:.0})",
            qps_at[1],
            qps_at[0]
        );
    } else {
        println!("  (scaling gate skipped: needs ≥4 cores, this box has {cores})");
    }

    // -- 5: observability overhead gate -------------------------------------
    // The instrumented serving loop vs the identical loop with recording
    // switched off — the tentpole claim that always-on metrics are
    // effectively free. Interleaved min-of-reps cancels box noise; the
    // answers must be bit-identical with metrics on and off.
    println!(
        "\nobservability overhead ({GATE_QUERIES} queries per rep, {GATE_CHUNKS} \
         interleaved off/on chunk pairs, best of {GATE_REPS} reps):"
    );
    let (mut engine, _) = build_engine();
    let script = queries();
    let chunk_len = GATE_QUERIES / (2 * GATE_CHUNKS);
    let run_chunk = |engine: &mut Engine| {
        let t = Instant::now();
        for i in 0..chunk_len {
            engine
                .run(script[i % script.len()].clone())
                .expect("bench queries are valid");
        }
        t.elapsed().as_secs_f64()
    };
    run_chunk(&mut engine); // warm the memo before either arm measures
    // Per-query recording is a handful of relaxed integer atomics
    // (~100ns against ~30µs memo-hit queries), far below a shared box's
    // scheduling drift — so each rep interleaves short off/on chunks
    // (drift hits both arms alike) and the gate takes the *cleanest*
    // rep's on/off ratio, the noise-robust estimator for a true ratio
    // this close to 1.
    let mut reps: Vec<(f64, f64)> = Vec::with_capacity(GATE_REPS);
    for _ in 0..GATE_REPS {
        let (mut off, mut on) = (0.0, 0.0);
        for _ in 0..GATE_CHUNKS {
            tq_obs::set_enabled(false);
            off += run_chunk(&mut engine);
            tq_obs::set_enabled(true);
            on += run_chunk(&mut engine);
        }
        reps.push((off, on));
    }
    let &(off_best, on_best) = reps
        .iter()
        .min_by(|a, b| (a.1 / a.0).total_cmp(&(b.1 / b.0)))
        .expect("GATE_REPS > 0");
    let overhead = on_best / off_best - 1.0;

    let ranked_bits = |answer: &tq_core::engine::Answer| -> Vec<(u32, u64)> {
        match &answer.result {
            QueryResult::TopK(ranked) => {
                ranked.iter().map(|(id, v)| (*id, v.to_bits())).collect()
            }
            QueryResult::MaxCov(cov) => cov
                .chosen
                .iter()
                .map(|id| (*id, cov.value.to_bits()))
                .chain([(cov.users_served as u32, cov.users_served as u64)])
                .collect(),
        }
    };
    tq_obs::set_enabled(false);
    let bare: Vec<Vec<(u32, u64)>> = queries()
        .into_iter()
        .map(|q| ranked_bits(&engine.run(q).expect("bench queries are valid")))
        .collect();
    tq_obs::set_enabled(true);
    let instrumented: Vec<Vec<(u32, u64)>> = queries()
        .into_iter()
        .map(|q| ranked_bits(&engine.run(q).expect("bench queries are valid")))
        .collect();
    assert_eq!(
        bare, instrumented,
        "answers must be bit-identical with metrics enabled and disabled"
    );
    println!(
        "  metrics off {:.1}ms, metrics on {:.1}ms — {:.2}% overhead \
         (gate ≤{:.0}%), answers bit-identical",
        off_best * 1e3,
        on_best * 1e3,
        overhead * 100.0,
        (OBS_GATE - 1.0) * 100.0,
    );

    let json = format!(
        "{{\n  \"users\": {USERS},\n  \"routes\": {ROUTES},\n  \"k\": {K},\n  \
         \"read_qps_1\": {:.0},\n  \"read_qps_2\": {:.0},\n  \"read_qps_4\": {:.0},\n  \
         \"serial_qps\": {serial_qps:.0},\n  \"concurrent_qps\": {:.0},\n  \
         \"concurrent_ratio\": {ratio:.3},\n  \
         \"sharded_qps_1\": {:.0},\n  \"sharded_qps_4\": {:.0},\n  \
         \"sharded_ratio\": {sharded_ratio:.3},\n  \
         \"obs_off_ms\": {:.3},\n  \"obs_on_ms\": {:.3},\n  \
         \"obs_overhead\": {overhead:.5},\n  \
         \"gate\": \"concurrent_ratio > 2 && obs_on <= obs_off * {OBS_GATE}\",\n  \
         \"pass\": {}\n}}\n",
        scaling[0].1,
        scaling[1].1,
        scaling[2].1,
        report.qps,
        qps_at[0],
        qps_at[1],
        off_best * 1e3,
        on_best * 1e3,
        ratio > 2.0 && on_best <= off_best * OBS_GATE,
    );
    let json_path = std::env::current_dir().unwrap().join("BENCH_qps.json");
    std::fs::write(&json_path, json).unwrap();
    println!("wrote {}", json_path.display());

    assert!(
        on_best <= off_best * OBS_GATE,
        "always-on metrics must cost under {:.0}% qps \
         (measured {:.2}%: on {:.1}ms vs off {:.1}ms)",
        (OBS_GATE - 1.0) * 100.0,
        overhead * 100.0,
        on_best * 1e3,
        off_best * 1e3,
    );

    println!("\nqps bench OK: {ratio:.2}x aggregate read throughput at {CLIENTS} clients");
}
