//! Criterion bench behind Fig 7: the kMaxRRST query for BL, TQ(B), TQ(Z),
//! varying k and the candidate facility count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tq_bench::data;
use tq_bench::methods::{build_indexes, Method};
use tq_core::service::{Scenario, ServiceModel};
use tq_core::tqtree::Placement;

const METHODS: [Method; 3] = [Method::Bl, Method::TqBasic, Method::TqZ];

fn bench_vs_k(c: &mut Criterion) {
    let model = ServiceModel::new(Scenario::Transit, data::defaults::PSI);
    let users = data::nyt(40_000);
    let facilities = data::ny_routes(64, data::defaults::STOPS);
    let idx = build_indexes(&users, Placement::TwoPoint, data::defaults::BETA);
    let mut group = c.benchmark_group("fig7b_kmaxrrst_vs_k");
    group.sample_size(10);
    for k in [4usize, 8, 16, 32] {
        for m in METHODS {
            group.bench_with_input(BenchmarkId::new(m.label(), k), &k, |b, &k| {
                b.iter(|| idx.top_k(m, &users, &model, &facilities, k))
            });
        }
    }
    group.finish();
}

fn bench_vs_facilities(c: &mut Criterion) {
    let model = ServiceModel::new(Scenario::Transit, data::defaults::PSI);
    let users = data::nyt(40_000);
    let idx = build_indexes(&users, Placement::TwoPoint, data::defaults::BETA);
    let mut group = c.benchmark_group("fig7d_kmaxrrst_vs_facilities");
    group.sample_size(10);
    for n in [16usize, 64, 256] {
        let facilities = data::ny_routes(n, data::defaults::STOPS);
        for m in METHODS {
            group.bench_with_input(BenchmarkId::new(m.label(), n), &n, |b, _| {
                b.iter(|| idx.top_k(m, &users, &model, &facilities, data::defaults::K))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_vs_k, bench_vs_facilities);
criterion_main!(benches);
