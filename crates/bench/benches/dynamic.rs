//! Dynamic-workload bench: incremental `DynamicEngine` batches versus
//! rebuild-from-scratch, at several update rates.
//!
//! Each iteration applies one batch of a pre-generated NYT-like
//! arrival/expiry trace (50% expiries, so the live set stays near its
//! initial size). The *incremental* arm drives a persistent
//! [`DynamicEngine`]; the *rebuild* arm applies the same batch to a plain
//! trajectory store and then rebuilds the TQ-tree and the full
//! [`ServedTable`] — what a static pipeline must do to stay correct.
//!
//! After the timed runs the bench prints the engine's accumulated
//! [`UpdateStats`], showing the fraction of full facility evaluations the
//! incremental path skipped (the acceptance bar is >50% at a 1% update
//! rate; in practice nearly all of them are skipped).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tq_core::dynamic::{DynamicConfig, DynamicEngine, Update, UpdateStats};
use tq_core::maxcov::ServedTable;
use tq_core::service::{Scenario, ServiceModel};
use tq_core::tqtree::{Placement, TqTree, TqTreeConfig};
use tq_datagen::{presets, stream_scenario, StreamKind, StreamScenario};
use tq_trajectory::{FacilitySet, Trajectory, UserSet};

const USERS: usize = 10_000;
const ROUTES: usize = 64;
const STOPS: usize = 12;
/// Update rates as a fraction of the live set per batch.
const RATES: [f64; 3] = [0.001, 0.01, 0.05];
/// Pre-generated batches per rate; iterations beyond this wrap around by
/// resetting the engine (the reset cost lands in one outlier sample).
const BATCHES: usize = 400;

fn tree_config() -> TqTreeConfig {
    TqTreeConfig::z_order(Placement::TwoPoint).with_beta(64)
}

fn scenario_for(rate: f64) -> (StreamScenario, Vec<Vec<Update>>) {
    let batch = ((rate * USERS as f64).round() as usize).max(1);
    let city = presets::ny_city();
    let trace = stream_scenario(
        &city,
        StreamKind::Taxi,
        USERS,
        batch * BATCHES,
        0.5,
        0xD1A,
    );
    let batches = trace.update_batches(batch);
    (trace, batches)
}

/// The rebuild arm's trajectory store: id-indexed, `None` = expired.
struct RebuildState {
    all: Vec<Option<Trajectory>>,
}

impl RebuildState {
    fn new(initial: &UserSet) -> RebuildState {
        RebuildState {
            all: initial.iter().map(|(_, t)| Some(t.clone())).collect(),
        }
    }

    fn apply(&mut self, batch: &[Update]) {
        for u in batch {
            match u {
                Update::Insert(t) => self.all.push(Some(t.clone())),
                Update::Remove(id) => self.all[*id as usize] = None,
            }
        }
    }

    fn live(&self) -> UserSet {
        UserSet::from_vec(self.all.iter().flatten().cloned().collect())
    }
}

fn bench_incremental_vs_rebuild(c: &mut Criterion) {
    let model = ServiceModel::new(Scenario::Transit, presets::DEFAULT_PSI);
    let facilities: FacilitySet = presets::ny_bus(ROUTES, STOPS);
    let config = DynamicConfig {
        tree: tree_config(),
        ..DynamicConfig::default()
    };

    let mut group = c.benchmark_group("dynamic_incremental_vs_rebuild");
    group.sample_size(9);
    let mut stats_per_rate: Vec<(f64, UpdateStats)> = Vec::new();

    for rate in RATES {
        let (trace, batches) = scenario_for(rate);
        let label = format!("{:.1}%", rate * 100.0);

        // Incremental: one persistent engine, one batch per iteration.
        let mk_engine = || {
            DynamicEngine::new(
                trace.initial.clone(),
                facilities.clone(),
                model,
                config,
                trace.bounds,
            )
        };
        let mut engine = mk_engine();
        let mut accumulated = UpdateStats::default();
        let mut idx = 0usize;
        group.bench_with_input(
            BenchmarkId::new("incremental", &label),
            &batches,
            |b, batches| {
                b.iter(|| {
                    if idx == batches.len() {
                        accumulated.add(engine.stats());
                        engine = mk_engine();
                        idx = 0;
                    }
                    let out = engine.apply(&batches[idx]).expect("valid trace");
                    idx += 1;
                    out.patched
                })
            },
        );
        accumulated.add(engine.stats());
        stats_per_rate.push((rate, accumulated));

        // Rebuild: apply the batch, then rebuild index + ServedTable.
        let mut state = RebuildState::new(&trace.initial);
        let mut idx = 0usize;
        group.bench_with_input(
            BenchmarkId::new("rebuild", &label),
            &batches,
            |b, batches| {
                b.iter(|| {
                    if idx == batches.len() {
                        state = RebuildState::new(&trace.initial);
                        idx = 0;
                    }
                    state.apply(&batches[idx]);
                    idx += 1;
                    let live = state.live();
                    let tree = TqTree::build_with_bounds(&live, tree_config(), trace.bounds);
                    let table = ServedTable::build(&tree, &live, &model, &facilities);
                    table.len()
                })
            },
        );
    }
    group.finish();

    println!("\nUpdateStats per rate ({USERS} users, {ROUTES} routes, batches of rate×users events):");
    for (rate, s) in &stats_per_rate {
        println!(
            "  {:>5.1}%: {:>5} batches | full facility evaluations: rebuild strategy {:>7}, \
             engine {:>5} → {:>5.1}% skipped ({:.1}% untouched, {} delta patches)",
            rate * 100.0,
            s.batches,
            s.rebuild_evaluations(),
            s.facilities_reevaluated,
            100.0 * s.skipped_fraction(),
            100.0 * s.untouched_fraction(),
            s.patch_evaluations,
        );
    }
    let one_pct = stats_per_rate
        .iter()
        .find(|(r, _)| (*r - 0.01).abs() < 1e-12)
        .map(|(_, s)| s.skipped_fraction())
        .unwrap_or(0.0);
    assert!(
        one_pct > 0.5,
        "expected >50% of facility evaluations skipped at the 1% update rate, got {:.1}%",
        100.0 * one_pct
    );
}

criterion_group!(benches, bench_incremental_vs_rebuild);
criterion_main!(benches);
