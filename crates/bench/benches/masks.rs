//! Mask-kernel bench: the word-block `PointMask` + arena greedy rounds
//! versus the seed implementation, at paper scale.
//!
//! The seed implementation (the pre-word-block `Small(u64)`/`Large` enum,
//! per-bit Scenario-3 value loop, and clone-per-candidate marginal-gain
//! fold) is embedded verbatim below so the comparison survives the old
//! code's deletion. Three sections, all on one seeded BJG-like GPS
//! dataset under the Length scenario (multipoint masks — the regime the
//! word kernels exist for):
//!
//! 1. **table build** — `ServedTable::build` wall time (reported; the
//!    gate is on greedy, where old and new do identical algorithmic work
//!    over identical inputs).
//! 2. **greedy rounds** — `k` marginal-gain rounds over the full table:
//!    seed fold (sorted map entries, clone + union + two per-bit value
//!    evaluations per overlapping user) versus the arena fold
//!    (`MaskArena` streaming, `union_would_change` word test,
//!    `value_union` without materializing). Both run single-threaded and
//!    must pick **identical facilities with bit-identical values**; the
//!    CI gate asserts the arena fold is **≥2x** faster (minimum of
//!    interleaved reps).
//! 3. **Scenario-3 segment kernel** — the word-parallel
//!    `w & (w >> 1)`-with-carry value against the definitional
//!    per-segment `get(s) && get(s+1)` loop across word-boundary
//!    lengths, bit-identical sums.
//!
//! Alongside the human output the bench writes `BENCH_masks.json` (to the
//! working directory) with the measured times, speedups, and gate verdict
//! for machine consumption.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tq_core::fasthash::FxHashMap;
use tq_core::maxcov::{greedy, ServedTable};
use tq_core::service::{PointMask, Scenario, ServiceModel};
use tq_core::tqtree::{Placement, TqTree, TqTreeConfig};
use tq_datagen::presets;
use tq_trajectory::{Trajectory, TrajectoryId, UserSet};

const USERS: usize = 10_000;
const ROUTES: usize = 96;
const STOPS: usize = 24;
const K: usize = 8;
/// Gate estimates compare minima of interleaved reps — the noise-robust
/// estimator for deterministic work on a shared CI box.
const GATE_REPS: usize = 5;
/// The CI gate: arena greedy rounds vs the seed fold.
const GREEDY_GATE: f64 = 2.0;

// ---------------------------------------------------------------------------
// Seed implementation (pre-word-block), embedded for comparison
// ---------------------------------------------------------------------------

/// The seed mask: `Small`/`Large` enum, no width, no view.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SeedMask {
    Small(u64),
    Large(Box<[u64]>),
}

impl SeedMask {
    fn empty(n_points: usize) -> Self {
        if n_points <= 64 {
            SeedMask::Small(0)
        } else {
            SeedMask::Large(vec![0u64; n_points.div_ceil(64)].into_boxed_slice())
        }
    }

    #[inline]
    fn get(&self, i: usize) -> bool {
        match self {
            SeedMask::Small(w) => (i < 64) && (w >> i) & 1 == 1,
            SeedMask::Large(ws) => (ws[i / 64] >> (i % 64)) & 1 == 1,
        }
    }

    #[inline]
    fn set(&mut self, i: usize) -> bool {
        match self {
            SeedMask::Small(w) => {
                let bit = 1u64 << i;
                let newly = *w & bit == 0;
                *w |= bit;
                newly
            }
            SeedMask::Large(ws) => {
                let bit = 1u64 << (i % 64);
                let word = &mut ws[i / 64];
                let newly = *word & bit == 0;
                *word |= bit;
                newly
            }
        }
    }

    #[inline]
    fn count_ones(&self) -> u32 {
        match self {
            SeedMask::Small(w) => w.count_ones(),
            SeedMask::Large(ws) => ws.iter().map(|w| w.count_ones()).sum(),
        }
    }

    fn union_with(&mut self, other: &SeedMask) -> bool {
        match (self, other) {
            (SeedMask::Small(a), SeedMask::Small(b)) => {
                let before = *a;
                *a |= b;
                *a != before
            }
            (SeedMask::Large(a), SeedMask::Large(b)) => {
                let mut changed = false;
                for (x, y) in a.iter_mut().zip(b.iter()) {
                    let before = *x;
                    *x |= y;
                    changed |= *x != before;
                }
                changed
            }
            _ => panic!("mask size mismatch"),
        }
    }
}

/// The seed `ServiceModel::value`: per-bit loops, notably the
/// per-segment `get(s) && get(s + 1)` Scenario-3 test.
fn seed_value(model: &ServiceModel, u: &Trajectory, mask: &SeedMask) -> f64 {
    match model.scenario {
        Scenario::Transit => {
            if mask.get(0) && mask.get(u.len() - 1) {
                1.0
            } else {
                0.0
            }
        }
        Scenario::PointCount => mask.count_ones() as f64 / u.len() as f64,
        Scenario::Length => {
            let total = u.length();
            if total <= 0.0 {
                return if mask.count_ones() as usize == u.len() {
                    1.0
                } else {
                    0.0
                };
            }
            let mut served = 0.0;
            for s in 0..u.num_segments() {
                if mask.get(s) && mask.get(s + 1) {
                    served += u.segment_length(s);
                }
            }
            served / total
        }
    }
}

/// The seed `Coverage`: hash map of owned masks plus the running value,
/// with the clone-on-overlap marginal fold and the clone-always add.
#[derive(Default)]
struct SeedCoverage {
    masks: FxHashMap<TrajectoryId, SeedMask>,
    value: f64,
}

type SeedEntries = Vec<Vec<(TrajectoryId, SeedMask)>>;

impl SeedCoverage {
    fn marginal(
        &self,
        users: &UserSet,
        model: &ServiceModel,
        entries: &[(TrajectoryId, SeedMask)],
    ) -> f64 {
        let mut gain = 0.0;
        for (id, fmask) in entries {
            let t = users.get(*id);
            match self.masks.get(id) {
                None => gain += seed_value(model, t, fmask),
                Some(cur) => {
                    let mut merged = cur.clone();
                    if merged.union_with(fmask) {
                        gain += seed_value(model, t, &merged) - seed_value(model, t, cur);
                    }
                }
            }
        }
        gain
    }

    fn add(
        &mut self,
        users: &UserSet,
        model: &ServiceModel,
        entries: &[(TrajectoryId, SeedMask)],
    ) {
        for (id, fmask) in entries {
            let t = users.get(*id);
            match self.masks.get_mut(id) {
                None => {
                    let v = seed_value(model, t, fmask);
                    self.value += v;
                    self.masks.insert(*id, fmask.clone());
                }
                Some(cur) => {
                    let before = seed_value(model, t, cur);
                    let _saved = cur.clone();
                    if cur.union_with(fmask) {
                        let after = seed_value(model, t, cur);
                        self.value += after - before;
                    }
                }
            }
        }
    }
}

/// The seed greedy rounds: same comparator, serial gains.
fn seed_greedy(
    ids: &[u32],
    entries: &SeedEntries,
    users: &UserSet,
    model: &ServiceModel,
    k: usize,
) -> (Vec<u32>, f64) {
    let n = ids.len();
    let mut cov = SeedCoverage::default();
    let mut used = vec![false; n];
    let mut chosen = Vec::with_capacity(k.min(n));
    for _ in 0..k.min(n) {
        let mut best: Option<(usize, f64)> = None;
        for i in (0..n).filter(|&i| !used[i]) {
            let gain = cov.marginal(users, model, &entries[i]);
            let take = match best {
                Some((bi, bg)) => gain > bg + 1e-12 || (gain > bg - 1e-12 && ids[i] < ids[bi]),
                None => true,
            };
            if take {
                best = Some((i, gain));
            }
        }
        let Some((bi, _)) = best else { break };
        used[bi] = true;
        cov.add(users, model, &entries[bi]);
        chosen.push(ids[bi]);
    }
    (chosen, cov.value)
}

/// Converts a word-block mask to the seed representation, bit by bit.
fn seed_from_mask(m: &PointMask) -> SeedMask {
    let mut sm = SeedMask::empty(m.nbits());
    for i in 0..m.nbits() {
        if m.get(i) {
            sm.set(i);
        }
    }
    sm
}

/// Per-candidate seed entries in canonical ascending-id order.
fn seed_entries(table: &ServedTable) -> SeedEntries {
    table
        .masks
        .iter()
        .map(|map| {
            let mut entries: Vec<(TrajectoryId, SeedMask)> = map
                .iter()
                .map(|(id, m)| (*id, seed_from_mask(m)))
                .collect();
            entries.sort_unstable_by_key(|(id, _)| *id);
            entries
        })
        .collect()
}

// ---------------------------------------------------------------------------

fn minimum(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[0]
}

fn bench_masks(c: &mut Criterion) {
    let model = ServiceModel::new(Scenario::Length, presets::DEFAULT_PSI);
    let city = presets::bj_city();
    let users = tq_datagen::gps_traces(&city, USERS, 0x3A5C);
    let routes = tq_datagen::bus_routes(&city, ROUTES, STOPS, presets::ROUTE_LENGTH, 0xB05);
    let tree_config = TqTreeConfig::z_order(Placement::FullTrajectory).with_beta(64);
    let tree = TqTree::build(&users, tree_config);

    let build = || {
        tq_core::parallel::with_threads(1, || ServedTable::build(&tree, &users, &model, &routes))
    };
    let table = build();
    let entries = seed_entries(&table);
    let served_users: usize = table.masks.iter().map(|m| m.len()).sum();

    let run_seed = || seed_greedy(&table.ids, &entries, &users, &model, K);
    let run_new = || {
        tq_core::parallel::with_threads(1, || {
            let out = greedy(&table, &users, &model, K);
            (out.chosen, out.value)
        })
    };

    // Identical picks and bit-identical values before any timing: the
    // speedup must never be bought with a different answer.
    let (seed_chosen, seed_val) = run_seed();
    let (new_chosen, new_val) = run_new();
    assert_eq!(seed_chosen, new_chosen, "greedy picks diverged");
    assert_eq!(
        seed_val.to_bits(),
        new_val.to_bits(),
        "greedy value bits diverged"
    );

    let mut group = c.benchmark_group("masks");
    group.sample_size(10);
    group.bench_function("served_table_build", |b| b.iter(|| build().len()));
    group.bench_function("greedy_rounds_seed", |b| b.iter(|| run_seed().1));
    group.bench_function("greedy_rounds_arena", |b| b.iter(|| run_new().1));
    group.finish();

    // -- gate: minima over interleaved reps ------------------------------
    let mut build_secs = Vec::with_capacity(GATE_REPS);
    let mut seed_secs = Vec::with_capacity(GATE_REPS);
    let mut new_secs = Vec::with_capacity(GATE_REPS);
    for _ in 0..GATE_REPS {
        let t = std::time::Instant::now();
        black_box(build().len());
        build_secs.push(t.elapsed().as_secs_f64());
        let t = std::time::Instant::now();
        black_box(run_seed().1);
        seed_secs.push(t.elapsed().as_secs_f64());
        let t = std::time::Instant::now();
        black_box(run_new().1);
        new_secs.push(t.elapsed().as_secs_f64());
    }
    let build_min = minimum(build_secs);
    let seed_min = minimum(seed_secs);
    let new_min = minimum(new_secs);
    let greedy_speedup = seed_min / new_min;

    // -- Scenario-3 segment kernel across word boundaries ----------------
    // Random-density masks at one-below/at/one-above word-boundary
    // lengths; both arms fold the same masks in the same order, so the
    // accumulated sums must agree to the bit. splitmix64 keeps the data
    // deterministic without pulling a rand dependency into the bench.
    let mut rng_state = 0x5E6u64;
    let mut next_u64 = move || {
        rng_state = rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut unit = move || next_u64() as f64 / u64::MAX as f64;
    let kernel_cases: Vec<(Trajectory, PointMask, SeedMask)> = [63usize, 64, 65, 127, 128, 129,
        511, 512, 513]
        .iter()
        .flat_map(|&n| {
            let mut x = 0.0f64;
            let pts = (0..n)
                .map(|_| {
                    x += 0.1 + 1.9 * unit();
                    tq_geometry::Point::new(x, 2.0 * unit() - 1.0)
                })
                .collect();
            let u = Trajectory::new(pts);
            let mut mask = PointMask::empty(n);
            for i in 0..n {
                if unit() < 0.5 {
                    mask.set(i);
                }
            }
            let sm = seed_from_mask(&mask);
            std::iter::once((u, mask, sm))
        })
        .collect();
    const KERNEL_ITERS: usize = 2_000;
    let t = std::time::Instant::now();
    let mut seed_sum = 0.0;
    for _ in 0..KERNEL_ITERS {
        for (u, _, sm) in &kernel_cases {
            seed_sum += seed_value(&model, u, sm);
        }
    }
    let kernel_seed = t.elapsed().as_secs_f64();
    let t = std::time::Instant::now();
    let mut new_sum = 0.0;
    for _ in 0..KERNEL_ITERS {
        for (u, m, _) in &kernel_cases {
            new_sum += model.value(u, m);
        }
    }
    let kernel_new = t.elapsed().as_secs_f64();
    assert_eq!(
        seed_sum.to_bits(),
        new_sum.to_bits(),
        "segment kernel bits diverged"
    );
    let kernel_speedup = kernel_seed / kernel_new;

    println!(
        "\nmask kernels over {USERS} GPS traces × {ROUTES} routes (Length scenario, \
         {served_users} served-mask entries, min of {GATE_REPS}):\n  \
         table build {:.1}ms\n  \
         greedy k={K}: seed fold {:.1}ms vs arena fold {:.1}ms — {greedy_speedup:.1}x \
         (gate ≥{GREEDY_GATE}x)\n  \
         segment kernel: per-bit {:.1}ms vs word-parallel {:.1}ms — {kernel_speedup:.1}x",
        build_min * 1e3,
        seed_min * 1e3,
        new_min * 1e3,
        kernel_seed * 1e3,
        kernel_new * 1e3,
    );

    let json = format!(
        "{{\n  \"users\": {USERS},\n  \"routes\": {ROUTES},\n  \"k\": {K},\n  \
         \"scenario\": \"Length\",\n  \"build_ms\": {:.3},\n  \
         \"greedy_seed_ms\": {:.3},\n  \"greedy_arena_ms\": {:.3},\n  \
         \"greedy_speedup\": {greedy_speedup:.3},\n  \
         \"segment_seed_ms\": {:.3},\n  \"segment_word_ms\": {:.3},\n  \
         \"segment_speedup\": {kernel_speedup:.3},\n  \
         \"gate\": \"greedy_speedup >= {GREEDY_GATE}\",\n  \"pass\": {}\n}}\n",
        build_min * 1e3,
        seed_min * 1e3,
        new_min * 1e3,
        kernel_seed * 1e3,
        kernel_new * 1e3,
        greedy_speedup >= GREEDY_GATE,
    );
    let json_path = std::env::current_dir().unwrap().join("BENCH_masks.json");
    std::fs::write(&json_path, json).unwrap();
    println!("wrote {}", json_path.display());

    assert!(
        greedy_speedup >= GREEDY_GATE,
        "arena greedy rounds must be ≥{GREEDY_GATE}x the seed fold, measured {greedy_speedup:.1}x"
    );
}

criterion_group!(masks, bench_masks);
criterion_main!(masks);
