//! Network-serving bench: what a loopback TCP round-trip through `tqd`'s
//! frame codec costs on top of an in-process snapshot query, and how
//! aggregate throughput scales when several blocking clients share one
//! daemon.
//!
//! Three sections on one seeded NYT-like dataset (all answers cache hits
//! against the maintained full-facility table, so the wire — not
//! evaluation — dominates):
//!
//! 1. **round-trip overhead** — in-process `snapshot.run()` qps versus
//!    one networked client's qps, and the implied per-query wire cost
//!    (frame encode, CRC both ways, two syscalls, frame decode).
//! 2. **client scaling** — 1, 2 and 4 concurrent clients: the server is
//!    thread-per-connection over lock-free snapshot reads, so aggregate
//!    qps should not collapse as clients are added.
//! 3. **apply path** — acked update batches per second through the
//!    writer funnel, with the readers still hammering (the funnel
//!    serializes writes; reads never queue behind them).
//!
//! The bench asserts *identity*, not speed ratios: every networked
//! answer must be bit-identical to the in-process answer for the same
//! epoch. Loopback latency on a shared CI box is too noisy to gate.

use std::thread;
use std::time::{Duration, Instant};

use tq_core::dynamic::Update;
use tq_core::engine::{Engine, Query};
use tq_core::service::{Scenario, ServiceModel};
use tq_core::tqtree::{Placement, TqTreeConfig};
use tq_datagen::{presets, stream_scenario, StreamKind};
use tq_net::{Client, Server, ServerConfig};

const USERS: usize = 4_000;
const ROUTES: usize = 64;
const STOPS: usize = 12;
const K: usize = 8;
const BATCH: usize = 50;
const N_BATCHES: usize = 400;
/// Wall time per measured section.
const DURATION: Duration = Duration::from_millis(1200);

fn build_engine() -> (Engine, Vec<Vec<Update>>) {
    let city = presets::ny_city();
    let trace = stream_scenario(&city, StreamKind::Taxi, USERS, N_BATCHES * BATCH, 0.5, 0x9A5);
    let facilities =
        tq_datagen::bus_routes(&city, ROUTES, STOPS, presets::ROUTE_LENGTH, 0x9A5 ^ 0xB05);
    let batches = trace.update_batches(BATCH);
    let mut engine = Engine::builder(ServiceModel::new(Scenario::Transit, presets::DEFAULT_PSI))
        .users(trace.initial)
        .facilities(facilities)
        .tree_config(TqTreeConfig::z_order(Placement::TwoPoint).with_beta(64))
        .bounds(trace.bounds)
        .build()
        .expect("bench engine builds");
    engine.warm();
    (engine, batches)
}

/// One evaluation thread per query (see the qps bench): cache-hit serving
/// traffic where the wire cost is visible.
fn query() -> Query {
    Query::top_k(K).threads(1)
}

/// Queries through one client until the deadline; returns (qps, answers).
fn client_qps(addr: &str) -> f64 {
    let mut client = Client::connect(addr).expect("bench client connects");
    let mut answered = 0u64;
    let start = Instant::now();
    while start.elapsed() < DURATION {
        client.query(query()).expect("bench query succeeds");
        answered += 1;
    }
    answered as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    println!(
        "net bench: {USERS} trajectories, {ROUTES} routes × {STOPS} stops, \
         top-{K} cache hits over loopback TCP\n"
    );
    let (engine, batches) = build_engine();

    // -- in-process floor ---------------------------------------------------
    let reader = engine.reader();
    let snap = reader.snapshot();
    let local_answer = snap.run(query()).expect("local query");
    let mut answered = 0u64;
    let start = Instant::now();
    while start.elapsed() < DURATION {
        snap.run(query()).expect("local query");
        answered += 1;
    }
    let local_qps = answered as f64 / start.elapsed().as_secs_f64();
    println!("in-process snapshot.run():        {local_qps:>9.0} qps");

    let handle = Server::start(engine, "127.0.0.1:0", ServerConfig::default())
        .expect("ephemeral bind");
    let addr = handle.addr().to_string();

    // -- 1: single-client round-trip overhead -------------------------------
    let mut probe = Client::connect(&addr).expect("probe connects");
    let networked = probe.query(query()).expect("networked query");
    assert_eq!(
        networked
            .ranked()
            .iter()
            .map(|(id, v)| (*id, v.to_bits()))
            .collect::<Vec<_>>(),
        local_answer
            .ranked()
            .iter()
            .map(|(id, v)| (*id, v.to_bits()))
            .collect::<Vec<_>>(),
        "networked answer must be bit-identical to the in-process answer"
    );
    drop(probe);
    let net_qps = client_qps(&addr);
    let overhead_us = 1e6 / net_qps - 1e6 / local_qps;
    println!(
        "1 networked client:               {net_qps:>9.0} qps  \
         (wire overhead ~{overhead_us:.1}µs per round-trip)"
    );

    // -- 2: client scaling --------------------------------------------------
    for clients in [2usize, 4] {
        let workers: Vec<_> = (0..clients)
            .map(|_| {
                let addr = addr.clone();
                thread::spawn(move || client_qps(&addr))
            })
            .collect();
        let total: f64 = workers.into_iter().map(|w| w.join().expect("client")).sum();
        println!(
            "{clients} networked clients:             {total:>9.0} qps aggregate  \
             ({:.2}x vs 1 client)",
            total / net_qps
        );
    }

    // -- 3: apply path through the writer funnel ----------------------------
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            thread::spawn(move || client_qps(&addr))
        })
        .collect();
    let mut writer = Client::connect(&addr).expect("writer connects");
    let mut applied = 0u64;
    let start = Instant::now();
    for batch in &batches {
        if start.elapsed() >= DURATION {
            break;
        }
        writer.apply(batch.clone()).expect("bench batches are valid");
        applied += 1;
    }
    let bps = applied as f64 / start.elapsed().as_secs_f64();
    for r in readers {
        r.join().expect("reader");
    }
    println!(
        "apply path (2 readers hammering): {bps:>9.0} acked batches/s \
         ({applied} batches of {BATCH} events)"
    );

    assert_eq!(handle.panics(), 0, "server caught a handler panic");
    let engine = handle.shutdown().expect("graceful shutdown");
    assert!(engine.epoch() > 0);
    println!("\ngraceful shutdown at epoch {}", engine.epoch());
}
