//! Paper-scale dataset presets.
//!
//! Wires the generators to the exact cardinalities of the paper's Tables I
//! and II so the experiment harness can speak the paper's language
//! ("NYT-1 day", "NY bus routes"). Each preset is deterministic: the same
//! call always produces the same dataset.

use crate::{bus_routes, checkins, gps_traces, taxi_trips, CityModel};
use tq_trajectory::{FacilitySet, UserSet};

/// NYT trip counts for 0.5 / 1 / 2 / 3 days (paper §VI-B.1).
pub const NYT_SIZES: [usize; 4] = [203_308, 357_139, 697_796, 1_032_637];

/// Labels matching [`NYT_SIZES`].
pub const NYT_LABELS: [&str; 4] = ["0.5", "1", "2", "3"];

/// NYF check-in trajectory count (paper Table II).
pub const NYF_SIZE: usize = 212_751;

/// BJG Geolife trajectory count (paper Table II).
pub const BJG_SIZE: usize = 30_266;

/// NY bus route count (paper Table I: 2,024 routes, 16,999 stops).
pub const NY_ROUTES: usize = 2_024;

/// Beijing bus route count (paper Table I: 1,842 routes, 21,489 stops).
pub const BJ_ROUTES: usize = 1_842;

/// Default service radius ψ in metres (walkable access distance).
pub const DEFAULT_PSI: f64 = 200.0;

/// Default bus-route length in metres (a typical urban route).
pub const ROUTE_LENGTH: f64 = 14_000.0;

const NY_SEED: u64 = 0x4E59; // "NY"
const BJ_SEED: u64 = 0x424A; // "BJ"

/// The New-York-like city model: ~45 km extent, 40 hotspots.
pub fn ny_city() -> CityModel {
    CityModel::synthetic(NY_SEED, 40, 45_000.0)
}

/// The Beijing-like city model: ~50 km extent, 48 hotspots.
pub fn bj_city() -> CityModel {
    CityModel::synthetic(BJ_SEED, 48, 50_000.0)
}

/// NYT-like taxi trips: `n` two-point trajectories in the NY city model.
/// Use [`NYT_SIZES`] for the paper's day-equivalent sweep.
pub fn nyt_like(n: usize) -> UserSet {
    taxi_trips(&ny_city(), n, NY_SEED ^ 0x7A71)
}

/// NYF-like Foursquare check-ins: `n` short multipoint trajectories.
pub fn nyf_like(n: usize) -> UserSet {
    checkins(&ny_city(), n, NY_SEED ^ 0xF0F0)
}

/// BJG-like Geolife traces: `n` long multipoint trajectories.
pub fn bjg_like(n: usize) -> UserSet {
    gps_traces(&bj_city(), n, BJ_SEED ^ 0x6E0)
}

/// NY-like bus routes with `stops` stops each along ~14 km backbones.
pub fn ny_bus(n_routes: usize, stops: usize) -> FacilitySet {
    bus_routes(&ny_city(), n_routes, stops, ROUTE_LENGTH, NY_SEED ^ 0xB05)
}

/// Beijing-like bus routes with `stops` stops each along ~14 km backbones.
pub fn bj_bus(n_routes: usize, stops: usize) -> FacilitySet {
    bus_routes(&bj_city(), n_routes, stops, ROUTE_LENGTH, BJ_SEED ^ 0xB05)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_deterministic() {
        let a = nyt_like(500);
        let b = nyt_like(500);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn nyt_prefix_property() {
        // Sweeping user counts must reuse the same prefix: nyt_like(100)
        // equals the first 100 of nyt_like(200) so parameter sweeps vary one
        // thing only.
        let small = nyt_like(100);
        let large = nyt_like(200);
        assert_eq!(small.as_slice(), &large.as_slice()[..100]);
    }

    #[test]
    fn bus_presets_shapes() {
        let ny = ny_bus(50, 8);
        assert_eq!(ny.len(), 50);
        assert!(ny.iter().all(|(_, f)| f.len() == 8));
        let bj = bj_bus(30, 12);
        assert_eq!(bj.len(), 30);
        assert_eq!(bj.total_stops(), 360);
    }

    #[test]
    fn city_models_differ() {
        let a = nyt_like(50);
        let b = bjg_like(50);
        assert_ne!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn multipoint_presets_have_expected_shape() {
        let nyf = nyf_like(200);
        assert!(nyf.iter().all(|(_, t)| t.len() <= 9));
        let bjg = bjg_like(50);
        assert!(bjg.iter().all(|(_, t)| t.len() >= 10));
    }
}
