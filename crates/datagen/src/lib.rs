//! Seeded synthetic workload generators.
//!
//! The paper evaluates on NYC yellow-taxi trips (NYT), NYC Foursquare
//! check-ins (NYF), Beijing Geolife GPS traces (BJG) and NY/Beijing bus
//! routes. Those datasets are public but unavailable in this offline
//! environment, so this crate synthesizes statistically analogous workloads
//! (see DESIGN.md §4): a [`CityModel`] of Zipf-weighted Gaussian hotspots
//! over a city-sized extent generates
//!
//! * two-point trips ([`taxi_trips`], NYT-like),
//! * short check-in sequences ([`checkins`], NYF-like),
//! * long GPS random-walk traces ([`gps_traces`], BJG-like),
//! * bus routes with evenly spaced stops ([`bus_routes`]),
//! * streaming arrival/expiry event traces over any of the above
//!   ([`stream_scenario`]), for dynamic-workload engines.
//!
//! Everything is deterministic under an explicit seed; [`presets`] wires the
//! paper's exact cardinalities.

#![warn(missing_docs)]

pub mod presets;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tq_geometry::{Point, Rect};
use tq_trajectory::{Facility, FacilitySet, Trajectory, UserSet};

/// One attraction hotspot: trips/check-ins cluster around these.
#[derive(Debug, Clone, Copy)]
pub struct Hotspot {
    /// Hotspot center.
    pub center: Point,
    /// Gaussian spread (standard deviation) around the center.
    pub sigma: f64,
    /// Relative sampling weight (Zipf-distributed across hotspots).
    pub weight: f64,
}

/// A synthetic city: a bounding rectangle plus weighted hotspots.
///
/// The spatial skew (few very popular areas, a long tail, uniform
/// background) is the property the TQ-tree's locality pruning exploits; the
/// generator reproduces it so relative algorithm behaviour matches the
/// paper's real datasets.
#[derive(Debug, Clone)]
pub struct CityModel {
    /// City extent (planar, metres).
    pub bounds: Rect,
    /// Attraction hotspots.
    pub hotspots: Vec<Hotspot>,
    /// Probability that a sample ignores hotspots and is uniform background.
    pub background: f64,
    cumulative: Vec<f64>,
}

impl CityModel {
    /// Creates a city of `extent` × `extent` metres with `n_hotspots`
    /// Zipf-weighted Gaussian hotspots (exponent 0.8) and 20% uniform
    /// background traffic.
    pub fn synthetic(seed: u64, n_hotspots: usize, extent: f64) -> CityModel {
        assert!(n_hotspots > 0, "need at least one hotspot");
        assert!(extent > 0.0, "extent must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let bounds = Rect::new(Point::new(0.0, 0.0), Point::new(extent, extent));
        let hotspots: Vec<Hotspot> = (0..n_hotspots)
            .map(|i| Hotspot {
                center: Point::new(
                    rng.gen_range(0.05 * extent..0.95 * extent),
                    rng.gen_range(0.05 * extent..0.95 * extent),
                ),
                sigma: rng.gen_range(0.01 * extent..0.04 * extent),
                weight: 1.0 / ((i + 1) as f64).powf(0.8),
            })
            .collect();
        Self::from_hotspots(bounds, hotspots, 0.2)
    }

    /// Builds a city from explicit hotspots.
    pub fn from_hotspots(bounds: Rect, hotspots: Vec<Hotspot>, background: f64) -> CityModel {
        assert!(!hotspots.is_empty(), "need at least one hotspot");
        let mut cumulative = Vec::with_capacity(hotspots.len());
        let mut acc = 0.0;
        for h in &hotspots {
            acc += h.weight;
            cumulative.push(acc);
        }
        CityModel {
            bounds,
            hotspots,
            background,
            cumulative,
        }
    }

    /// Samples a hotspot index by weight.
    fn sample_hotspot(&self, rng: &mut StdRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty hotspots");
        let x = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c < x)
    }

    /// Samples one location: a hotspot-Gaussian point or uniform background.
    pub fn sample_point(&self, rng: &mut StdRng) -> Point {
        if rng.gen_bool(self.background) {
            return Point::new(
                rng.gen_range(self.bounds.min.x..self.bounds.max.x),
                rng.gen_range(self.bounds.min.y..self.bounds.max.y),
            );
        }
        let h = &self.hotspots[self.sample_hotspot(rng)];
        let (gx, gy) = gaussian_pair(rng);
        self.clamp(Point::new(
            h.center.x + gx * h.sigma,
            h.center.y + gy * h.sigma,
        ))
    }

    fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.bounds.min.x, self.bounds.max.x),
            p.y.clamp(self.bounds.min.y, self.bounds.max.y),
        )
    }
}

/// A pair of independent standard normal samples (Box–Muller; `rand` alone
/// offers no normal distribution and `rand_distr` is outside the approved
/// dependency set).
fn gaussian_pair(rng: &mut StdRng) -> (f64, f64) {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

/// Generates `n` two-point trips (NYT-like).
///
/// Sources follow the city's hotspot mixture. Destinations reproduce the
/// real-world trip-length distribution: most taxi trips are short (a few
/// per-cent of the city extent — NYC yellow-cab medians are 2–3 km), with a
/// heavy tail of cross-town trips. We draw 75% "local" destinations as a
/// Gaussian displacement around the source (σ = 6% of the extent ≈ 2.7 km
/// at NYC scale) and 25% independent hotspot destinations. Degenerate
/// sub-0.2%-extent trips are rejected.
pub fn taxi_trips(city: &CityModel, n: usize, seed: u64) -> UserSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let min_trip = (city.bounds.width() * 2e-3).max(1e-6);
    let local_sigma = city.bounds.width() * 0.06;
    let mut trips = Vec::with_capacity(n);
    while trips.len() < n {
        let src = city.sample_point(&mut rng);
        let dst = if rng.gen_bool(0.75) {
            let (gx, gy) = gaussian_pair(&mut rng);
            city.clamp(Point::new(src.x + gx * local_sigma, src.y + gy * local_sigma))
        } else {
            city.sample_point(&mut rng)
        };
        if src.dist(&dst) >= min_trip {
            trips.push(Trajectory::two_point(src, dst));
        }
    }
    UserSet::from_vec(trips)
}

/// Generates `n` short multipoint check-in sequences (NYF-like): each user
/// visits 2–9 POIs in a day; consecutive check-ins are biased to be near
/// each other (a hotspot point blended toward the previous location).
pub fn checkins(city: &CityModel, n: usize, seed: u64) -> UserSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let users = (0..n)
        .map(|_| {
            let len = rng.gen_range(2..=9);
            let mut pts = Vec::with_capacity(len);
            let mut cur = city.sample_point(&mut rng);
            pts.push(cur);
            for _ in 1..len {
                let target = city.sample_point(&mut rng);
                // Blend toward the previous check-in: people move locally.
                let lambda = rng.gen_range(0.3..0.9);
                cur = Point::new(
                    cur.x + lambda * (target.x - cur.x),
                    cur.y + lambda * (target.y - cur.y),
                );
                pts.push(cur);
            }
            Trajectory::new(pts)
        })
        .collect();
    UserSet::from_vec(users)
}

/// Generates `n` long GPS traces (BJG-like): momentum random walks with
/// 10–120 points and step lengths around 0.5% of the extent.
pub fn gps_traces(city: &CityModel, n: usize, seed: u64) -> UserSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let step = city.bounds.width() * 5e-3;
    let users = (0..n)
        .map(|_| {
            let len = rng.gen_range(10..=120);
            let mut pts = Vec::with_capacity(len);
            let mut cur = city.sample_point(&mut rng);
            let mut heading: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            pts.push(cur);
            for _ in 1..len {
                heading += rng.gen_range(-0.5..0.5);
                let d = step * rng.gen_range(0.3..1.7);
                cur = city.clamp(Point::new(
                    cur.x + d * heading.cos(),
                    cur.y + d * heading.sin(),
                ));
                pts.push(cur);
            }
            Trajectory::new(pts)
        })
        .collect();
    UserSet::from_vec(users)
}

/// Generates `n_routes` bus routes (facility trajectories) of roughly
/// `route_length` metres each: a mostly straight momentum walk through the
/// city (real routes follow arterials through popular areas), with
/// `stops_per_route` stops placed at equal arc-length intervals.
///
/// The backbone polyline depends only on the route's random stream, **not**
/// on the stop count — sweeping `stops_per_route` densifies the *same*
/// geographic routes, exactly like subsampling a real route network. This
/// keeps the paper's stop-count sweeps free of route-extent confounds.
pub fn bus_routes(
    city: &CityModel,
    n_routes: usize,
    stops_per_route: usize,
    route_length: f64,
    seed: u64,
) -> FacilitySet {
    assert!(stops_per_route > 0, "a route needs at least one stop");
    assert!(route_length > 0.0, "route length must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    const BACKBONE_SEGS: usize = 64;
    let step = route_length / BACKBONE_SEGS as f64;
    let routes = (0..n_routes)
        .map(|_| {
            let mut cur = city.sample_point(&mut rng);
            let mut heading: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let mut backbone = Vec::with_capacity(BACKBONE_SEGS + 1);
            backbone.push(cur);
            for _ in 0..BACKBONE_SEGS {
                // Mostly straight, occasionally turning toward a hotspot.
                heading += rng.gen_range(-0.15..0.15);
                if rng.gen_bool(0.08) {
                    let attract = city.sample_point(&mut rng);
                    heading = (attract.y - cur.y).atan2(attract.x - cur.x);
                }
                let next = Point::new(
                    cur.x + step * heading.cos(),
                    cur.y + step * heading.sin(),
                );
                // Bounce off the city boundary.
                if !city.bounds.contains(&next) {
                    heading += std::f64::consts::PI / 2.0;
                    cur = city.clamp(next);
                } else {
                    cur = next;
                }
                backbone.push(cur);
            }
            Facility::new(resample_polyline(&backbone, stops_per_route))
        })
        .collect();
    FacilitySet::from_vec(routes)
}

/// Which trajectory generator feeds a [`StreamScenario`]'s arrivals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKind {
    /// Two-point taxi trips ([`taxi_trips`], NYT-like).
    Taxi,
    /// Short multipoint check-in sequences ([`checkins`], NYF-like).
    Checkins,
    /// Long GPS traces ([`gps_traces`], BJG-like).
    Gps,
}

/// One event of a streaming dynamic workload.
#[derive(Debug, Clone)]
pub enum StreamEvent {
    /// A new trajectory arrives. Consumers index it under the next dense id
    /// (`initial.len()`, `initial.len() + 1`, … in arrival order).
    Arrive(Trajectory),
    /// The trajectory with this id expires. The generator only ever expires
    /// ids that are live under the deterministic numbering above, so a
    /// trace replays cleanly against any id-stable index.
    Expire(u32),
}

/// A seeded dynamic-workload trace: an initial snapshot plus an ordered
/// event stream of arrivals and expiries, as real trajectory traffic (taxi
/// trips entering and aging out of a sliding window) behaves.
#[derive(Debug, Clone)]
pub struct StreamScenario {
    /// The trajectories live before the first event.
    pub initial: UserSet,
    /// The event stream, to be applied in order (optionally batched).
    pub events: Vec<StreamEvent>,
    /// The generating region — a safe index bounding rectangle covering the
    /// initial set and every future arrival.
    pub bounds: Rect,
}

impl StreamEvent {
    /// The engine update this event maps to: an arrival becomes
    /// [`Update::Insert`](tq_core::dynamic::Update::Insert), an expiry
    /// becomes [`Update::Remove`](tq_core::dynamic::Update::Remove).
    pub fn to_update(&self) -> tq_core::dynamic::Update {
        match self {
            StreamEvent::Arrive(t) => tq_core::dynamic::Update::Insert(t.clone()),
            StreamEvent::Expire(id) => tq_core::dynamic::Update::Remove(*id),
        }
    }
}

impl StreamScenario {
    /// Number of [`StreamEvent::Arrive`] events.
    pub fn arrivals(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, StreamEvent::Arrive(_)))
            .count()
    }

    /// Number of [`StreamEvent::Expire`] events.
    pub fn expiries(&self) -> usize {
        self.events.len() - self.arrivals()
    }

    /// The event trace chunked into ready-to-apply engine update batches
    /// of `batch` events each (the last batch may be shorter) — the shape
    /// [`Engine::apply`](tq_core::engine::Engine::apply) and
    /// [`serve`](tq_core::serve) workloads consume.
    ///
    /// # Panics
    /// Panics when `batch == 0`.
    pub fn update_batches(&self, batch: usize) -> Vec<Vec<tq_core::dynamic::Update>> {
        assert!(batch > 0, "batch size must be positive");
        self.events
            .chunks(batch)
            .map(|chunk| chunk.iter().map(StreamEvent::to_update).collect())
            .collect()
    }
}

/// Generates a deterministic streaming scenario over a city model:
/// `initial_n` trajectories up front, then `n_events` events of which
/// roughly `expire_ratio` are expiries of a uniformly chosen live
/// trajectory and the rest are fresh arrivals from the same generator.
///
/// With `expire_ratio = 0.5` the live count stays near `initial_n` (a
/// sliding window); lower ratios grow the window, higher ones shrink it.
/// Expiries are suppressed while fewer than half the initial trajectories
/// are live, so the stream never drains the index.
///
/// Everything is a pure function of `(city, kind, sizes, seed)`.
pub fn stream_scenario(
    city: &CityModel,
    kind: StreamKind,
    initial_n: usize,
    n_events: usize,
    expire_ratio: f64,
    seed: u64,
) -> StreamScenario {
    assert!(
        (0.0..=1.0).contains(&expire_ratio),
        "expire_ratio must be in [0, 1]"
    );
    let generate = |n: usize, s: u64| match kind {
        StreamKind::Taxi => taxi_trips(city, n, s),
        StreamKind::Checkins => checkins(city, n, s),
        StreamKind::Gps => gps_traces(city, n, s),
    };
    let initial = generate(initial_n, seed);
    // Arrival pool: at most every event is an arrival.
    let pool = generate(n_events, seed ^ 0x05EE_DA11);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x05EE_DE7E);
    let mut live: Vec<u32> = (0..initial_n as u32).collect();
    let mut next_id = initial_n as u32;
    let mut next_arrival = 0usize;
    let min_live = initial_n / 2;
    let mut events = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        let expire = live.len() > min_live && rng.gen_bool(expire_ratio);
        if expire {
            let idx = rng.gen_range(0..live.len());
            events.push(StreamEvent::Expire(live.swap_remove(idx)));
        } else {
            events.push(StreamEvent::Arrive(pool.get(next_arrival as u32).clone()));
            next_arrival += 1;
            live.push(next_id);
            next_id += 1;
        }
    }
    StreamScenario {
        initial,
        events,
        bounds: city.bounds,
    }
}

/// Places `n` points at equal arc-length intervals along a polyline
/// (endpoints included).
fn resample_polyline(pts: &[Point], n: usize) -> Vec<Point> {
    debug_assert!(pts.len() >= 2);
    if n == 1 {
        return vec![pts[0]];
    }
    let total: f64 = pts.windows(2).map(|w| w[0].dist(&w[1])).sum();
    if total <= 0.0 {
        return vec![pts[0]; n];
    }
    let mut out = Vec::with_capacity(n);
    let mut seg = 0usize;
    let mut seg_start_dist = 0.0;
    let mut seg_len = pts[0].dist(&pts[1]);
    for i in 0..n {
        let target = total * i as f64 / (n - 1) as f64;
        while seg + 2 < pts.len() && seg_start_dist + seg_len < target {
            seg_start_dist += seg_len;
            seg += 1;
            seg_len = pts[seg].dist(&pts[seg + 1]);
        }
        let t = if seg_len > 0.0 {
            ((target - seg_start_dist) / seg_len).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let (a, b) = (pts[seg], pts[seg + 1]);
        out.push(Point::new(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn city() -> CityModel {
        CityModel::synthetic(7, 12, 10_000.0)
    }

    #[test]
    fn deterministic_under_seed() {
        let c = city();
        let a = taxi_trips(&c, 100, 42);
        let b = taxi_trips(&c, 100, 42);
        assert_eq!(a.as_slice(), b.as_slice());
        let d = taxi_trips(&c, 100, 43);
        assert_ne!(a.as_slice(), d.as_slice());
    }

    #[test]
    fn trips_within_bounds_and_nondegenerate() {
        let c = city();
        let trips = taxi_trips(&c, 500, 1);
        assert_eq!(trips.len(), 500);
        for (_, t) in trips.iter() {
            assert!(c.bounds.contains(&t.source()));
            assert!(c.bounds.contains(&t.destination()));
            assert!(t.length() >= 10.0); // ≥ 0.2% of 10 km minus rounding
        }
    }

    #[test]
    fn trips_are_spatially_skewed() {
        // Hotspot sampling must concentrate mass: the densest 10% of cells
        // should hold far more than 10% of the points.
        let c = city();
        let trips = taxi_trips(&c, 2000, 2);
        let grid = 10usize;
        let mut counts = vec![0usize; grid * grid];
        for (_, t) in trips.iter() {
            for p in [t.source(), t.destination()] {
                let gx = ((p.x / c.bounds.width() * grid as f64) as usize).min(grid - 1);
                let gy = ((p.y / c.bounds.height() * grid as f64) as usize).min(grid - 1);
                counts[gy * grid + gx] += 1;
            }
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = counts.iter().take(grid * grid / 10).sum();
        let total: usize = counts.iter().sum();
        assert!(
            top10 as f64 > 0.3 * total as f64,
            "hotspot skew too weak: top-10% cells hold {top10}/{total}"
        );
    }

    #[test]
    fn checkins_are_short_multipoint() {
        let c = city();
        let u = checkins(&c, 300, 3);
        assert_eq!(u.len(), 300);
        for (_, t) in u.iter() {
            assert!((2..=9).contains(&t.len()));
            for p in t.points() {
                assert!(c.bounds.contains(p));
            }
        }
        // Multipoint on average.
        assert!(u.total_points() as f64 / u.len() as f64 > 3.0);
    }

    #[test]
    fn gps_traces_are_long_and_local() {
        let c = city();
        let u = gps_traces(&c, 50, 4);
        for (_, t) in u.iter() {
            assert!((10..=120).contains(&t.len()));
            // Steps bounded: consecutive points within ~2% of extent.
            for s in 0..t.num_segments() {
                assert!(t.segment_length(s) <= c.bounds.width() * 0.02);
            }
        }
    }

    #[test]
    fn bus_routes_have_even_spacing_and_fixed_extent() {
        let c = city();
        let route_len = 3_000.0;
        let fs = bus_routes(&c, 40, 12, route_len, 5);
        assert_eq!(fs.len(), 40);
        for (_, f) in fs.iter() {
            assert_eq!(f.len(), 12);
            // Equal arc-length spacing along the backbone: chord distances
            // are at most the arc spacing (turns shorten chords).
            let arc_spacing = route_len / 11.0;
            for w in f.stops().windows(2) {
                assert!(w[0].dist(&w[1]) <= arc_spacing + 1e-6);
            }
            for s in f.stops() {
                assert!(c.bounds.contains(s));
            }
        }
    }

    #[test]
    fn stop_count_sweep_preserves_route_geometry() {
        // The same route index must follow the same backbone regardless of
        // the requested stop count — endpoints coincide.
        let c = city();
        let sparse = bus_routes(&c, 10, 8, 3_000.0, 6);
        let dense = bus_routes(&c, 10, 64, 3_000.0, 6);
        for ((_, a), (_, b)) in sparse.iter().zip(dense.iter()) {
            assert_eq!(a.stops()[0], b.stops()[0]);
            assert_eq!(a.stops()[7], b.stops()[63]);
        }
    }

    #[test]
    fn resample_polyline_endpoints_and_monotone() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
        ];
        let r = resample_polyline(&pts, 5);
        assert_eq!(r.len(), 5);
        assert_eq!(r[0], pts[0]);
        assert_eq!(*r.last().unwrap(), pts[2]);
        // Midpoint of the 20-length path is the corner.
        assert!(r[2].dist(&Point::new(10.0, 0.0)) < 1e-9);
        let single = resample_polyline(&pts, 1);
        assert_eq!(single, vec![pts[0]]);
    }

    #[test]
    fn gaussian_pair_sane() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 10_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let (a, b) = gaussian_pair(&mut rng);
            sum += a + b;
            sum_sq += a * a + b * b;
        }
        let mean = sum / (2.0 * n as f64);
        let var = sum_sq / (2.0 * n as f64) - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn stream_scenario_is_deterministic_and_replayable() {
        let c = city();
        let a = stream_scenario(&c, StreamKind::Taxi, 200, 400, 0.5, 9);
        let b = stream_scenario(&c, StreamKind::Taxi, 200, 400, 0.5, 9);
        assert_eq!(a.initial.as_slice(), b.initial.as_slice());
        assert_eq!(a.events.len(), 400);
        assert_eq!(a.events.len(), b.events.len());
        // Replay: every expiry names a live id under sequential numbering,
        // and the live count never drops below half the initial set.
        let mut live: std::collections::HashSet<u32> = (0..200u32).collect();
        let mut next_id = 200u32;
        for (ev_a, ev_b) in a.events.iter().zip(&b.events) {
            match (ev_a, ev_b) {
                (StreamEvent::Arrive(ta), StreamEvent::Arrive(tb)) => {
                    assert_eq!(ta, tb);
                    assert!(ta.points().iter().all(|p| a.bounds.contains(p)));
                    live.insert(next_id);
                    next_id += 1;
                }
                (StreamEvent::Expire(ia), StreamEvent::Expire(ib)) => {
                    assert_eq!(ia, ib);
                    assert!(live.remove(ia), "expired id {ia} was not live");
                }
                _ => panic!("event streams diverged"),
            }
            assert!(live.len() >= 100);
        }
        assert_eq!(a.arrivals() + a.expiries(), 400);
        assert!(a.expiries() > 100, "half-ratio stream should expire plenty");
    }

    #[test]
    fn stream_scenario_kinds_shape_arrivals() {
        let c = city();
        let gps = stream_scenario(&c, StreamKind::Gps, 20, 50, 0.3, 4);
        for e in &gps.events {
            if let StreamEvent::Arrive(t) = e {
                assert!(t.len() >= 10, "GPS arrivals are long traces");
            }
        }
        let taxi = stream_scenario(&c, StreamKind::Taxi, 20, 50, 0.3, 4);
        for e in &taxi.events {
            if let StreamEvent::Arrive(t) = e {
                assert_eq!(t.len(), 2);
            }
        }
    }

    #[test]
    fn zero_expire_ratio_only_arrives() {
        let c = city();
        let s = stream_scenario(&c, StreamKind::Checkins, 10, 30, 0.0, 5);
        assert_eq!(s.arrivals(), 30);
        assert_eq!(s.expiries(), 0);
    }

    #[test]
    #[should_panic(expected = "hotspot")]
    fn empty_hotspots_rejected() {
        CityModel::from_hotspots(
            Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)),
            vec![],
            0.2,
        );
    }
}
