//! Geometric primitives for trajectory coverage queries.
//!
//! This crate provides the spatial substrate used by every other crate in the
//! workspace:
//!
//! * [`Point`] — a 2-D point with Euclidean distance helpers,
//! * [`Rect`] — an axis-aligned rectangle (MBR) with quadrant splitting and
//!   the ψ-expanded "EMBR" used to over-approximate a facility's service area,
//! * [`ZId`] — an *adaptive* (variable-depth) Z-order identifier: the path of
//!   quadrants from a root cell down to an arbitrary refinement level. These
//!   are the `0.0`, `1.2`, `2` style ids of the paper (Figures 3 and 5),
//! * [`morton`] — classic fixed-width Morton interleaving, used to pre-sort
//!   points cheaply before adaptive refinement.
//!
//! All coordinates are `f64` in an arbitrary planar unit (the synthetic
//! datasets use metres over a city-sized extent).

#![warn(missing_docs)]

pub mod morton;
mod point;
mod rect;
mod zid;

pub use point::Point;
pub use rect::{Quadrant, Rect};
pub use zid::{ZId, MAX_Z_DEPTH};
