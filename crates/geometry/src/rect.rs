use crate::Point;

/// One of the four child quadrants of a [`Rect`], in Z-curve order.
///
/// The ordering (SW, SE, NW, NE) is the order in which the Z-curve visits the
/// quadrants; [`ZId`](crate::ZId) paths are sequences of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Quadrant {
    /// Low x, low y.
    SouthWest = 0,
    /// High x, low y.
    SouthEast = 1,
    /// Low x, high y.
    NorthWest = 2,
    /// High x, high y.
    NorthEast = 3,
}

impl Quadrant {
    /// All quadrants in Z order.
    pub const ALL: [Quadrant; 4] = [
        Quadrant::SouthWest,
        Quadrant::SouthEast,
        Quadrant::NorthWest,
        Quadrant::NorthEast,
    ];

    /// Constructs a quadrant from its Z-order index (0..4).
    ///
    /// # Panics
    /// Panics when `i >= 4`.
    #[inline]
    pub fn from_index(i: u8) -> Quadrant {
        Quadrant::ALL[i as usize]
    }

    /// The quadrant's Z-order index.
    #[inline]
    pub fn index(self) -> u8 {
        self as u8
    }
}

/// An axis-aligned rectangle, closed on all sides.
///
/// `Rect` doubles as a minimum bounding rectangle (MBR) and — once expanded by
/// the service threshold `ψ` via [`Rect::expand`] — as the paper's *extended*
/// MBR (EMBR) that over-approximates the region a facility can serve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from two corner points, normalizing the order.
    #[inline]
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            min: a.min(&b),
            max: a.max(&b),
        }
    }

    /// Creates a rectangle from raw bounds without normalization.
    ///
    /// Callers must guarantee `min.x <= max.x && min.y <= max.y`.
    #[inline]
    pub const fn from_bounds(min: Point, max: Point) -> Self {
        Rect { min, max }
    }

    /// The degenerate rectangle containing a single point.
    #[inline]
    pub fn point(p: Point) -> Self {
        Rect { min: p, max: p }
    }

    /// Smallest rectangle containing every point in `pts`.
    ///
    /// Returns `None` for an empty iterator.
    pub fn bounding<'a, I: IntoIterator<Item = &'a Point>>(pts: I) -> Option<Rect> {
        let mut it = pts.into_iter();
        let first = *it.next()?;
        let mut r = Rect::point(first);
        for p in it {
            r = r.include(p);
        }
        Some(r)
    }

    /// Width (x extent).
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (y extent).
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        self.min.midpoint(&self.max)
    }

    /// Area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Returns `true` when `p` lies inside or on the boundary.
    ///
    /// The four comparisons combine with non-short-circuiting `&`: each is
    /// a branch-free `cmpdouble`/`setcc`, and evaluating all four is cheaper
    /// than four conditional jumps on the prune hot path, where containment
    /// outcomes are data-dependent and unpredicted. (`&` and `&&` agree on
    /// NaN coordinates — every comparison is simply `false`.)
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        (p.x >= self.min.x) & (p.x <= self.max.x) & (p.y >= self.min.y) & (p.y <= self.max.y)
    }

    /// Returns `true` when `other` lies entirely inside `self`.
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.contains(&other.min) & self.contains(&other.max)
    }

    /// Returns `true` when the two closed rectangles share at least one
    /// point. Branch-free like [`Rect::contains`].
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        (self.min.x <= other.max.x)
            & (self.max.x >= other.min.x)
            & (self.min.y <= other.max.y)
            & (self.max.y >= other.min.y)
    }

    /// The intersection of two rectangles, if non-empty.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            min: self.min.max(&other.min),
            max: self.max.min(&other.max),
        })
    }

    /// The smallest rectangle containing both `self` and `p`.
    #[inline]
    pub fn include(&self, p: &Point) -> Rect {
        Rect {
            min: self.min.min(p),
            max: self.max.max(p),
        }
    }

    /// The smallest rectangle containing both rectangles.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: self.min.min(&other.min),
            max: self.max.max(&other.max),
        }
    }

    /// Expands every side outward by `delta` (the EMBR of the paper when
    /// `delta = ψ`).
    #[inline]
    pub fn expand(&self, delta: f64) -> Rect {
        Rect {
            min: Point::new(self.min.x - delta, self.min.y - delta),
            max: Point::new(self.max.x + delta, self.max.y + delta),
        }
    }

    /// Squared distance from `p` to the nearest point of the rectangle
    /// (zero when `p` is inside).
    pub fn min_dist_sq(&self, p: &Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        dx * dx + dy * dy
    }

    /// Returns `true` when any point of the rectangle lies within `psi`
    /// of `p` — i.e. the disc of radius `psi` around `p` meets the rect.
    #[inline]
    pub fn within_of_point(&self, p: &Point, psi: f64) -> bool {
        self.min_dist_sq(p) <= psi * psi
    }

    /// The child rectangle for `q` when splitting at the center.
    pub fn quadrant(&self, q: Quadrant) -> Rect {
        let c = self.center();
        match q {
            Quadrant::SouthWest => Rect::from_bounds(self.min, c),
            Quadrant::SouthEast => Rect::from_bounds(
                Point::new(c.x, self.min.y),
                Point::new(self.max.x, c.y),
            ),
            Quadrant::NorthWest => Rect::from_bounds(
                Point::new(self.min.x, c.y),
                Point::new(c.x, self.max.y),
            ),
            Quadrant::NorthEast => Rect::from_bounds(c, self.max),
        }
    }

    /// All four child rectangles in Z order.
    pub fn quadrants(&self) -> [Rect; 4] {
        [
            self.quadrant(Quadrant::SouthWest),
            self.quadrant(Quadrant::SouthEast),
            self.quadrant(Quadrant::NorthWest),
            self.quadrant(Quadrant::NorthEast),
        ]
    }

    /// Which quadrant `p` falls into, splitting ties toward the
    /// higher-indexed (north/east) child so that every point belongs to
    /// exactly one quadrant.
    pub fn quadrant_of(&self, p: &Point) -> Quadrant {
        let c = self.center();
        // Branch-free: the Z-order index is (north, east) as a 2-bit number,
        // matching the discriminants SW=0, SE=1, NW=2, NE=3.
        Quadrant::from_index((((p.y >= c.y) as u8) << 1) | (p.x >= c.x) as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Rect {
        Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0))
    }

    #[test]
    fn new_normalizes_corners() {
        let r = Rect::new(Point::new(5.0, -1.0), Point::new(2.0, 4.0));
        assert_eq!(r.min, Point::new(2.0, -1.0));
        assert_eq!(r.max, Point::new(5.0, 4.0));
    }

    #[test]
    fn contains_boundary_points() {
        let r = unit();
        assert!(r.contains(&Point::new(0.0, 0.0)));
        assert!(r.contains(&Point::new(1.0, 1.0)));
        assert!(r.contains(&Point::new(0.5, 1.0)));
        assert!(!r.contains(&Point::new(1.0001, 0.5)));
    }

    #[test]
    fn intersects_edge_touching() {
        let a = unit();
        let b = Rect::new(Point::new(1.0, 0.0), Point::new(2.0, 1.0));
        assert!(a.intersects(&b));
        let c = Rect::new(Point::new(1.1, 0.0), Point::new(2.0, 1.0));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn intersection_matches_intersects() {
        let a = unit();
        let b = Rect::new(Point::new(0.5, 0.5), Point::new(2.0, 2.0));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, Rect::new(Point::new(0.5, 0.5), Point::new(1.0, 1.0)));
        let c = Rect::new(Point::new(3.0, 3.0), Point::new(4.0, 4.0));
        assert!(a.intersection(&c).is_none());
    }

    #[test]
    fn bounding_of_points() {
        let pts = [
            Point::new(3.0, 1.0),
            Point::new(-1.0, 2.0),
            Point::new(0.0, 5.0),
        ];
        let r = Rect::bounding(pts.iter()).unwrap();
        assert_eq!(r.min, Point::new(-1.0, 1.0));
        assert_eq!(r.max, Point::new(3.0, 5.0));
        assert!(Rect::bounding([].iter()).is_none());
    }

    #[test]
    fn expand_is_embr() {
        let r = unit().expand(0.5);
        assert_eq!(r.min, Point::new(-0.5, -0.5));
        assert_eq!(r.max, Point::new(1.5, 1.5));
    }

    #[test]
    fn quadrants_tile_parent() {
        let r = unit();
        let qs = r.quadrants();
        let total: f64 = qs.iter().map(Rect::area).sum();
        assert!((total - r.area()).abs() < 1e-12);
        // Children must cover the parent's corners.
        assert!(qs[0].contains(&r.min));
        assert!(qs[3].contains(&r.max));
    }

    #[test]
    fn quadrant_of_assigns_uniquely() {
        let r = unit();
        assert_eq!(r.quadrant_of(&Point::new(0.25, 0.25)), Quadrant::SouthWest);
        assert_eq!(r.quadrant_of(&Point::new(0.75, 0.25)), Quadrant::SouthEast);
        assert_eq!(r.quadrant_of(&Point::new(0.25, 0.75)), Quadrant::NorthWest);
        assert_eq!(r.quadrant_of(&Point::new(0.75, 0.75)), Quadrant::NorthEast);
        // Center goes to the NE child (ties round up).
        assert_eq!(r.quadrant_of(&Point::new(0.5, 0.5)), Quadrant::NorthEast);
    }

    #[test]
    fn point_in_quadrant_of() {
        let r = unit();
        let p = Point::new(0.3, 0.9);
        let q = r.quadrant_of(&p);
        assert!(r.quadrant(q).contains(&p));
    }

    #[test]
    fn min_dist_sq_cases() {
        let r = unit();
        assert_eq!(r.min_dist_sq(&Point::new(0.5, 0.5)), 0.0);
        assert_eq!(r.min_dist_sq(&Point::new(2.0, 0.5)), 1.0);
        assert_eq!(r.min_dist_sq(&Point::new(2.0, 2.0)), 2.0);
    }

    #[test]
    fn within_of_point_disc_test() {
        let r = unit();
        assert!(r.within_of_point(&Point::new(1.5, 0.5), 0.5));
        assert!(!r.within_of_point(&Point::new(1.6, 0.5), 0.5));
    }

    #[test]
    fn union_and_include() {
        let a = unit();
        let b = Rect::new(Point::new(2.0, 2.0), Point::new(3.0, 3.0));
        let u = a.union(&b);
        assert!(u.contains_rect(&a) && u.contains_rect(&b));
        let c = a.include(&Point::new(-1.0, 0.5));
        assert!(c.contains(&Point::new(-1.0, 0.5)));
    }
}
