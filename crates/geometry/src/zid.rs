use crate::{Point, Quadrant, Rect};
use std::fmt;

/// Maximum refinement depth of a [`ZId`] (quadrant levels below the root).
///
/// 31 levels × 2 bits = 62 bits of path, which fits a `u64` with room for the
/// sign-free comparison trick used by [`Ord`]. At city scale (≈50 km extent)
/// 31 levels resolve to well below a millimetre, far finer than any GPS fix.
pub const MAX_Z_DEPTH: u8 = 31;

/// An adaptive (variable-depth) Z-order identifier.
///
/// A `ZId` names one cell of a quadtree partition of some root rectangle: the
/// sequence of quadrants taken from the root to the cell. This is exactly the
/// paper's dotted z-id notation — `ZId` for "2" has depth 1, `0.3` has depth
/// 2 — and supports the two operations the TQ-tree needs:
///
/// 1. **Total order.** Sorting trajectories by `ZId` lays them out along the
///    Z-curve so spatially close trajectories are adjacent
///    ([`Ord`] below). All descendants of a cell form a *contiguous run* in
///    this order, which is what makes `zReduce`'s pruning a pair of binary
///    searches instead of a scan.
/// 2. **Prefix/coverage tests.** `a.covers(b)` holds when cell `a` is an
///    ancestor-or-self of cell `b` ([`ZId::covers`]).
///
/// # Representation
///
/// The quadrant path is packed *left-aligned* into a `u64`: the level-0
/// quadrant occupies bits 63–62, level 1 bits 61–60, and so on. Left
/// alignment makes the natural integer order of `path` agree with Z-curve
/// order, with `depth` breaking ties so an ancestor sorts immediately before
/// its descendants.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ZId {
    path: u64,
    depth: u8,
}

impl ZId {
    /// The root cell (empty path).
    #[inline]
    pub const fn root() -> ZId {
        ZId { path: 0, depth: 0 }
    }

    /// Number of quadrant levels below the root.
    #[inline]
    pub const fn depth(&self) -> u8 {
        self.depth
    }

    /// The raw left-aligned path bits (mostly useful for debugging).
    #[inline]
    pub const fn path_bits(&self) -> u64 {
        self.path
    }

    /// Reconstructs a `ZId` from its raw representation
    /// ([`ZId::path_bits`], [`ZId::depth`]) — the inverse used when
    /// decoding persisted ids. Returns `None` when the pair is not a
    /// valid id: depth beyond [`MAX_Z_DEPTH`], or path bits set below the
    /// `depth`-level prefix (every id keeps its unused low bits zero, an
    /// invariant [`Ord`] relies on).
    pub fn from_raw(path: u64, depth: u8) -> Option<ZId> {
        if depth > MAX_Z_DEPTH {
            return None;
        }
        let mask = if depth == 0 {
            0
        } else {
            !0u64 << (64 - 2 * depth as u32)
        };
        if path & !mask != 0 {
            return None;
        }
        Some(ZId { path, depth })
    }

    /// The child cell obtained by descending into quadrant `q`.
    ///
    /// # Panics
    /// Panics when the id is already at [`MAX_Z_DEPTH`].
    #[inline]
    pub fn child(&self, q: Quadrant) -> ZId {
        assert!(self.depth < MAX_Z_DEPTH, "ZId exceeded MAX_Z_DEPTH");
        let shift = 62 - 2 * self.depth as u32;
        ZId {
            path: self.path | ((q.index() as u64) << shift),
            depth: self.depth + 1,
        }
    }

    /// The parent cell, or `None` for the root.
    pub fn parent(&self) -> Option<ZId> {
        if self.depth == 0 {
            return None;
        }
        let d = self.depth - 1;
        let shift = 62 - 2 * d as u32;
        Some(ZId {
            path: self.path & !(0b11u64 << shift),
            depth: d,
        })
    }

    /// The quadrant taken at `level` (0-based from the root).
    ///
    /// # Panics
    /// Panics when `level >= self.depth()`.
    #[inline]
    pub fn quadrant_at(&self, level: u8) -> Quadrant {
        assert!(level < self.depth, "level out of range");
        let shift = 62 - 2 * level as u32;
        Quadrant::from_index(((self.path >> shift) & 0b11) as u8)
    }

    /// Returns `true` when `self` is an ancestor of `other` or equal to it
    /// (i.e. `self`'s path is a prefix of `other`'s).
    #[inline]
    pub fn covers(&self, other: &ZId) -> bool {
        if self.depth > other.depth {
            return false;
        }
        if self.depth == 0 {
            return true;
        }
        let keep = 2 * self.depth as u32;
        let mask = !0u64 << (64 - keep);
        (self.path & mask) == (other.path & mask)
    }

    /// Inclusive bounds `(lo, hi)` such that a `ZId` `z` satisfies
    /// `lo <= z && z <= hi` **iff** `self.covers(&z)`.
    ///
    /// Used to binary-search runs of covered trajectories in a sorted z-node
    /// list.
    pub fn descendant_range(&self) -> (ZId, ZId) {
        let lo = *self;
        let hi = if self.depth == 0 {
            ZId {
                path: !0u64,
                depth: MAX_Z_DEPTH,
            }
        } else {
            let keep = 2 * self.depth as u32;
            let suffix = !0u64 >> keep; // all-ones below the prefix
            ZId {
                path: self.path | suffix,
                depth: MAX_Z_DEPTH,
            }
        };
        (lo, hi)
    }

    /// The rectangle of this cell inside the partition rooted at `root`.
    pub fn cell(&self, root: &Rect) -> Rect {
        let mut r = *root;
        for level in 0..self.depth {
            r = r.quadrant(self.quadrant_at(level));
        }
        r
    }

    /// The `ZId` of depth `depth` whose cell (under `root`) contains `p`.
    ///
    /// Points outside `root` are clamped into it, so callers may pass a root
    /// that only approximately bounds the data.
    pub fn of_point(root: &Rect, p: &Point, depth: u8) -> ZId {
        assert!(depth <= MAX_Z_DEPTH, "depth exceeds MAX_Z_DEPTH");
        let clamped = Point::new(
            p.x.clamp(root.min.x, root.max.x),
            p.y.clamp(root.min.y, root.max.y),
        );
        let mut id = ZId::root();
        let mut r = *root;
        for _ in 0..depth {
            let q = r.quadrant_of(&clamped);
            r = r.quadrant(q);
            id = id.child(q);
        }
        id
    }
}

impl PartialOrd for ZId {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ZId {
    /// Z-curve order: by left-aligned path bits, ancestors before
    /// descendants on ties.
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.path
            .cmp(&other.path)
            .then(self.depth.cmp(&other.depth))
    }
}

impl fmt::Debug for ZId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ZId({self})")
    }
}

impl fmt::Display for ZId {
    /// Paper-style dotted notation: the root prints as `ε`, `0.3` is the
    /// south-west child's north-east child.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.depth == 0 {
            return write!(f, "ε");
        }
        for level in 0..self.depth {
            if level > 0 {
                write!(f, ".")?;
            }
            write!(f, "{}", self.quadrant_at(level).index())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn q(i: u8) -> Quadrant {
        Quadrant::from_index(i)
    }

    fn unit() -> Rect {
        Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0))
    }

    #[test]
    fn root_and_children() {
        let r = ZId::root();
        assert_eq!(r.depth(), 0);
        for i in 0..4 {
            let c = r.child(q(i));
            assert_eq!(c.depth(), 1);
            assert_eq!(c.quadrant_at(0), q(i));
            assert_eq!(c.parent(), Some(r));
        }
        assert_eq!(r.parent(), None);
    }

    #[test]
    fn display_matches_paper_notation() {
        let z = ZId::root().child(q(0)).child(q(3));
        assert_eq!(z.to_string(), "0.3");
        assert_eq!(ZId::root().to_string(), "ε");
        assert_eq!(ZId::root().child(q(2)).to_string(), "2");
    }

    #[test]
    fn covers_is_prefix() {
        let a = ZId::root().child(q(1));
        let b = a.child(q(2)).child(q(3));
        assert!(ZId::root().covers(&b));
        assert!(a.covers(&b));
        assert!(a.covers(&a));
        assert!(!b.covers(&a));
        let c = ZId::root().child(q(2));
        assert!(!c.covers(&b));
    }

    #[test]
    fn order_groups_siblings() {
        let r = ZId::root();
        let z00 = r.child(q(0)).child(q(0));
        let z01 = r.child(q(0)).child(q(1));
        let z0 = r.child(q(0));
        let z1 = r.child(q(1));
        let mut v = vec![z1, z01, z00, z0, r];
        v.sort();
        assert_eq!(v, vec![r, z0, z00, z01, z1]);
    }

    #[test]
    fn descendant_range_brackets_exactly() {
        let a = ZId::root().child(q(1)).child(q(2));
        let (lo, hi) = a.descendant_range();
        let inside = a.child(q(3)).child(q(0));
        let before = ZId::root().child(q(1)).child(q(1)).child(q(3));
        let after = ZId::root().child(q(1)).child(q(3));
        assert!(lo <= inside && inside <= hi);
        assert!(before < lo);
        assert!(after > hi);
    }

    #[test]
    fn cell_descends_quadrants() {
        let root = unit();
        let z = ZId::root().child(q(3)).child(q(0));
        let c = z.cell(&root);
        // NE then SW: [0.5,0.75]x[0.5,0.75]
        assert_eq!(c, Rect::new(Point::new(0.5, 0.5), Point::new(0.75, 0.75)));
    }

    #[test]
    fn of_point_lands_in_own_cell() {
        let root = unit();
        let p = Point::new(0.61, 0.27);
        for d in 0..10 {
            let z = ZId::of_point(&root, &p, d);
            assert!(z.cell(&root).contains(&p), "depth {d}");
        }
    }

    #[test]
    fn of_point_clamps_outside_points() {
        let root = unit();
        let p = Point::new(5.0, -3.0);
        let z = ZId::of_point(&root, &p, 6);
        assert_eq!(z.depth(), 6);
        // Clamped to the SE corner.
        assert!(z.cell(&root).contains(&Point::new(1.0, 0.0)));
    }

    #[test]
    fn from_raw_roundtrips_and_validates() {
        let z = ZId::root().child(q(2)).child(q(1)).child(q(3));
        assert_eq!(ZId::from_raw(z.path_bits(), z.depth()), Some(z));
        assert_eq!(ZId::from_raw(0, 0), Some(ZId::root()));
        // Depth beyond the maximum.
        assert_eq!(ZId::from_raw(0, MAX_Z_DEPTH + 1), None);
        // Path bits set below the depth prefix.
        assert_eq!(ZId::from_raw(z.path_bits() | 1, z.depth()), None);
        assert_eq!(ZId::from_raw(1, 0), None);
    }

    #[test]
    fn max_depth_supported() {
        let mut z = ZId::root();
        for i in 0..MAX_Z_DEPTH {
            z = z.child(q(i % 4));
        }
        assert_eq!(z.depth(), MAX_Z_DEPTH);
    }

    #[test]
    #[should_panic(expected = "MAX_Z_DEPTH")]
    fn over_deep_child_panics() {
        let mut z = ZId::root();
        for _ in 0..=MAX_Z_DEPTH {
            z = z.child(q(0));
        }
    }

    proptest! {
        #[test]
        fn prop_covers_iff_in_descendant_range(path in proptest::collection::vec(0u8..4, 0..12),
                                               other in proptest::collection::vec(0u8..4, 0..12)) {
            let mut a = ZId::root();
            for &i in &path { a = a.child(q(i)); }
            let mut b = ZId::root();
            for &i in &other { b = b.child(q(i)); }
            let (lo, hi) = a.descendant_range();
            prop_assert_eq!(a.covers(&b), lo <= b && b <= hi);
        }

        #[test]
        fn prop_order_consistent_with_cells(ax in 0.0f64..1.0, ay in 0.0f64..1.0,
                                            bx in 0.0f64..1.0, by in 0.0f64..1.0) {
            // Equal-depth ids: order is the standard Z-curve order, and equal
            // ids mean equal cells.
            let root = unit();
            let za = ZId::of_point(&root, &Point::new(ax, ay), 8);
            let zb = ZId::of_point(&root, &Point::new(bx, by), 8);
            if za == zb {
                prop_assert_eq!(za.cell(&root), zb.cell(&root));
            } else {
                prop_assert!(!za.cell(&root).intersection(&zb.cell(&root))
                    .map(|r| r.area() > 1e-12).unwrap_or(false));
            }
        }

        #[test]
        fn prop_parent_covers_child(path in proptest::collection::vec(0u8..4, 1..12)) {
            let mut z = ZId::root();
            for &i in &path { z = z.child(q(i)); }
            let p = z.parent().unwrap();
            prop_assert!(p.covers(&z));
            prop_assert!(p <= z);
        }
    }
}
