
/// A point in the plane.
///
/// Coordinates are `f64`; the crate assumes a planar (projected) coordinate
/// system so Euclidean distance is meaningful, matching the paper's use of a
/// distance threshold `ψ` in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Prefer this over [`Point::dist`] in hot paths: comparing squared
    /// distances against `ψ²` avoids the square root entirely.
    #[inline]
    pub fn dist_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Returns `true` when `other` lies within distance `psi` of `self`.
    #[inline]
    pub fn within(&self, other: &Point, psi: f64) -> bool {
        self.dist_sq(other) <= psi * psi
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(&self, other: &Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(&self, other: &Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Midpoint of the segment `self`–`other`.
    #[inline]
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Returns `true` when both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_and_dist_sq_agree() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist_sq(&b), 25.0);
        assert_eq!(b.dist(&a), 5.0);
    }

    #[test]
    fn dist_to_self_is_zero() {
        let a = Point::new(-3.25, 7.5);
        assert_eq!(a.dist(&a), 0.0);
    }

    #[test]
    fn within_is_inclusive() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!(a.within(&b, 5.0));
        assert!(!a.within(&b, 4.999));
    }

    #[test]
    fn min_max_midpoint() {
        let a = Point::new(1.0, 8.0);
        let b = Point::new(4.0, 2.0);
        assert_eq!(a.min(&b), Point::new(1.0, 2.0));
        assert_eq!(a.max(&b), Point::new(4.0, 8.0));
        assert_eq!(a.midpoint(&b), Point::new(2.5, 5.0));
    }

    #[test]
    fn from_tuple() {
        let p: Point = (2.0, 3.0).into();
        assert_eq!(p, Point::new(2.0, 3.0));
    }

    #[test]
    fn finiteness() {
        assert!(Point::new(0.0, 1.0).is_finite());
        assert!(!Point::new(f64::NAN, 1.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }
}
