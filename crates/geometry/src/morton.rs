//! Fixed-width Morton (Z-curve) codes.
//!
//! [`ZId`](crate::ZId) handles the *adaptive* z-ids stored in the index; this
//! module provides the classic fixed-resolution interleaving used to pre-sort
//! large point sets in one pass (sorting by 32-level Morton code is equivalent
//! to sorting by a depth-31 `ZId` and much cheaper to compute in bulk).

use crate::{Point, Rect};

/// Spreads the bits of `x` so they occupy the even bit positions.
#[inline]
pub fn spread(x: u32) -> u64 {
    let mut v = x as u64;
    v = (v | (v << 16)) & 0x0000_FFFF_0000_FFFF;
    v = (v | (v << 8)) & 0x00FF_00FF_00FF_00FF;
    v = (v | (v << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    v = (v | (v << 2)) & 0x3333_3333_3333_3333;
    v = (v | (v << 1)) & 0x5555_5555_5555_5555;
    v
}

/// Inverse of [`spread`]: gathers the even bit positions of `v`.
#[inline]
pub fn compact(v: u64) -> u32 {
    let mut v = v & 0x5555_5555_5555_5555;
    v = (v | (v >> 1)) & 0x3333_3333_3333_3333;
    v = (v | (v >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    v = (v | (v >> 4)) & 0x00FF_00FF_00FF_00FF;
    v = (v | (v >> 8)) & 0x0000_FFFF_0000_FFFF;
    v = (v | (v >> 16)) & 0x0000_0000_FFFF_FFFF;
    v as u32
}

/// Interleaves two 32-bit grid coordinates into a 64-bit Morton code
/// (x in the even bits, y in the odd bits).
#[inline]
pub fn interleave(x: u32, y: u32) -> u64 {
    spread(x) | (spread(y) << 1)
}

/// Inverse of [`interleave`].
#[inline]
pub fn deinterleave(code: u64) -> (u32, u32) {
    (compact(code), compact(code >> 1))
}

/// Morton code of `p` on a `2^bits × 2^bits` grid over `root`.
///
/// Points outside `root` are clamped. `bits` must be ≤ 32.
pub fn code_of(root: &Rect, p: &Point, bits: u32) -> u64 {
    assert!(bits <= 32, "morton resolution exceeds 32 bits per axis");
    let n = (1u64 << bits) as f64;
    let fx = ((p.x - root.min.x) / root.width().max(f64::MIN_POSITIVE)).clamp(0.0, 1.0);
    let fy = ((p.y - root.min.y) / root.height().max(f64::MIN_POSITIVE)).clamp(0.0, 1.0);
    let gx = ((fx * n) as u64).min((1u64 << bits) - 1) as u32;
    let gy = ((fy * n) as u64).min((1u64 << bits) - 1) as u32;
    interleave(gx, gy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn spread_compact_roundtrip_small() {
        for x in [0u32, 1, 2, 3, 255, 0xFFFF, u32::MAX] {
            assert_eq!(compact(spread(x)), x);
        }
    }

    #[test]
    fn interleave_examples() {
        assert_eq!(interleave(0, 0), 0);
        assert_eq!(interleave(1, 0), 0b01);
        assert_eq!(interleave(0, 1), 0b10);
        assert_eq!(interleave(1, 1), 0b11);
        assert_eq!(interleave(0b11, 0b00), 0b0101);
    }

    #[test]
    fn code_of_orders_quadrants() {
        let root = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let sw = code_of(&root, &Point::new(0.1, 0.1), 16);
        let se = code_of(&root, &Point::new(0.9, 0.1), 16);
        let nw = code_of(&root, &Point::new(0.1, 0.9), 16);
        let ne = code_of(&root, &Point::new(0.9, 0.9), 16);
        assert!(sw < se && se < nw && nw < ne);
    }

    #[test]
    fn code_of_clamps() {
        let root = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let out = code_of(&root, &Point::new(-5.0, 2.0), 8);
        let corner = code_of(&root, &Point::new(0.0, 1.0), 8);
        assert_eq!(out, corner);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(x in any::<u32>(), y in any::<u32>()) {
            let (rx, ry) = deinterleave(interleave(x, y));
            prop_assert_eq!((rx, ry), (x, y));
        }

        #[test]
        fn prop_code_matches_zid_order(ax in 0.0f64..1.0, ay in 0.0f64..1.0,
                                       bx in 0.0f64..1.0, by in 0.0f64..1.0) {
            use crate::ZId;
            let root = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            // Same grid → same depth-`bits` cell. We compare at 8 levels.
            let ca = code_of(&root, &a, 8);
            let cb = code_of(&root, &b, 8);
            let za = ZId::of_point(&root, &a, 8);
            let zb = ZId::of_point(&root, &b, 8);
            if ca < cb { prop_assert!(za <= zb); }
            if ca > cb { prop_assert!(za >= zb); }
        }
    }
}
