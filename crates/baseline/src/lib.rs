//! Compatibility facade for the paper's **BL** / **G-BL** baseline methods.
//!
//! The implementation moved into [`tq_core::baseline`] so the unified
//! [`tq_core::engine::Engine`] can hold a [`tq_core::baseline::BaselineIndex`]
//! directly as [`tq_core::engine::Backend::Baseline`] without a dependency
//! cycle. This crate re-exports the whole module under its historical name;
//! existing `tq_baseline::BaselineIndex` imports keep compiling unchanged.

#![warn(missing_docs)]

pub use tq_core::baseline::{BaselineIndex, DEFAULT_LEAF_CAPACITY};
