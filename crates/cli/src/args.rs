//! Table-driven flag parsing (no external dependencies), shared by every
//! subcommand.
//!
//! Each subcommand is described once by a [`Command`] table (name, summary,
//! positional synopsis, flags with metavars/defaults/help). The same table
//! drives parsing (`--name value` flags, positionals, unknown flags are
//! errors so typos fail fast), the per-subcommand `tq <cmd> --help` output,
//! and the global synopsis.

use std::collections::HashMap;

/// One `--flag VALUE` of a subcommand.
pub struct Flag {
    /// Flag name, without the leading `--`.
    pub name: &'static str,
    /// Metavar / accepted values shown in help, e.g. `"K"` or `"nyt|nyf|bjg"`.
    pub meta: &'static str,
    /// Default shown in help; empty string marks a required flag.
    pub default: &'static str,
    /// One-line description.
    pub help: &'static str,
}

/// One subcommand: everything needed to parse it and document it.
pub struct Command {
    /// Subcommand name.
    pub name: &'static str,
    /// One-line summary for the global synopsis.
    pub summary: &'static str,
    /// Positional-argument synopsis, e.g. `"FILE"` (empty when none).
    pub positional: &'static str,
    /// The accepted flags.
    pub flags: &'static [Flag],
}

impl Command {
    /// Parses `raw` against this command's flag table. Returns `Ok(None)`
    /// when `--help`/`-h` was requested (the caller prints [`Command::usage`]).
    pub fn parse(&self, raw: Vec<String>) -> Result<Option<Args>, ArgError> {
        let mut out = Args::default();
        let mut it = raw.into_iter();
        while let Some(a) = it.next() {
            if a == "--help" || a == "-h" {
                return Ok(None);
            }
            if let Some(name) = a.strip_prefix("--") {
                if !self.flags.iter().any(|f| f.name == name) {
                    return Err(ArgError::Unknown(name.to_string()));
                }
                let value = it.next().ok_or_else(|| ArgError::MissingValue(name.into()))?;
                out.flags.insert(name.to_string(), value);
            } else {
                out.positional.push(a);
            }
        }
        Ok(Some(out))
    }

    /// The full `tq <cmd> --help` text: synopsis plus one line per flag.
    pub fn usage(&self) -> String {
        let mut s = format!("tq {} — {}\n\nUSAGE: tq {}", self.name, self.summary, self.name);
        if !self.positional.is_empty() {
            s.push(' ');
            s.push_str(self.positional);
        }
        if !self.flags.is_empty() {
            s.push_str(" [flags]\n\nFLAGS\n");
            let width = self
                .flags
                .iter()
                .map(|f| f.name.len() + f.meta.len())
                .max()
                .unwrap_or(0);
            for f in self.flags {
                let head = format!("--{} {}", f.name, f.meta);
                let default = if f.default.is_empty() {
                    "(required)".to_string()
                } else {
                    format!("[default: {}]", f.default)
                };
                s.push_str(&format!(
                    "  {head:<w$}  {}  {default}\n",
                    f.help,
                    w = width + 4
                ));
            }
        } else {
            s.push('\n');
        }
        s
    }
}

/// The global `tq --help` synopsis generated from the command tables.
pub fn global_usage(commands: &[&Command]) -> String {
    let mut s = String::from(
        "tq — trajectory coverage queries (kMaxRRST / MaxkCovRST over a TQ-tree)\n\n\
         USAGE: tq <command> [args]   (tq <command> --help for per-command flags)\n\n\
         COMMANDS\n",
    );
    let width = commands.iter().map(|c| c.name.len()).max().unwrap_or(0);
    for c in commands {
        s.push_str(&format!("  {:<w$}  {}\n", c.name, c.summary, w = width));
    }
    s.push_str(
        "  help         this text\n\n\
         Evaluation fans out across --threads worker threads (0 = one per core,\n\
         the default); results are identical at any thread count. `tq serve`\n\
         additionally fans *queries* across --clients reader threads over\n\
         immutable snapshots while updates stream through the single writer.\n\
         See docs/GUIDE.md for worked examples of every command.\n",
    );
    s
}

/// Parsed command-line arguments: positionals plus `--key value` flags.
#[derive(Debug, Default, PartialEq)]
pub struct Args {
    positional: Vec<String>,
    flags: HashMap<String, String>,
}

/// Argument parsing errors.
#[derive(Debug, PartialEq, Eq)]
pub enum ArgError {
    /// A `--flag` had no following value.
    MissingValue(String),
    /// A flag value failed to parse.
    BadValue {
        /// Flag name.
        flag: String,
        /// Raw value.
        value: String,
        /// Expected type, for the message.
        expected: &'static str,
    },
    /// A flag is not recognized by the subcommand.
    Unknown(String),
    /// A required flag is absent.
    Required(&'static str),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingValue(flag) => write!(f, "--{flag} needs a value"),
            ArgError::BadValue {
                flag,
                value,
                expected,
            } => write!(f, "--{flag}: {value:?} is not a valid {expected}"),
            ArgError::Unknown(flag) => write!(f, "unknown flag --{flag}"),
            ArgError::Required(flag) => write!(f, "--{flag} is required"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// A string flag.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).map(String::as_str)
    }

    /// A required string flag.
    pub fn required(&self, flag: &'static str) -> Result<&str, ArgError> {
        self.get(flag).ok_or(ArgError::Required(flag))
    }

    /// A typed flag with a default.
    pub fn get_or<T: std::str::FromStr>(
        &self,
        flag: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        match self.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                flag: flag.to_string(),
                value: v.to_string(),
                expected,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    const CMD: Command = Command {
        name: "test",
        summary: "a test command",
        positional: "FILE",
        flags: &[
            Flag { name: "k", meta: "K", default: "8", help: "result count" },
            Flag { name: "psi", meta: "METRES", default: "200", help: "service radius" },
            Flag { name: "out", meta: "FILE", default: "", help: "output path" },
        ],
    };

    #[test]
    fn parses_flags_and_positionals() {
        let a = CMD
            .parse(v(&["--k", "8", "file.tqd", "--psi", "200"]))
            .unwrap()
            .unwrap();
        assert_eq!(a.positional(), &["file.tqd".to_string()]);
        assert_eq!(a.get("k"), Some("8"));
        assert_eq!(a.get_or("k", 0usize, "integer").unwrap(), 8);
        assert_eq!(a.get_or("psi", 0.0f64, "number").unwrap(), 200.0);
        assert_eq!(a.get_or("missing", 7u32, "integer").unwrap(), 7);
    }

    #[test]
    fn rejects_unknown_flags() {
        assert_eq!(
            CMD.parse(v(&["--oops", "1"])),
            Err(ArgError::Unknown("oops".into()))
        );
    }

    #[test]
    fn missing_value_detected() {
        assert_eq!(
            CMD.parse(v(&["--k"])),
            Err(ArgError::MissingValue("k".into()))
        );
    }

    #[test]
    fn bad_typed_value() {
        let a = CMD.parse(v(&["--k", "eight"])).unwrap().unwrap();
        assert!(matches!(
            a.get_or("k", 0usize, "integer"),
            Err(ArgError::BadValue { .. })
        ));
    }

    #[test]
    fn required_flag() {
        let a = CMD.parse(v(&[])).unwrap().unwrap();
        assert_eq!(a.required("out"), Err(ArgError::Required("out")));
    }

    #[test]
    fn help_flag_short_circuits() {
        assert_eq!(CMD.parse(v(&["--k", "8", "--help"])).unwrap(), None);
        assert_eq!(CMD.parse(v(&["-h"])).unwrap(), None);
    }

    #[test]
    fn usage_lists_every_flag_with_default_or_required() {
        let u = CMD.usage();
        assert!(u.contains("tq test"), "{u}");
        assert!(u.contains("--k K"), "{u}");
        assert!(u.contains("[default: 200]"), "{u}");
        assert!(u.contains("(required)"), "{u}");
    }

    #[test]
    fn global_usage_lists_commands() {
        let g = global_usage(&[&CMD]);
        assert!(g.contains("test"), "{g}");
        assert!(g.contains("a test command"), "{g}");
    }
}
