//! Minimal flag parsing (no external dependencies).
//!
//! Supports `--name value` flags and positional arguments; unknown flags are
//! errors so typos fail fast instead of silently using defaults.

use std::collections::HashMap;

/// Parsed command-line arguments: positionals plus `--key value` flags.
#[derive(Debug, Default, PartialEq)]
pub struct Args {
    positional: Vec<String>,
    flags: HashMap<String, String>,
}

/// Argument parsing errors.
#[derive(Debug, PartialEq, Eq)]
pub enum ArgError {
    /// A `--flag` had no following value.
    MissingValue(String),
    /// A flag value failed to parse.
    BadValue {
        /// Flag name.
        flag: String,
        /// Raw value.
        value: String,
        /// Expected type, for the message.
        expected: &'static str,
    },
    /// A flag is not recognized by the subcommand.
    Unknown(String),
    /// A required flag is absent.
    Required(&'static str),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingValue(flag) => write!(f, "--{flag} needs a value"),
            ArgError::BadValue {
                flag,
                value,
                expected,
            } => write!(f, "--{flag}: {value:?} is not a valid {expected}"),
            ArgError::Unknown(flag) => write!(f, "unknown flag --{flag}"),
            ArgError::Required(flag) => write!(f, "--{flag} is required"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments, validating flags against `allowed`.
    pub fn parse<I: IntoIterator<Item = String>>(
        raw: I,
        allowed: &[&str],
    ) -> Result<Args, ArgError> {
        let mut out = Args::default();
        let mut it = raw.into_iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if !allowed.contains(&name) {
                    return Err(ArgError::Unknown(name.to_string()));
                }
                let value = it.next().ok_or_else(|| ArgError::MissingValue(name.into()))?;
                out.flags.insert(name.to_string(), value);
            } else {
                out.positional.push(a);
            }
        }
        Ok(out)
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// A string flag.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).map(String::as_str)
    }

    /// A required string flag.
    pub fn required(&self, flag: &'static str) -> Result<&str, ArgError> {
        self.get(flag).ok_or(ArgError::Required(flag))
    }

    /// A typed flag with a default.
    pub fn get_or<T: std::str::FromStr>(
        &self,
        flag: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        match self.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                flag: flag.to_string(),
                value: v.to_string(),
                expected,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_positionals() {
        let a = Args::parse(v(&["--k", "8", "file.tqd", "--psi", "200"]), &["k", "psi"])
            .unwrap();
        assert_eq!(a.positional(), &["file.tqd".to_string()]);
        assert_eq!(a.get("k"), Some("8"));
        assert_eq!(a.get_or("k", 0usize, "integer").unwrap(), 8);
        assert_eq!(a.get_or("psi", 0.0f64, "number").unwrap(), 200.0);
        assert_eq!(a.get_or("missing", 7u32, "integer").unwrap(), 7);
    }

    #[test]
    fn rejects_unknown_flags() {
        assert_eq!(
            Args::parse(v(&["--oops", "1"]), &["k"]),
            Err(ArgError::Unknown("oops".into()))
        );
    }

    #[test]
    fn missing_value_detected() {
        assert_eq!(
            Args::parse(v(&["--k"]), &["k"]),
            Err(ArgError::MissingValue("k".into()))
        );
    }

    #[test]
    fn bad_typed_value() {
        let a = Args::parse(v(&["--k", "eight"]), &["k"]).unwrap();
        assert!(matches!(
            a.get_or("k", 0usize, "integer"),
            Err(ArgError::BadValue { .. })
        ));
    }

    #[test]
    fn required_flag() {
        let a = Args::parse(v(&[]), &["out"]).unwrap();
        assert_eq!(a.required("out"), Err(ArgError::Required("out")));
    }
}
