//! `tqd` — the trajectory-query daemon: serve a durable store over TCP.
//!
//! ```text
//! tq save city.tqd --store /var/lib/tq       # build + persist an engine
//! tqd --persist /var/lib/tq --addr 127.0.0.1:7071
//! tq query  --connect 127.0.0.1:7071 --k 8   # from any shell
//! tq status --connect 127.0.0.1:7071
//! tq shutdown --connect 127.0.0.1:7071       # graceful: drain + checkpoint
//! ```
//!
//! The daemon cold-starts the engine from the store (newest snapshot plus
//! WAL replay), serves any number of concurrent connections — queries
//! answer lock-free from published snapshots, update batches funnel
//! through the single writer and hit the WAL before they are acked — and
//! on graceful shutdown (the protocol `shutdown` frame) drains
//! connections and writes a final checkpoint. A killed daemon loses
//! nothing acked: reopening the store replays the WAL tail.

#[path = "../args.rs"]
#[allow(dead_code)]
mod args;

use args::{Command, Flag};
use tq_core::engine::Engine;
use tq_core::StoreConfig;
use tq_net::{Server, ServerConfig};

const TQD: Command = Command {
    name: "tqd",
    summary: "serve a durable engine store over TCP",
    positional: "",
    flags: &[
        Flag { name: "persist", meta: "DIR", default: "", help: "store directory to open (tq save / tq stream --wal)" },
        Flag { name: "addr", meta: "HOST:PORT", default: "127.0.0.1:7071", help: "listen address (port 0 = ephemeral, printed on stdout)" },
        Flag { name: "checkpoint-every", meta: "N", default: "512", help: "auto-checkpoint after N WAL batches (0 = manual only)" },
        Flag { name: "threads", meta: "N", default: "0", help: "evaluation threads per query (0 = one per core)" },
    ],
};

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(a) = TQD.parse(raw)? else {
        print!("{}", TQD.usage().replace("tq tqd", "tqd"));
        return Ok(());
    };
    let dir = a.required("persist")?;
    let addr = a.get("addr").unwrap_or("127.0.0.1:7071");
    let checkpoint_every: usize = a.get_or("checkpoint-every", 512, "integer")?;
    tq_core::set_threads(a.get_or("threads", 0, "integer")?);

    let t = std::time::Instant::now();
    let mut engine = Engine::open_with(
        dir,
        StoreConfig {
            checkpoint_every,
            ..StoreConfig::default()
        },
    )?;
    // Seed the served-table memo up front so the first coverage query (and
    // every funneled batch) maintains it incrementally.
    engine.warm();
    println!(
        "tqd: recovered {dir} in {:.3}s — epoch {}, {} backend, {} live of {} trajectories, \
         {} facilities",
        t.elapsed().as_secs_f64(),
        engine.epoch(),
        engine.backend().kind(),
        engine.live_users(),
        engine.users().len(),
        engine.facilities().len(),
    );

    let handle = Server::start(engine, addr, ServerConfig::default())?;
    println!("tqd: listening on {}", handle.addr());
    // Blocks until a protocol shutdown frame arrives, then drains
    // connections and writes the final checkpoint.
    let engine = handle.wait()?;
    println!(
        "tqd: shut down at epoch {} ({} live trajectories); final checkpoint written",
        engine.epoch(),
        engine.live_users()
    );
    if let Some(status) = engine.persistence() {
        println!("tqd: {status}");
    }
    Ok(())
}
