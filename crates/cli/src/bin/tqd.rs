//! `tqd` — the trajectory-query daemon: serve a durable store over TCP.
//!
//! ```text
//! tq save city.tqd --store /var/lib/tq       # build + persist an engine
//! tqd --persist /var/lib/tq --addr 127.0.0.1:7071
//! tq query  --connect 127.0.0.1:7071 --k 8   # from any shell
//! tq status --connect 127.0.0.1:7071
//! tq shutdown --connect 127.0.0.1:7071       # graceful: drain + checkpoint
//! ```
//!
//! The daemon cold-starts the engine from the store (newest snapshot plus
//! WAL replay), serves any number of concurrent connections — queries
//! answer lock-free from published snapshots, update batches funnel
//! through the single writer and hit the WAL before they are acked — and
//! on graceful shutdown (the protocol `shutdown` frame) drains
//! connections and writes a final checkpoint. A killed daemon loses
//! nothing acked: reopening the store replays the WAL tail.
//!
//! Sharded store directories (created by `tq serve --shards N --persist`
//! or [`EngineBuilder::build_sharded`](tq_core::engine::EngineBuilder))
//! are detected automatically: the daemon recovers every shard in
//! parallel and serves scatter–gather queries over the
//! [`ShardedEngine`](tq_core::sharding::ShardedEngine) front end — same
//! wire protocol, bit-identical answers.

#[path = "../args.rs"]
#[allow(dead_code)]
mod args;

use args::{Command, Flag};
use tq_core::engine::Engine;
use tq_core::writer::{ControlPlane, ReadPlane};
use tq_core::StoreConfig;
use tq_net::{Server, ServerConfig};

const TQD: Command = Command {
    name: "tqd",
    summary: "serve a durable engine store over TCP",
    positional: "",
    flags: &[
        Flag { name: "persist", meta: "DIR", default: "", help: "store directory to open (tq save / tq stream --wal); sharded directories are detected automatically" },
        Flag { name: "addr", meta: "HOST:PORT", default: "127.0.0.1:7071", help: "listen address (port 0 = ephemeral, printed on stdout)" },
        Flag { name: "checkpoint-every", meta: "N", default: "512", help: "auto-checkpoint after N WAL batches (0 = manual only)" },
        Flag { name: "bg-checkpoints", meta: "true|false", default: "false", help: "stage threshold checkpoints on a worker thread, off the write path" },
        Flag { name: "threads", meta: "N", default: "0", help: "evaluation threads per query (0 = one per core)" },
    ],
};

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(a) = TQD.parse(raw)? else {
        print!("{}", TQD.usage().replace("tq tqd", "tqd"));
        return Ok(());
    };
    let dir = a.required("persist")?;
    let addr = a.get("addr").unwrap_or("127.0.0.1:7071");
    let checkpoint_every: usize = a.get_or("checkpoint-every", 512, "integer")?;
    let background_checkpoints: bool = a.get_or("bg-checkpoints", false, "true|false")?;
    tq_core::set_threads(a.get_or("threads", 0, "integer")?);
    let config = StoreConfig {
        checkpoint_every,
        background_checkpoints,
        ..StoreConfig::default()
    };

    if tq_store::manifest::is_sharded_dir(std::path::Path::new(dir)) {
        let t = std::time::Instant::now();
        let mut engine = Engine::open_sharded_with(dir, config)?;
        engine.warm();
        let secs = t.elapsed().as_secs_f64();
        announce(&engine, dir, secs, &format!("{} shards", engine.shard_count()));
        daemonize(engine, addr)
    } else {
        let t = std::time::Instant::now();
        let mut engine = Engine::open_with(dir, config)?;
        // Seed the served-table memo up front so the first coverage query
        // (and every funneled batch) maintains it incrementally.
        engine.warm();
        let secs = t.elapsed().as_secs_f64();
        announce(&engine, dir, secs, "single store");
        daemonize(engine, addr)
    }
}

fn announce<C: ControlPlane>(engine: &C, dir: &str, secs: f64, shape: &str) {
    let info = engine.reader().info();
    println!(
        "tqd: recovered {dir} ({shape}) in {secs:.3}s — epoch {}, {} backend, \
         {} live of {} trajectories, {} facilities",
        info.epoch, info.backend, info.live_users, info.users, info.facilities,
    );
}

/// Serves until a protocol shutdown frame arrives, then drains
/// connections and writes the final checkpoint — identical for the
/// single and the sharded control plane.
fn daemonize<C: ControlPlane>(engine: C, addr: &str) -> Result<(), Box<dyn std::error::Error>> {
    let handle = Server::start(engine, addr, ServerConfig::default())?;
    println!("tqd: listening on {}", handle.addr());
    let engine = handle.wait()?;
    let info = engine.reader().info();
    println!(
        "tqd: shut down at epoch {} ({} live trajectories); final checkpoint written",
        info.epoch, info.live_users,
    );
    if let Some(status) = engine.persist_status() {
        println!("tqd: {status}");
    }
    Ok(())
}
