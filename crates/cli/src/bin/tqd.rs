//! `tqd` — the trajectory-query daemon: serve a durable store over TCP.
//!
//! ```text
//! tq save city.tqd --store /var/lib/tq       # build + persist an engine
//! tqd --persist /var/lib/tq --addr 127.0.0.1:7071
//! tq query  --connect 127.0.0.1:7071 --k 8   # from any shell
//! tq status --connect 127.0.0.1:7071
//! tq shutdown --connect 127.0.0.1:7071       # graceful: drain + checkpoint
//! ```
//!
//! The daemon cold-starts the engine from the store (newest snapshot plus
//! WAL replay), serves any number of concurrent connections — queries
//! answer lock-free from published snapshots, update batches funnel
//! through the single writer and hit the WAL before they are acked — and
//! on graceful shutdown (the protocol `shutdown` frame) drains
//! connections and writes a final checkpoint. A killed daemon loses
//! nothing acked: reopening the store replays the WAL tail.
//!
//! Sharded store directories (created by `tq serve --shards N --persist`
//! or [`EngineBuilder::build_sharded`](tq_core::engine::EngineBuilder))
//! are detected automatically: the daemon recovers every shard in
//! parallel and serves scatter–gather queries over the
//! [`ShardedEngine`](tq_core::sharding::ShardedEngine) front end — same
//! wire protocol, bit-identical answers.
//!
//! ## Replication
//!
//! Any durable single-store daemon serves WAL-shipping feeds; start a
//! **warm standby** with `--follow`:
//!
//! ```text
//! tqd --persist /var/lib/tq-standby --follow 127.0.0.1:7071 --addr :7072
//! ```
//!
//! The standby bootstraps from the primary (snapshot transfer when its
//! local store is empty or too far behind, WAL records otherwise),
//! serves queries from its own read plane while records stream in, and
//! refuses writes with a typed `read-only` error naming the primary.
//! `tq promote --connect` flips it to primary; `--promote-after SECS`
//! does the same automatically once the primary has been unreachable
//! that long.

#[path = "../args.rs"]
#[allow(dead_code)]
mod args;

use args::{Command, Flag};
use std::path::Path;
use std::time::{Duration, Instant};
use tq_core::engine::Engine;
use tq_core::writer::{ControlPlane, ReadPlane};
use tq_core::StoreConfig;
use tq_net::{
    bootstrap_follower, ingest, open_feed, ConnectConfig, IngestEnd, Server, ServerConfig,
    ServerHandle,
};

const TQD: Command = Command {
    name: "tqd",
    summary: "serve a durable engine store over TCP",
    positional: "",
    flags: &[
        Flag { name: "persist", meta: "DIR", default: "", help: "store directory to open (tq save / tq stream --wal); sharded directories are detected automatically" },
        Flag { name: "addr", meta: "HOST:PORT", default: "127.0.0.1:7071", help: "listen address (port 0 = ephemeral, printed on stdout)" },
        Flag { name: "checkpoint-every", meta: "N", default: "512", help: "auto-checkpoint after N WAL batches (0 = manual only)" },
        Flag { name: "checkpoint-max-age", meta: "SECS", default: "0", help: "also checkpoint when the WAL tail is older than SECS (0 = batch threshold only)" },
        Flag { name: "bg-checkpoints", meta: "true|false", default: "false", help: "stage threshold checkpoints on a worker thread, off the write path" },
        Flag { name: "follow", meta: "HOST:PORT", default: "", help: "run as a read-only follower replicating from the primary at this address" },
        Flag { name: "promote-after", meta: "SECS", default: "0", help: "auto-promote to primary after the followed primary has been unreachable SECS seconds (0 = manual promote only)" },
        Flag { name: "threads", meta: "N", default: "0", help: "evaluation threads per query (0 = one per core)" },
        Flag { name: "slow-query-ms", meta: "MS", default: "1000", help: "retain queries slower than MS (incl. funnel queueing) in the slow-query log (tq metrics --connect)" },
    ],
};

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(a) = TQD.parse(raw)? else {
        print!("{}", TQD.usage().replace("tq tqd", "tqd"));
        return Ok(());
    };
    let dir = a.required("persist")?;
    let addr = a.get("addr").unwrap_or("127.0.0.1:7071");
    let checkpoint_every: usize = a.get_or("checkpoint-every", 512, "integer")?;
    let checkpoint_max_age: u64 = a.get_or("checkpoint-max-age", 0, "integer")?;
    let background_checkpoints: bool = a.get_or("bg-checkpoints", false, "true|false")?;
    let follow = a.get("follow").filter(|f| !f.is_empty()).map(str::to_string);
    let promote_after: u64 = a.get_or("promote-after", 0, "integer")?;
    tq_core::set_threads(a.get_or("threads", 0, "integer")?);
    let slow_ms: u64 = a.get_or("slow-query-ms", 1000, "integer")?;
    tq_obs::set_slow_threshold_ns(slow_ms.saturating_mul(1_000_000));
    let config = StoreConfig {
        checkpoint_every,
        background_checkpoints,
        checkpoint_max_age: (checkpoint_max_age > 0)
            .then(|| Duration::from_secs(checkpoint_max_age)),
        ..StoreConfig::default()
    };

    if tq_store::manifest::is_sharded_dir(Path::new(dir)) {
        if follow.is_some() {
            return Err("replication does not support sharded stores yet; \
                        --follow needs a single-store directory"
                .into());
        }
        let t = std::time::Instant::now();
        let mut engine = Engine::open_sharded_with(dir, config)?;
        engine.warm();
        let secs = t.elapsed().as_secs_f64();
        announce(&engine, dir, secs, &format!("{} shards", engine.shard_count()));
        let handle = Server::start(engine, addr, ServerConfig::default())?;
        println!("tqd: listening on {}", handle.addr());
        finish(handle.wait()?)
    } else if let Some(primary) = follow {
        serve_follower(dir, config, addr, &primary, promote_after)
    } else {
        let t = std::time::Instant::now();
        let mut engine = Engine::open_with(dir, config)?;
        // Seed the served-table memo up front so the first coverage query
        // (and every funneled batch) maintains it incrementally.
        engine.warm();
        let secs = t.elapsed().as_secs_f64();
        announce(&engine, dir, secs, "single store");
        let handle = Server::start(
            engine,
            addr,
            ServerConfig {
                repl_dir: Some(Path::new(dir).to_path_buf()),
                ..ServerConfig::default()
            },
        )?;
        println!("tqd: listening on {} (serving replication feeds)", handle.addr());
        finish(handle.wait()?)
    }
}

/// The follower daemon: bootstrap from the primary, serve reads, apply
/// the shipped record stream on a side thread, reconnect on feed loss,
/// and optionally self-promote when the primary stays gone.
fn serve_follower(
    dir: &str,
    config: StoreConfig,
    addr: &str,
    primary: &str,
    promote_after: u64,
) -> Result<(), Box<dyn std::error::Error>> {
    let t = std::time::Instant::now();
    let follower = bootstrap_follower(
        Path::new(dir),
        config,
        primary,
        &ConnectConfig::default(),
    )?;
    // Deliberately NOT warmed: `warm` publishes a memo epoch with no WAL
    // record, which would desynchronize the follower's epoch counter
    // from the primary's stamps (a shipped record at the consumed stamp
    // would be wrongly skipped as a duplicate). Coverage queries build
    // their tables per-query instead.
    let secs = t.elapsed().as_secs_f64();
    announce(&follower.engine, dir, secs, &format!("follower of {primary}"));

    let reader = follower.engine.reader();
    let handle: ServerHandle = Server::start(
        follower.engine,
        addr,
        ServerConfig {
            repl_dir: Some(Path::new(dir).to_path_buf()),
            follow: Some(primary.to_string()),
            ..ServerConfig::default()
        },
    )?;
    println!(
        "tqd: listening on {} (read-only follower of {primary})",
        handle.addr()
    );

    let parts = handle.follower_parts();
    let primary = primary.to_string();
    let ingest_thread = std::thread::spawn(move || {
        // One dial per reconnect round; the loop paces retries itself so
        // the promote-after deadline is checked between attempts.
        let redial = ConnectConfig {
            attempts: 1,
            ..ConnectConfig::default()
        };
        let mut stream = follower.stream;
        // A read timeout lets the ingest loop poll the stop/role flags
        // while the feed is idle.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
        let mut lost_since: Option<Instant> = None;
        loop {
            let done = || parts.stopping() || !parts.is_follower();
            let end = ingest(&mut stream, parts.writer(), redial.max_frame, done);
            if done() {
                return;
            }
            match end {
                Ok(IngestEnd::Stopped) => return,
                Ok(IngestEnd::Disconnected) => {}
                Err(e) => eprintln!("tqd: replication feed error: {e}"),
            }
            let since = *lost_since.get_or_insert_with(Instant::now);
            if promote_after > 0 && since.elapsed() >= Duration::from_secs(promote_after) {
                match parts.promote() {
                    Ok(epoch) => println!(
                        "tqd: primary unreachable for {promote_after}s — \
                         promoted to primary at epoch {epoch}"
                    ),
                    Err(e) => eprintln!("tqd: auto-promotion failed: {e}"),
                }
                return;
            }
            std::thread::sleep(Duration::from_millis(200));
            match open_feed(&primary, reader.latest_epoch(), &redial) {
                Ok(s) => {
                    stream = s;
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
                    lost_since = None;
                    println!("tqd: replication feed reconnected to {primary}");
                }
                Err(_) => continue,
            }
        }
    });

    let engine = handle.wait()?;
    let _ = ingest_thread.join();
    finish(engine)
}

fn announce<C: ControlPlane>(engine: &C, dir: &str, secs: f64, shape: &str) {
    let info = engine.reader().info();
    println!(
        "tqd: recovered {dir} ({shape}) in {secs:.3}s — epoch {}, {} backend, \
         {} live of {} trajectories, {} facilities",
        info.epoch, info.backend, info.live_users, info.users, info.facilities,
    );
}

/// The common shutdown tail: report where the engine ended up.
fn finish<C: ControlPlane>(engine: C) -> Result<(), Box<dyn std::error::Error>> {
    let info = engine.reader().info();
    println!(
        "tqd: shut down at epoch {} ({} live trajectories); final checkpoint written",
        info.epoch, info.live_users,
    );
    if let Some(status) = engine.persist_status() {
        println!("tqd: {status}");
    }
    Ok(())
}
