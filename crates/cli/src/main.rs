//! `tq` — trajectory coverage queries from the command line.
//!
//! ```text
//! tq generate --kind nyt --users 50000 --routes 128 --stops 32 --out city.tqd
//! tq import-taxi --trips trips.csv --routes stops.csv --out nyc.tqd
//! tq stats   city.tqd
//! tq topk    city.tqd --k 8 --psi 200 --scenario transit
//! tq maxcov  city.tqd --k 4 --psi 200 --method two-step
//! tq stream  --kind nyt --users 20000 --events 2000 --batch 200 --k 8
//! ```
//!
//! Datasets travel as `.tqd` snapshot files (`tq-trajectory::snapshot`).

mod args;

use args::Args;
use tq_baseline::BaselineIndex;
use tq_core::dynamic::{DynamicConfig, DynamicEngine, Update};
use tq_core::maxcov::{exact, genetic, greedy, two_step_greedy, GeneticConfig, ServedTable};
use tq_core::service::{Scenario, ServiceModel};
use tq_core::tqtree::{Placement, TqTree, TqTreeConfig};
use tq_core::top_k_facilities;
use tq_datagen::{StreamEvent, StreamKind};
use tq_trajectory::{snapshot, FacilitySet, UserSet};

const USAGE: &str = "\
tq — trajectory coverage queries (kMaxRRST / MaxkCovRST over a TQ-tree)

USAGE: tq <command> [args]

COMMANDS
  generate     synthesize a dataset            --kind nyt|nyf|bjg --users N
               [--routes N --stops S --seed S] --out FILE
  import-taxi  import NYC TLC trips + route stops
               --trips FILE --routes FILE --out FILE
  stats        dataset and index statistics    FILE [--beta B]
  topk         kMaxRRST                        FILE --k K --psi METRES
               [--scenario transit|points|length] [--placement two-point|segmented|full]
               [--method tq-z|tq-b|bl] [--threads N]
  maxcov       MaxkCovRST                      FILE --k K --psi METRES
               [--method greedy|two-step|genetic|exact] [--threads N]
  stream       dynamic workload: batched arrivals/expiries with incremental
               index + answer maintenance      --kind nyt|nyf|bjg --users N
               [--events N --batch B --expire R --routes N --stops S --k K
                --psi METRES --scenario S --placement P --beta B --seed S
                --threads N --verify true]
  help         this text

Evaluation fans out across --threads worker threads (0 = one per core,
the default); results are identical at any thread count.
See docs/GUIDE.md for worked examples of every command.
";

fn main() {
    let mut argv = std::env::args().skip(1);
    let cmd = argv.next().unwrap_or_else(|| "help".into());
    let rest: Vec<String> = argv.collect();
    let result = match cmd.as_str() {
        "generate" => cmd_generate(rest),
        "import-taxi" => cmd_import_taxi(rest),
        "stats" => cmd_stats(rest),
        "topk" => cmd_topk(rest),
        "maxcov" => cmd_maxcov(rest),
        "stream" => cmd_stream(rest),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => {
            // Unknown commands get the full synopsis, not just an error.
            eprint!("{USAGE}");
            Err(format!("unknown command {other:?}").into())
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn load(path: &str) -> Result<(UserSet, FacilitySet), Box<dyn std::error::Error>> {
    let raw = std::fs::read(path)?;
    Ok(snapshot::decode(raw.into())?)
}

fn scenario_of(name: &str) -> Result<Scenario, String> {
    match name {
        "transit" => Ok(Scenario::Transit),
        "points" => Ok(Scenario::PointCount),
        "length" => Ok(Scenario::Length),
        other => Err(format!("unknown scenario {other:?} (transit|points|length)")),
    }
}

fn placement_of(name: &str) -> Result<Placement, String> {
    match name {
        "two-point" => Ok(Placement::TwoPoint),
        "segmented" => Ok(Placement::Segmented),
        "full" => Ok(Placement::FullTrajectory),
        other => Err(format!(
            "unknown placement {other:?} (two-point|segmented|full)"
        )),
    }
}

fn cmd_generate(raw: Vec<String>) -> CliResult {
    let a = Args::parse(raw, &["kind", "users", "routes", "stops", "seed", "out"])?;
    let kind = a.get("kind").unwrap_or("nyt");
    let users_n: usize = a.get_or("users", 50_000, "integer")?;
    let routes_n: usize = a.get_or("routes", 128, "integer")?;
    let stops: usize = a.get_or("stops", 32, "integer")?;
    let seed: u64 = a.get_or("seed", 1, "integer")?;
    let out = a.required("out")?;

    let (users, city) = match kind {
        "nyt" => (
            tq_datagen::taxi_trips(&tq_datagen::presets::ny_city(), users_n, seed),
            tq_datagen::presets::ny_city(),
        ),
        "nyf" => (
            tq_datagen::checkins(&tq_datagen::presets::ny_city(), users_n, seed),
            tq_datagen::presets::ny_city(),
        ),
        "bjg" => (
            tq_datagen::gps_traces(&tq_datagen::presets::bj_city(), users_n, seed),
            tq_datagen::presets::bj_city(),
        ),
        other => return Err(format!("unknown kind {other:?} (nyt|nyf|bjg)").into()),
    };
    let facilities = tq_datagen::bus_routes(
        &city,
        routes_n,
        stops,
        tq_datagen::presets::ROUTE_LENGTH,
        seed ^ 0xB05,
    );
    std::fs::write(out, snapshot::encode(&users, &facilities))?;
    println!(
        "wrote {out}: {} {kind} trajectories ({} points), {} routes × {} stops",
        users.len(),
        users.total_points(),
        facilities.len(),
        stops
    );
    Ok(())
}

fn cmd_import_taxi(raw: Vec<String>) -> CliResult {
    let a = Args::parse(raw, &["trips", "routes", "out"])?;
    let trips_path = a.required("trips")?;
    let routes_path = a.required("routes")?;
    let out = a.required("out")?;
    let trips_csv = std::fs::read_to_string(trips_path)?;
    let (users, proj) = tq_trajectory::io::parse_nyc_taxi_csv(&trips_csv)?;
    let routes_csv = std::fs::read_to_string(routes_path)?;
    let facilities = tq_trajectory::io::parse_route_stops_csv(&routes_csv, &proj)?;
    std::fs::write(out, snapshot::encode(&users, &facilities))?;
    println!(
        "wrote {out}: {} trips, {} routes (projected to metres around the data centroid)",
        users.len(),
        facilities.len()
    );
    Ok(())
}

fn cmd_stats(raw: Vec<String>) -> CliResult {
    let a = Args::parse(raw, &["beta"])?;
    let [path] = a.positional() else {
        return Err("stats needs one dataset file".into());
    };
    let beta: usize = a.get_or("beta", 64, "integer")?;
    let (users, facilities) = load(path)?;
    println!(
        "dataset: {} user trajectories ({} points, {} segments), {} facilities ({} stops)",
        users.len(),
        users.total_points(),
        users.total_segments(),
        facilities.len(),
        facilities.total_stops()
    );
    if let Some(mbr) = users.mbr() {
        println!(
            "extent:  {:.0} × {:.0} units",
            mbr.width(),
            mbr.height()
        );
    }
    let tree = TqTree::build(
        &users,
        TqTreeConfig::z_order(Placement::TwoPoint).with_beta(beta),
    );
    let s = tree.stats();
    println!(
        "TQ(Z):   {} nodes ({} leaves), height {}, {} items ({} inter-node), \
         max list {}, {} z-buckets, {:.1} MiB",
        s.nodes,
        s.leaves,
        s.height,
        s.items,
        s.internal_items,
        s.max_list,
        s.z_buckets,
        s.memory_bytes as f64 / (1024.0 * 1024.0)
    );
    println!("items per level: {:?}", s.items_per_level);
    Ok(())
}

fn cmd_topk(raw: Vec<String>) -> CliResult {
    let a = Args::parse(
        raw,
        &["k", "psi", "scenario", "placement", "method", "beta", "threads"],
    )?;
    let [path] = a.positional() else {
        return Err("topk needs one dataset file".into());
    };
    let k: usize = a.get_or("k", 8, "integer")?;
    let psi: f64 = a.get_or("psi", 200.0, "number")?;
    let scenario = scenario_of(a.get("scenario").unwrap_or("transit"))?;
    let placement = placement_of(a.get("placement").unwrap_or("two-point"))?;
    let beta: usize = a.get_or("beta", 64, "integer")?;
    let method = a.get("method").unwrap_or("tq-z");
    tq_core::set_threads(a.get_or("threads", 0, "integer")?);
    let (users, facilities) = load(path)?;
    let model = ServiceModel::new(scenario, psi);

    let t = std::time::Instant::now();
    let ranked = match method {
        "bl" => {
            BaselineIndex::build(&users)
                .top_k(&users, &model, &facilities, k)
                .ranked
        }
        "tq-b" => {
            let tree = TqTree::build(&users, TqTreeConfig::basic(placement).with_beta(beta));
            top_k_facilities(&tree, &users, &model, &facilities, k).ranked
        }
        "tq-z" => {
            let tree = TqTree::build(&users, TqTreeConfig::z_order(placement).with_beta(beta));
            top_k_facilities(&tree, &users, &model, &facilities, k).ranked
        }
        other => return Err(format!("unknown method {other:?} (tq-z|tq-b|bl)").into()),
    };
    let secs = t.elapsed().as_secs_f64();
    println!("kMaxRRST top-{k} ({method}, {scenario:?}, ψ={psi}) in {secs:.3}s:");
    for (rank, (id, value)) in ranked.iter().enumerate() {
        println!("  #{:<3} facility {:>5}   service {:>12.3}", rank + 1, id, value);
    }
    Ok(())
}

fn cmd_stream(raw: Vec<String>) -> CliResult {
    let a = Args::parse(
        raw,
        &[
            "kind", "users", "events", "batch", "expire", "routes", "stops", "k", "psi",
            "scenario", "placement", "beta", "seed", "threads", "verify",
        ],
    )?;
    let kind_name = a.get("kind").unwrap_or("nyt");
    let users_n: usize = a.get_or("users", 20_000, "integer")?;
    let events_n: usize = a.get_or("events", 2_000, "integer")?;
    let batch: usize = a.get_or("batch", 200, "integer")?;
    let expire: f64 = a.get_or("expire", 0.5, "number")?;
    let routes_n: usize = a.get_or("routes", 128, "integer")?;
    let stops: usize = a.get_or("stops", 16, "integer")?;
    let k: usize = a.get_or("k", 8, "integer")?;
    let psi: f64 = a.get_or("psi", tq_datagen::presets::DEFAULT_PSI, "number")?;
    let scenario = scenario_of(a.get("scenario").unwrap_or("transit"))?;
    // Multipoint kinds default to the placement that sees all their points
    // (two-point placement would evaluate trace endpoints only).
    let default_placement = match a.get("kind").unwrap_or("nyt") {
        "nyf" => "segmented",
        "bjg" => "full",
        _ => "two-point",
    };
    let placement = placement_of(a.get("placement").unwrap_or(default_placement))?;
    let beta: usize = a.get_or("beta", 64, "integer")?;
    let seed: u64 = a.get_or("seed", 1, "integer")?;
    let verify: bool = a.get_or("verify", false, "boolean")?;
    tq_core::set_threads(a.get_or("threads", 0, "integer")?);
    if batch == 0 {
        return Err("--batch must be positive".into());
    }
    if !(0.0..=1.0).contains(&expire) {
        return Err("--expire must be between 0 and 1".into());
    }

    let (city, kind) = match kind_name {
        "nyt" => (tq_datagen::presets::ny_city(), StreamKind::Taxi),
        "nyf" => (tq_datagen::presets::ny_city(), StreamKind::Checkins),
        "bjg" => (tq_datagen::presets::bj_city(), StreamKind::Gps),
        other => return Err(format!("unknown kind {other:?} (nyt|nyf|bjg)").into()),
    };
    let scenario_trace = tq_datagen::stream_scenario(&city, kind, users_n, events_n, expire, seed);
    let facilities = tq_datagen::bus_routes(
        &city,
        routes_n,
        stops,
        tq_datagen::presets::ROUTE_LENGTH,
        seed ^ 0xB05,
    );
    let model = ServiceModel::new(scenario, psi);
    let config = DynamicConfig {
        tree: TqTreeConfig::z_order(placement).with_beta(beta),
        ..DynamicConfig::default()
    };
    println!(
        "stream: {} initial {kind_name} trajectories, {} events ({} arrivals / {} expiries), \
         batches of {batch}, {} routes × {stops} stops",
        scenario_trace.initial.len(),
        scenario_trace.events.len(),
        scenario_trace.arrivals(),
        scenario_trace.expiries(),
        facilities.len(),
    );
    let t = std::time::Instant::now();
    let mut engine = DynamicEngine::new(
        scenario_trace.initial,
        facilities.clone(),
        model,
        config,
        scenario_trace.bounds,
    );
    println!("build:  index + initial evaluation in {:.3}s", t.elapsed().as_secs_f64());

    let mut apply_secs = 0.0f64;
    for (i, chunk) in scenario_trace.events.chunks(batch).enumerate() {
        let updates: Vec<Update> = chunk
            .iter()
            .map(|e| match e {
                StreamEvent::Arrive(t) => Update::Insert(t.clone()),
                StreamEvent::Expire(id) => Update::Remove(*id),
            })
            .collect();
        let t = std::time::Instant::now();
        let out = engine.apply(&updates)?;
        let secs = t.elapsed().as_secs_f64();
        apply_secs += secs;
        println!(
            "batch {:>3}: {:>4} events in {:>7.1}ms | {} live | facilities: \
             {} untouched, {} patched, {} reevaluated",
            i + 1,
            chunk.len(),
            secs * 1e3,
            engine.live_users(),
            out.untouched,
            out.patched,
            out.reevaluated,
        );
    }
    let s = engine.stats();
    println!(
        "totals: {} batches ({} inserts, {} removes) in {apply_secs:.3}s incremental",
        s.batches, s.inserts, s.removes
    );
    println!(
        "        rebuild-every-batch would evaluate {} facilities; the engine fully \
         re-evaluated {} ({:.1}% skipped, {:.1}% untouched outright)",
        s.rebuild_evaluations(),
        s.facilities_reevaluated,
        100.0 * s.skipped_fraction(),
        100.0 * s.untouched_fraction(),
    );
    println!("kMaxRRST top-{k} ({scenario:?}, ψ={psi}) over the final live set:");
    for (rank, (id, value)) in engine.top_k(k).iter().enumerate() {
        println!("  #{:<3} facility {:>5}   service {:>12.3}", rank + 1, id, value);
    }

    if verify {
        let t = std::time::Instant::now();
        let live = engine.live_set();
        let tree = TqTree::build_with_bounds(&live, config.tree, scenario_trace.bounds);
        let fresh = top_k_facilities(&tree, &live, &model, &facilities, k);
        let fresh_secs = t.elapsed().as_secs_f64();
        let got = engine.top_k(k);
        let ok = got.len() == fresh.ranked.len()
            && got
                .iter()
                .zip(&fresh.ranked)
                .all(|((_, gv), (_, fv))| gv.to_bits() == fv.to_bits());
        if ok {
            println!(
                "verify: OK — top-{k} bit-identical to a fresh build+query \
                 (rebuild took {fresh_secs:.3}s)"
            );
        } else {
            return Err(format!(
                "verify FAILED: incremental {got:?} vs fresh {:?}",
                fresh.ranked
            )
            .into());
        }
    }
    Ok(())
}

fn cmd_maxcov(raw: Vec<String>) -> CliResult {
    let a = Args::parse(
        raw,
        &["k", "psi", "scenario", "placement", "method", "beta", "k-prime", "threads"],
    )?;
    let [path] = a.positional() else {
        return Err("maxcov needs one dataset file".into());
    };
    let k: usize = a.get_or("k", 4, "integer")?;
    let psi: f64 = a.get_or("psi", 200.0, "number")?;
    let scenario = scenario_of(a.get("scenario").unwrap_or("transit"))?;
    let placement = placement_of(a.get("placement").unwrap_or("two-point"))?;
    let beta: usize = a.get_or("beta", 64, "integer")?;
    let method = a.get("method").unwrap_or("two-step");
    tq_core::set_threads(a.get_or("threads", 0, "integer")?);
    let (users, facilities) = load(path)?;
    let model = ServiceModel::new(scenario, psi);
    let tree = TqTree::build(&users, TqTreeConfig::z_order(placement).with_beta(beta));

    let t = std::time::Instant::now();
    let out = match method {
        "greedy" => {
            let table = ServedTable::build(&tree, &users, &model, &facilities);
            greedy(&table, &users, &model, k)
        }
        "two-step" => {
            let kp: usize = a.get_or("k-prime", (4 * k).max(32), "integer")?;
            two_step_greedy(&tree, &users, &model, &facilities, k, Some(kp))
        }
        "genetic" => {
            let table = ServedTable::build(&tree, &users, &model, &facilities);
            genetic(&table, &users, &model, k, &GeneticConfig::default())
        }
        "exact" => {
            let table = ServedTable::build(&tree, &users, &model, &facilities);
            exact(&table, &users, &model, k, Some(100_000_000))
                .ok_or("exact search exceeded its node budget; reduce --k or facilities")?
        }
        other => {
            return Err(
                format!("unknown method {other:?} (greedy|two-step|genetic|exact)").into(),
            )
        }
    };
    let secs = t.elapsed().as_secs_f64();
    println!(
        "MaxkCovRST k={k} ({method}, {scenario:?}, ψ={psi}) in {secs:.3}s: \
         combined service {:.3}, {} users served",
        out.value, out.users_served
    );
    println!("  facilities: {:?}", out.chosen);
    Ok(())
}
