//! `tq` — trajectory coverage queries from the command line.
//!
//! ```text
//! tq generate --kind nyt --users 50000 --routes 128 --stops 32 --out city.tqd
//! tq import-taxi --trips trips.csv --routes stops.csv --out nyc.tqd
//! tq stats   city.tqd
//! tq topk    city.tqd --k 8 --psi 200 --scenario transit
//! tq maxcov  city.tqd --k 4 --psi 200 --method two-step
//! tq stream  --kind nyt --users 20000 --events 2000 --batch 200 --k 8
//! tq serve   --clients 4 --duration 5 --users 20000 --batch 200
//! ```
//!
//! Every query command runs through the unified [`tq_core::engine::Engine`]
//! / [`tq_core::engine::Query`] API, so `--backend`/`--method` switch
//! between the TQ-tree variants and the BL baseline without touching the
//! query logic, typed [`tq_core::engine::EngineError`]s become non-zero
//! exit codes with readable messages, and each answer prints its
//! [`tq_core::engine::Explain`] report. `tq <command> --help` prints
//! per-command flag documentation (generated from the same tables that
//! drive parsing — see [`args`]).
//!
//! Datasets travel as `.tqd` snapshot files (`tq-trajectory::snapshot`);
//! *engines* travel as `tq-store` directories (arena snapshot + update
//! WAL): `tq save` persists a built engine, `tq load` cold-starts from
//! one (replaying the WAL tail), `tq inspect` diagnoses store files from
//! the shell, and `tq stream --wal` / `tq serve --persist` run their
//! update streams durably.

mod args;

use args::{global_usage, Args, Command, Flag};
use tq_core::engine::{Algorithm, Engine, EngineBuilder, Query};

use tq_core::serve::{serve, serve_sharded, ServeConfig, Workload};
use tq_core::service::{Scenario, ServiceModel};
use tq_core::tqtree::{Placement, TqTree, TqTreeConfig};
use tq_core::StoreConfig;
use tq_datagen::StreamKind;
use tq_trajectory::{snapshot, FacilitySet, UserSet};

const GENERATE: Command = Command {
    name: "generate",
    summary: "synthesize a seeded dataset file",
    positional: "",
    flags: &[
        Flag { name: "kind", meta: "nyt|nyf|bjg", default: "nyt", help: "taxi trips / check-ins / GPS traces" },
        Flag { name: "users", meta: "N", default: "50000", help: "number of user trajectories" },
        Flag { name: "routes", meta: "N", default: "128", help: "number of candidate routes" },
        Flag { name: "stops", meta: "S", default: "32", help: "stops per route" },
        Flag { name: "seed", meta: "SEED", default: "1", help: "RNG seed (fully deterministic)" },
        Flag { name: "out", meta: "FILE", default: "", help: "output .tqd snapshot path" },
    ],
};

const IMPORT_TAXI: Command = Command {
    name: "import-taxi",
    summary: "import NYC TLC trips + route stops",
    positional: "",
    flags: &[
        Flag { name: "trips", meta: "FILE", default: "", help: "TLC yellow-taxi CSV (2015 schema)" },
        Flag { name: "routes", meta: "FILE", default: "", help: "route_id,seq,lat,lon stops CSV" },
        Flag { name: "out", meta: "FILE", default: "", help: "output .tqd snapshot path" },
    ],
};

const STATS: Command = Command {
    name: "stats",
    summary: "dataset and index statistics",
    positional: "FILE",
    flags: &[
        Flag { name: "beta", meta: "B", default: "64", help: "TQ-tree bucket size β" },
    ],
};

const TOPK: Command = Command {
    name: "topk",
    summary: "kMaxRRST: the k individually best facilities",
    positional: "FILE",
    flags: &[
        Flag { name: "k", meta: "K", default: "8", help: "result count" },
        Flag { name: "psi", meta: "METRES", default: "200", help: "service radius ψ" },
        Flag { name: "scenario", meta: "transit|points|length", default: "transit", help: "service semantics (paper scenarios 1-3)" },
        Flag { name: "placement", meta: "two-point|segmented|full", default: "two-point", help: "trajectory-to-item mapping (TQ / S-TQ / F-TQ)" },
        Flag { name: "backend", meta: "tq-z|tq-b|bl", default: "tq-z", help: "index backend: TQ(Z), TQ(B) or the BL baseline" },
        Flag { name: "beta", meta: "B", default: "64", help: "TQ-tree bucket size β" },
        Flag { name: "threads", meta: "N", default: "0", help: "worker threads (0 = one per core)" },
    ],
};

const MAXCOV: Command = Command {
    name: "maxcov",
    summary: "MaxkCovRST: the size-k subset with the best combined service",
    positional: "FILE",
    flags: &[
        Flag { name: "k", meta: "K", default: "4", help: "subset size" },
        Flag { name: "psi", meta: "METRES", default: "200", help: "service radius ψ" },
        Flag { name: "scenario", meta: "transit|points|length", default: "transit", help: "service semantics (paper scenarios 1-3)" },
        Flag { name: "placement", meta: "two-point|segmented|full", default: "two-point", help: "trajectory-to-item mapping (TQ / S-TQ / F-TQ)" },
        Flag { name: "method", meta: "greedy|two-step|genetic|exact", default: "two-step", help: "MaxkCovRST solver" },
        Flag { name: "backend", meta: "tq-z|tq-b|bl", default: "tq-z", help: "index backend: TQ(Z), TQ(B) or the BL baseline" },
        Flag { name: "beta", meta: "B", default: "64", help: "TQ-tree bucket size β" },
        Flag { name: "k-prime", meta: "K'", default: "max(4k, 32)", help: "two-step candidate-pool size k′" },
        Flag { name: "seed", meta: "SEED", default: "0x5EED", help: "genetic-algorithm RNG seed" },
        Flag { name: "threads", meta: "N", default: "0", help: "worker threads (0 = one per core)" },
    ],
};

const SAVE: Command = Command {
    name: "save",
    summary: "build an engine over a dataset and persist it to a store directory",
    positional: "FILE",
    flags: &[
        Flag { name: "store", meta: "DIR", default: "", help: "store directory to create (must not already hold one)" },
        Flag { name: "psi", meta: "METRES", default: "200", help: "service radius ψ" },
        Flag { name: "scenario", meta: "transit|points|length", default: "transit", help: "service semantics (paper scenarios 1-3)" },
        Flag { name: "placement", meta: "two-point|segmented|full", default: "two-point", help: "trajectory-to-item mapping (TQ / S-TQ / F-TQ)" },
        Flag { name: "backend", meta: "tq-z|tq-b|bl", default: "tq-z", help: "index backend: TQ(Z), TQ(B) or the BL baseline" },
        Flag { name: "beta", meta: "B", default: "64", help: "TQ-tree bucket size β" },
    ],
};

const LOAD: Command = Command {
    name: "load",
    summary: "cold-start an engine from a store (newest snapshot + WAL replay)",
    positional: "",
    flags: &[
        Flag { name: "store", meta: "DIR", default: "", help: "store directory written by save / persist_to" },
        Flag { name: "k", meta: "K", default: "0", help: "also answer a top-k query from the loaded engine (0 = summary only)" },
        Flag { name: "threads", meta: "N", default: "0", help: "worker threads (0 = one per core)" },
    ],
};

const INSPECT: Command = Command {
    name: "inspect",
    summary: "describe a store directory, snapshot file or WAL file (even corrupt ones)",
    positional: "PATH",
    flags: &[],
};

const STREAM: Command = Command {
    name: "stream",
    summary: "dynamic workload: batched arrivals/expiries, incremental answers",
    positional: "",
    flags: &[
        Flag { name: "connect", meta: "HOST:PORT", default: "", help: "stream the batches to a tqd daemon instead of applying in-process (expiry ids refer to the daemon's dataset — seed it from the same generate flags)" },
        Flag { name: "wal", meta: "DIR", default: "", help: "persist the run: store directory for the snapshot + update WAL" },
        Flag { name: "kind", meta: "nyt|nyf|bjg", default: "nyt", help: "taxi trips / check-ins / GPS traces" },
        Flag { name: "users", meta: "N", default: "20000", help: "initial trajectory count" },
        Flag { name: "events", meta: "N", default: "2000", help: "total arrival/expiry events" },
        Flag { name: "batch", meta: "B", default: "200", help: "events per applied batch" },
        Flag { name: "expire", meta: "RATIO", default: "0.5", help: "expiry share of events (0..1)" },
        Flag { name: "routes", meta: "N", default: "128", help: "number of candidate routes" },
        Flag { name: "stops", meta: "S", default: "16", help: "stops per route" },
        Flag { name: "k", meta: "K", default: "8", help: "top-k reported after the stream" },
        Flag { name: "psi", meta: "METRES", default: "preset", help: "service radius ψ" },
        Flag { name: "scenario", meta: "transit|points|length", default: "transit", help: "service semantics" },
        Flag { name: "placement", meta: "two-point|segmented|full", default: "per kind", help: "defaults to the variant that sees all of a kind's points" },
        Flag { name: "beta", meta: "B", default: "64", help: "TQ-tree bucket size β" },
        Flag { name: "seed", meta: "SEED", default: "1", help: "trace RNG seed" },
        Flag { name: "threads", meta: "N", default: "0", help: "worker threads (0 = one per core)" },
        Flag { name: "verify", meta: "true|false", default: "false", help: "cross-check the final top-k against a fresh build" },
    ],
};

const SERVE: Command = Command {
    name: "serve",
    summary: "concurrent serving: N reader threads over snapshots + one update writer",
    positional: "",
    flags: &[
        Flag { name: "persist", meta: "DIR", default: "", help: "durable serving: store directory (WAL per batch + final checkpoint)" },
        Flag { name: "shards", meta: "N", default: "1", help: "partition users across N engines; queries scatter–gather, bit-identical to 1" },
        Flag { name: "clients", meta: "N", default: "4", help: "concurrent reader (client) threads" },
        Flag { name: "duration", meta: "SECONDS", default: "5", help: "how long to serve the mixed workload" },
        Flag { name: "kind", meta: "nyt|nyf|bjg", default: "nyt", help: "taxi trips / check-ins / GPS traces" },
        Flag { name: "users", meta: "N", default: "20000", help: "initial trajectory count" },
        Flag { name: "events", meta: "N", default: "20000", help: "arrival/expiry events available to the writer" },
        Flag { name: "batch", meta: "B", default: "200", help: "events per applied update batch" },
        Flag { name: "expire", meta: "RATIO", default: "0.5", help: "expiry share of events (0..1)" },
        Flag { name: "pause", meta: "MILLIS", default: "0", help: "writer pause between update batches" },
        Flag { name: "routes", meta: "N", default: "128", help: "number of candidate routes" },
        Flag { name: "stops", meta: "S", default: "16", help: "stops per route" },
        Flag { name: "k", meta: "K", default: "8", help: "k of the scripted top-k / max-cov queries" },
        Flag { name: "psi", meta: "METRES", default: "preset", help: "service radius ψ" },
        Flag { name: "scenario", meta: "transit|points|length", default: "transit", help: "service semantics" },
        Flag { name: "placement", meta: "two-point|segmented|full", default: "per kind", help: "defaults to the variant that sees all of a kind's points" },
        Flag { name: "beta", meta: "B", default: "64", help: "TQ-tree bucket size β" },
        Flag { name: "seed", meta: "SEED", default: "1", help: "trace RNG seed" },
        Flag { name: "client-threads", meta: "N", default: "0", help: "evaluation threads per client (0 = cores/(clients+1))" },
    ],
};

const QUERY: Command = Command {
    name: "query",
    summary: "run one query against a tqd daemon",
    positional: "",
    flags: &[
        Flag { name: "connect", meta: "HOST:PORT", default: "", help: "tqd address" },
        Flag { name: "k", meta: "K", default: "8", help: "result count / subset size" },
        Flag { name: "mode", meta: "topk|maxcov", default: "topk", help: "kMaxRRST ranking or MaxkCovRST subset" },
        Flag { name: "method", meta: "greedy|two-step|genetic|exact", default: "two-step", help: "MaxkCovRST solver (maxcov mode)" },
    ],
};

const STATUS: Command = Command {
    name: "status",
    summary: "report a tqd daemon's serving status",
    positional: "",
    flags: &[
        Flag { name: "connect", meta: "HOST:PORT", default: "", help: "tqd address" },
    ],
};

const METRICS: Command = Command {
    name: "metrics",
    summary: "dump a tqd daemon's metrics (counters, latency quantiles, slow queries)",
    positional: "",
    flags: &[
        Flag { name: "connect", meta: "HOST:PORT", default: "", help: "tqd address" },
        Flag { name: "watch", meta: "SECS", default: "0", help: "re-poll every SECS seconds, top-style (0 = print once)" },
        Flag { name: "grep", meta: "SUBSTR", default: "", help: "only print lines containing SUBSTR" },
    ],
};

const SHUTDOWN: Command = Command {
    name: "shutdown",
    summary: "gracefully stop a tqd daemon (drain + final checkpoint)",
    positional: "",
    flags: &[
        Flag { name: "connect", meta: "HOST:PORT", default: "", help: "tqd address" },
    ],
};

const PROMOTE: Command = Command {
    name: "promote",
    summary: "promote a follower tqd daemon to primary (it accepts writes from the ack on)",
    positional: "",
    flags: &[
        Flag { name: "connect", meta: "HOST:PORT", default: "", help: "follower tqd address" },
    ],
};

const COMMANDS: [&Command; 15] = [
    &GENERATE,
    &IMPORT_TAXI,
    &STATS,
    &TOPK,
    &MAXCOV,
    &SAVE,
    &LOAD,
    &INSPECT,
    &STREAM,
    &SERVE,
    &QUERY,
    &STATUS,
    &METRICS,
    &SHUTDOWN,
    &PROMOTE,
];

fn main() {
    let mut argv = std::env::args().skip(1);
    let cmd = argv.next().unwrap_or_else(|| "help".into());
    let rest: Vec<String> = argv.collect();
    let result = match cmd.as_str() {
        "generate" => cmd_generate(rest),
        "import-taxi" => cmd_import_taxi(rest),
        "stats" => cmd_stats(rest),
        "topk" => cmd_topk(rest),
        "maxcov" => cmd_maxcov(rest),
        "save" => cmd_save(rest),
        "load" => cmd_load(rest),
        "inspect" => cmd_inspect(rest),
        "stream" => cmd_stream(rest),
        "serve" => cmd_serve(rest),
        "query" => cmd_query(rest),
        "status" => cmd_status(rest),
        "metrics" => cmd_metrics(rest),
        "shutdown" => cmd_shutdown(rest),
        "promote" => cmd_promote(rest),
        "help" | "--help" | "-h" => {
            print!("{}", global_usage(&COMMANDS));
            Ok(())
        }
        other => {
            // Unknown commands get the full synopsis, not just an error.
            eprint!("{}", global_usage(&COMMANDS));
            Err(format!("unknown command {other:?}").into())
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

/// Parses against a command table; `Ok(None)` means help was printed.
fn parse(cmd: &Command, raw: Vec<String>) -> Result<Option<Args>, Box<dyn std::error::Error>> {
    match cmd.parse(raw)? {
        Some(a) => Ok(Some(a)),
        None => {
            print!("{}", cmd.usage());
            Ok(None)
        }
    }
}

fn load(path: &str) -> Result<(UserSet, FacilitySet), Box<dyn std::error::Error>> {
    let raw = std::fs::read(path)?;
    Ok(snapshot::decode(raw.into())?)
}

fn scenario_of(name: &str) -> Result<Scenario, String> {
    match name {
        "transit" => Ok(Scenario::Transit),
        "points" => Ok(Scenario::PointCount),
        "length" => Ok(Scenario::Length),
        other => Err(format!("unknown scenario {other:?} (transit|points|length)")),
    }
}

fn placement_of(name: &str) -> Result<Placement, String> {
    match name {
        "two-point" => Ok(Placement::TwoPoint),
        "segmented" => Ok(Placement::Segmented),
        "full" => Ok(Placement::FullTrajectory),
        other => Err(format!(
            "unknown placement {other:?} (two-point|segmented|full)"
        )),
    }
}

/// Applies the `--backend` flag to an [`EngineBuilder`].
fn backend_of(
    builder: EngineBuilder,
    name: &str,
    placement: Placement,
    beta: usize,
) -> Result<EngineBuilder, String> {
    match name {
        "tq-z" => Ok(builder.tree_config(TqTreeConfig::z_order(placement).with_beta(beta))),
        "tq-b" => Ok(builder.tree_config(TqTreeConfig::basic(placement).with_beta(beta))),
        "bl" => Ok(builder.baseline()),
        other => Err(format!("unknown backend {other:?} (tq-z|tq-b|bl)")),
    }
}

fn cmd_generate(raw: Vec<String>) -> CliResult {
    let Some(a) = parse(&GENERATE, raw)? else { return Ok(()) };
    let kind = a.get("kind").unwrap_or("nyt");
    let users_n: usize = a.get_or("users", 50_000, "integer")?;
    let routes_n: usize = a.get_or("routes", 128, "integer")?;
    let stops: usize = a.get_or("stops", 32, "integer")?;
    let seed: u64 = a.get_or("seed", 1, "integer")?;
    let out = a.required("out")?;

    let (users, city) = match kind {
        "nyt" => (
            tq_datagen::taxi_trips(&tq_datagen::presets::ny_city(), users_n, seed),
            tq_datagen::presets::ny_city(),
        ),
        "nyf" => (
            tq_datagen::checkins(&tq_datagen::presets::ny_city(), users_n, seed),
            tq_datagen::presets::ny_city(),
        ),
        "bjg" => (
            tq_datagen::gps_traces(&tq_datagen::presets::bj_city(), users_n, seed),
            tq_datagen::presets::bj_city(),
        ),
        other => return Err(format!("unknown kind {other:?} (nyt|nyf|bjg)").into()),
    };
    let facilities = tq_datagen::bus_routes(
        &city,
        routes_n,
        stops,
        tq_datagen::presets::ROUTE_LENGTH,
        seed ^ 0xB05,
    );
    std::fs::write(out, snapshot::encode(&users, &facilities))?;
    println!(
        "wrote {out}: {} {kind} trajectories ({} points), {} routes × {} stops",
        users.len(),
        users.total_points(),
        facilities.len(),
        stops
    );
    Ok(())
}

fn cmd_import_taxi(raw: Vec<String>) -> CliResult {
    let Some(a) = parse(&IMPORT_TAXI, raw)? else { return Ok(()) };
    let trips_path = a.required("trips")?;
    let routes_path = a.required("routes")?;
    let out = a.required("out")?;
    let trips_csv = std::fs::read_to_string(trips_path)?;
    let (users, proj) = tq_trajectory::io::parse_nyc_taxi_csv(&trips_csv)?;
    let routes_csv = std::fs::read_to_string(routes_path)?;
    let facilities = tq_trajectory::io::parse_route_stops_csv(&routes_csv, &proj)?;
    std::fs::write(out, snapshot::encode(&users, &facilities))?;
    println!(
        "wrote {out}: {} trips, {} routes (projected to metres around the data centroid)",
        users.len(),
        facilities.len()
    );
    Ok(())
}

fn cmd_stats(raw: Vec<String>) -> CliResult {
    let Some(a) = parse(&STATS, raw)? else { return Ok(()) };
    let [path] = a.positional() else {
        return Err("stats needs one dataset file".into());
    };
    let beta: usize = a.get_or("beta", 64, "integer")?;
    let (users, facilities) = load(path)?;
    println!(
        "dataset: {} user trajectories ({} points, {} segments), {} facilities ({} stops)",
        users.len(),
        users.total_points(),
        users.total_segments(),
        facilities.len(),
        facilities.total_stops()
    );
    if let Some(mbr) = users.mbr() {
        println!(
            "extent:  {:.0} × {:.0} units",
            mbr.width(),
            mbr.height()
        );
    }
    let tree = TqTree::build(
        &users,
        TqTreeConfig::z_order(Placement::TwoPoint).with_beta(beta),
    );
    let s = tree.stats();
    println!(
        "TQ(Z):   {} nodes ({} leaves), height {}, {} items ({} inter-node), \
         max list {}, {} z-buckets, {:.1} MiB",
        s.nodes,
        s.leaves,
        s.height,
        s.items,
        s.internal_items,
        s.max_list,
        s.z_buckets,
        s.memory_bytes as f64 / (1024.0 * 1024.0)
    );
    println!("items per level: {:?}", s.items_per_level);
    Ok(())
}

fn cmd_topk(raw: Vec<String>) -> CliResult {
    let Some(a) = parse(&TOPK, raw)? else { return Ok(()) };
    let [path] = a.positional() else {
        return Err("topk needs one dataset file".into());
    };
    let k: usize = a.get_or("k", 8, "integer")?;
    let psi: f64 = a.get_or("psi", 200.0, "number")?;
    let scenario = scenario_of(a.get("scenario").unwrap_or("transit"))?;
    let placement = placement_of(a.get("placement").unwrap_or("two-point"))?;
    let beta: usize = a.get_or("beta", 64, "integer")?;
    let backend = a.get("backend").unwrap_or("tq-z");
    let threads: usize = a.get_or("threads", 0, "integer")?;
    tq_core::set_threads(threads);
    let (users, facilities) = load(path)?;
    let model = ServiceModel::new(scenario, psi);

    let builder = Engine::builder(model).users(users).facilities(facilities);
    let mut engine = backend_of(builder, backend, placement, beta)?.build()?;
    let answer = engine.run(Query::top_k(k))?;
    println!(
        "kMaxRRST top-{k} ({backend}, {scenario:?}, ψ={psi}) in {:.3}s:",
        answer.explain.wall.as_secs_f64()
    );
    for (rank, (id, value)) in answer.ranked().iter().enumerate() {
        println!("  #{:<3} facility {:>5}   service {:>12.3}", rank + 1, id, value);
    }
    println!("explain: {}", answer.explain);
    Ok(())
}

fn cmd_maxcov(raw: Vec<String>) -> CliResult {
    let Some(a) = parse(&MAXCOV, raw)? else { return Ok(()) };
    let [path] = a.positional() else {
        return Err("maxcov needs one dataset file".into());
    };
    let k: usize = a.get_or("k", 4, "integer")?;
    let psi: f64 = a.get_or("psi", 200.0, "number")?;
    let scenario = scenario_of(a.get("scenario").unwrap_or("transit"))?;
    let placement = placement_of(a.get("placement").unwrap_or("two-point"))?;
    let beta: usize = a.get_or("beta", 64, "integer")?;
    let method = a.get("method").unwrap_or("two-step");
    let backend = a.get("backend").unwrap_or("tq-z");
    tq_core::set_threads(a.get_or("threads", 0, "integer")?);
    let (users, facilities) = load(path)?;
    let model = ServiceModel::new(scenario, psi);

    let builder = Engine::builder(model).users(users).facilities(facilities);
    let mut engine = backend_of(builder, backend, placement, beta)?.build()?;
    let mut query = Query::max_cov(k);
    query = match method {
        "greedy" => query.algorithm(Algorithm::Greedy),
        "two-step" => {
            let kp: usize = a.get_or("k-prime", (4 * k).max(32), "integer")?;
            query.algorithm(Algorithm::TwoStep).k_prime(kp)
        }
        "genetic" => {
            let seed: u64 = a.get_or("seed", 0x5EED, "integer")?;
            query.algorithm(Algorithm::Genetic).seed(seed)
        }
        "exact" => query.algorithm(Algorithm::Exact),
        other => {
            return Err(
                format!("unknown method {other:?} (greedy|two-step|genetic|exact)").into(),
            )
        }
    };
    let answer = engine.run(query)?;
    let out = answer.cover();
    println!(
        "MaxkCovRST k={k} ({method}, {backend}, {scenario:?}, ψ={psi}) in {:.3}s: \
         combined service {:.3}, {} users served",
        answer.explain.wall.as_secs_f64(),
        out.value,
        out.users_served
    );
    println!("  facilities: {:?}", out.chosen);
    println!("explain: {}", answer.explain);
    Ok(())
}

fn cmd_save(raw: Vec<String>) -> CliResult {
    let Some(a) = parse(&SAVE, raw)? else { return Ok(()) };
    let [path] = a.positional() else {
        return Err("save needs one dataset file".into());
    };
    let store = a.required("store")?;
    let psi: f64 = a.get_or("psi", 200.0, "number")?;
    let scenario = scenario_of(a.get("scenario").unwrap_or("transit"))?;
    let placement = placement_of(a.get("placement").unwrap_or("two-point"))?;
    let backend = a.get("backend").unwrap_or("tq-z");
    let beta: usize = a.get_or("beta", 64, "integer")?;
    let (users, facilities) = load(path)?;
    let n_users = users.len();
    let n_facilities = facilities.len();

    let t = std::time::Instant::now();
    let builder = Engine::builder(ServiceModel::new(scenario, psi))
        .users(users)
        .facilities(facilities)
        .persist_to(store);
    let engine = backend_of(builder, backend, placement, beta)?.build()?;
    println!(
        "saved epoch {}: {} trajectories, {} facilities ({backend}, {scenario:?}, ψ={psi}) \
         in {:.3}s",
        engine.epoch(),
        n_users,
        n_facilities,
        t.elapsed().as_secs_f64()
    );
    if let Some(status) = engine.persistence() {
        println!("{status}");
    }
    println!("reload it with: tq load --store {store}");
    Ok(())
}

fn cmd_load(raw: Vec<String>) -> CliResult {
    let Some(a) = parse(&LOAD, raw)? else { return Ok(()) };
    let store = a.required("store")?;
    let k: usize = a.get_or("k", 0, "integer")?;
    tq_core::set_threads(a.get_or("threads", 0, "integer")?);

    let t = std::time::Instant::now();
    let mut engine = Engine::open(store)?;
    let load_secs = t.elapsed().as_secs_f64();
    println!(
        "loaded {} in {load_secs:.3}s: epoch {}, {} backend, {} live of {} trajectories, \
         {} facilities",
        store,
        engine.epoch(),
        engine.backend().kind(),
        engine.live_users(),
        engine.users().len(),
        engine.facilities().len(),
    );
    if let Some(status) = engine.persistence() {
        println!("{status}");
    }
    if k > 0 {
        let answer = engine.run(Query::top_k(k))?;
        println!("kMaxRRST top-{k} from the recovered epoch:");
        for (rank, (id, value)) in answer.ranked().iter().enumerate() {
            println!("  #{:<3} facility {:>5}   service {:>12.3}", rank + 1, id, value);
        }
        println!("explain: {}", answer.explain);
    }
    Ok(())
}

fn cmd_inspect(raw: Vec<String>) -> CliResult {
    let Some(a) = parse(&INSPECT, raw)? else { return Ok(()) };
    let [path] = a.positional() else {
        return Err("inspect needs one path (store directory, .tqs or .tql file)".into());
    };
    print!("{}", tq_store::inspect::report(std::path::Path::new(path))?);
    Ok(())
}

fn cmd_stream(raw: Vec<String>) -> CliResult {
    let Some(a) = parse(&STREAM, raw)? else { return Ok(()) };
    let kind_name = a.get("kind").unwrap_or("nyt");
    let users_n: usize = a.get_or("users", 20_000, "integer")?;
    let events_n: usize = a.get_or("events", 2_000, "integer")?;
    let batch: usize = a.get_or("batch", 200, "integer")?;
    let expire: f64 = a.get_or("expire", 0.5, "number")?;
    let routes_n: usize = a.get_or("routes", 128, "integer")?;
    let stops: usize = a.get_or("stops", 16, "integer")?;
    let k: usize = a.get_or("k", 8, "integer")?;
    let psi: f64 = a.get_or("psi", tq_datagen::presets::DEFAULT_PSI, "number")?;
    let scenario = scenario_of(a.get("scenario").unwrap_or("transit"))?;
    // Multipoint kinds default to the placement that sees all their points
    // (two-point placement would evaluate trace endpoints only).
    let default_placement = match kind_name {
        "nyf" => "segmented",
        "bjg" => "full",
        _ => "two-point",
    };
    let placement = placement_of(a.get("placement").unwrap_or(default_placement))?;
    let beta: usize = a.get_or("beta", 64, "integer")?;
    let seed: u64 = a.get_or("seed", 1, "integer")?;
    let verify: bool = a.get_or("verify", false, "boolean")?;
    tq_core::set_threads(a.get_or("threads", 0, "integer")?);
    if batch == 0 {
        return Err("--batch must be positive".into());
    }
    if !(0.0..=1.0).contains(&expire) {
        return Err("--expire must be between 0 and 1".into());
    }

    let (city, kind) = match kind_name {
        "nyt" => (tq_datagen::presets::ny_city(), StreamKind::Taxi),
        "nyf" => (tq_datagen::presets::ny_city(), StreamKind::Checkins),
        "bjg" => (tq_datagen::presets::bj_city(), StreamKind::Gps),
        other => return Err(format!("unknown kind {other:?} (nyt|nyf|bjg)").into()),
    };
    let scenario_trace = tq_datagen::stream_scenario(&city, kind, users_n, events_n, expire, seed);
    let facilities = tq_datagen::bus_routes(
        &city,
        routes_n,
        stops,
        tq_datagen::presets::ROUTE_LENGTH,
        seed ^ 0xB05,
    );
    let model = ServiceModel::new(scenario, psi);
    let tree_cfg = TqTreeConfig::z_order(placement).with_beta(beta);
    println!(
        "stream: {} initial {kind_name} trajectories, {} events ({} arrivals / {} expiries), \
         batches of {batch}, {} routes × {stops} stops",
        scenario_trace.initial.len(),
        scenario_trace.events.len(),
        scenario_trace.arrivals(),
        scenario_trace.expiries(),
        facilities.len(),
    );
    let batches = scenario_trace.update_batches(batch);
    if let Some(addr) = a.get("connect") {
        return stream_remote(addr, &batches, k);
    }
    let t = std::time::Instant::now();
    let mut builder = Engine::builder(model)
        .users(scenario_trace.initial)
        .facilities(facilities.clone())
        .tree_config(tree_cfg)
        .bounds(scenario_trace.bounds);
    if let Some(dir) = a.get("wal") {
        builder = builder.persist_to(dir);
    }
    let mut engine = builder.build()?;
    // Seed the served-table memo so every batch maintains it incrementally
    // instead of the final query paying one full evaluation.
    engine.warm();
    println!("build:  index + initial evaluation in {:.3}s", t.elapsed().as_secs_f64());

    let mut apply_secs = 0.0f64;
    for (i, updates) in batches.iter().enumerate() {
        let t = std::time::Instant::now();
        let out = engine.apply(updates)?;
        let secs = t.elapsed().as_secs_f64();
        apply_secs += secs;
        println!(
            "batch {:>3}: {:>4} events in {:>7.1}ms | {} live | facilities: \
             {} untouched, {} patched, {} reevaluated",
            i + 1,
            updates.len(),
            secs * 1e3,
            engine.live_users(),
            out.untouched,
            out.patched,
            out.reevaluated,
        );
    }
    let s = *engine.stats();
    println!(
        "totals: {} batches ({} inserts, {} removes) in {apply_secs:.3}s incremental",
        s.batches, s.inserts, s.removes
    );
    if let Some(status) = engine.persistence() {
        println!(
            "durable: {status} — every batch was WAL-logged before publishing; \
             `tq load --store {}` replays the tail",
            status.dir.display()
        );
    }
    println!(
        "        rebuild-every-batch would evaluate {} facilities; the engine fully \
         re-evaluated {} ({:.1}% skipped, {:.1}% untouched outright)",
        s.rebuild_evaluations(),
        s.facilities_reevaluated,
        100.0 * s.skipped_fraction(),
        100.0 * s.untouched_fraction(),
    );
    let answer = engine.run(Query::top_k(k))?;
    println!("kMaxRRST top-{k} ({scenario:?}, ψ={psi}) over the final live set:");
    for (rank, (id, value)) in answer.ranked().iter().enumerate() {
        println!("  #{:<3} facility {:>5}   service {:>12.3}", rank + 1, id, value);
    }
    println!(
        "explain: {} (answered from the incrementally maintained table)",
        answer.explain
    );

    if verify {
        let t = std::time::Instant::now();
        let mut fresh = Engine::builder(model)
            .users(engine.live_set())
            .facilities(facilities)
            .tree_config(tree_cfg)
            .bounds(scenario_trace.bounds)
            .build()?;
        let want = fresh.run(Query::top_k(k))?;
        let fresh_secs = t.elapsed().as_secs_f64();
        let got = answer.ranked();
        let ok = got.len() == want.ranked().len()
            && got
                .iter()
                .zip(want.ranked())
                .all(|((_, gv), (_, fv))| gv.to_bits() == fv.to_bits());
        if ok {
            println!(
                "verify: OK — top-{k} bit-identical to a fresh build+query \
                 (rebuild took {fresh_secs:.3}s)"
            );
        } else {
            return Err(format!(
                "verify FAILED: incremental {got:?} vs fresh {:?}",
                want.ranked()
            )
            .into());
        }
    }
    Ok(())
}

/// The `stream --connect` path: ship each update batch to a tqd daemon as
/// an `apply` frame and keep going past per-batch engine rejections (a
/// rejected batch leaves the daemon's engine and WAL untouched).
fn stream_remote(
    addr: &str,
    batches: &[Vec<tq_core::dynamic::Update>],
    k: usize,
) -> CliResult {
    let mut client = tq_net::Client::connect(addr)?;
    let info = client.info().clone();
    println!(
        "connected to {addr}: epoch {}, {} backend, {} live of {} trajectories, durable {}",
        info.epoch, info.backend, info.live_users, info.users, info.durable
    );
    let (mut acked, mut rejected) = (0usize, 0usize);
    for (i, updates) in batches.iter().enumerate() {
        let t = std::time::Instant::now();
        match client.apply(updates.clone()) {
            Ok(ack) => {
                acked += 1;
                let out = ack.outcome.unwrap_or_default();
                println!(
                    "batch {:>3}: {:>4} events in {:>7.1}ms | epoch {:>4} | \
                     {} inserted, {} removed | {} wal batches pending",
                    i + 1,
                    updates.len(),
                    t.elapsed().as_secs_f64() * 1e3,
                    ack.epoch,
                    out.inserted.len(),
                    out.removed,
                    ack.wal_batches,
                );
            }
            Err(tq_net::NetError::Remote(e)) => {
                rejected += 1;
                println!("batch {:>3}: rejected by the daemon ({e}); continuing", i + 1);
            }
            Err(e) => return Err(e.into()),
        }
    }
    println!("totals: {acked} batches acked, {rejected} rejected");
    let answer = client.query(Query::top_k(k))?;
    println!("kMaxRRST top-{k} at the daemon's epoch:");
    for (rank, (id, value)) in answer.ranked().iter().enumerate() {
        println!("  #{:<3} facility {:>5}   service {:>12.3}", rank + 1, id, value);
    }
    println!("explain: {}", answer.explain);
    Ok(())
}

fn cmd_query(raw: Vec<String>) -> CliResult {
    let Some(a) = parse(&QUERY, raw)? else { return Ok(()) };
    let addr = a.required("connect")?;
    let k: usize = a.get_or("k", 8, "integer")?;
    let mode = a.get("mode").unwrap_or("topk");
    let mut client = tq_net::Client::connect(addr)?;
    match mode {
        "topk" => {
            let answer = client.query(Query::top_k(k))?;
            println!("kMaxRRST top-{k} from {addr}:");
            for (rank, (id, value)) in answer.ranked().iter().enumerate() {
                println!("  #{:<3} facility {:>5}   service {:>12.3}", rank + 1, id, value);
            }
            println!("explain: {}", answer.explain);
        }
        "maxcov" => {
            let mut query = Query::max_cov(k);
            query = match a.get("method").unwrap_or("two-step") {
                "greedy" => query.algorithm(Algorithm::Greedy),
                "two-step" => query.algorithm(Algorithm::TwoStep),
                "genetic" => query.algorithm(Algorithm::Genetic),
                "exact" => query.algorithm(Algorithm::Exact),
                other => {
                    return Err(
                        format!("unknown method {other:?} (greedy|two-step|genetic|exact)").into(),
                    )
                }
            };
            let answer = client.query(query)?;
            let out = answer.cover();
            println!(
                "MaxkCovRST k={k} from {addr}: combined service {:.3}, {} users served",
                out.value, out.users_served
            );
            println!("  facilities: {:?}", out.chosen);
            println!("explain: {}", answer.explain);
        }
        other => return Err(format!("unknown mode {other:?} (topk|maxcov)").into()),
    }
    Ok(())
}

fn cmd_status(raw: Vec<String>) -> CliResult {
    let Some(a) = parse(&STATUS, raw)? else { return Ok(()) };
    let addr = a.required("connect")?;
    let mut client = tq_net::Client::connect(addr)?;
    println!("{}", client.status()?);
    Ok(())
}

fn cmd_metrics(raw: Vec<String>) -> CliResult {
    let Some(a) = parse(&METRICS, raw)? else { return Ok(()) };
    let addr = a.required("connect")?;
    let watch: f64 = a.get_or("watch", 0.0, "number")?;
    let filter = a.get("grep").unwrap_or("");
    let mut client = tq_net::Client::connect(addr)?;
    loop {
        let text = client.metrics()?;
        let shown: String = if filter.is_empty() {
            text
        } else {
            text.lines()
                .filter(|l| l.contains(filter))
                .fold(String::new(), |mut out, l| {
                    out.push_str(l);
                    out.push('\n');
                    out
                })
        };
        if watch <= 0.0 {
            print!("{shown}");
            return Ok(());
        }
        // Top-style: clear, home, redraw with a timestamped header.
        print!("\x1b[2J\x1b[H{addr} — every {watch}s (ctrl-c to stop)\n\n{shown}");
        use std::io::Write as _;
        std::io::stdout().flush()?;
        std::thread::sleep(std::time::Duration::from_secs_f64(watch));
    }
}

fn cmd_shutdown(raw: Vec<String>) -> CliResult {
    let Some(a) = parse(&SHUTDOWN, raw)? else { return Ok(()) };
    let addr = a.required("connect")?;
    let client = tq_net::Client::connect(addr)?;
    let ack = client.shutdown_server()?;
    println!(
        "daemon at {addr} acknowledged shutdown at epoch {} ({} wal batches pending \
         before the final checkpoint)",
        ack.epoch, ack.wal_batches
    );
    Ok(())
}

fn cmd_promote(raw: Vec<String>) -> CliResult {
    let Some(a) = parse(&PROMOTE, raw)? else { return Ok(()) };
    let addr = a.required("connect")?;
    let mut client = tq_net::Client::connect(addr)?;
    let ack = client.promote()?;
    println!(
        "daemon at {addr} promoted to primary at epoch {} — writes are accepted there now",
        ack.epoch
    );
    Ok(())
}

fn cmd_serve(raw: Vec<String>) -> CliResult {
    let Some(a) = parse(&SERVE, raw)? else { return Ok(()) };
    let clients: usize = a.get_or("clients", 4, "integer")?;
    let duration: f64 = a.get_or("duration", 5.0, "number")?;
    let kind_name = a.get("kind").unwrap_or("nyt");
    let users_n: usize = a.get_or("users", 20_000, "integer")?;
    let events_n: usize = a.get_or("events", 20_000, "integer")?;
    let batch: usize = a.get_or("batch", 200, "integer")?;
    let expire: f64 = a.get_or("expire", 0.5, "number")?;
    let pause_ms: u64 = a.get_or("pause", 0, "integer")?;
    let routes_n: usize = a.get_or("routes", 128, "integer")?;
    let stops: usize = a.get_or("stops", 16, "integer")?;
    let k: usize = a.get_or("k", 8, "integer")?;
    let psi: f64 = a.get_or("psi", tq_datagen::presets::DEFAULT_PSI, "number")?;
    let scenario = scenario_of(a.get("scenario").unwrap_or("transit"))?;
    let default_placement = match kind_name {
        "nyf" => "segmented",
        "bjg" => "full",
        _ => "two-point",
    };
    let placement = placement_of(a.get("placement").unwrap_or(default_placement))?;
    let beta: usize = a.get_or("beta", 64, "integer")?;
    let seed: u64 = a.get_or("seed", 1, "integer")?;
    let client_threads: usize = a.get_or("client-threads", 0, "integer")?;
    let shards: usize = a.get_or("shards", 1, "integer")?;
    if clients == 0 {
        return Err("--clients must be positive".into());
    }
    if shards == 0 {
        return Err("--shards must be positive".into());
    }
    if !duration.is_finite() || duration < 0.0 {
        return Err("--duration must be a non-negative number of seconds".into());
    }
    if batch == 0 {
        return Err("--batch must be positive".into());
    }
    if !(0.0..=1.0).contains(&expire) {
        return Err("--expire must be between 0 and 1".into());
    }

    let (city, kind) = match kind_name {
        "nyt" => (tq_datagen::presets::ny_city(), StreamKind::Taxi),
        "nyf" => (tq_datagen::presets::ny_city(), StreamKind::Checkins),
        "bjg" => (tq_datagen::presets::bj_city(), StreamKind::Gps),
        other => return Err(format!("unknown kind {other:?} (nyt|nyf|bjg)").into()),
    };
    let trace = tq_datagen::stream_scenario(&city, kind, users_n, events_n, expire, seed);
    let facilities = tq_datagen::bus_routes(
        &city,
        routes_n,
        stops,
        tq_datagen::presets::ROUTE_LENGTH,
        seed ^ 0xB05,
    );
    let model = ServiceModel::new(scenario, psi);
    println!(
        "serve: {} initial {kind_name} trajectories, {} routes × {stops} stops, \
         {clients} clients for {duration}s, update batches of {batch} \
         ({} events available)",
        trace.initial.len(),
        facilities.len(),
        trace.events.len(),
    );
    let update_batches = trace.update_batches(batch);
    let t = std::time::Instant::now();
    let mut builder = Engine::builder(model)
        .users(trace.initial)
        .facilities(facilities)
        .tree_config(TqTreeConfig::z_order(placement).with_beta(beta))
        .bounds(trace.bounds);
    let persist = a.get("persist").map(str::to_string);
    if let Some(dir) = &persist {
        builder = builder.persist_with(dir, StoreConfig::default());
    }

    let workload = Workload {
        queries: vec![Query::top_k(k), Query::max_cov(k)],
        update_batches,
    };
    let config = ServeConfig {
        clients,
        duration: std::time::Duration::from_secs_f64(duration),
        threads_per_client: client_threads,
        update_pause: std::time::Duration::from_millis(pause_ms),
        final_checkpoint: persist.is_some(),
    };
    let (report, live, status) = if shards > 1 {
        let mut engine = builder.shards(shards).build_sharded()?;
        engine.warm();
        println!(
            "build:  {shards} shards — index + initial evaluation in {:.3}s (epoch {})",
            t.elapsed().as_secs_f64(),
            engine.epoch()
        );
        let report = serve_sharded(&mut engine, &workload, &config)?;
        (report, engine.live_users(), engine.persistence())
    } else {
        let mut engine = builder.build()?;
        engine.warm();
        println!(
            "build:  index + initial evaluation in {:.3}s (epoch {})",
            t.elapsed().as_secs_f64(),
            engine.epoch()
        );
        let report = serve(&mut engine, &workload, &config)?;
        (report, engine.live_users(), engine.persistence())
    };
    println!("{}", report.summary());
    if let Some(status) = status {
        let hint = if shards > 1 { "tq inspect" } else { "tq load --store" };
        println!(
            "durable: {status} — run checkpointed; `{hint} {}` cold-starts it",
            status.dir.display()
        );
    }
    if report.epoch_regressions() > 0 {
        return Err(format!(
            "{} epoch regressions observed — snapshot publication is broken",
            report.epoch_regressions()
        )
        .into());
    }
    if let Some(sample) = report.sample_answer() {
        println!("explain: {} (sample answer, client 0)", sample.explain);
    }
    println!("{live} live trajectories at the final epoch");
    Ok(())
}

