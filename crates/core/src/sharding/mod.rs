//! Multi-shard scatter–gather: [`ShardedEngine`] partitions the user
//! trajectories across N independent [`Engine`]s and serves the same
//! typed [`Query`] API over them, **bit-identical** to one engine over
//! the union.
//!
//! # Why sharding composes exactly
//!
//! Everything a query answers is derived from per-user served-point
//! masks, and every reported value is a [`canonical
//! summation`](crate::eval::canonical_value) of per-user values in
//! ascending trajectory-id order. Users live on exactly one shard and
//! shard-local ids are assigned in ascending *global*-id order, so:
//!
//! * a per-candidate mask map is the **disjoint union** of the shards'
//!   mask maps (translated local→global), and
//! * the global canonical fold order is the k-way merge of the shards'
//!   canonical orders.
//!
//! Top-k therefore scatter-builds per-shard tables, merges them
//! (`exec::merge_tables`) and ranks the merged values — the exact bits
//! a single engine computes. Greedy max-cov runs as scatter–gather
//! *rounds* over the [`GainCombiner`] trait (see `gain.rs`): each shard
//! scores candidates against its local coverage, the front end merges the
//! per-user marginal-delta streams in global id order, picks the winner
//! with plain greedy's comparator and replays the winner's stream
//! entry-by-entry — reproducing the single engine's accumulation order,
//! and with it the value bits. Exact and genetic solvers run on the
//! merged table directly (they are already table-level algorithms).
//!
//! # The two planes, sharded
//!
//! The single engine's split survives intact: the [`ShardedEngine`] is
//! the single-writer control plane; it publishes immutable
//! [`ShardedSnapshot`]s (per-shard snapshots + global id maps + merged
//! tables) through [`ShardedReader`] handles. Update batches are
//! validated globally, split into per-shard sub-batches by the
//! [`Partitioner`], and applied to the shards **in parallel** — each
//! shard revalidates and WAL-logs its sub-batch independently.
//!
//! # Durability: per-shard stores + a routing log
//!
//! A durable sharded engine owns a directory of one `tq-store` per shard
//! plus two front-end files: a [`manifest`](tq_store::manifest) (shard
//! count + partitioner) and a routing log (`routing.rs` — which global id
//! lives where, with per-shard WAL stamps). [`Engine::open_sharded`]
//! recovers every shard in parallel, then replays the routing log with
//! the same epoch-stamp rule single-engine recovery uses — composed per
//! shard, so each shard independently recovers its longest valid prefix
//! and the front end re-derives a consistent global id space over
//! whatever survived (see `recover.rs`).

mod exec;
mod gain;
mod partition;
mod recover;
mod routing;

pub use exec::{ShardedReader, ShardedSnapshot};
pub use gain::{GainCombiner, LocalGains};
pub use partition::Partitioner;

use crate::dynamic::{BatchOutcome, Update, UpdateError};
use crate::engine::{
    Answer, Backend, BackendChoice, Engine, EngineBuilder, EngineError, Query, TableMemo,
};
use crate::eval::EvalStats;
use crate::fasthash::{FxHashMap, FxHashSet};
use crate::maxcov::ServedTable;
use crate::persist::StoreConfig;
use exec::{BuiltTables, ShardedSlot};
use routing::{RouteEvent, RoutingRecord};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use tq_geometry::Rect;
use tq_store::manifest::{is_sharded_dir, ShardManifest, ROUTING_FILE};
use tq_store::wal::WalWriter;
use tq_trajectory::{FacilityId, TrajectoryId, UserSet};

/// Where one global trajectory id lives: its owning shard and its
/// shard-local id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct RouteEntry {
    pub(crate) shard: u16,
    pub(crate) lid: TrajectoryId,
}

/// The durable half of a sharded front end: the root directory, the open
/// routing log, and the store tunables shared by every shard.
#[derive(Debug)]
pub(crate) struct ShardedDurable {
    root: PathBuf,
    log: WalWriter,
    config: StoreConfig,
    /// Sequence number the next routing record will carry (`0` is the
    /// initial placement, then one per applied batch).
    batch_seq: u64,
}

/// The sharded single-writer control plane: N independent [`Engine`]s,
/// one global id space routed over them, and a merged-table memo kept in
/// lockstep with the shards' memos. See the [module docs](self) for the
/// bit-identity argument and the durability layout.
#[derive(Debug)]
pub struct ShardedEngine {
    engines: Vec<Engine>,
    partitioner: Partitioner,
    /// Global liveness, id-aligned with `routing`.
    live: Vec<bool>,
    /// Global id → owning shard + local id.
    routing: Vec<RouteEntry>,
    /// Per shard: local id → global id (monotone).
    locals: Vec<Vec<TrajectoryId>>,
    /// Front-end subset-table recency bookkeeping — admitted/evicted in
    /// lockstep with every shard memo (same capacity, same key sequence).
    memo: TableMemo,
    slot: Arc<ShardedSlot>,
    snapshot: Arc<ShardedSnapshot>,
    durable: Option<ShardedDurable>,
    /// Explicit tree bounds (always `Some` for TQ-tree shards — the
    /// builder enforces it — `None` for baseline shards).
    bounds: Option<Rect>,
}

fn persist_err(e: tq_store::StoreError) -> EngineError {
    EngineError::Persist(e.to_string())
}

impl ShardedEngine {
    // -- construction -------------------------------------------------------

    /// Builds the front end from a prepared [`EngineBuilder`] — the
    /// implementation behind [`EngineBuilder::build_sharded`].
    pub(crate) fn from_builder(mut b: EngineBuilder) -> Result<ShardedEngine, EngineError> {
        let shards = b.shards.max(1);
        let is_tree = matches!(b.backend, BackendChoice::TqTree(_));
        if is_tree && b.bounds.is_none() {
            return Err(EngineError::Sharded(
                "a sharded TQ-tree engine needs explicit EngineBuilder::bounds \
                 (every shard must index the same rectangle)"
                    .into(),
            ));
        }
        if let (true, Some(bounds)) = (is_tree, b.bounds) {
            for (id, t) in b.users.iter() {
                if t.points().iter().any(|p| !bounds.contains(p)) {
                    return Err(EngineError::TrajectoryOutOfBounds { id });
                }
            }
        }
        let partitioner = if b.spatial {
            let root = match b.bounds.or_else(|| b.users.mbr()) {
                Some(r) => r,
                None => {
                    return Err(EngineError::Sharded(
                        "the z-range partitioner needs bounds or a non-empty \
                         initial user set"
                            .into(),
                    ))
                }
            };
            Partitioner::z_range(root, &b.users, shards)
        } else {
            Partitioner::Hash
        };

        // Partition the initial users in ascending global-id order, so
        // each shard's local ids are assigned monotonically in global-id
        // order — the invariant every merge in this module leans on.
        let mut locals: Vec<Vec<TrajectoryId>> = vec![Vec::new(); shards];
        let mut routing: Vec<RouteEntry> = Vec::with_capacity(b.users.len());
        let mut per_shard: Vec<Vec<tq_trajectory::Trajectory>> = vec![Vec::new(); shards];
        for (gid, t) in b.users.iter() {
            let s = partitioner.shard_of(t, shards);
            routing.push(RouteEntry {
                shard: s as u16,
                lid: per_shard[s].len() as TrajectoryId,
            });
            locals[s].push(gid);
            per_shard[s].push(t.clone());
        }

        // Durable scaffolding first: manifest + routing record 0, so a
        // crash between shard creations leaves a recognizable (if
        // incomplete) sharded directory rather than orphan stores.
        let persist = b.persist.take();
        let mut durable = None;
        if let Some((dir, config)) = &persist {
            if is_sharded_dir(dir) {
                return Err(EngineError::Persist(format!(
                    "{} already holds a sharded store — open it with \
                     Engine::open_sharded instead of overwriting",
                    dir.display()
                )));
            }
            std::fs::create_dir_all(dir).map_err(|e| EngineError::Persist(e.to_string()))?;
            ShardManifest {
                shards: shards as u16,
                partitioner: partitioner.spec(),
            }
            .write(dir)
            .map_err(persist_err)?;
            let mut log =
                routing::create_log(&dir.join(ROUTING_FILE), config.sync).map_err(persist_err)?;
            let placement = RoutingRecord {
                seq: 0,
                events: routing
                    .iter()
                    .map(|e| RouteEvent::Insert {
                        shard: e.shard,
                        alive: true,
                    })
                    .collect(),
                stamps: vec![0; shards],
            };
            log.append(0, placement.encode().as_ref())
                .map_err(persist_err)?;
            durable = Some(ShardedDurable {
                root: dir.clone(),
                log,
                config: *config,
                batch_seq: 1,
            });
        }

        let users = std::mem::replace(&mut b.users, UserSet::new());
        let template = b;
        let mut engines = Vec::with_capacity(shards);
        for (s, shard_users) in per_shard.into_iter().enumerate() {
            let mut sb = template.clone();
            sb.users = UserSet::from_vec(shard_users);
            sb.shards = 1;
            sb.persist = persist
                .as_ref()
                .map(|(dir, config)| (ShardManifest::shard_dir(dir, s), *config));
            engines.push(sb.build()?);
        }

        let live_count = users.len();
        let live = vec![true; users.len()];
        let memo = TableMemo::new(template.subset_tables);
        let bounds = if is_tree { template.bounds } else { None };
        Ok(ShardedEngine::assemble(
            engines, partitioner, live, live_count, routing, locals, users, memo, durable, bounds,
        ))
    }

    /// Final assembly shared by the builder and [`recover`]: publishes
    /// epoch 0 over the given state.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        engines: Vec<Engine>,
        partitioner: Partitioner,
        live: Vec<bool>,
        live_count: usize,
        routing: Vec<RouteEntry>,
        locals: Vec<Vec<TrajectoryId>>,
        users: UserSet,
        memo: TableMemo,
        durable: Option<ShardedDurable>,
        bounds: Option<Rect>,
    ) -> ShardedEngine {
        let facilities = engines[0].snapshot().facilities.clone();
        let model = *engines[0].model();
        let snapshot = Arc::new(ShardedSnapshot {
            epoch: 0,
            shards: engines.iter().map(|e| e.snapshot()).collect(),
            locals: locals.iter().map(|l| Arc::new(l.clone())).collect(),
            users: Arc::new(users),
            live_count,
            facilities,
            model,
            tables: FxHashMap::default(),
        });
        ShardedEngine {
            engines,
            partitioner,
            live,
            routing,
            locals,
            memo,
            slot: Arc::new(ShardedSlot::new(snapshot.clone())),
            snapshot,
            durable,
            bounds,
        }
    }

    /// Atomically publishes a successor sharded snapshot and keeps the
    /// writer's handle in sync — the sharded sibling of the single
    /// engine's `publish`.
    fn publish(&mut self, snapshot: ShardedSnapshot) {
        debug_assert!(snapshot.epoch > self.snapshot.epoch, "epochs are monotone");
        let arc = Arc::new(snapshot);
        self.snapshot = arc.clone();
        self.slot.store(arc);
    }

    /// Refreshed per-shard snapshot `Arc`s (after shard publications).
    fn shard_snapshots(&self) -> Vec<Arc<crate::engine::Snapshot>> {
        self.engines.iter().map(|e| e.snapshot()).collect()
    }

    // -- queries ------------------------------------------------------------

    /// Answers a typed [`Query`] with scatter–gather over the shards,
    /// memoizing any merged table the query had to build (and the
    /// per-shard tables behind it, keeping the shard memos in lockstep).
    /// Bit-identical to [`Engine::run`] on one engine over the union of
    /// the shards' users.
    pub fn run(&mut self, query: Query) -> Result<Answer, EngineError> {
        let (answer, outcome) = exec::execute(&self.snapshot, &query)?;
        if let Some(outcome) = outcome {
            match outcome.built {
                Some(built) => self.absorb(outcome.key, built),
                None => {
                    self.memo.touch(&outcome.key);
                    for engine in &mut self.engines {
                        engine.touch_table(&outcome.key);
                    }
                }
            }
        }
        Ok(answer)
    }

    /// Absorbs a freshly built merged table (and its per-shard halves)
    /// into the memos — same admission/eviction decisions as the single
    /// engine, applied to the front *and* every shard so their caches
    /// stay key-for-key identical.
    fn absorb(&mut self, key: Vec<FacilityId>, built: BuiltTables) {
        let is_full = key.len() == self.snapshot.facilities.len();
        let mut evicted = Vec::new();
        if !is_full {
            if self.memo.capacity() == 0 {
                return;
            }
            evicted = self.memo.admit(key.clone());
        }
        for (s, engine) in self.engines.iter_mut().enumerate() {
            engine.absorb_table(key.clone(), built.per_shard[s].clone());
        }
        let mut tables = self.snapshot.tables.clone();
        for k in &evicted {
            tables.remove(k);
        }
        tables.insert(key, built.merged);
        self.publish(ShardedSnapshot {
            epoch: self.snapshot.epoch + 1,
            shards: self.shard_snapshots(),
            locals: self.snapshot.locals.clone(),
            users: self.snapshot.users.clone(),
            live_count: self.snapshot.live_count,
            facilities: self.snapshot.facilities.clone(),
            model: self.snapshot.model,
            tables,
        });
    }

    /// Pre-builds (and memoizes) the merged [`ServedTable`] over **all**
    /// registered facilities: warms every shard in parallel, merges, and
    /// publishes — the sharded sibling of [`Engine::warm`].
    pub fn warm(&mut self) -> &ServedTable {
        let all: Vec<FacilityId> = self.snapshot.facilities.iter().map(|(id, _)| id).collect();
        if !self.snapshot.tables.contains_key(&all) {
            std::thread::scope(|scope| {
                for engine in self.engines.iter_mut() {
                    scope.spawn(move || {
                        engine.warm();
                    });
                }
            });
            let per_shard: Vec<Arc<ServedTable>> = self
                .engines
                .iter()
                .map(|e| {
                    let snap = e.snapshot();
                    snap.tables[&all].clone()
                })
                .collect();
            let mut stats = EvalStats::default();
            for t in &per_shard {
                stats.add(&t.stats);
            }
            let merged = Arc::new(exec::merge_tables(
                &all,
                &per_shard,
                &self.snapshot.locals,
                &self.snapshot.users,
                &self.snapshot.model,
                stats,
            ));
            let mut tables = self.snapshot.tables.clone();
            tables.insert(all.clone(), merged);
            self.publish(ShardedSnapshot {
                epoch: self.snapshot.epoch + 1,
                shards: self.shard_snapshots(),
                locals: self.snapshot.locals.clone(),
                users: self.snapshot.users.clone(),
                live_count: self.snapshot.live_count,
                facilities: self.snapshot.facilities.clone(),
                model: self.snapshot.model,
                tables,
            });
        }
        &self.snapshot.tables[&all]
    }

    // -- updates ------------------------------------------------------------

    /// Applies one batch of updates across the shards and publishes the
    /// resulting sharded snapshot.
    ///
    /// The batch is validated **globally** first (bounds, liveness,
    /// double-removal — the same rules as [`Engine::apply`], in the
    /// global id space), split into per-shard sub-batches by the
    /// partitioner, then applied to the shards in parallel; each durable
    /// shard WAL-logs its own sub-batch. On a durable front end the
    /// routing record (batch events + per-shard WAL stamps) is appended
    /// and fsynced **before** the shard applies, so the routing log is
    /// always a superset of shard state and recovery's stamp rule can
    /// skip exactly the sub-batches that never reached their shard.
    ///
    /// All-or-nothing at the front: a validation or routing-log failure
    /// rejects the batch with nothing mutated. A *shard* apply failure
    /// after that is reported as the shard's error with the front end
    /// unpublished — on a durable engine, reopen with
    /// [`Engine::open_sharded`] to resynchronize; an in-memory engine
    /// cannot recover the split batch and should be discarded.
    ///
    /// [`EngineError::CheckpointFailed`] from a shard's threshold
    /// checkpoint is the one post-publish error: the batch **is** applied
    /// and published everywhere (do not retry it), only that shard's log
    /// compaction failed.
    pub fn apply(&mut self, updates: &[Update]) -> Result<BatchOutcome, EngineError> {
        if !matches!(self.engines[0].backend(), Backend::TqTree(_)) {
            return Err(EngineError::UpdatesUnsupported);
        }
        self.validate_global(updates).map_err(EngineError::Update)?;

        // Split into per-shard sub-batches, translating global ids to
        // shard-local ids (including ids inserted earlier in this batch).
        let shards = self.engines.len();
        let mut subs: Vec<Vec<Update>> = vec![Vec::new(); shards];
        let mut events: Vec<RouteEvent> = Vec::with_capacity(updates.len());
        let mut pending: Vec<RouteEntry> = Vec::new();
        let mut next_lid: Vec<u32> = self
            .engines
            .iter()
            .map(|e| e.users().len() as u32)
            .collect();
        for u in updates {
            match u {
                Update::Insert(t) => {
                    let s = self.partitioner.shard_of(t, shards);
                    pending.push(RouteEntry {
                        shard: s as u16,
                        lid: next_lid[s],
                    });
                    next_lid[s] += 1;
                    subs[s].push(Update::Insert(t.clone()));
                    events.push(RouteEvent::Insert {
                        shard: s as u16,
                        alive: true,
                    });
                }
                Update::Remove(gid) => {
                    let entry = if (*gid as usize) < self.routing.len() {
                        self.routing[*gid as usize]
                    } else {
                        pending[*gid as usize - self.routing.len()]
                    };
                    subs[entry.shard as usize].push(Update::Remove(entry.lid));
                    events.push(RouteEvent::Remove { gid: *gid });
                }
            }
        }
        // Per-shard WAL stamps: the epoch each shard's own WAL will carry
        // this sub-batch under (0 = no events for that shard) — what lets
        // recovery decide, per shard, whether the sub-batch survived.
        let stamps: Vec<u64> = (0..shards)
            .map(|s| {
                if subs[s].is_empty() {
                    0
                } else {
                    self.engines[s].epoch() + 1
                }
            })
            .collect();
        if let Some(d) = self.durable.as_mut() {
            let record = RoutingRecord {
                seq: d.batch_seq,
                events,
                stamps,
            };
            d.log
                .append(record.seq, record.encode().as_ref())
                .map_err(persist_err)?;
            d.batch_seq += 1;
        }

        // Scatter: parallel per-shard applies (shards without events keep
        // their epoch — their WAL sees nothing, matching their stamp 0).
        let results: Vec<Option<Result<BatchOutcome, EngineError>>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .engines
                    .iter_mut()
                    .zip(&subs)
                    .map(|(engine, sub)| {
                        if sub.is_empty() {
                            None
                        } else {
                            Some(scope.spawn(move || engine.apply(sub)))
                        }
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.map(|h| h.join().expect("shard apply panicked")))
                    .collect()
            });
        let mut outcome = BatchOutcome::default();
        let mut checkpoint_failed: Option<EngineError> = None;
        for result in results.into_iter().flatten() {
            match result {
                Ok(o) => {
                    outcome.removed += o.removed;
                    outcome.untouched += o.untouched;
                    outcome.patched += o.patched;
                    outcome.reevaluated += o.reevaluated;
                }
                Err(EngineError::CheckpointFailed(why)) => {
                    checkpoint_failed
                        .get_or_insert(EngineError::CheckpointFailed(why));
                }
                Err(e) => return Err(e),
            }
        }

        // Gather: fold the batch into the global id space.
        let mut users = UserSet::clone(&self.snapshot.users);
        let mut pending = pending.into_iter();
        for u in updates {
            match u {
                Update::Insert(t) => {
                    let gid = users.push(t.clone());
                    outcome.inserted.push(gid);
                    let entry = pending.next().expect("one route per insert");
                    self.routing.push(entry);
                    self.locals[entry.shard as usize].push(gid);
                    self.live.push(true);
                }
                Update::Remove(gid) => {
                    self.live[*gid as usize] = false;
                }
            }
        }
        let live_count =
            self.snapshot.live_count + outcome.inserted.len() - outcome.removed;

        // Re-merge every memoized front table from the shards' freshly
        // maintained tables. Stats stay as originally built — exactly the
        // single engine's incremental-maintenance behavior.
        let shard_snaps = self.shard_snapshots();
        let locals: Vec<Arc<Vec<TrajectoryId>>> =
            self.locals.iter().map(|l| Arc::new(l.clone())).collect();
        let users = Arc::new(users);
        let mut tables = FxHashMap::default();
        for (key, old) in &self.snapshot.tables {
            let per_shard: Vec<Arc<ServedTable>> = shard_snaps
                .iter()
                .map(|snap| match snap.tables.get(key) {
                    Some(t) => t.clone(),
                    None => Arc::new(snap.backend().as_index().served_table(
                        snap.users(),
                        snap.model(),
                        snap.facilities(),
                        key,
                    )),
                })
                .collect();
            let merged = exec::merge_tables(
                key,
                &per_shard,
                &locals,
                &users,
                &self.snapshot.model,
                old.stats,
            );
            tables.insert(key.clone(), Arc::new(merged));
        }
        self.publish(ShardedSnapshot {
            epoch: self.snapshot.epoch + 1,
            shards: shard_snaps,
            locals,
            users,
            live_count,
            facilities: self.snapshot.facilities.clone(),
            model: self.snapshot.model,
            tables,
        });
        match checkpoint_failed {
            Some(e) => Err(e),
            None => Ok(outcome),
        }
    }

    /// Global-id-space batch validation — the same rules as the single
    /// engine's, against the front end's bounds and liveness.
    fn validate_global(&self, updates: &[Update]) -> Result<(), UpdateError> {
        let Some(bounds) = self.bounds else {
            return Ok(());
        };
        let mut next_id = self.snapshot.users.len() as TrajectoryId;
        let mut batch_removed: FxHashSet<TrajectoryId> = Default::default();
        for (index, u) in updates.iter().enumerate() {
            match u {
                Update::Insert(t) => {
                    if t.points().iter().any(|p| !bounds.contains(p)) {
                        return Err(UpdateError::OutOfBounds { index });
                    }
                    next_id += 1;
                }
                Update::Remove(id) => {
                    let preexisting = (*id as usize) < self.live.len();
                    let live = if preexisting {
                        self.live[*id as usize]
                    } else {
                        *id < next_id
                    };
                    if !live || !batch_removed.insert(*id) {
                        return Err(UpdateError::NotLive { index, id: *id });
                    }
                }
            }
        }
        Ok(())
    }

    // -- durability ---------------------------------------------------------

    /// Checkpoints every shard (fresh snapshot, truncated WAL) and
    /// compacts the routing log down to a single full-placement record.
    /// Returns the store's root directory. Fails with
    /// [`EngineError::NotDurable`] on an in-memory front end.
    pub fn checkpoint(&mut self) -> Result<PathBuf, EngineError> {
        if self.durable.is_none() {
            return Err(EngineError::NotDurable);
        }
        for engine in &mut self.engines {
            engine.checkpoint()?;
        }
        self.rewrite_routing().map_err(persist_err)?;
        Ok(self.durable.as_ref().expect("checked durable").root.clone())
    }

    /// The attached store's status — the sharded root directory, with
    /// pending WAL batches summed across the shard stores — or `None`
    /// for an in-memory front end.
    pub fn persistence(&self) -> Option<crate::persist::PersistStatus> {
        let durable = self.durable.as_ref()?;
        Some(crate::persist::PersistStatus {
            dir: durable.root.clone(),
            wal_batches: self
                .engines
                .iter()
                .filter_map(|e| e.persistence())
                .map(|s| s.wal_batches)
                .sum(),
            checkpoint_every: durable.config.checkpoint_every,
        })
    }

    /// Replaces the routing log with one full-placement record covering
    /// the current state (every event stamp 0 = snapshot-covered).
    /// Crash-safe: written to a temp file, then renamed over the old log.
    fn rewrite_routing(&mut self) -> Result<(), tq_store::StoreError> {
        let durable = self.durable.as_mut().expect("checked durable");
        let record = RoutingRecord {
            seq: 0,
            events: self
                .routing
                .iter()
                .zip(&self.live)
                .map(|(entry, &alive)| RouteEvent::Insert {
                    shard: entry.shard,
                    alive,
                })
                .collect(),
            stamps: vec![0; self.engines.len()],
        };
        let tmp = durable.root.join("routing.tql.tmp");
        let mut log = routing::create_log(&tmp, durable.config.sync)?;
        log.append(0, record.encode().as_ref())?;
        std::fs::rename(&tmp, durable.root.join(ROUTING_FILE))?;
        std::fs::File::open(&durable.root)?.sync_all()?;
        durable.log = log;
        durable.batch_seq = 1;
        Ok(())
    }

    // -- accessors ----------------------------------------------------------

    /// A cloneable handle for serving threads — follows every publication
    /// of this engine.
    pub fn reader(&self) -> ShardedReader {
        ShardedReader {
            slot: self.slot.clone(),
        }
    }

    /// The currently published sharded snapshot.
    pub fn snapshot(&self) -> Arc<ShardedSnapshot> {
        self.snapshot.clone()
    }

    /// The current front-end publication epoch (restarts at 0 on reopen;
    /// the durable epochs are the per-shard ones).
    pub fn epoch(&self) -> u64 {
        self.snapshot.epoch
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.engines.len()
    }

    /// Shard `i`'s engine (read access — all writes go through the front
    /// end to keep the routing map consistent).
    pub fn shard(&self, i: usize) -> &Engine {
        &self.engines[i]
    }

    /// The partitioner routing inserts to shards.
    pub fn partitioner(&self) -> &Partitioner {
        &self.partitioner
    }

    /// The global user set, including removed tombstones.
    pub fn users(&self) -> &UserSet {
        self.snapshot.users()
    }

    /// Number of live (not removed) trajectories across all shards.
    pub fn live_users(&self) -> usize {
        self.snapshot.live_count
    }

    /// Whether global trajectory `id` is currently live.
    pub fn is_live(&self, id: TrajectoryId) -> bool {
        (id as usize) < self.live.len() && self.live[id as usize]
    }

    /// A compacted [`UserSet`] of the live trajectories in ascending
    /// global id order — the set a single-engine cross-check should
    /// index (see [`Engine::live_set`]).
    pub fn live_set(&self) -> UserSet {
        UserSet::from_vec(
            self.live
                .iter()
                .enumerate()
                .filter(|(_, l)| **l)
                .map(|(id, _)| self.snapshot.users.get(id as TrajectoryId).clone())
                .collect(),
        )
    }

    /// The memoized merged table for a (sorted) candidate set, if any.
    pub fn cached_table(&self, candidates: &[FacilityId]) -> Option<&ServedTable> {
        self.snapshot.cached_table(candidates)
    }

    /// The memoized merged full-facility table (see
    /// [`ShardedEngine::warm`]).
    pub fn full_table(&self) -> Option<&ServedTable> {
        self.snapshot.full_table()
    }
}

impl Engine {
    /// Opens a sharded store directory (created by
    /// [`EngineBuilder::build_sharded`] with persistence) with default
    /// [`StoreConfig`] — see [`Engine::open_sharded_with`].
    pub fn open_sharded(dir: impl AsRef<Path>) -> Result<ShardedEngine, EngineError> {
        Engine::open_sharded_with(dir, StoreConfig::default())
    }

    /// Opens a sharded store directory: recovers every shard's store in
    /// parallel (each to its own longest valid prefix), then replays the
    /// routing log under the per-shard epoch-stamp rule to rebuild a
    /// consistent global id space over exactly the batches that survived.
    /// Never panics on torn or corrupt state; unreconcilable directories
    /// fail with [`EngineError::Persist`] / [`EngineError::Sharded`].
    pub fn open_sharded_with(
        dir: impl AsRef<Path>,
        config: StoreConfig,
    ) -> Result<ShardedEngine, EngineError> {
        recover::open_sharded(dir.as_ref(), config)
    }
}
