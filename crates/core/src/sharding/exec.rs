//! The sharded read plane: [`ShardedSnapshot`] (one immutable version of
//! the whole sharded state), [`ShardedReader`] (the serving-thread
//! handle), and the scatter–gather query execution both planes share.
//!
//! The merge invariant, stated once: **a merged table is a real
//! [`ServedTable`] over the global id space** — per candidate, the union
//! of the shards' disjoint mask maps (local ids translated through the
//! shard's monotone local→global map) with values recomputed by
//! [`canonical_value`](crate::eval::canonical_value) over the global user
//! set. Masks are pure functions of (trajectory, facility, model,
//! placement), so the union equals what a single engine computes, and the
//! canonical summation fixes the fold order by content — merged values
//! are bit-identical to single-engine values by construction, not by
//! accident of scheduling.

use super::gain::{sharded_greedy, LocalGains};
use crate::engine::{
    session, Answer, BackendKind, CacheStatus, EngineError, Explain, Query, QueryResult,
    Snapshot,
};
use crate::eval::EvalStats;
use crate::fasthash::FxHashMap;
use crate::maxcov::{exact, genetic, CovOutcome, GeneticConfig, ServedTable};
use crate::parallel;
use crate::service::{PointMask, ServiceModel};
use std::sync::{Arc, RwLock};
use std::time::Instant;
use tq_trajectory::{FacilityId, FacilitySet, TrajectoryId, UserSet};

// ---------------------------------------------------------------------------
// Snapshot / slot / reader
// ---------------------------------------------------------------------------

/// One immutable, epoch-numbered version of a sharded engine's entire
/// queryable state: the per-shard [`Snapshot`]s, the global user set, the
/// local→global id maps, and the merged-table memo.
#[derive(Debug)]
pub struct ShardedSnapshot {
    pub(crate) epoch: u64,
    pub(crate) shards: Vec<Arc<Snapshot>>,
    /// Per shard: local id → global id, monotone (ascending local id ⇒
    /// ascending global id) — the property that makes per-shard canonical
    /// orders concatenate into the global canonical order.
    pub(crate) locals: Vec<Arc<Vec<TrajectoryId>>>,
    /// The global user set (including tombstones), id-aligned with the
    /// routing map.
    pub(crate) users: Arc<UserSet>,
    pub(crate) live_count: usize,
    pub(crate) facilities: Arc<FacilitySet>,
    pub(crate) model: ServiceModel,
    /// Merged tables, maintained in lockstep with the per-shard memos.
    pub(crate) tables: FxHashMap<Vec<FacilityId>, Arc<ServedTable>>,
}

impl ShardedSnapshot {
    /// Epoch of this version (monotone across publications).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The global user set, including removed tombstones.
    pub fn users(&self) -> &UserSet {
        &self.users
    }

    /// The registered candidate facilities (identical on every shard).
    pub fn facilities(&self) -> &FacilitySet {
        &self.facilities
    }

    /// The service model.
    pub fn model(&self) -> &ServiceModel {
        &self.model
    }

    /// Number of live (not removed) trajectories across all shards.
    pub fn live_users(&self) -> usize {
        self.live_count
    }

    /// Shard `i`'s snapshot.
    pub fn shard(&self, i: usize) -> &Arc<Snapshot> {
        &self.shards[i]
    }

    /// The backend kind (homogeneous across shards).
    pub fn backend_kind(&self) -> BackendKind {
        self.shards[0].backend().kind()
    }

    /// The memoized merged table for a (sorted) candidate set, if any.
    pub fn cached_table(&self, candidates: &[FacilityId]) -> Option<&ServedTable> {
        self.tables.get(candidates).map(|t| t.as_ref())
    }

    /// The memoized merged full-facility table (see
    /// [`ShardedEngine::warm`](super::ShardedEngine::warm)).
    pub fn full_table(&self) -> Option<&ServedTable> {
        let all: Vec<FacilityId> = self.facilities.iter().map(|(id, _)| id).collect();
        self.cached_table(&all)
    }

    /// Executes a query against this immutable version — the sharded
    /// read-plane entry point, safe to call from any number of threads.
    /// Tables built on a memo miss are used and discarded, exactly like
    /// [`Snapshot::run`]; only the control plane
    /// ([`ShardedEngine::run`](super::ShardedEngine::run)) memoizes.
    pub fn run(&self, query: Query) -> Result<Answer, EngineError> {
        execute(self, &query).map(|(answer, _)| answer)
    }
}

#[derive(Debug)]
pub(crate) struct ShardedSlot {
    current: RwLock<Arc<ShardedSnapshot>>,
}

impl ShardedSlot {
    pub(crate) fn new(snapshot: Arc<ShardedSnapshot>) -> ShardedSlot {
        ShardedSlot {
            current: RwLock::new(snapshot),
        }
    }

    pub(crate) fn load(&self) -> Arc<ShardedSnapshot> {
        self.current
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    pub(crate) fn store(&self, snapshot: Arc<ShardedSnapshot>) {
        *self.current.write().unwrap_or_else(|e| e.into_inner()) = snapshot;
    }
}

/// A cloneable, `Send + Sync` handle to a sharded engine's latest
/// published [`ShardedSnapshot`] — the sharded sibling of
/// [`Reader`](crate::engine::Reader), with the same monotone-epoch
/// publication contract.
#[derive(Debug, Clone)]
pub struct ShardedReader {
    pub(crate) slot: Arc<ShardedSlot>,
}

impl ShardedReader {
    /// The latest published sharded snapshot (O(1) pointer clone).
    pub fn snapshot(&self) -> Arc<ShardedSnapshot> {
        self.slot.load()
    }

    /// The latest published epoch.
    pub fn epoch(&self) -> u64 {
        self.slot.load().epoch
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Tables materialized by a memo miss: the merged global table and the
/// per-shard tables it was merged from — the control plane absorbs both
/// (front memo and shard memos move in lockstep), the read plane drops
/// them.
pub(crate) struct BuiltTables {
    pub(crate) merged: Arc<ServedTable>,
    pub(crate) per_shard: Vec<Arc<ServedTable>>,
}

/// The sharded sibling of [`session::TableOutcome`].
pub(crate) struct MergedOutcome {
    pub(crate) key: Vec<FacilityId>,
    pub(crate) built: Option<BuiltTables>,
}

/// Executes a query against one sharded snapshot. Mirrors
/// [`session::execute`] decision-for-decision: same candidate resolution,
/// same error order, same cache-status reporting.
pub(crate) fn execute(
    snap: &ShardedSnapshot,
    query: &Query,
) -> Result<(Answer, Option<MergedOutcome>), EngineError> {
    let start = Instant::now();
    let cand = session::resolve_candidates_in(&snap.facilities, query)?;
    if query.k == 0 {
        return Err(EngineError::ZeroK);
    }
    if query.k > cand.len() {
        return Err(EngineError::KExceedsCandidates {
            k: query.k,
            candidates: cand.len(),
        });
    }
    let mut explain = Explain {
        backend: Some(snap.backend_kind()),
        snapshot_epoch: snap.epoch,
        candidates: cand.len(),
        ..Explain::default()
    };
    let mut outcome = None;
    let result = match query.threads {
        Some(n) => parallel::with_threads(n, || {
            explain.threads = parallel::current_threads();
            dispatch(snap, query, &cand, &mut explain, &mut outcome)
        })?,
        None => {
            explain.threads = parallel::current_threads();
            dispatch(snap, query, &cand, &mut explain, &mut outcome)?
        }
    };
    explain.wall = start.elapsed();
    session::note_query(&explain);
    Ok((Answer { result, explain }, outcome))
}

fn dispatch(
    snap: &ShardedSnapshot,
    query: &Query,
    cand: &[FacilityId],
    explain: &mut Explain,
    outcome: &mut Option<MergedOutcome>,
) -> Result<QueryResult, EngineError> {
    match query.kind {
        session::QueryKind::TopK => {
            let ranked = run_top_k(snap, cand, query.k, explain);
            if explain.cache.is_hit() {
                *outcome = Some(MergedOutcome {
                    key: cand.to_vec(),
                    built: None,
                });
            }
            Ok(QueryResult::TopK(ranked))
        }
        session::QueryKind::MaxCov => run_max_cov(snap, query, cand, explain, outcome),
    }
}

/// Sharded top-k, mirroring the single engine's cache semantics: a
/// memoized merged table answers with zero evaluation
/// ([`CacheStatus::Hit`]); a miss scatter-builds per-shard values, merges
/// canonically, ranks, and — like the single engine's best-first search —
/// leaves the cache status [`CacheStatus::Unused`] and memoizes nothing.
fn run_top_k(
    snap: &ShardedSnapshot,
    cand: &[FacilityId],
    k: usize,
    explain: &mut Explain,
) -> Vec<(FacilityId, f64)> {
    if let Some(table) = snap.tables.get(cand) {
        explain.cache = CacheStatus::Hit;
        return session::rank_table(table, k);
    }
    let built = build_merged(snap, cand);
    explain.eval.add(&built.merged.stats);
    session::rank_table(&built.merged, k)
}

fn run_max_cov(
    snap: &ShardedSnapshot,
    query: &Query,
    cand: &[FacilityId],
    explain: &mut Explain,
    outcome: &mut Option<MergedOutcome>,
) -> Result<QueryResult, EngineError> {
    let k = query.k;
    let pool: Vec<FacilityId> = match query.algorithm {
        crate::engine::Algorithm::TwoStep => {
            let kp = query
                .k_prime
                .unwrap_or_else(|| (4 * k).max(32))
                .max(k)
                .min(cand.len());
            let mut top = run_top_k(snap, cand, kp, explain);
            let mut ids: Vec<FacilityId> = top.drain(..).map(|(id, _)| id).collect();
            ids.sort_unstable();
            ids
        }
        _ => cand.to_vec(),
    };
    let (merged, per_shard, merged_outcome) = resolve_merged(snap, pool, explain);
    let out = match query.algorithm {
        crate::engine::Algorithm::Greedy | crate::engine::Algorithm::TwoStep => {
            // The scatter–gather combiner rounds (see [`super::gain`]).
            let mut workers: Vec<LocalGains> = per_shard
                .iter()
                .enumerate()
                .map(|(s, table)| {
                    LocalGains::new(
                        table.clone(),
                        snap.locals[s].clone(),
                        snap.shards[s].users.clone(),
                        snap.model,
                    )
                })
                .collect();
            let (chosen, value, users_served) = sharded_greedy(&mut workers, &merged.ids, k);
            CovOutcome {
                chosen,
                value,
                users_served,
                stats: merged.stats,
            }
        }
        crate::engine::Algorithm::Genetic => {
            let cfg = GeneticConfig {
                seed: query.seed.unwrap_or(GeneticConfig::default().seed),
                ..GeneticConfig::default()
            };
            genetic(&merged, &snap.users, &snap.model, k, &cfg)
        }
        crate::engine::Algorithm::Exact => {
            exact(&merged, &snap.users, &snap.model, k, query.node_budget)
                .ok_or(EngineError::ExactBudgetExhausted)?
        }
    };
    *outcome = Some(merged_outcome);
    Ok(QueryResult::MaxCov(out))
}

/// The merged table (and the per-shard tables behind it) for a sorted
/// candidate key: from the front memo on a hit, scatter-built on a miss —
/// the sharded sibling of the single engine's `resolve_table`, with the
/// same [`CacheStatus`] reporting.
fn resolve_merged(
    snap: &ShardedSnapshot,
    key: Vec<FacilityId>,
    explain: &mut Explain,
) -> (Arc<ServedTable>, Vec<Arc<ServedTable>>, MergedOutcome) {
    if let Some(table) = snap.tables.get(&key) {
        explain.cache = CacheStatus::Hit;
        // The per-shard tables are maintained in lockstep with the front
        // memo, so on a front hit each shard serves from its own cache;
        // build_merged falls back to a local build if one is missing.
        let per_shard = shard_tables(snap, &key).0;
        return (
            table.clone(),
            per_shard,
            MergedOutcome { key, built: None },
        );
    }
    explain.cache = CacheStatus::Miss;
    let built = build_merged(snap, &key);
    explain.eval.add(&built.merged.stats);
    let merged = built.merged.clone();
    let per_shard = built.per_shard.clone();
    (
        merged,
        per_shard,
        MergedOutcome {
            key,
            built: Some(built),
        },
    )
}

/// Per-shard tables for a key: each shard's memoized table when present,
/// a scatter of local builds otherwise (one thread per missing shard).
/// Returns the tables and the summed evaluation stats of the builds that
/// actually ran.
fn shard_tables(
    snap: &ShardedSnapshot,
    key: &[FacilityId],
) -> (Vec<Arc<ServedTable>>, EvalStats) {
    let missing: Vec<usize> = (0..snap.shards.len())
        .filter(|&s| snap.shards[s].cached_table(key).is_none())
        .collect();
    let fanout = Instant::now();
    let built: Vec<Arc<ServedTable>> = std::thread::scope(|scope| {
        let handles: Vec<_> = missing
            .iter()
            .map(|&s| {
                let shard = &snap.shards[s];
                scope.spawn(move || {
                    let start = Instant::now();
                    let table = Arc::new(shard.backend().as_index().served_table(
                        shard.users(),
                        shard.model(),
                        shard.facilities(),
                        key,
                    ));
                    (table, start.elapsed())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
    })
    .into_iter()
    .zip(&missing)
    .map(|((table, elapsed), &s)| {
        // Per-shard scatter timing. Label formatting and the registry
        // lookup are confined to the memo-miss path, where a full table
        // build dwarfs them.
        if tq_obs::enabled() {
            let label = format!("shard=\"{s}\"");
            tq_obs::histogram("tq_shard_build_ns", &label).record(elapsed);
            tq_obs::counter("tq_shard_tables_built_total", &label).incr();
        }
        table
    })
    .collect();
    if tq_obs::enabled() && !missing.is_empty() {
        tq_obs::histogram("tq_shard_fanout_ns", "").record(fanout.elapsed());
    }
    let mut stats = EvalStats::default();
    for t in &built {
        stats.add(&t.stats);
    }
    let mut built = built.into_iter();
    let tables = (0..snap.shards.len())
        .map(|s| match snap.shards[s].tables.get(key) {
            Some(t) => t.clone(),
            None => built.next().expect("one build per missing shard"),
        })
        .collect();
    (tables, stats)
}

/// Builds the merged global table for a key (see the module docs for the
/// merge invariant).
pub(crate) fn build_merged(snap: &ShardedSnapshot, key: &[FacilityId]) -> BuiltTables {
    let (per_shard, stats) = shard_tables(snap, key);
    let merged = Arc::new(merge_tables(
        key,
        &per_shard,
        &snap.locals,
        &snap.users,
        &snap.model,
        stats,
    ));
    BuiltTables { merged, per_shard }
}

/// The merge itself: disjoint union of translated per-shard masks,
/// canonical value recomputation over the global user set.
pub(crate) fn merge_tables(
    key: &[FacilityId],
    per_shard: &[Arc<ServedTable>],
    locals: &[Arc<Vec<TrajectoryId>>],
    users: &UserSet,
    model: &ServiceModel,
    stats: EvalStats,
) -> ServedTable {
    let masks: Vec<FxHashMap<TrajectoryId, PointMask>> = (0..key.len())
        .map(|ci| {
            let mut merged: FxHashMap<TrajectoryId, PointMask> = Default::default();
            for (s, table) in per_shard.iter().enumerate() {
                for (lid, mask) in &table.masks[ci] {
                    merged.insert(locals[s][*lid as usize], mask.clone());
                }
            }
            merged
        })
        .collect();
    ServedTable::from_masks(users, model, key.to_vec(), masks, stats)
}
