//! Sharded crash recovery: per-shard longest-valid-prefix recovery,
//! composed into one consistent global id space by replaying the routing
//! log under the epoch-stamp rule.
//!
//! # The walk
//!
//! Each shard store recovers independently ([`Engine::open_with`]):
//! newest intact snapshot plus its WAL's longest valid prefix. Lost
//! batches therefore form a **suffix** of each shard's history. The
//! routing log (fsynced before every shard apply, so always a superset
//! of shard state) is then walked in record order; a record's events for
//! shard `s` are *materialized* iff its stamp for `s` is covered by the
//! shard's recovered epoch (`stamp == 0` means snapshot-covered / no
//! events). Because lost batches are suffixes, materialized events per
//! shard are prefix-closed — a materialized remove can never reference a
//! skipped insert.
//!
//! The walk assigns **fresh dense global ids** to materialized inserts
//! in original event order. When nothing was lost this renumbering is the
//! identity; when batches were lost it is a *monotone* compaction of the
//! surviving ids — which preserves every canonical (ascending-id)
//! summation order, so the recovered front end is bit-identical to an
//! engine built from exactly the surviving batches. A lossy walk ends by
//! checkpointing every shard and rewriting the routing log as one full
//! placement record ([`super::ShardedEngine::checkpoint`]), so the
//! renumbered id space becomes the durable one.

use super::routing::{self, RouteEvent};
use super::{persist_err, Partitioner, RouteEntry, ShardedDurable, ShardedEngine};
use crate::engine::{Engine, EngineError, TableMemo};
use crate::persist::StoreConfig;
use std::path::Path;
use tq_store::manifest::{ShardManifest, ROUTING_FILE};
use tq_trajectory::{FacilityId, TrajectoryId, UserSet};

/// The implementation behind [`Engine::open_sharded_with`].
pub(crate) fn open_sharded(dir: &Path, config: StoreConfig) -> Result<ShardedEngine, EngineError> {
    let manifest = ShardManifest::read(dir).map_err(persist_err)?;
    let shards = manifest.shards as usize;
    if shards == 0 {
        return Err(EngineError::Persist(
            "shard manifest names zero shards".into(),
        ));
    }
    let partitioner = Partitioner::from_spec(&manifest.partitioner).map_err(EngineError::Sharded)?;

    // Recover every shard in parallel — each one independently finds its
    // newest intact snapshot and replays its own WAL prefix.
    let opened: Vec<Result<Engine, EngineError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|s| {
                let shard_dir = ShardManifest::shard_dir(dir, s);
                scope.spawn(move || Engine::open_with(shard_dir, config))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard open panicked"))
            .collect()
    });
    let mut engines = Vec::with_capacity(shards);
    for (s, result) in opened.into_iter().enumerate() {
        engines.push(result.map_err(|e| match e {
            EngineError::Persist(why) => EngineError::Persist(format!("shard {s}: {why}")),
            other => other,
        })?);
    }
    for (s, engine) in engines.iter().enumerate().skip(1) {
        if engine.facilities().len() != engines[0].facilities().len() {
            return Err(EngineError::Sharded(format!(
                "shard {s} recovered {} facilities where shard 0 has {} — \
                 the shard stores are not siblings of one front end",
                engine.facilities().len(),
                engines[0].facilities().len()
            )));
        }
    }

    let routing_path = dir.join(ROUTING_FILE);
    let (records, summary) = routing::read_log(&routing_path).map_err(persist_err)?;
    if records.is_empty() {
        return Err(EngineError::Persist(
            "routing log has no readable initial-placement record".into(),
        ));
    }

    // The walk (see the module docs).
    let epochs: Vec<u64> = engines.iter().map(|e| e.epoch()).collect();
    let mut lossy = summary.tail_note.is_some();
    let mut users = UserSet::new();
    let mut live: Vec<bool> = Vec::new();
    let mut routing_map: Vec<RouteEntry> = Vec::new();
    let mut locals: Vec<Vec<TrajectoryId>> = vec![Vec::new(); shards];
    // Shard owners in the *original* id space (holes included), so a
    // remove can be attributed to its shard even when its insert was on
    // a lost suffix.
    let mut orig_shard: Vec<u16> = Vec::new();
    for record in &records {
        if record.stamps.len() != shards {
            return Err(EngineError::Persist(format!(
                "routing record {} carries {} stamps for {} shards",
                record.seq,
                record.stamps.len(),
                shards
            )));
        }
        let materialized: Vec<bool> = record
            .stamps
            .iter()
            .enumerate()
            .map(|(s, &stamp)| stamp == 0 || stamp <= epochs[s])
            .collect();
        for event in &record.events {
            match *event {
                RouteEvent::Insert { shard, alive: _ } => {
                    let s = shard as usize;
                    if s >= shards {
                        return Err(EngineError::Persist(format!(
                            "routing record {} routes an insert to unknown shard {s}",
                            record.seq
                        )));
                    }
                    orig_shard.push(shard);
                    if materialized[s] {
                        let lid = locals[s].len() as TrajectoryId;
                        if (lid as usize) >= engines[s].users().len() {
                            return Err(EngineError::Persist(format!(
                                "the routing log accounts for more trajectories on \
                                 shard {s} than its store recovered — the routing \
                                 log survived ahead of the shard's WAL"
                            )));
                        }
                        let gid = users.push(engines[s].users().get(lid).clone());
                        locals[s].push(gid);
                        routing_map.push(RouteEntry { shard, lid });
                        // The shard's recovered tombstones are the
                        // liveness ground truth (they already account for
                        // every materialized remove and, in rebased logs,
                        // for the `alive: false` flag).
                        live.push(engines[s].is_live(lid));
                    } else {
                        lossy = true;
                    }
                }
                RouteEvent::Remove { gid } => {
                    let original = gid as usize;
                    if original >= orig_shard.len() {
                        return Err(EngineError::Persist(format!(
                            "routing record {} removes unknown global id {gid}",
                            record.seq
                        )));
                    }
                    if !materialized[orig_shard[original] as usize] {
                        lossy = true;
                    }
                }
            }
        }
    }
    // Completeness: every trajectory a shard recovered must be accounted
    // for by a materialized routing insert.
    for (s, engine) in engines.iter().enumerate() {
        if locals[s].len() != engine.users().len() {
            return Err(EngineError::Persist(format!(
                "shard {s} recovered {} trajectories but the routing log \
                 accounts for {} — the shard's WAL survived ahead of the \
                 routing log",
                engine.users().len(),
                locals[s].len()
            )));
        }
    }

    let live_count = live.iter().filter(|&&l| l).count();
    let memo = TableMemo::new(engines[0].subset_table_capacity());
    let bounds = engines[0].tree().map(|t| t.bounds());
    let log = routing::open_log(&routing_path, summary.valid_bytes, config.sync)
        .map_err(persist_err)?;
    let durable = Some(ShardedDurable {
        root: dir.to_path_buf(),
        log,
        config,
        batch_seq: records.len() as u64,
    });
    let all_warm = engines
        .iter()
        .all(|e| e.full_table().is_some());
    let mut engine = ShardedEngine::assemble(
        engines,
        partitioner,
        live,
        live_count,
        routing_map,
        locals,
        users,
        memo,
        durable,
        bounds,
    );
    // A lossy recovery rebases: the renumbered id space is checkpointed
    // into every shard and the routing log collapses to one
    // full-placement record, so the next open is clean.
    if lossy {
        engine.checkpoint()?;
    }
    // When every shard recovered a warmed full-facility table, re-merge
    // it so the front end cold-starts warm too (mirroring single-engine
    // open, which recovers the warmed table from its snapshot).
    let all: Vec<FacilityId> = engine
        .snapshot
        .facilities
        .iter()
        .map(|(id, _)| id)
        .collect();
    if all_warm && !all.is_empty() {
        engine.warm();
    }
    Ok(engine)
}
