//! Partitioners: the pure rule assigning each trajectory to a shard.
//!
//! The rule must be a function of the trajectory *content* only — never of
//! arrival order or current shard sizes — so that replaying a routing log
//! (or rebuilding from scratch) lands every trajectory on the same shard.
//! Two rules are provided:
//!
//! * **Hash** — an [`FxHasher`] over the trajectory's endpoints and length,
//!   modulo the shard count. Spreads any workload evenly; destroys
//!   locality.
//! * **Z-range** — the trajectory's source point is mapped to a Z-order
//!   cell ([`ZId::of_point`]) at a fixed depth under the engine bounds and
//!   binary-searched against `shards − 1` split codes. Preserves spatial
//!   locality, so range-heavy scatter work stays shard-local; the splits
//!   are quantiles of the initial user set (falling back to an even
//!   horizontal slicing when the engine starts empty).
//!
//! Either way the *answers* of a sharded engine are bit-identical to a
//! single engine — the partitioner only decides where per-user work
//! happens, never how values are combined.

use crate::fasthash::FxHasher;
use std::hash::Hasher;
use tq_geometry::{Point, Rect, ZId};
use tq_store::manifest::PartitionerSpec;
use tq_trajectory::{Trajectory, UserSet};

/// Z-code depth used by [`Partitioner::z_range`] splits.
pub const Z_SPLIT_DEPTH: u8 = 16;

/// The shard-assignment rule of a
/// [`ShardedEngine`](crate::sharding::ShardedEngine). See the
/// module docs.
#[derive(Debug, Clone, PartialEq)]
pub enum Partitioner {
    /// Content hash modulo shard count.
    Hash,
    /// Spatial Z-order range split of the source point.
    ZRange {
        /// Root rectangle of the Z-space (the engine bounds).
        root: Rect,
        /// Depth at which source points are z-coded.
        depth: u8,
        /// `shards − 1` sorted split codes; shard `i` owns the codes in
        /// `[splits[i-1], splits[i])`.
        splits: Vec<ZId>,
    },
}

impl Partitioner {
    /// Builds a z-range partitioner whose splits are quantiles of
    /// `sample`'s source-point z-codes (even horizontal slices of `root`
    /// when the sample is empty). With fewer distinct codes than shards,
    /// trailing shards simply start empty — correctness does not depend on
    /// balance.
    pub fn z_range(root: Rect, sample: &UserSet, shards: usize) -> Partitioner {
        let mut codes: Vec<ZId> = sample
            .iter()
            .map(|(_, t)| ZId::of_point(&root, &t.source(), Z_SPLIT_DEPTH))
            .collect();
        codes.sort_unstable();
        let splits = (1..shards)
            .map(|i| {
                if codes.is_empty() {
                    let frac = i as f64 / shards as f64;
                    let p = Point::new(
                        root.min.x + (root.max.x - root.min.x) * frac,
                        root.min.y,
                    );
                    ZId::of_point(&root, &p, Z_SPLIT_DEPTH)
                } else {
                    codes[(i * codes.len()) / shards]
                }
            })
            .collect();
        Partitioner::ZRange {
            root,
            depth: Z_SPLIT_DEPTH,
            splits,
        }
    }

    /// The shard owning `t`, in `0..shards`.
    pub fn shard_of(&self, t: &Trajectory, shards: usize) -> usize {
        match self {
            Partitioner::Hash => {
                let mut h = FxHasher::default();
                let (src, dst) = (t.source(), t.destination());
                h.write_u64(src.x.to_bits());
                h.write_u64(src.y.to_bits());
                h.write_u64(dst.x.to_bits());
                h.write_u64(dst.y.to_bits());
                h.write_u64(t.len() as u64);
                (h.finish() % shards as u64) as usize
            }
            Partitioner::ZRange { root, depth, splits } => {
                let z = ZId::of_point(root, &t.source(), *depth);
                splits.partition_point(|s| *s <= z)
            }
        }
    }

    /// The durable description written into the store manifest.
    pub(crate) fn spec(&self) -> PartitionerSpec {
        match self {
            Partitioner::Hash => PartitionerSpec::Hash,
            Partitioner::ZRange { root, depth, splits } => PartitionerSpec::ZRange {
                root: *root,
                depth: *depth,
                splits: splits.iter().map(|z| (z.path_bits(), z.depth())).collect(),
            },
        }
    }

    /// Rebuilds a partitioner from its manifest description, validating
    /// the raw split codes.
    pub(crate) fn from_spec(spec: &PartitionerSpec) -> Result<Partitioner, String> {
        match spec {
            PartitionerSpec::Hash => Ok(Partitioner::Hash),
            PartitionerSpec::ZRange { root, depth, splits } => {
                let splits = splits
                    .iter()
                    .map(|&(path, d)| {
                        ZId::from_raw(path, d)
                            .ok_or_else(|| format!("invalid z split ({path:#x}, {d})"))
                    })
                    .collect::<Result<Vec<ZId>, String>>()?;
                Ok(Partitioner::ZRange {
                    root: *root,
                    depth: *depth,
                    splits,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn users(n: usize) -> UserSet {
        UserSet::from_vec(
            (0..n)
                .map(|i| {
                    let x = (i as f64 * 7.3) % 100.0;
                    let y = (i as f64 * 3.1) % 100.0;
                    Trajectory::two_point(Point::new(x, y), Point::new(x + 1.0, y + 1.0))
                })
                .collect(),
        )
    }

    #[test]
    fn hash_is_deterministic_and_in_range() {
        let us = users(200);
        for shards in [1, 2, 4, 8] {
            for (_, t) in us.iter() {
                let s = Partitioner::Hash.shard_of(t, shards);
                assert!(s < shards);
                assert_eq!(s, Partitioner::Hash.shard_of(t, shards));
            }
        }
    }

    #[test]
    fn z_range_quantiles_balance_and_roundtrip() {
        let root = Rect::new(Point::new(0.0, 0.0), Point::new(101.0, 101.0));
        let us = users(400);
        for shards in [2, 4, 8] {
            let p = Partitioner::z_range(root, &us, shards);
            let mut counts = vec![0usize; shards];
            for (_, t) in us.iter() {
                counts[p.shard_of(t, shards)] += 1;
            }
            // Quantile splits keep every shard within a loose balance band.
            assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
            // Manifest roundtrip preserves the rule exactly.
            let back = Partitioner::from_spec(&p.spec()).unwrap();
            assert_eq!(back, p);
        }
    }

    #[test]
    fn z_range_of_empty_sample_still_partitions() {
        let root = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let p = Partitioner::z_range(root, &UserSet::new(), 4);
        let t = Trajectory::two_point(Point::new(9.0, 9.0), Point::new(9.5, 9.5));
        assert!(p.shard_of(&t, 4) < 4);
    }
}
