//! The cross-shard marginal-gain combiner: greedy MaxkCovRST as a
//! scatter–gather round protocol.
//!
//! Plain greedy folds, per round and per candidate, a stream of per-user
//! marginal deltas in ascending trajectory-id order
//! ([`Coverage::marginal_views`]). Users are partitioned across shards
//! and shard-local ids are assigned in ascending global-id order, so each
//! shard can emit **its** slice of that stream locally (in ascending
//! global-id order after translation), and a k-way merge of the per-shard
//! streams reproduces the single-engine fold order — and therefore, since
//! floating-point addition is order-sensitive, the single engine's exact
//! gain bits. The winner is picked with the same `1e-12`/lowest-id rule,
//! every shard folds the winner into its local coverage, and the front
//! end replays the winner's merged delta stream into the running combined
//! value, reproducing [`Coverage::add_views`]' accumulation bit-for-bit.
//!
//! [`GainCombiner`] is the round protocol's participant interface. The
//! in-process [`LocalGains`] implements it over a shard's
//! [`ServedTable`]; the same protocol — score remaining candidates,
//! commit winner, report served count — is what a future distributed
//! max-cov would speak over `tqd` connections, which is why it is a trait
//! and not three inlined loops.

use crate::maxcov::{Coverage, MaskArena, ServedTable};
use crate::service::ServiceModel;
use std::sync::Arc;
use tq_trajectory::{FacilityId, TrajectoryId, UserSet};

/// One shard's participant in the greedy combiner rounds. Ids in emitted
/// streams are **global**; candidate indices refer to the shared candidate
/// order (identical on every shard and on the merged table).
pub trait GainCombiner {
    /// Per-candidate marginal-delta streams against the participant's
    /// current coverage, one per entry of `remaining`, each sorted by
    /// ascending global trajectory id. An entry is emitted exactly where
    /// `Coverage::marginal_views` would execute a `gain +=`.
    fn score(&self, remaining: &[usize]) -> Vec<Vec<(TrajectoryId, f64)>>;

    /// Folds candidate `winner`'s masks into the participant's coverage.
    fn commit(&mut self, winner: usize);

    /// Number of locally-owned users with strictly positive combined
    /// value under the current coverage.
    fn users_served(&self) -> usize;
}

/// The in-process [`GainCombiner`]: a shard's served masks flattened into
/// a [`MaskArena`], its local→global id map, and a local [`Coverage`]
/// keyed by shard-local ids.
pub struct LocalGains {
    /// Per-candidate canonical-order masks, flattened once per solve like
    /// plain greedy's [`MaskArena::from_table`].
    arena: MaskArena,
    /// Shard-local id → global id (monotone by construction).
    locals: Arc<Vec<TrajectoryId>>,
    users: Arc<UserSet>,
    model: ServiceModel,
    cov: Coverage,
}

impl LocalGains {
    /// A fresh participant over one shard's table.
    pub(crate) fn new(
        table: Arc<ServedTable>,
        locals: Arc<Vec<TrajectoryId>>,
        users: Arc<UserSet>,
        model: ServiceModel,
    ) -> LocalGains {
        LocalGains {
            arena: MaskArena::from_table(&table),
            locals,
            users,
            model,
            cov: Coverage::new(),
        }
    }
}

impl GainCombiner for LocalGains {
    fn score(&self, remaining: &[usize]) -> Vec<Vec<(TrajectoryId, f64)>> {
        let mut scratch = Vec::new();
        remaining
            .iter()
            .map(|&ci| {
                scratch.clear();
                self.cov.marginal_deltas_views(
                    &self.users,
                    &self.model,
                    self.arena.candidate(ci),
                    &mut scratch,
                );
                scratch
                    .iter()
                    .map(|&(lid, d)| (self.locals[lid as usize], d))
                    .collect()
            })
            .collect()
    }

    fn commit(&mut self, winner: usize) {
        // Field-disjoint borrows: `cov` is mutated while the mask views
        // stream out of `arena`.
        let LocalGains {
            arena,
            users,
            model,
            cov,
            ..
        } = self;
        cov.add_views(users, model, arena.candidate(winner));
    }

    fn users_served(&self) -> usize {
        self.cov.users_served(&self.users, &self.model)
    }
}

/// Folds the disjoint per-shard streams in ascending global-id order,
/// calling `fold` once per merged entry. Streams are pre-sorted and the
/// id spaces are disjoint (users live on exactly one shard), so a plain
/// pointer merge suffices.
fn fold_merged(streams: &[&[(TrajectoryId, f64)]], mut fold: impl FnMut(f64)) {
    let mut idx = vec![0usize; streams.len()];
    loop {
        let mut next: Option<(usize, TrajectoryId)> = None;
        for (s, stream) in streams.iter().enumerate() {
            if let Some(&(gid, _)) = stream.get(idx[s]) {
                if next.is_none_or(|(_, best)| gid < best) {
                    next = Some((s, gid));
                }
            }
        }
        let Some((s, _)) = next else { break };
        fold(streams[s][idx[s]].1);
        idx[s] += 1;
    }
}

/// The gather half of the greedy rounds: scores all remaining candidates
/// through the participants, merges their delta streams, selects winners
/// with plain greedy's exact comparator, and accumulates the combined
/// value by replaying winner streams entry-by-entry.
///
/// Returns `(chosen ids, combined value, users served)` — bit-identical
/// to [`crate::maxcov::greedy`] over the equivalent merged table.
pub(crate) fn sharded_greedy<W: GainCombiner + Sync>(
    workers: &mut [W],
    ids: &[FacilityId],
    k: usize,
) -> (Vec<FacilityId>, f64, usize) {
    let n = ids.len();
    let mut value = 0.0f64;
    let mut used = vec![false; n];
    let mut chosen = Vec::with_capacity(k.min(n));
    for _ in 0..k.min(n) {
        let remaining: Vec<usize> = (0..n).filter(|&i| !used[i]).collect();
        let rem = remaining.as_slice();
        // Scatter: each participant scores every remaining candidate
        // against its local coverage, in parallel across shards.
        let streams: Vec<Vec<Vec<(TrajectoryId, f64)>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = workers
                .iter()
                .map(|w| scope.spawn(move || w.score(rem)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Gather: fold each candidate's merged stream for its gain, then
        // select with plain greedy's tolerance/lowest-id comparator.
        let mut winner_streams: Vec<&[(TrajectoryId, f64)]> = Vec::new();
        let mut best: Option<(usize, f64)> = None;
        for (ri, &i) in remaining.iter().enumerate() {
            let per_shard: Vec<&[(TrajectoryId, f64)]> =
                streams.iter().map(|s| s[ri].as_slice()).collect();
            let mut gain = 0.0f64;
            fold_merged(&per_shard, |d| gain += d);
            let take = match best {
                Some((bi, bg)) => {
                    gain > bg + 1e-12 || (gain > bg - 1e-12 && ids[i] < ids[bi])
                }
                None => true,
            };
            if take {
                best = Some((i, gain));
                winner_streams = per_shard;
            }
        }
        let Some((bi, _)) = best else { break };
        used[bi] = true;
        // Replay the winner's merged stream into the running value —
        // entry-by-entry, exactly as `Coverage::add_views` accumulates
        // (`value += gain_of_round` would associate differently).
        fold_merged(&winner_streams, |d| value += d);
        for w in workers.iter_mut() {
            w.commit(bi);
        }
        chosen.push(ids[bi]);
    }
    let served = workers.iter().map(|w| w.users_served()).sum();
    (chosen, value, served)
}
