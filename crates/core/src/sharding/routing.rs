//! The routing log: the sharded front end's own write-ahead record of
//! *where* every trajectory went, in global arrival order.
//!
//! Per-shard stores already make each shard's state durable; what they
//! cannot express is the **global id space** — which global id each insert
//! received, and on which shard it lives. The routing log records exactly
//! that, one record per applied batch, using the standard
//! [`tq_store::wal`] framing (CRC per record, longest-valid-prefix reads):
//!
//! ```text
//! record seq 0   initial placement: one Insert event per initial
//!                trajectory, in global id order
//! record seq g   batch g's events, in their original order
//! ```
//!
//! Each record also carries one **WAL stamp per shard**: the epoch the
//! shard's own WAL will stamp this batch's sub-batch with (`0` when the
//! batch has no events for that shard). Recovery replays the routing log
//! against the independently recovered shards and materializes a record's
//! events for shard `s` only when `stamp ≤` the shard's recovered epoch —
//! the same epoch-stamp rule single-engine recovery uses, composed per
//! shard. See [`super::recover`] for the walk.
//!
//! The log is written **before** the per-shard applies and fsynced, so the
//! routing log is always a superset of shard state; a routing record whose
//! sub-batches never reached the shards is simply skipped by the stamp
//! rule on the next open.

use bytes::{BufMut, Bytes, BytesMut};
use std::path::Path;
use tq_store::codec::Reader;
use tq_store::wal::{self, SyncPolicy, WalSummary, WalWriter};
use tq_store::StoreError;
use tq_trajectory::TrajectoryId;

/// One routed event. Mirrors [`crate::dynamic::Update`], with the
/// trajectory body elided (shard stores hold it) and the shard decision
/// made explicit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RouteEvent {
    /// The next global id was assigned to a trajectory on `shard`.
    /// `alive` is false only in rebased logs (a recovered tombstone whose
    /// removal already happened).
    Insert {
        /// Owning shard.
        shard: u16,
        /// Liveness at log-write time.
        alive: bool,
    },
    /// The trajectory with this global id was removed.
    Remove {
        /// The removed global id.
        gid: TrajectoryId,
    },
}

/// One decoded routing record (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct RoutingRecord {
    /// Record sequence number (the WAL frame's epoch field): `0` for the
    /// initial placement, then one per batch.
    pub(crate) seq: u64,
    /// The batch's events, in original order.
    pub(crate) events: Vec<RouteEvent>,
    /// Per-shard WAL stamps; `0` = no events for that shard.
    pub(crate) stamps: Vec<u64>,
}

impl RoutingRecord {
    /// Encodes the record payload (the WAL frame adds seq + CRC).
    pub(crate) fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(8 + self.events.len() * 5);
        buf.put_u32_le(self.events.len() as u32);
        for e in &self.events {
            match *e {
                RouteEvent::Insert { shard, alive } => {
                    buf.put_u8(if alive { 0 } else { 2 });
                    buf.put_u16_le(shard);
                }
                RouteEvent::Remove { gid } => {
                    buf.put_u8(1);
                    buf.put_u32_le(gid);
                }
            }
        }
        buf.put_u16_le(self.stamps.len() as u16);
        for &s in &self.stamps {
            buf.put_u64_le(s);
        }
        buf.freeze()
    }

    /// Decodes a record payload read back from the log.
    pub(crate) fn decode(seq: u64, payload: Bytes) -> Result<RoutingRecord, StoreError> {
        let mut r = Reader::new(payload);
        let n = r.count(3)?;
        let mut events = Vec::with_capacity(n);
        for _ in 0..n {
            events.push(match r.u8()? {
                0 => RouteEvent::Insert {
                    shard: r.u16()?,
                    alive: true,
                },
                2 => RouteEvent::Insert {
                    shard: r.u16()?,
                    alive: false,
                },
                1 => RouteEvent::Remove { gid: r.u32()? },
                tag => {
                    return Err(StoreError::Corrupt(format!(
                        "unknown routing event tag {tag}"
                    )))
                }
            });
        }
        let m = r.u16()? as usize;
        let mut stamps = Vec::with_capacity(m);
        for _ in 0..m {
            stamps.push(r.u64()?);
        }
        r.finish()?;
        Ok(RoutingRecord { seq, events, stamps })
    }
}

/// Reads the routing log's longest valid prefix: CRC-framed prefix (from
/// [`wal::read`]) further cut at the first record that fails structural
/// decoding or breaks the dense `0, 1, 2, …` sequence rule.
pub(crate) fn read_log(path: &Path) -> Result<(Vec<RoutingRecord>, WalSummary), StoreError> {
    let (raw, mut summary) = wal::read(path)?;
    let mut records = Vec::with_capacity(raw.len());
    for rec in raw {
        if rec.epoch != records.len() as u64 {
            summary.tail_note = Some(format!(
                "routing seq {} where {} was expected",
                rec.epoch,
                records.len()
            ));
            break;
        }
        match RoutingRecord::decode(rec.epoch, rec.payload) {
            Ok(r) => records.push(r),
            Err(e) => {
                summary.tail_note = Some(format!(
                    "undecodable routing record {}: {e}",
                    rec.epoch
                ));
                break;
            }
        }
    }
    summary.records = records.len();
    Ok((records, summary))
}

/// Creates a fresh routing log (truncating any existing one) with the
/// standard WAL header. The parent-epoch field is unused by routing
/// recovery (the stamp rule replaces it) and always written as 0.
pub(crate) fn create_log(path: &Path, sync: SyncPolicy) -> Result<WalWriter, StoreError> {
    WalWriter::create(path, 0, sync)
}

/// Opens an existing routing log for appending after [`read_log`],
/// truncating the torn tail.
pub(crate) fn open_log(
    path: &Path,
    valid_bytes: u64,
    sync: SyncPolicy,
) -> Result<WalWriter, StoreError> {
    WalWriter::open_after_recovery(path, valid_bytes, 0, sync)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seq: u64) -> RoutingRecord {
        RoutingRecord {
            seq,
            events: vec![
                RouteEvent::Insert { shard: 3, alive: true },
                RouteEvent::Remove { gid: 17 },
                RouteEvent::Insert { shard: 0, alive: false },
            ],
            stamps: vec![5, 0, 0, 9],
        }
    }

    #[test]
    fn payload_roundtrip() {
        let r = sample(4);
        let enc = r.encode();
        assert_eq!(RoutingRecord::decode(4, enc).unwrap(), r);
    }

    #[test]
    fn log_roundtrip_and_sequence_rule() {
        let dir = std::env::temp_dir().join(format!("tq-routing-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("routing.tql");
        {
            let mut w = create_log(&path, SyncPolicy::Always).unwrap();
            for seq in 0..3 {
                let rec = sample(seq);
                w.append(seq, rec.encode().as_ref()).unwrap();
            }
            // A record violating the dense-sequence rule terminates the
            // readable prefix without erroring.
            w.append(7, sample(7).encode().as_ref()).unwrap();
        }
        let (records, summary) = read_log(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert!(summary.tail_note.unwrap().contains("seq 7"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
