//! A minimal Fx-style multiplicative hasher.
//!
//! The hot loops of service evaluation key hash maps by dense `u32`
//! trajectory ids; SipHash (the std default) dominates profiles there. This
//! is the well-known Firefox/rustc "FxHash" mixing function reimplemented in
//! a few lines so the workspace stays within its approved dependency set.
//! HashDoS resistance is irrelevant: keys are internal dense ids, never
//! attacker-controlled.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Fx hash (64-bit golden-ratio variant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher for small integer keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` with the fast hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the fast hasher.
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m[&i], i * 2);
        }
    }

    #[test]
    fn distinct_keys_distinct_hashes_mostly() {
        // Not a formal quality test — just a smoke check that the mixer
        // doesn't collapse consecutive ids.
        let mut set = FxHashSet::default();
        for i in 0..10_000u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            set.insert(h.finish());
        }
        assert_eq!(set.len(), 10_000);
    }

    #[test]
    fn write_bytes_consistent_with_chunks() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
    }
}
