//! The single-writer funnel: own an [`Engine`] on a dedicated thread and
//! expose a cloneable, thread-safe handle that serializes update batches
//! and checkpoints through a channel.
//!
//! The engine's concurrency model is many lock-free readers (clone a
//! [`Reader`] before spawning them) and **exactly
//! one** writer. In-process drivers like [`crate::serve`] keep the writer
//! on the calling thread; a daemon with many client connections needs the
//! opposite shape — any connection may carry an update batch, but all of
//! them must land on one thread. [`WriterHub::spawn`] is that shape:
//!
//! ```
//! use tq_core::engine::{Engine, Query};
//! use tq_core::dynamic::Update;
//! use tq_core::service::{Scenario, ServiceModel};
//! use tq_core::writer::WriterHub;
//! use tq_geometry::{Point, Rect};
//! use tq_trajectory::{Facility, FacilitySet, Trajectory, UserSet};
//!
//! let p = |x: f64, y: f64| Point::new(x, y);
//! let engine = Engine::builder(ServiceModel::new(Scenario::Transit, 2.0))
//!     .users(UserSet::from_vec(vec![
//!         Trajectory::two_point(p(0.0, 0.0), p(10.0, 0.0)),
//!     ]))
//!     .facilities(FacilitySet::from_vec(vec![
//!         Facility::new(vec![p(0.0, 1.0), p(10.0, 1.0)]),
//!     ]))
//!     .bounds(Rect::new(p(-50.0, -50.0), p(50.0, 50.0)))
//!     .build()
//!     .unwrap();
//!
//! let reader = engine.reader();          // lock-free read plane, any thread
//! let hub = WriterHub::spawn(engine);    // engine moves to the writer thread
//! let handle = hub.handle();             // Clone one per connection thread
//!
//! let ack = handle
//!     .apply(vec![Update::Insert(Trajectory::two_point(p(1.0, 0.0), p(2.0, 0.0)))])
//!     .unwrap();
//! assert_eq!(ack.outcome.inserted, vec![1]);
//! assert_eq!(reader.snapshot().epoch(), ack.epoch);
//!
//! let mut engine = hub.stop(false).unwrap(); // engine moves back to the caller
//! assert_eq!(engine.live_users(), 2);
//! # let _ = engine.run(Query::top_k(1)).unwrap();
//! ```
//!
//! Readers are unaffected while a batch applies — they keep answering from
//! the snapshot the writer last published. Requests block the *calling*
//! thread until the writer acknowledges; batches from different handles
//! are applied in channel order, and an acknowledged batch has already
//! passed through the engine's WAL-before-publish path when the engine is
//! durable.

use crate::dynamic::{BatchOutcome, Update};
use crate::engine::{session, Answer, BackendKind, Engine, EngineError, Explain, Query, Reader};
use crate::persist::PersistStatus;
use crate::sharding::{ShardedEngine, ShardedReader};
use std::path::PathBuf;
use std::sync::mpsc::{channel, sync_channel, RecvTimeoutError, Sender, SyncSender};
use std::sync::OnceLock;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Registry handles for the writer funnel. The batch histogram's tail
/// *is* the publish-stall story: a batch applies copy-on-write on the
/// writer thread and publishes at the end, so its wall time is exactly
/// how long the funnel was busy (readers are never blocked either way).
struct WriterMetrics {
    queue_depth: &'static tq_obs::Gauge,
    queued_ns: &'static tq_obs::Histogram,
    batch_ns: &'static tq_obs::Histogram,
    batches: &'static tq_obs::Counter,
}

fn writer_metrics() -> &'static WriterMetrics {
    static M: OnceLock<WriterMetrics> = OnceLock::new();
    M.get_or_init(|| WriterMetrics {
        queue_depth: tq_obs::gauge("tq_writer_queue_depth", ""),
        queued_ns: tq_obs::histogram("tq_writer_queued_ns", ""),
        batch_ns: tq_obs::histogram("tq_writer_batch_ns", ""),
        batches: tq_obs::counter("tq_writer_batches_total", ""),
    })
}

/// Rolls one funneled batch into the registry and offers it to the
/// slow-query log — the write-side sibling of the read path's
/// [`Explain::queued`] accounting, so write stalls surface in the same
/// place slow queries do.
fn note_apply(updates: usize, queued: Duration, wall: Duration, epoch: Option<u64>) {
    if !tq_obs::enabled() {
        return;
    }
    let m = writer_metrics();
    m.batches.incr();
    m.queued_ns.record(queued);
    m.batch_ns.record(wall);
    let total = tq_obs::duration_ns(queued).saturating_add(tq_obs::duration_ns(wall));
    tq_obs::record_slow(total, || {
        let explain = Explain {
            snapshot_epoch: epoch.unwrap_or(0),
            queued,
            wall,
            ..Explain::default()
        };
        format!("apply ({updates} updates) {explain}")
    });
}

/// A point-in-time description of a read plane — what a daemon's
/// hello/status frames report about the engine behind them.
#[derive(Debug, Clone, Copy)]
pub struct PlaneInfo {
    /// The latest published epoch.
    pub epoch: u64,
    /// The backend kind (homogeneous across shards on a sharded plane).
    pub backend: BackendKind,
    /// Total trajectories, tombstones included.
    pub users: usize,
    /// Live (not removed) trajectories.
    pub live_users: usize,
    /// Registered candidate facilities.
    pub facilities: usize,
}

/// The lock-free read plane paired with a [`ControlPlane`]: a cloneable
/// handle that answers queries off the latest published snapshot from
/// any number of threads, never touching the writer. Implemented by
/// [`Reader`] (single engine) and [`ShardedReader`] (scatter–gather
/// front end) with identical semantics.
pub trait ReadPlane: Clone + Send + Sync + 'static {
    /// The latest published epoch.
    fn latest_epoch(&self) -> u64;
    /// Takes the latest snapshot (an O(1) pointer clone) and answers
    /// `query` on it. The snapshot-grab time is recorded into the
    /// answer's [`Explain::queued`](crate::engine::Explain::queued).
    fn query(&self, query: Query) -> Result<Answer, EngineError>;
    /// Describes the latest snapshot for status reporting.
    fn info(&self) -> PlaneInfo;
}

impl ReadPlane for Reader {
    fn latest_epoch(&self) -> u64 {
        self.epoch()
    }

    fn query(&self, query: Query) -> Result<Answer, EngineError> {
        let arrived = Instant::now();
        let snapshot = self.snapshot();
        let queued = arrived.elapsed();
        let mut answer = snapshot.run(query)?;
        answer.explain.queued = queued;
        session::note_slow_query(&answer.explain);
        Ok(answer)
    }

    fn info(&self) -> PlaneInfo {
        let snap = self.snapshot();
        PlaneInfo {
            epoch: snap.epoch(),
            backend: snap.backend().kind(),
            users: snap.users().len(),
            live_users: snap.live_users(),
            facilities: snap.facilities().len(),
        }
    }
}

impl ReadPlane for ShardedReader {
    fn latest_epoch(&self) -> u64 {
        self.epoch()
    }

    fn query(&self, query: Query) -> Result<Answer, EngineError> {
        let arrived = Instant::now();
        let snapshot = self.snapshot();
        let queued = arrived.elapsed();
        let mut answer = snapshot.run(query)?;
        answer.explain.queued = queued;
        session::note_slow_query(&answer.explain);
        Ok(answer)
    }

    fn info(&self) -> PlaneInfo {
        let snap = self.snapshot();
        PlaneInfo {
            epoch: snap.epoch(),
            backend: snap.backend_kind(),
            users: snap.users().len(),
            live_users: snap.live_users(),
            facilities: snap.facilities().len(),
        }
    }
}

/// A single-writer control plane a [`WriterHub`] can own: the engine-side
/// contract of the funnel — all-or-nothing batch application, epoch
/// publication, and explicit checkpoints. Implemented by [`Engine`] and
/// by the sharded front end ([`ShardedEngine`]), so one daemon codebase
/// serves both (`tqd --shards N` funnels batches through the exact same
/// hub).
pub trait ControlPlane: Send + 'static {
    /// The read-plane handle paired with this control plane.
    type Reader: ReadPlane;
    /// A cloneable read handle following every publication of this
    /// engine. Clone before moving the engine into a [`WriterHub`].
    fn reader(&self) -> Self::Reader;
    /// Applies one update batch, all-or-nothing ([`Engine::apply`]).
    fn apply_batch(&mut self, updates: &[Update]) -> Result<BatchOutcome, EngineError>;
    /// The current published epoch.
    fn current_epoch(&self) -> u64;
    /// The attached store's status, `None` for in-memory.
    fn persist_status(&self) -> Option<PersistStatus>;
    /// Writes an explicit checkpoint, returning the snapshot path (the
    /// store's root directory for a sharded plane).
    fn write_checkpoint(&mut self) -> Result<PathBuf, EngineError>;
    /// Applies a batch shipped from a replication primary, publishing at
    /// the primary's stamp ([`Engine::apply_replicated`]). Control planes
    /// without replication support refuse it typed, never silently.
    fn apply_replicated(
        &mut self,
        _updates: &[Update],
        _stamp: u64,
    ) -> Result<BatchOutcome, EngineError> {
        Err(EngineError::Sharded(
            "this control plane cannot apply replicated batches".into(),
        ))
    }
    /// Idle-time housekeeping ([`Engine::maintain`]): age-based
    /// checkpointing and background-worker harvesting. Defaults to a
    /// no-op.
    fn maintain(&mut self) -> Result<(), EngineError> {
        Ok(())
    }
}

impl ControlPlane for Engine {
    type Reader = Reader;

    fn reader(&self) -> Reader {
        Engine::reader(self)
    }

    fn apply_batch(&mut self, updates: &[Update]) -> Result<BatchOutcome, EngineError> {
        self.apply(updates)
    }

    fn current_epoch(&self) -> u64 {
        self.epoch()
    }

    fn persist_status(&self) -> Option<PersistStatus> {
        self.persistence()
    }

    fn write_checkpoint(&mut self) -> Result<PathBuf, EngineError> {
        self.checkpoint()
    }

    fn apply_replicated(
        &mut self,
        updates: &[Update],
        stamp: u64,
    ) -> Result<BatchOutcome, EngineError> {
        Engine::apply_replicated(self, updates, stamp)
    }

    fn maintain(&mut self) -> Result<(), EngineError> {
        Engine::maintain(self)
    }
}

impl ControlPlane for ShardedEngine {
    type Reader = ShardedReader;

    fn reader(&self) -> ShardedReader {
        ShardedEngine::reader(self)
    }

    fn apply_batch(&mut self, updates: &[Update]) -> Result<BatchOutcome, EngineError> {
        self.apply(updates)
    }

    fn current_epoch(&self) -> u64 {
        self.epoch()
    }

    fn persist_status(&self) -> Option<PersistStatus> {
        self.persistence()
    }

    fn write_checkpoint(&mut self) -> Result<PathBuf, EngineError> {
        self.checkpoint()
    }
}

/// Acknowledgement of one applied batch: what it did and where it left the
/// engine.
#[derive(Debug, Clone)]
pub struct BatchAck {
    /// The epoch the batch published — readers observing this epoch (or a
    /// later one) see the batch.
    pub epoch: u64,
    /// Per-batch work summary from [`Engine::apply`].
    pub outcome: BatchOutcome,
    /// WAL records pending since the last checkpoint (`0` for an in-memory
    /// engine, and right after an auto-checkpoint).
    pub wal_batches: u64,
}

/// Acknowledgement of an explicit checkpoint.
#[derive(Debug, Clone)]
pub struct CheckpointAck {
    /// The epoch the snapshot captured.
    pub epoch: u64,
    /// The snapshot file written.
    pub path: PathBuf,
}

/// Why a [`WriterHandle`] request failed.
#[derive(Debug)]
pub enum WriterError {
    /// The engine rejected the request (the engine itself is fine; for
    /// [`EngineError::CheckpointFailed`] the batch *is* applied and
    /// durable — see [`Engine::apply`]).
    Engine(EngineError),
    /// The writer thread has stopped; no writer holds the engine anymore.
    Stopped,
}

impl std::fmt::Display for WriterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WriterError::Engine(e) => write!(f, "{e}"),
            WriterError::Stopped => write!(f, "the writer thread has stopped"),
        }
    }
}

impl std::error::Error for WriterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WriterError::Engine(e) => Some(e),
            WriterError::Stopped => None,
        }
    }
}

enum Msg {
    // Apply-path messages carry their send stamp so the writer thread
    // can account the channel wait as `Explain::queued` — the write-side
    // sibling of the read plane's snapshot-grab delay.
    Apply(Vec<Update>, Instant, SyncSender<Result<BatchAck, EngineError>>),
    Replicate(Vec<Update>, u64, Instant, SyncSender<Result<BatchAck, EngineError>>),
    Checkpoint(SyncSender<Result<CheckpointAck, EngineError>>),
    Promote(SyncSender<Result<u64, EngineError>>),
    Stop { final_checkpoint: bool },
}

/// A post-acknowledgement observer of every batch the writer publishes:
/// called on the writer thread with the published epoch and the batch,
/// *after* the batch is applied, WAL-logged and acknowledged. A
/// replication primary installs one to feed its followers; the tap must
/// never block (the [`tq_repl` hub]'s queues are bounded `try_send` for
/// exactly that reason).
///
/// [`tq_repl` hub]: ../../tq_repl/index.html
pub type BatchTap = Box<dyn Fn(u64, &[Update]) + Send>;

/// Tunables for [`WriterHub::spawn_with`]. The [`Default`] options are
/// exactly [`WriterHub::spawn`]: no tap, writable, half-second tick.
#[derive(Default)]
pub struct WriterOptions {
    /// Observer of every published batch — see [`BatchTap`]. Fires for
    /// direct *and* replicated applies, so a promoted (or chained)
    /// follower feeds its own followers.
    pub tap: Option<BatchTap>,
    /// `Some(primary_addr)` starts the hub read-only: direct
    /// [`WriterHandle::apply`] calls are refused with
    /// [`EngineError::ReadOnly`] naming that address, while replicated
    /// applies (and [`WriterHandle::promote`]) still work.
    pub read_only: Option<String>,
    /// Idle interval between [`ControlPlane::maintain`] calls when no
    /// requests arrive. Defaults to 500 ms.
    pub tick: Option<Duration>,
}

/// A cloneable, sendable handle that funnels requests to the writer
/// thread. Each call blocks until the writer replies.
#[derive(Clone)]
pub struct WriterHandle {
    tx: Sender<Msg>,
}

impl WriterHandle {
    fn roundtrip<T>(
        &self,
        make: impl FnOnce(SyncSender<Result<T, EngineError>>) -> Msg,
    ) -> Result<T, WriterError> {
        let (reply_tx, reply_rx) = sync_channel(1);
        self.tx.send(make(reply_tx)).map_err(|_| WriterError::Stopped)?;
        reply_rx
            .recv()
            .map_err(|_| WriterError::Stopped)?
            .map_err(WriterError::Engine)
    }

    /// Applies one update batch through the single writer. All-or-nothing,
    /// exactly as [`Engine::apply`]: a rejected batch leaves the engine (and
    /// its WAL) untouched.
    pub fn apply(&self, batch: Vec<Update>) -> Result<BatchAck, WriterError> {
        let depth = writer_metrics().queue_depth;
        depth.inc();
        let out = self.roundtrip(|reply| Msg::Apply(batch, Instant::now(), reply));
        depth.dec();
        out
    }

    /// Takes an explicit checkpoint ([`Engine::checkpoint`]). Errors with
    /// [`EngineError::NotDurable`] through [`WriterError::Engine`] when the
    /// engine has no attached store.
    pub fn checkpoint(&self) -> Result<CheckpointAck, WriterError> {
        self.roundtrip(Msg::Checkpoint)
    }

    /// Applies a batch shipped from a replication primary at the
    /// primary's epoch stamp ([`Engine::apply_replicated`]). Works on a
    /// read-only hub — this *is* the follower's write path.
    pub fn apply_replicated(
        &self,
        batch: Vec<Update>,
        stamp: u64,
    ) -> Result<BatchAck, WriterError> {
        let depth = writer_metrics().queue_depth;
        depth.inc();
        let out = self.roundtrip(|reply| Msg::Replicate(batch, stamp, Instant::now(), reply));
        depth.dec();
        out
    }

    /// Lifts a read-only hub into a writable one (follower promotion) and
    /// returns the epoch it promotes at. Idempotent; a no-op on a hub
    /// that is already writable.
    pub fn promote(&self) -> Result<u64, WriterError> {
        self.roundtrip(Msg::Promote)
    }
}

/// Owns the writer thread. Keep the hub where the engine's lifecycle is
/// managed; pass [`WriterHandle`] clones to everything else.
///
/// Generic over the [`ControlPlane`] it owns — a plain [`Engine`] (the
/// default) or a [`ShardedEngine`] front end; the handles are identical
/// either way.
pub struct WriterHub<C: ControlPlane = Engine> {
    tx: Sender<Msg>,
    thread: JoinHandle<Result<C, EngineError>>,
}

impl<C: ControlPlane> WriterHub<C> {
    /// Moves the control plane to a dedicated writer thread and starts
    /// serving requests. Clone a [`Reader`] (and
    /// warm, if wanted) *before* spawning — the hub gives the engine back
    /// only on [`WriterHub::stop`].
    pub fn spawn(engine: C) -> WriterHub<C> {
        WriterHub::spawn_with(engine, WriterOptions::default())
    }

    /// [`WriterHub::spawn`] with explicit [`WriterOptions`]: a post-ack
    /// batch tap (the replication feed point), an initial read-only state
    /// (a follower hub), and the idle [`ControlPlane::maintain`] tick.
    pub fn spawn_with(engine: C, options: WriterOptions) -> WriterHub<C> {
        let (tx, rx) = channel::<Msg>();
        let tick = options.tick.unwrap_or(Duration::from_millis(500));
        let tap = options.tap;
        let mut read_only = options.read_only;
        let thread = std::thread::spawn(move || {
            let mut engine = engine;
            loop {
                let msg = match rx.recv_timeout(tick) {
                    Ok(msg) => msg,
                    Err(RecvTimeoutError::Timeout) => {
                        // Idle housekeeping. An error here (a failed
                        // age-based checkpoint) has no requester to carry
                        // it; the WAL still holds every acked batch, and
                        // the verdict resurfaces on the next apply's
                        // harvest.
                        let _ = engine.maintain();
                        continue;
                    }
                    Err(RecvTimeoutError::Disconnected) => break,
                };
                match msg {
                    Msg::Apply(batch, sent, reply) => {
                        if let Some(primary) = &read_only {
                            let _ = reply.send(Err(EngineError::ReadOnly {
                                primary: primary.clone(),
                            }));
                            continue;
                        }
                        let queued = sent.elapsed();
                        let applying = Instant::now();
                        let ack = engine.apply_batch(&batch).map(|outcome| BatchAck {
                            epoch: engine.current_epoch(),
                            outcome,
                            wal_batches: engine
                                .persist_status()
                                .map_or(0, |s| s.wal_batches as u64),
                        });
                        let ship = ack.as_ref().map(|a| a.epoch).ok();
                        note_apply(batch.len(), queued, applying.elapsed(), ship);
                        // A dropped requester is not a writer problem.
                        let _ = reply.send(ack);
                        // Ship-after-ack: the batch is applied, WAL-logged
                        // and acknowledged before any follower sees it.
                        if let (Some(tap), Some(epoch)) = (&tap, ship) {
                            tap(epoch, &batch);
                        }
                    }
                    Msg::Replicate(batch, stamp, sent, reply) => {
                        let before = engine.current_epoch();
                        let queued = sent.elapsed();
                        let applying = Instant::now();
                        let ack =
                            engine.apply_replicated(&batch, stamp).map(|outcome| BatchAck {
                                epoch: engine.current_epoch(),
                                outcome,
                                wal_batches: engine
                                    .persist_status()
                                    .map_or(0, |s| s.wal_batches as u64),
                            });
                        // A stamp-skipped (already-reflected) batch leaves
                        // the epoch in place and must not re-ship.
                        let ship = ack.as_ref().map(|a| a.epoch).ok().filter(|&e| e > before);
                        note_apply(batch.len(), queued, applying.elapsed(), ship);
                        let _ = reply.send(ack);
                        // Replicated applies feed the tap too, so a chained
                        // or later-promoted follower can serve followers of
                        // its own.
                        if let (Some(tap), Some(epoch)) = (&tap, ship) {
                            tap(epoch, &batch);
                        }
                    }
                    Msg::Checkpoint(reply) => {
                        let ack = engine.write_checkpoint().map(|path| CheckpointAck {
                            epoch: engine.current_epoch(),
                            path,
                        });
                        let _ = reply.send(ack);
                    }
                    Msg::Promote(reply) => {
                        read_only = None;
                        let _ = reply.send(Ok(engine.current_epoch()));
                    }
                    Msg::Stop { final_checkpoint } => {
                        if final_checkpoint && engine.persist_status().is_some() {
                            engine.write_checkpoint()?;
                        }
                        break;
                    }
                }
            }
            // All senders gone without a Stop counts as an abort: no final
            // checkpoint, the WAL already holds every acknowledged batch.
            Ok(engine)
        });
        WriterHub { tx, thread }
    }

    /// A new funnel handle for another thread.
    pub fn handle(&self) -> WriterHandle {
        WriterHandle { tx: self.tx.clone() }
    }

    /// Stops the writer and returns the engine. With `final_checkpoint`
    /// set, a durable engine writes one last snapshot first (a checkpoint
    /// failure surfaces here — the WAL still holds every acknowledged
    /// batch, so nothing is lost). Requests already queued ahead of the
    /// stop are served first; handles that outlive the hub get
    /// [`WriterError::Stopped`].
    pub fn stop(self, final_checkpoint: bool) -> Result<C, EngineError> {
        let _ = self.tx.send(Msg::Stop { final_checkpoint });
        self.thread
            .join()
            .map_err(|_| EngineError::Persist("the writer thread panicked".into()))?
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Query;
    use crate::service::{Scenario, ServiceModel};
    use tq_geometry::{Point, Rect};
    use tq_trajectory::{Facility, FacilitySet, Trajectory, UserSet};

    fn small_engine() -> Engine {
        let p = |x: f64, y: f64| Point::new(x, y);
        Engine::builder(ServiceModel::new(Scenario::Transit, 2.0))
            .users(UserSet::from_vec(vec![
                Trajectory::two_point(p(0.0, 0.0), p(10.0, 0.0)),
                Trajectory::two_point(p(0.0, 5.0), p(10.0, 5.0)),
            ]))
            .facilities(FacilitySet::from_vec(vec![
                Facility::new(vec![p(0.0, 1.0), p(10.0, 1.0)]),
                Facility::new(vec![p(0.0, 4.0), p(10.0, 4.0)]),
            ]))
            .bounds(Rect::new(p(-100.0, -100.0), p(100.0, 100.0)))
            .build()
            .unwrap()
    }

    #[test]
    fn concurrent_handles_serialize_batches() {
        let engine = small_engine();
        let reader = engine.reader();
        let e0 = engine.epoch();
        let hub = WriterHub::spawn(engine);
        let p = |x: f64, y: f64| Point::new(x, y);

        let threads: Vec<_> = (0..4)
            .map(|i| {
                let handle = hub.handle();
                std::thread::spawn(move || {
                    let y = 10.0 + i as f64;
                    handle
                        .apply(vec![Update::Insert(Trajectory::two_point(
                            p(0.0, y),
                            p(10.0, y),
                        ))])
                        .unwrap()
                })
            })
            .collect();
        let mut epochs: Vec<u64> = threads.into_iter().map(|t| t.join().unwrap().epoch).collect();
        epochs.sort_unstable();
        // One publication per batch, strictly ordered: the funnel
        // serialized four concurrent writers.
        assert_eq!(epochs, (e0 + 1..=e0 + 4).collect::<Vec<_>>());
        assert_eq!(reader.snapshot().epoch(), e0 + 4);
        assert_eq!(reader.snapshot().live_users(), 6);

        let engine = hub.stop(false).unwrap();
        assert_eq!(engine.live_users(), 6);
    }

    #[test]
    fn rejected_batches_leave_the_engine_untouched() {
        let engine = small_engine();
        let e0 = engine.epoch();
        let hub = WriterHub::spawn(engine);
        let handle = hub.handle();
        let err = handle.apply(vec![Update::Remove(999)]).unwrap_err();
        assert!(matches!(err, WriterError::Engine(EngineError::Update(_))));
        // Checkpoint on an in-memory engine is a typed refusal, not a panic.
        assert!(matches!(
            handle.checkpoint().unwrap_err(),
            WriterError::Engine(EngineError::NotDurable)
        ));
        let mut engine = hub.stop(false).unwrap();
        assert_eq!(engine.epoch(), e0);
        assert_eq!(engine.live_users(), 2);
        assert!(handle.apply(vec![]).is_err(), "handle outlived the hub");
        let _ = engine.run(Query::top_k(1)).unwrap();
    }
}
