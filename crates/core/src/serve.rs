//! The `Serve` driver: a sharded worker pool fanning a mixed query/update
//! workload across published [`Snapshot`](crate::engine::Snapshot)s.
//!
//! This is the layer that turns the two-plane engine
//! ([`Snapshot`](crate::engine::Snapshot) read plane, single-writer
//! [`Engine`] control plane) into a serving loop: [`serve`] spawns one
//! **client shard** per requested client thread, hands each a cloned
//! [`Reader`](crate::engine::Reader), and drives the engine's update
//! stream from the calling thread (the single writer) until the
//! configured duration elapses. [`serve_sharded`] runs the identical
//! loop over a [`ShardedEngine`] — readers hold
//! [`ShardedReader`](crate::sharding::ShardedReader)s and every query scatter–gathers across the
//! shards, bit-identical to a single engine. Each shard owns its slice of the load —
//! its own query cursor (offset by shard id so shards interleave the
//! script differently), its own counters, its own latency accumulators —
//! so the hot path shares nothing but the publication slot and one stop
//! flag; shard state is merged into the [`ServeReport`] only at join
//! time.
//!
//! Per request a shard takes the latest snapshot (an O(1) `Arc` clone),
//! records how long the request waited between arrival and execution
//! start into [`Explain::queued`](crate::engine::Explain::queued), and
//! answers through [`Snapshot::run`](crate::engine::Snapshot::run) —
//! lock-free, on whatever epoch was current when the request started.
//! Updates never stall readers: while the writer copy-on-write-patches
//! the next epoch, every shard keeps answering on the epochs it holds.
//!
//! Evaluation fan-out composes instead of oversubscribing: each shard
//! installs a per-session thread budget
//! ([`parallel::session_thread_budget`]) around its loop, so `N` clients
//! each running table builds stay within the machine's core count.
//!
//! ```
//! use std::time::Duration;
//! use tq_core::engine::{Engine, Query};
//! use tq_core::serve::{serve, ServeConfig, Workload};
//! use tq_core::service::{Scenario, ServiceModel};
//! use tq_geometry::Point;
//! use tq_trajectory::{Facility, FacilitySet, Trajectory, UserSet};
//!
//! let p = |x: f64, y: f64| Point::new(x, y);
//! let users = UserSet::from_vec(vec![
//!     Trajectory::two_point(p(0.0, 0.0), p(10.0, 0.0)),
//!     Trajectory::two_point(p(50.0, 50.0), p(60.0, 50.0)),
//! ]);
//! let routes = FacilitySet::from_vec(vec![
//!     Facility::new(vec![p(0.0, 1.0), p(10.0, 1.0)]),
//!     Facility::new(vec![p(50.0, 51.0), p(60.0, 51.0)]),
//! ]);
//! let mut engine = Engine::builder(ServiceModel::new(Scenario::Transit, 2.0))
//!     .users(users)
//!     .facilities(routes)
//!     .build()
//!     .unwrap();
//! engine.warm();
//!
//! let workload = Workload {
//!     queries: vec![Query::top_k(2), Query::max_cov(1)],
//!     update_batches: Vec::new(),
//! };
//! let config = ServeConfig {
//!     clients: 2,
//!     duration: Duration::from_millis(20),
//!     ..ServeConfig::default()
//! };
//! let report = serve(&mut engine, &workload, &config).unwrap();
//! assert!(report.queries >= 2, "every shard answers at least once");
//! assert_eq!(report.epoch_regressions(), 0);
//! ```

use crate::dynamic::Update;
use crate::engine::{Answer, Engine, EngineError, Query};
use crate::parallel;
use crate::sharding::ShardedEngine;
use crate::writer::{ControlPlane, ReadPlane};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// The load to serve: a query script the client shards cycle through, and
/// the update batches the single writer applies while they do.
#[derive(Debug, Clone, Default)]
pub struct Workload {
    /// The query script. Shard `s` starts at script position `s` and
    /// cycles, so different shards interleave the script at different
    /// phases. Must be non-empty.
    pub queries: Vec<Query>,
    /// Update batches the writer applies in order (each at most once —
    /// update events name absolute trajectory ids, so a batch cannot
    /// replay). When the stream runs out before the duration does, the
    /// writer idles and the readers keep serving the final epoch.
    pub update_batches: Vec<Vec<Update>>,
}

/// Knobs of one [`serve`] run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of client shards (reader threads). Must be at least 1.
    pub clients: usize,
    /// How long to serve. Every shard answers at least one query even at
    /// zero duration.
    pub duration: Duration,
    /// Evaluation threads each shard may fan out to per query; `0` picks
    /// [`parallel::session_thread_budget`]`(clients + 1)` (the `+ 1`
    /// reserves a share for the writer).
    pub threads_per_client: usize,
    /// Writer pacing: sleep between consecutive update batches
    /// (`Duration::ZERO` = apply back-to-back).
    pub update_pause: Duration,
    /// On a durable engine (see [`crate::persist`]), finish the run with
    /// an [`Engine::checkpoint`] so the whole serving session's updates
    /// are compacted into one fresh snapshot and the WAL is empty for the
    /// next cold start. Ignored (no-op) on in-memory engines. During the
    /// run itself every applied batch is already WAL-logged by
    /// [`Engine::apply`] before it publishes.
    pub final_checkpoint: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            clients: 4,
            duration: Duration::from_secs(1),
            threads_per_client: 0,
            update_pause: Duration::ZERO,
            final_checkpoint: false,
        }
    }
}

/// One client shard's share of a [`ServeReport`].
#[derive(Debug, Clone, Default)]
pub struct ClientStats {
    /// Queries this shard answered.
    pub queries: u64,
    /// First and last snapshot epochs this shard observed.
    pub first_epoch: u64,
    /// See [`ClientStats::first_epoch`].
    pub last_epoch: u64,
    /// Times an observed epoch was *smaller* than the one before — always
    /// 0 unless snapshot publication is broken.
    pub epoch_regressions: u64,
    /// Summed query execution time (the [`Explain::wall`] values).
    ///
    /// [`Explain::wall`]: crate::engine::Explain::wall
    pub busy: Duration,
    /// Summed queue delay (the [`Explain::queued`] values).
    ///
    /// [`Explain::queued`]: crate::engine::Explain::queued
    pub queued: Duration,
    /// Worst single queue delay.
    pub max_queued: Duration,
    /// The shard's final answer — a representative sample for `explain:`
    /// reporting.
    pub last_answer: Option<Answer>,
}

/// What a [`serve`] run did: aggregate throughput, writer-side stall
/// numbers, and the per-shard breakdown.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Client shard count.
    pub clients: usize,
    /// Total wall time of the run.
    pub wall: Duration,
    /// Total queries answered across all shards.
    pub queries: u64,
    /// Aggregate read throughput: `queries / wall`.
    pub qps: f64,
    /// Update batches the writer applied.
    pub batches_applied: u64,
    /// Epoch published when the run started.
    pub first_epoch: u64,
    /// Epoch published when the run ended.
    pub last_epoch: u64,
    /// Total writer time spent applying + publishing batches — the whole
    /// write-plane cost; none of it stalls a reader.
    pub writer_busy: Duration,
    /// Worst single batch apply+publish time (the longest any *new*
    /// snapshot request could lag behind the freshest data, not a pause
    /// in query service).
    pub max_publish: Duration,
    /// Per-shard breakdown.
    pub per_client: Vec<ClientStats>,
}

impl ServeReport {
    /// Total epoch regressions across shards (0 unless publication is
    /// broken).
    pub fn epoch_regressions(&self) -> u64 {
        self.per_client.iter().map(|c| c.epoch_regressions).sum()
    }

    /// Mean queue delay across all answered queries.
    pub fn mean_queued(&self) -> Duration {
        let total: Duration = self.per_client.iter().map(|c| c.queued).sum();
        if self.queries == 0 {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(total.as_secs_f64() / self.queries as f64)
        }
    }

    /// A representative answer (the first shard's last), for `explain:`
    /// reporting.
    pub fn sample_answer(&self) -> Option<&Answer> {
        self.per_client.iter().find_map(|c| c.last_answer.as_ref())
    }

    /// A multi-line human-readable summary (what `tq serve` prints).
    pub fn summary(&self) -> String {
        let mut s = format!(
            "served {} queries from {} clients in {:.3}s — {:.0} qps aggregate\n\
             epochs {}..={} ({} update batches; writer busy {:.3}s, worst publish {:.3}ms)\n\
             mean queue delay {:.3}ms",
            self.queries,
            self.clients,
            self.wall.as_secs_f64(),
            self.qps,
            self.first_epoch,
            self.last_epoch,
            self.batches_applied,
            self.writer_busy.as_secs_f64(),
            self.max_publish.as_secs_f64() * 1e3,
            self.mean_queued().as_secs_f64() * 1e3,
        );
        for (i, c) in self.per_client.iter().enumerate() {
            s.push_str(&format!(
                "\n  client {i}: {} queries, epochs {}..={}, busy {:.3}s, max queued {:.3}ms",
                c.queries,
                c.first_epoch,
                c.last_epoch,
                c.busy.as_secs_f64(),
                c.max_queued.as_secs_f64() * 1e3,
            ));
        }
        s
    }
}

/// Serves `workload` from `engine` for the configured duration: `clients`
/// reader shards answer the query script off published snapshots while
/// the calling thread — the single writer — applies the update stream and
/// publishes epochs. Returns the merged [`ServeReport`].
///
/// Errors surface from either plane: a query validation error from any
/// shard, or an update rejection from the writer (e.g.
/// [`EngineError::UpdatesUnsupported`] on a baseline backend with a
/// non-empty update stream). The workload is deterministic per shard, so
/// an error is reproducible by re-running the offending query/batch
/// directly.
///
/// # Panics
/// Panics when `config.clients == 0` or `workload.queries` is empty.
pub fn serve(
    engine: &mut Engine,
    workload: &Workload,
    config: &ServeConfig,
) -> Result<ServeReport, EngineError> {
    serve_with(engine, workload, config)
}

/// The sharded sibling of [`serve`]: identical loop, identical report —
/// client shards answer off published
/// [`ShardedSnapshot`](crate::sharding::ShardedSnapshot)s (each query
/// scatter–gathers across the engine's shards, bit-identical to a single
/// engine) while the calling thread applies the update stream through
/// [`ShardedEngine::apply`], which routes each batch to its owning
/// shards and publishes one new sharded epoch.
///
/// # Panics
/// Panics when `config.clients == 0` or `workload.queries` is empty.
pub fn serve_sharded(
    engine: &mut ShardedEngine,
    workload: &Workload,
    config: &ServeConfig,
) -> Result<ServeReport, EngineError> {
    serve_with(engine, workload, config)
}

/// The serving loop both front ends share, generic over the
/// single-writer [`ControlPlane`] and its paired
/// [`ReadPlane`] handle.
fn serve_with<C: ControlPlane>(
    engine: &mut C,
    workload: &Workload,
    config: &ServeConfig,
) -> Result<ServeReport, EngineError> {
    assert!(config.clients >= 1, "serve needs at least one client");
    assert!(!workload.queries.is_empty(), "serve needs a query script");
    let reader = engine.reader();
    let first_epoch = engine.current_epoch();
    let budget = if config.threads_per_client > 0 {
        config.threads_per_client
    } else {
        parallel::session_thread_budget(config.clients + 1)
    };
    let stop = AtomicBool::new(false);
    let start = Instant::now();
    let deadline = start + config.duration;

    let mut batches_applied = 0u64;
    let mut writer_busy = Duration::ZERO;
    let mut max_publish = Duration::ZERO;
    let mut writer_err: Option<EngineError> = None;

    let shard_results: Vec<Result<ClientStats, EngineError>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..config.clients)
            .map(|shard| {
                let reader = reader.clone();
                let stop = &stop;
                let queries = &workload.queries;
                s.spawn(move || client_shard(shard, &reader, queries, stop, budget))
            })
            .collect();

        // The single writer: apply the update stream until it runs out,
        // the deadline passes, or a shard reports an error (a shard's
        // queries are deterministic — once one fails, the run's outcome
        // is Err and waiting out the duration would only burn CPU).
        // Sleeps are sliced so that signal is noticed promptly.
        let mut batches = workload.update_batches.iter();
        let idle_slice = Duration::from_millis(20);
        loop {
            let now = Instant::now();
            if now >= deadline || writer_err.is_some() || stop.load(Ordering::Relaxed) {
                break;
            }
            match batches.next() {
                Some(batch) => {
                    let t = Instant::now();
                    // The writer works under the same per-session budget
                    // as each client shard — the `+ 1` share the budget
                    // reserved — so rebuild-heavy batches don't fan out
                    // to every core under the readers.
                    match parallel::with_threads(budget, || engine.apply_batch(batch)) {
                        Ok(_) => {
                            let took = t.elapsed();
                            writer_busy += took;
                            max_publish = max_publish.max(took);
                            batches_applied += 1;
                        }
                        Err(e) => writer_err = Some(e),
                    }
                    let pause_until = Instant::now() + config.update_pause.min(
                        deadline.saturating_duration_since(Instant::now()),
                    );
                    while Instant::now() < pause_until && !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(
                            idle_slice.min(pause_until.saturating_duration_since(Instant::now())),
                        );
                    }
                }
                None => {
                    // Stream exhausted: readers keep serving the final
                    // epoch until the deadline.
                    std::thread::sleep(
                        idle_slice.min(deadline.saturating_duration_since(Instant::now())),
                    );
                }
            }
        }
        stop.store(true, Ordering::Relaxed);
        handles
            .into_iter()
            .map(|h| h.join().expect("client shard panicked"))
            .collect()
    });

    if let Some(e) = writer_err {
        return Err(e);
    }
    let mut per_client = Vec::with_capacity(shard_results.len());
    for r in shard_results {
        per_client.push(r?);
    }
    if config.final_checkpoint && engine.persist_status().is_some() {
        engine.write_checkpoint()?;
    }
    let wall = start.elapsed();
    let queries: u64 = per_client.iter().map(|c| c.queries).sum();
    Ok(ServeReport {
        clients: config.clients,
        wall,
        queries,
        qps: queries as f64 / wall.as_secs_f64().max(f64::MIN_POSITIVE),
        batches_applied,
        first_epoch,
        last_epoch: engine.current_epoch(),
        writer_busy,
        max_publish,
        per_client,
    })
}

/// One client shard's serving loop: pick the next scripted query, take
/// the latest snapshot, answer lock-free, account. Runs under the shard's
/// evaluation thread budget so concurrent shards' fan-outs compose.
fn client_shard<R: ReadPlane>(
    shard: usize,
    reader: &R,
    queries: &[Query],
    stop: &AtomicBool,
    budget: usize,
) -> Result<ClientStats, EngineError> {
    parallel::with_threads(budget, || {
        let mut stats = ClientStats::default();
        let mut cursor = shard;
        loop {
            let query = queries[cursor % queries.len()].clone();
            cursor += 1;
            let answer = match reader.query(query) {
                Ok(a) => a,
                Err(e) => {
                    // Wave the whole run off: the script is deterministic,
                    // so the serve() result is already known to be Err —
                    // no point letting the other shards and the writer run
                    // out the clock.
                    stop.store(true, Ordering::Relaxed);
                    return Err(e);
                }
            };
            let queued = answer.explain.queued;

            let epoch = answer.explain.snapshot_epoch;
            if stats.queries == 0 {
                stats.first_epoch = epoch;
            } else if epoch < stats.last_epoch {
                stats.epoch_regressions += 1;
            }
            stats.last_epoch = stats.last_epoch.max(epoch);
            stats.queries += 1;
            stats.busy += answer.explain.wall;
            stats.queued += queued;
            stats.max_queued = stats.max_queued.max(queued);
            stats.last_answer = Some(answer);

            // Check the flag *after* answering so even a zero-duration run
            // serves one query per shard.
            if stop.load(Ordering::Relaxed) {
                return Ok(stats);
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{Scenario, ServiceModel};
    use tq_geometry::{Point, Rect};
    use tq_trajectory::{Facility, FacilitySet, Trajectory, UserSet};

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn engine() -> Engine {
        let users = UserSet::from_vec(vec![
            Trajectory::two_point(p(1.0, 1.0), p(9.0, 1.0)),
            Trajectory::two_point(p(1.0, 5.0), p(9.0, 5.0)),
        ]);
        let routes = FacilitySet::from_vec(vec![
            Facility::new(vec![p(1.0, 2.0), p(9.0, 2.0)]),
            Facility::new(vec![p(1.0, 6.0), p(9.0, 6.0)]),
        ]);
        Engine::builder(ServiceModel::new(Scenario::Transit, 2.0))
            .users(users)
            .facilities(routes)
            .bounds(Rect::new(p(0.0, 0.0), p(10.0, 10.0)))
            .build()
            .unwrap()
    }

    #[test]
    fn serves_queries_and_updates_concurrently() {
        let mut e = engine();
        e.warm();
        let workload = Workload {
            queries: vec![Query::top_k(2), Query::max_cov(1)],
            update_batches: vec![
                vec![Update::Insert(Trajectory::two_point(p(2.0, 1.0), p(8.0, 1.0)))],
                vec![Update::Remove(2)],
            ],
        };
        let config = ServeConfig {
            clients: 3,
            duration: Duration::from_millis(50),
            ..ServeConfig::default()
        };
        let report = serve(&mut e, &workload, &config).unwrap();
        assert_eq!(report.batches_applied, 2);
        assert!(report.queries >= 3);
        assert_eq!(report.epoch_regressions(), 0);
        assert_eq!(report.last_epoch, e.epoch());
        assert!(report.last_epoch >= report.first_epoch + 2);
        assert!(report.sample_answer().is_some());
        assert!(report.summary().contains("qps"));
    }

    #[test]
    fn zero_duration_still_answers_once_per_shard() {
        let mut e = engine();
        let workload = Workload {
            queries: vec![Query::top_k(1)],
            update_batches: Vec::new(),
        };
        let config = ServeConfig {
            clients: 2,
            duration: Duration::ZERO,
            ..ServeConfig::default()
        };
        let report = serve(&mut e, &workload, &config).unwrap();
        assert!(report.queries >= 2);
        for c in &report.per_client {
            assert!(c.queries >= 1);
        }
    }

    #[test]
    fn shard_query_errors_surface_and_end_the_run_early() {
        let mut e = engine();
        let workload = Workload {
            queries: vec![Query::top_k(99)],
            update_batches: Vec::new(),
        };
        // A long configured duration must not delay the error: the first
        // failing shard waves the whole run off.
        let config = ServeConfig {
            clients: 2,
            duration: Duration::from_secs(600),
            ..ServeConfig::default()
        };
        let start = std::time::Instant::now();
        let err = serve(&mut e, &workload, &config).unwrap_err();
        assert_eq!(err, EngineError::KExceedsCandidates { k: 99, candidates: 2 });
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "run should end at the first shard error, not at the deadline"
        );
    }

    #[test]
    fn sharded_serving_matches_the_single_engine() {
        let users = UserSet::from_vec(vec![
            Trajectory::two_point(p(1.0, 1.0), p(9.0, 1.0)),
            Trajectory::two_point(p(1.0, 5.0), p(9.0, 5.0)),
            Trajectory::two_point(p(2.0, 1.0), p(8.0, 1.0)),
        ]);
        let routes = FacilitySet::from_vec(vec![
            Facility::new(vec![p(1.0, 2.0), p(9.0, 2.0)]),
            Facility::new(vec![p(1.0, 6.0), p(9.0, 6.0)]),
        ]);
        let bounds = Rect::new(p(0.0, 0.0), p(10.0, 10.0));
        let build = || {
            Engine::builder(ServiceModel::new(Scenario::Transit, 2.0))
                .users(users.clone())
                .facilities(routes.clone())
                .bounds(bounds)
        };
        let mut sharded = build().shards(2).build_sharded().unwrap();
        let mut single = build().build().unwrap();

        let workload = Workload {
            queries: vec![Query::top_k(2), Query::max_cov(1)],
            update_batches: vec![
                vec![Update::Insert(Trajectory::two_point(p(2.0, 5.0), p(8.0, 5.0)))],
                vec![Update::Remove(0)],
            ],
        };
        let config = ServeConfig {
            clients: 2,
            duration: Duration::from_millis(50),
            ..ServeConfig::default()
        };
        let report = serve_sharded(&mut sharded, &workload, &config).unwrap();
        assert_eq!(report.batches_applied, 2);
        assert!(report.queries >= 2);
        assert_eq!(report.epoch_regressions(), 0);
        assert_eq!(report.last_epoch, sharded.epoch());

        // The served answers are the single engine's answers, bit for bit.
        for batch in &workload.update_batches {
            single.apply(batch).unwrap();
        }
        let want = single.run(Query::top_k(2)).unwrap();
        let got = sharded.run(Query::top_k(2)).unwrap();
        assert_eq!(got.ranked(), want.ranked());
    }

    #[test]
    fn writer_errors_surface() {
        let users = UserSet::from_vec(vec![Trajectory::two_point(p(1.0, 1.0), p(2.0, 2.0))]);
        let routes = FacilitySet::from_vec(vec![Facility::new(vec![p(1.0, 1.5)])]);
        let mut e = Engine::builder(ServiceModel::new(Scenario::Transit, 2.0))
            .users(users)
            .facilities(routes)
            .baseline()
            .build()
            .unwrap();
        let workload = Workload {
            queries: vec![Query::top_k(1)],
            update_batches: vec![vec![Update::Remove(0)]],
        };
        let config = ServeConfig {
            clients: 1,
            duration: Duration::from_millis(20),
            ..ServeConfig::default()
        };
        let err = serve(&mut e, &workload, &config).unwrap_err();
        assert_eq!(err, EngineError::UpdatesUnsupported);
    }
}
