//! The paper's baseline (**BL** / **G-BL**) query processing.
//!
//! BL indexes the individual *points* of all user trajectories in a
//! traditional spatial index (a point quadtree, as in the paper's §VI) and
//! evaluates each facility in the paper's own words: *"the user trajectories
//! that are within ψ distance are retrieved by executing a range query in a
//! traditional index"* — i.e. one rectangular range query over the
//! facility's ψ-expanded MBR (EMBR), after which every candidate trajectory
//! is verified exactly, testing its points against every stop. The lack of
//! any per-stop locality in that candidate set is precisely what the TQ-tree
//! improves on, and what the paper's 2–3 order-of-magnitude gaps measure.
//! kMaxRRST degenerates to "evaluate every facility, sort, take k";
//! MaxkCovRST's greedy (G-BL) feeds the same per-facility masks into the
//! shared greedy solver of `tq-core`.
//!
//! The baseline produces *exactly* the same service values and masks as the
//! TQ-tree evaluators (integration tests enforce this); only the work it
//! performs differs. Values are summed in the canonical ascending
//! trajectory-id order ([`crate::eval::canonical_value`]), so baseline
//! answers are **bit-identical** to the TQ-tree answers — which is what lets
//! [`crate::engine::Engine`] treat the two as interchangeable
//! [`crate::engine::Backend`]s and cross-check them against each other.
//! (The baseline always evaluates *every* trajectory point; a TQ-tree
//! under two-point placement exposes only endpoints, so over multipoint
//! data the identity requires the segmented or full-trajectory placement
//! — see the [`crate::engine`] docs.)

use crate::eval::{EvalOutcome, EvalStats};
use crate::fasthash::FxHashMap;
use crate::maxcov::{greedy, CovOutcome, ServedTable};
use crate::service::{PointMask, ServiceModel};
use crate::topk::TopKOutcome;
use tq_geometry::{Point, Rect};
use tq_quadtree::QuadTree;
use tq_trajectory::{FacilityId, FacilitySet, TrajectoryId, UserSet};

/// Leaf capacity of the baseline's point quadtree.
pub const DEFAULT_LEAF_CAPACITY: usize = 64;

/// The baseline index: every point of every user trajectory, individually.
#[derive(Debug, Clone)]
pub struct BaselineIndex {
    tree: QuadTree<(TrajectoryId, u32)>,
}

impl BaselineIndex {
    /// Indexes all points of `users` in a point quadtree.
    pub fn build(users: &UserSet) -> BaselineIndex {
        Self::build_with_capacity(users, DEFAULT_LEAF_CAPACITY)
    }

    /// Like [`BaselineIndex::build`] with an explicit leaf capacity.
    pub fn build_with_capacity(users: &UserSet, capacity: usize) -> BaselineIndex {
        let bounds = users
            .mbr()
            .map(|r| r.expand((r.width().max(r.height()) * 1e-3).max(1e-9)))
            .unwrap_or_else(|| Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)));
        let mut tree = QuadTree::with_max_depth(bounds, capacity.max(1), 24);
        for (id, t) in users.iter() {
            for (i, &p) in t.points().iter().enumerate() {
                tree.insert(p, (id, i as u32));
            }
        }
        BaselineIndex { tree }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// The leaf capacity the index was built with — the build parameter
    /// the snapshot format persists so a load can rebuild this index
    /// bit-identically from the decoded user set.
    pub fn capacity(&self) -> usize {
        self.tree.capacity()
    }

    /// Returns `true` when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Evaluates one facility the paper's way: one range query over the
    /// facility's EMBR retrieves every candidate user trajectory, then each
    /// candidate is verified exactly against every stop.
    ///
    /// Note the asymmetry to the TQ-tree methods: the candidate set carries
    /// no per-stop locality, so a trajectory anywhere inside the (large)
    /// EMBR pays `O(|u| · |stops|)` distance tests.
    pub fn evaluate(
        &self,
        users: &UserSet,
        model: &ServiceModel,
        facility: &tq_trajectory::Facility,
    ) -> EvalOutcome {
        let mut stats = EvalStats::default();
        let psi = model.psi;
        let psi_sq = psi * psi;
        let embr = facility.embr(psi);
        stats.nodes_visited += 1; // one range query per facility

        // Phase 1: candidate retrieval (the paper's "range query in a
        // traditional index").
        let mut candidates: FxHashMap<TrajectoryId, ()> = FxHashMap::default();
        self.tree.range_visit(&embr, |_, (traj, _)| {
            candidates.entry(traj).or_insert(());
        });

        // Phase 2: exact verification of each candidate trajectory.
        let mut masks: FxHashMap<TrajectoryId, PointMask> = FxHashMap::default();
        for (&traj, _) in candidates.iter() {
            stats.items_tested += 1;
            let t = users.get(traj);
            let mut mask: Option<PointMask> = None;
            for (i, p) in t.points().iter().enumerate() {
                for s in facility.stops() {
                    stats.distance_checks += 1;
                    if s.dist_sq(p) <= psi_sq {
                        mask.get_or_insert_with(|| PointMask::empty(t.len())).set(i);
                        break;
                    }
                }
            }
            if let Some(m) = mask {
                masks.insert(traj, m);
            }
        }
        // Canonical (ascending-id) summation: bit-identical to what the
        // TQ-tree evaluators report for the same facility.
        let value = crate::eval::canonical_value(users, model, &masks);
        EvalOutcome {
            value,
            masks,
            stats,
        }
    }

    /// kMaxRRST by exhaustive evaluation: computes every facility's value
    /// and returns the best `k` (the paper's BL query algorithm).
    pub fn top_k(
        &self,
        users: &UserSet,
        model: &ServiceModel,
        facilities: &FacilitySet,
        k: usize,
    ) -> TopKOutcome {
        let mut stats = EvalStats::default();
        let mut ranked: Vec<(FacilityId, f64)> = facilities
            .iter()
            .map(|(id, f)| {
                let out = self.evaluate(users, model, f);
                stats.add(&out.stats);
                (id, out.value)
            })
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        TopKOutcome {
            ranked,
            stats,
            relaxations: 0,
        }
    }

    /// Builds a [`ServedTable`] (input to the MaxkCovRST solvers) through
    /// baseline evaluation — the table behind the paper's G-BL.
    pub fn served_table(
        &self,
        users: &UserSet,
        model: &ServiceModel,
        facilities: &FacilitySet,
    ) -> ServedTable {
        let mut stats = EvalStats::default();
        let mut ids = Vec::with_capacity(facilities.len());
        let mut masks = Vec::with_capacity(facilities.len());
        for (id, f) in facilities.iter() {
            let out = self.evaluate(users, model, f);
            stats.add(&out.stats);
            ids.push(id);
            masks.push(out.masks);
        }
        ServedTable::from_masks(users, model, ids, masks, stats)
    }

    /// The paper's G-BL: straightforward greedy MaxkCovRST over baseline
    /// evaluation.
    pub fn greedy_max_cov(
        &self,
        users: &UserSet,
        model: &ServiceModel,
        facilities: &FacilitySet,
        k: usize,
    ) -> CovOutcome {
        let table = self.served_table(users, model, facilities);
        greedy(&table, users, model, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use crate::eval::{brute_force_masks, brute_force_value};
    use crate::service::Scenario;
    use tq_trajectory::{Facility, Trajectory};

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn random_users(n: usize, seed: u64) -> UserSet {
        let mut rng = StdRng::seed_from_u64(seed);
        UserSet::from_vec(
            (0..n)
                .map(|_| {
                    let len = rng.gen_range(2..5);
                    let pts = (0..len)
                        .map(|_| p(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
                        .collect();
                    Trajectory::new(pts)
                })
                .collect(),
        )
    }

    fn random_facility(stops: usize, seed: u64) -> Facility {
        let mut rng = StdRng::seed_from_u64(seed);
        Facility::new(
            (0..stops)
                .map(|_| p(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
                .collect(),
        )
    }

    #[test]
    fn evaluate_matches_oracle_masks_and_values() {
        let users = random_users(300, 1);
        let index = BaselineIndex::build(&users);
        assert_eq!(index.len(), users.total_points());
        for scenario in Scenario::ALL {
            let model = ServiceModel::new(scenario, 6.0);
            for fs in 0..4 {
                let f = random_facility(8, 50 + fs);
                let got = index.evaluate(&users, &model, &f);
                let want_masks = brute_force_masks(&users, &model, &f);
                let want_value = brute_force_value(&users, &model, &f);
                assert!((got.value - want_value).abs() < 1e-9, "{scenario:?}");
                assert_eq!(got.masks.len(), want_masks.len());
                for (id, m) in &want_masks {
                    assert_eq!(got.masks.get(id), Some(m));
                }
            }
        }
    }

    #[test]
    fn top_k_is_sorted_and_exact() {
        let users = random_users(200, 2);
        let index = BaselineIndex::build(&users);
        let model = ServiceModel::new(Scenario::Transit, 8.0);
        let facilities = tq_trajectory::FacilitySet::from_vec(
            (0..10).map(|i| random_facility(5, 100 + i)).collect(),
        );
        let out = index.top_k(&users, &model, &facilities, 3);
        assert_eq!(out.ranked.len(), 3);
        assert!(out.ranked.windows(2).all(|w| w[0].1 >= w[1].1));
        // Exactness against the oracle for the winner.
        let (best_id, best_val) = out.ranked[0];
        let want = brute_force_value(&users, &model, facilities.get(best_id));
        assert!((best_val - want).abs() < 1e-9);
    }

    #[test]
    fn greedy_max_cov_runs_and_counts_overlap_once() {
        let users = UserSet::from_vec(vec![
            Trajectory::two_point(p(0.0, 0.0), p(2.0, 0.0)),
            Trajectory::two_point(p(10.0, 0.0), p(12.0, 0.0)),
        ]);
        let index = BaselineIndex::build(&users);
        let model = ServiceModel::new(Scenario::Transit, 1.0);
        let f_both = Facility::new(vec![p(0.0, 0.5), p(2.0, 0.5)]);
        let facilities = tq_trajectory::FacilitySet::from_vec(vec![
            f_both.clone(),
            f_both,
            Facility::new(vec![p(10.0, 0.5), p(12.0, 0.5)]),
        ]);
        let out = index.greedy_max_cov(&users, &model, &facilities, 2);
        assert_eq!(out.value, 2.0);
        assert_eq!(out.users_served, 2);
        assert!(out.chosen.contains(&2), "complementary facility required");
    }

    #[test]
    fn empty_user_set() {
        let users = UserSet::new();
        let index = BaselineIndex::build(&users);
        assert!(index.is_empty());
        let model = ServiceModel::new(Scenario::Transit, 1.0);
        let out = index.evaluate(&users, &model, &random_facility(4, 9));
        assert_eq!(out.value, 0.0);
        assert!(out.masks.is_empty());
    }
}
