//! Service value semantics.
//!
//! The paper defines three application scenarios for how a facility serves a
//! user trajectory (§II):
//!
//! * **Scenario 1** (`Transit`) — binary: served iff both the source and the
//!   destination are within `ψ` of facility stops;
//! * **Scenario 2** (`PointCount`) — partial: the fraction of the user's
//!   points within `ψ` of stops;
//! * **Scenario 3** (`Length`) — partial: the fraction of the user's path
//!   length covered (we credit a segment when both its endpoints are served,
//!   see DESIGN.md §5).
//!
//! All three are evaluated through a per-user [`PointMask`] recording *which*
//! points have been served so far. Masks are monotone (bits only get set),
//! which makes them suitable both for incremental best-first exploration
//! (kMaxRRST) and for the overlap-aware union aggregation `AGG` that
//! MaxkCovRST requires: the combined service of several facilities is the
//! value of the OR of their masks.
//!
//! # Word-block kernels
//!
//! Masks are fixed-width blocks of 64-bit words (see [`PointMask`] for the
//! layout) and every hot operation streams whole words instead of touching
//! bits one at a time:
//!
//! * coverage counting is a per-word `count_ones()` popcount;
//! * union / changed-detection fold `new & !old` across the words;
//! * the Scenario-3 segment test is word-parallel: segment `s` is served iff
//!   bits `s` and `s+1` are both set, so `w & (w >> 1)` yields all served
//!   segments of one word at once, with the cross-word pair
//!   (bit 63 of `wᵢ`, bit 0 of `wᵢ₊₁`) carried in explicitly. Set bits of
//!   the pair word are then walked in ascending order (`trailing_zeros`), so
//!   the per-segment length summation runs in **exactly** the order of the
//!   scalar loop it replaced — which keeps every reported value bit-identical
//!   (float addition is order-sensitive).
//!
//! [`MaskView`] is the borrowed form of a mask (length + word slice); it lets
//! solver hot paths stream masks out of a flat arena
//! ([`crate::maxcov::MaskArena`]) without per-user allocations, and
//! [`ServiceModel::value_union`] evaluates the value of the OR of two masks
//! without materializing it.

use std::fmt;
use tq_trajectory::Trajectory;

/// Which of the paper's three service semantics to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Scenario 1: binary source+destination service (e.g. commuting).
    Transit,
    /// Scenario 2: fraction of trajectory points served (e.g. tourist POIs).
    PointCount,
    /// Scenario 3: fraction of trajectory length served (e.g. on-board
    /// Wi-Fi / advertisement exposure).
    Length,
}

impl Scenario {
    /// All scenarios, for parameterized tests and benches.
    pub const ALL: [Scenario; 3] = [Scenario::Transit, Scenario::PointCount, Scenario::Length];

    /// Returns `true` for the scenarios where a user can be served
    /// *partially* (any served point contributes).
    #[inline]
    pub fn is_partial(self) -> bool {
        !matches!(self, Scenario::Transit)
    }
}

/// The service model: a scenario plus the distance threshold `ψ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceModel {
    /// Service semantics.
    pub scenario: Scenario,
    /// Distance threshold `ψ`: a user point is served by a stop within `ψ`.
    pub psi: f64,
}

impl ServiceModel {
    /// Creates a model.
    ///
    /// # Panics
    /// Panics when `psi` is negative or non-finite.
    pub fn new(scenario: Scenario, psi: f64) -> Self {
        assert!(psi.is_finite() && psi >= 0.0, "ψ must be finite and ≥ 0");
        ServiceModel { scenario, psi }
    }

    /// The service value `S(u, ·)` of a user given its served-point mask.
    ///
    /// Monotone in the mask: setting more bits never lowers the value.
    #[inline]
    pub fn value(&self, u: &Trajectory, mask: &PointMask) -> f64 {
        self.value_view(u, mask.view())
    }

    /// [`ServiceModel::value`] over a borrowed [`MaskView`] — the form the
    /// solver hot paths use to stream masks out of a flat arena.
    pub fn value_view(&self, u: &Trajectory, mask: MaskView<'_>) -> f64 {
        debug_assert_eq!(mask.nbits(), u.len(), "mask/trajectory length mismatch");
        match self.scenario {
            Scenario::Transit => {
                if mask.get(0) && mask.get(u.len() - 1) {
                    1.0
                } else {
                    0.0
                }
            }
            Scenario::PointCount => mask.count_ones() as f64 / u.len() as f64,
            Scenario::Length => {
                let total = u.length();
                if total <= 0.0 {
                    // Degenerate zero-length trajectory: fall back to the
                    // binary semantics so the value stays in [0, 1].
                    return if mask.count_ones() as usize == u.len() {
                        1.0
                    } else {
                        0.0
                    };
                }
                let words = mask.words();
                segment_sum(u, words.len(), |i| words[i]) / total
            }
        }
    }

    /// The value of `a ∪ b` without materializing the union — the same
    /// word kernels as [`ServiceModel::value_view`] run over `aᵢ | bᵢ`, so
    /// the result is bit-identical to unioning into a fresh mask and
    /// evaluating that. This is what makes the greedy marginal-gain round
    /// allocation-free: the old path cloned the coverage mask per candidate
    /// per user just to ask "what would the union be worth?".
    pub fn value_union(&self, u: &Trajectory, a: MaskView<'_>, b: MaskView<'_>) -> f64 {
        debug_assert_eq!(a.nbits(), b.nbits(), "mask size mismatch");
        debug_assert_eq!(a.nbits(), u.len(), "mask/trajectory length mismatch");
        let (aw, bw) = (a.words(), b.words());
        match self.scenario {
            Scenario::Transit => {
                let last = u.len() - 1;
                let first_set = (aw[0] | bw[0]) & 1 == 1;
                let last_set = ((aw[last >> 6] | bw[last >> 6]) >> (last & 63)) & 1 == 1;
                if first_set && last_set {
                    1.0
                } else {
                    0.0
                }
            }
            Scenario::PointCount => {
                let ones: u32 = aw.iter().zip(bw).map(|(&x, &y)| (x | y).count_ones()).sum();
                ones as f64 / u.len() as f64
            }
            Scenario::Length => {
                let total = u.length();
                if total <= 0.0 {
                    let ones: u32 =
                        aw.iter().zip(bw).map(|(&x, &y)| (x | y).count_ones()).sum();
                    return if ones as usize == u.len() { 1.0 } else { 0.0 };
                }
                segment_sum(u, aw.len(), |i| aw[i] | bw[i]) / total
            }
        }
    }

    /// The largest value any facility could contribute for `u`
    /// (i.e. the value of the all-ones mask): always `1.0` under the
    /// normalized semantics.
    #[inline]
    pub fn max_value(&self, _u: &Trajectory) -> f64 {
        1.0
    }

    /// Admissible upper bound (`sub` in the paper, §III) contributed by one
    /// *stored item* of the index for scenario-specific best-first search.
    ///
    /// See [`ServiceBounds`] for how per-node aggregates are formed.
    pub fn bound_of(&self, b: &ServiceBounds) -> f64 {
        match self.scenario {
            Scenario::Transit => b.s1,
            Scenario::PointCount => b.s2,
            Scenario::Length => b.s3,
        }
    }
}

/// The word-parallel Scenario-3 kernel: Σ `segment_length(s)` over every
/// segment `s` whose endpoint bits `s` and `s+1` are both set in the mask
/// words produced by `word(i)`.
///
/// Per word, `w & (w >> 1)` has bit `j` set iff bits `j` and `j+1` are both
/// set; the pair straddling the word boundary (bit 63 of `wᵢ` with bit 0 of
/// `wᵢ₊₁`) is carried in explicitly. Set bits are then visited in ascending
/// order via `trailing_zeros`, so the float accumulation order is exactly
/// the scalar `for s in 0..num_segments` loop's — bit-identical sums.
///
/// Mask bits at or beyond `nbits` are zero by [`PointMask`]'s invariant, so
/// no pair bit beyond the last real segment can ever be set.
#[inline]
fn segment_sum(u: &Trajectory, nwords: usize, word: impl Fn(usize) -> u64) -> f64 {
    // One cache fetch up front; the loop then indexes the slice directly.
    let seg_len = u.segment_lengths();
    let mut served = 0.0;
    let mut w = if nwords > 0 { word(0) } else { 0 };
    for wi in 0..nwords {
        let next = if wi + 1 < nwords { word(wi + 1) } else { 0 };
        let mut pairs = (w & (w >> 1)) | (((w >> 63) & next & 1) << 63);
        while pairs != 0 {
            let s = (wi << 6) | pairs.trailing_zeros() as usize;
            served += seg_len[s];
            pairs &= pairs - 1;
        }
        w = next;
    }
    served
}

/// Words per cache block: heap-allocated masks are padded to a multiple of
/// four words (32 bytes), so the union/count/segment kernels always stream
/// whole blocks and the tail never needs scalar handling.
const WORDS_PER_BLOCK: usize = 4;

/// Number of 64-bit words that actually carry bits of an `nbits`-point mask.
#[inline]
const fn live_words(nbits: u32) -> usize {
    (nbits as usize).div_ceil(64)
}

/// Word-streaming union: ORs `src` into `dst`, returning nonzero iff any
/// new bit was set (`src & !dst` folded across the words).
#[inline]
fn union_words(dst: &mut [u64], src: &[u64]) -> u64 {
    debug_assert_eq!(dst.len(), src.len());
    let mut fresh = 0u64;
    for (x, &y) in dst.iter_mut().zip(src) {
        fresh |= y & !*x;
        *x |= y;
    }
    fresh
}

/// Sizes of the two masks involved in a failed union — the typed form of
/// the "mask size mismatch" panic, for callers whose masks come from
/// decoded (untrusted) data rather than from a single in-process build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaskSizeMismatch {
    /// Point count of the mask being unioned into.
    pub dst: usize,
    /// Point count of the mask being unioned from.
    pub src: usize,
}

impl fmt::Display for MaskSizeMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mask size mismatch: cannot union a {}-point mask into a {}-point mask \
             (masks must describe the same trajectory)",
            self.src, self.dst
        )
    }
}

impl std::error::Error for MaskSizeMismatch {}

/// A monotone bitmask over the points of one user trajectory.
///
/// Bit `i` set means point `i` of the trajectory has been served (is within
/// `ψ` of a stop of some facility considered so far).
///
/// # Layout
///
/// ```text
/// nbits ≤ 128   Inline([u64; 2])        — no allocation; covers the
///                                          overwhelming majority of real
///                                          trajectories (trips are 2-point)
/// nbits > 128   Heap(Box<[u64]>)        — padded up to a multiple of 4
///                                          words (32-byte blocks) so the
///                                          word kernels never need a
///                                          scalar tail
/// ```
///
/// Invariant: every bit at index ≥ `nbits` (the padding) is zero. All word
/// kernels rely on it — popcounts may sum the raw words, and the Scenario-3
/// pair kernel cannot produce a phantom segment past the trajectory's end.
///
/// # Contracts
///
/// `get`/`set` debug-assert `i < nbits` (both representations — the old
/// small/large split disagreed here). [`PointMask::union_with`] panics on a
/// size mismatch; [`PointMask::try_union_with`] is the typed-error form for
/// masks originating from decoded, untrusted data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointMask {
    /// Number of trajectory points the mask describes.
    nbits: u32,
    words: Words,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Words {
    /// Inline storage for masks of ≤ 128 points.
    Inline([u64; 2]),
    /// Heap storage, padded to a multiple of [`WORDS_PER_BLOCK`] words.
    Heap(Box<[u64]>),
}

impl PointMask {
    /// An empty (all-unserved) mask for a trajectory of `n_points` points.
    pub fn empty(n_points: usize) -> Self {
        let nbits = u32::try_from(n_points).expect("trajectory too long for a mask");
        let words = if n_points <= 128 {
            Words::Inline([0; 2])
        } else {
            Words::Heap(
                vec![0u64; live_words(nbits).next_multiple_of(WORDS_PER_BLOCK)]
                    .into_boxed_slice(),
            )
        };
        PointMask { nbits, words }
    }

    /// Reconstructs a ≤64-point mask from its single storage word (the
    /// snapshot codec's width-fitted inline encoding).
    ///
    /// The caller must have validated that no bit at index ≥ `n_points` is
    /// set; this is debug-asserted.
    pub fn from_word(n_points: usize, word: u64) -> Self {
        debug_assert!(n_points <= 64);
        debug_assert!(n_points == 64 || word >> n_points == 0, "stray mask bits");
        let mut mask = PointMask::empty(n_points);
        mask.words_raw_mut()[0] = word;
        mask
    }

    /// Reconstructs a mask from its unpadded live words (exactly
    /// `⌈n_points / 64⌉` of them). Padding-bit validation is the caller's
    /// job (the snapshot codec rejects stray bits before constructing);
    /// this is debug-asserted.
    pub fn from_words(n_points: usize, words: &[u64]) -> Self {
        let mut mask = PointMask::empty(n_points);
        let live = live_words(mask.nbits);
        debug_assert_eq!(words.len(), live);
        debug_assert!(
            n_points.is_multiple_of(64) || words.last().is_none_or(|w| w >> (n_points % 64) == 0),
            "stray mask bits"
        );
        mask.words_raw_mut()[..live].copy_from_slice(words);
        mask
    }

    /// Number of trajectory points the mask describes (its bit width).
    #[inline]
    pub fn nbits(&self) -> usize {
        self.nbits as usize
    }

    /// The raw storage words, padding included.
    #[inline]
    fn words_raw(&self) -> &[u64] {
        match &self.words {
            Words::Inline(a) => a,
            Words::Heap(b) => b,
        }
    }

    #[inline]
    fn words_raw_mut(&mut self) -> &mut [u64] {
        match &mut self.words {
            Words::Inline(a) => a,
            Words::Heap(b) => b,
        }
    }

    /// Borrowed view of the mask: its length and live words.
    #[inline]
    pub fn view(&self) -> MaskView<'_> {
        MaskView {
            nbits: self.nbits,
            words: &self.words_raw()[..live_words(self.nbits)],
        }
    }

    /// Returns bit `i`. Contract: `i < nbits()`, debug-asserted for both
    /// representations; out-of-range reads in release builds return `false`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.nbits as usize, "point index out of range");
        let raw = self.words_raw();
        (i >> 6) < raw.len() && (raw[i >> 6] >> (i & 63)) & 1 == 1
    }

    /// Sets bit `i`, returning `true` when it was previously clear.
    /// Contract: `i < nbits()`, debug-asserted for both representations.
    #[inline]
    pub fn set(&mut self, i: usize) -> bool {
        debug_assert!(i < self.nbits as usize, "point index out of range");
        let word = &mut self.words_raw_mut()[i >> 6];
        let bit = 1u64 << (i & 63);
        let newly = *word & bit == 0;
        *word |= bit;
        newly
    }

    /// Number of set bits — a streamed per-word popcount (padding words are
    /// zero by invariant, so the raw words can be summed directly).
    #[inline]
    pub fn count_ones(&self) -> u32 {
        self.words_raw().iter().map(|w| w.count_ones()).sum()
    }

    /// Returns `true` when no bit is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words_raw().iter().all(|&w| w == 0)
    }

    /// In-place union with `other` (same trajectory). Returns `true` when
    /// any new bit was set.
    ///
    /// # Panics
    /// Panics when the masks describe different point counts; use
    /// [`PointMask::try_union_with`] for untrusted inputs.
    #[inline]
    pub fn union_with(&mut self, other: &PointMask) -> bool {
        self.try_union_with(other).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`PointMask::union_with`] with a typed size-mismatch error instead
    /// of a panic — for masks decoded from snapshots, WAL records, or wire
    /// frames, where a mismatch means corrupt or foreign data rather than
    /// a programming error. On `Err` the mask is unchanged.
    pub fn try_union_with(&mut self, other: &PointMask) -> Result<bool, MaskSizeMismatch> {
        if self.nbits != other.nbits {
            return Err(MaskSizeMismatch {
                dst: self.nbits as usize,
                src: other.nbits as usize,
            });
        }
        // Same nbits ⇒ same representation ⇒ same raw width; padding of
        // `other` is zero, so ORing the raw words preserves the invariant.
        Ok(union_words(self.words_raw_mut(), other.words_raw()) != 0)
    }

    /// In-place union with a borrowed view (same trajectory). Returns
    /// `true` when any new bit was set.
    ///
    /// # Panics
    /// Panics when the sizes differ, like [`PointMask::union_with`].
    #[inline]
    pub fn union_view(&mut self, v: MaskView<'_>) -> bool {
        if self.nbits != v.nbits {
            let e = MaskSizeMismatch {
                dst: self.nbits as usize,
                src: v.nbits as usize,
            };
            panic!("{e}");
        }
        let live = live_words(self.nbits);
        union_words(&mut self.words_raw_mut()[..live], v.words) != 0
    }

    /// Would unioning `v` set any new bit? A pure streamed read — the
    /// no-allocation test the marginal-gain round uses before paying for
    /// value kernels.
    #[inline]
    pub fn union_would_change(&self, v: MaskView<'_>) -> bool {
        debug_assert_eq!(self.nbits, v.nbits, "mask size mismatch");
        self.words_raw()
            .iter()
            .zip(v.words)
            .any(|(&cur, &new)| new & !cur != 0)
    }
}

/// A borrowed mask: point count plus exactly `⌈nbits / 64⌉` live words.
///
/// This is how the solvers stream masks out of the flat
/// [`crate::maxcov::MaskArena`] — same kernels, no per-mask ownership.
#[derive(Debug, Clone, Copy)]
pub struct MaskView<'a> {
    nbits: u32,
    words: &'a [u64],
}

impl<'a> MaskView<'a> {
    /// A view over `words`, which must be exactly the `⌈n_points / 64⌉`
    /// live words with no stray bits past `n_points`.
    #[inline]
    pub fn new(n_points: usize, words: &'a [u64]) -> MaskView<'a> {
        let nbits = u32::try_from(n_points).expect("trajectory too long for a mask");
        debug_assert_eq!(words.len(), live_words(nbits));
        MaskView { nbits, words }
    }

    /// Number of trajectory points the mask describes.
    #[inline]
    pub fn nbits(&self) -> usize {
        self.nbits as usize
    }

    /// The live words.
    #[inline]
    pub fn words(&self) -> &'a [u64] {
        self.words
    }

    /// Returns bit `i`. Contract: `i < nbits()`, debug-asserted.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.nbits as usize, "point index out of range");
        (i >> 6) < self.words.len() && (self.words[i >> 6] >> (i & 63)) & 1 == 1
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Materializes the view into an owned mask.
    pub fn to_mask(&self) -> PointMask {
        PointMask::from_words(self.nbits as usize, self.words)
    }
}

/// Aggregated admissible service upper bounds for a set of stored items —
/// the paper's per-node `sub` values, one per scenario so the index serves
/// all scenarios without rebuilding.
///
/// * `s1` — number of stored items (each can make at most one user served);
/// * `s2` — Σ (points of the item) / |u| (an item can serve at most its own
///   points once, so this dominates any point-count gain);
/// * `s3` — Σ (length of the item) / length(u) (likewise for length; a
///   whole-trajectory item contributes `1`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServiceBounds {
    /// Scenario-1 bound (item count).
    pub s1: f64,
    /// Scenario-2 bound (normalized point mass).
    pub s2: f64,
    /// Scenario-3 bound (normalized length mass).
    pub s3: f64,
}

impl ServiceBounds {
    /// The zero bound.
    pub const ZERO: ServiceBounds = ServiceBounds {
        s1: 0.0,
        s2: 0.0,
        s3: 0.0,
    };

    /// Component-wise accumulation.
    #[inline]
    pub fn add(&mut self, other: &ServiceBounds) {
        self.s1 += other.s1;
        self.s2 += other.s2;
        self.s3 += other.s3;
    }

    /// Bound contribution of a whole-trajectory item (two-point or
    /// full-trajectory placement) for user `u`.
    pub fn whole_trajectory(_u: &Trajectory) -> ServiceBounds {
        ServiceBounds {
            s1: 1.0,
            s2: 1.0,
            s3: 1.0,
        }
    }

    /// Bound contribution of a single-segment item (`seg`) of user `u`.
    ///
    /// A segment can reveal at most its two endpoint points and its own
    /// length; `s1` is the loose-but-admissible `1` (a segment alone can at
    /// most complete a user's binary service).
    pub fn segment(u: &Trajectory, seg: usize) -> ServiceBounds {
        let total_len = u.length();
        ServiceBounds {
            s1: 1.0,
            s2: 2.0 / u.len() as f64,
            s3: if total_len > 0.0 {
                u.segment_length(seg) / total_len
            } else {
                1.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_geometry::Point;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn three_point() -> Trajectory {
        // lengths: 3 then 1 → total 4
        Trajectory::new(vec![p(0.0, 0.0), p(3.0, 0.0), p(3.0, 1.0)])
    }

    #[test]
    fn transit_requires_both_endpoints() {
        let m = ServiceModel::new(Scenario::Transit, 1.0);
        let u = three_point();
        let mut mask = PointMask::empty(3);
        assert_eq!(m.value(&u, &mask), 0.0);
        mask.set(0);
        assert_eq!(m.value(&u, &mask), 0.0);
        mask.set(2);
        assert_eq!(m.value(&u, &mask), 1.0);
        // The middle point is irrelevant for Transit.
        let mut only_mid = PointMask::empty(3);
        only_mid.set(1);
        assert_eq!(m.value(&u, &only_mid), 0.0);
    }

    #[test]
    fn point_count_is_fraction() {
        let m = ServiceModel::new(Scenario::PointCount, 1.0);
        let u = three_point();
        let mut mask = PointMask::empty(3);
        mask.set(1);
        assert!((m.value(&u, &mask) - 1.0 / 3.0).abs() < 1e-12);
        mask.set(0);
        mask.set(2);
        assert_eq!(m.value(&u, &mask), 1.0);
    }

    #[test]
    fn length_credits_served_segments() {
        let m = ServiceModel::new(Scenario::Length, 1.0);
        let u = three_point();
        let mut mask = PointMask::empty(3);
        mask.set(0);
        mask.set(1);
        // First segment (length 3 of 4) served.
        assert!((m.value(&u, &mask) - 0.75).abs() < 1e-12);
        mask.set(2);
        assert_eq!(m.value(&u, &mask), 1.0);
        // Endpoints only (no adjacent pair) → nothing credited.
        let mut ends = PointMask::empty(3);
        ends.set(0);
        ends.set(2);
        assert_eq!(m.value(&u, &ends), 0.0);
    }

    #[test]
    fn values_are_monotone_in_mask() {
        let u = three_point();
        for scenario in Scenario::ALL {
            let m = ServiceModel::new(scenario, 1.0);
            let mut mask = PointMask::empty(3);
            let mut last = m.value(&u, &mask);
            for i in 0..3 {
                mask.set(i);
                let v = m.value(&u, &mask);
                assert!(v >= last, "{scenario:?} not monotone");
                last = v;
            }
            assert!(last <= m.max_value(&u) + 1e-12);
        }
    }

    #[test]
    fn small_mask_operations() {
        let mut m = PointMask::empty(2);
        assert!(m.is_empty());
        assert!(m.set(1));
        assert!(!m.set(1), "setting twice reports no change");
        assert!(m.get(1));
        assert!(!m.get(0));
        assert_eq!(m.count_ones(), 1);
        assert_eq!(m.nbits(), 2);
    }

    #[test]
    fn large_mask_operations() {
        let mut m = PointMask::empty(130);
        assert!(m.set(0));
        assert!(m.set(64));
        assert!(m.set(129));
        assert_eq!(m.count_ones(), 3);
        assert!(m.get(64));
        assert!(!m.get(65));
        assert_eq!(m.nbits(), 130);
    }

    #[test]
    fn inline_covers_up_to_128_points_without_padding_blocks() {
        // ≤ 128 points: two inline words, no allocation.
        let m = PointMask::empty(128);
        assert!(matches!(m.words, Words::Inline(_)));
        assert_eq!(m.view().words().len(), 2);
        // > 128 points: heap words, padded to whole 4-word blocks, with the
        // view exposing only the live words.
        let m = PointMask::empty(129);
        assert!(matches!(m.words, Words::Heap(_)));
        assert_eq!(m.words_raw().len(), 4);
        assert_eq!(m.view().words().len(), 3);
        let m = PointMask::empty(257);
        assert_eq!(m.words_raw().len(), 8);
        assert_eq!(m.view().words().len(), 5);
    }

    #[test]
    fn from_word_and_from_words_round_trip() {
        let mut a = PointMask::empty(50);
        a.set(0);
        a.set(49);
        assert_eq!(PointMask::from_word(50, a.view().words()[0]), a);
        let mut b = PointMask::empty(200);
        for i in [0usize, 63, 64, 127, 128, 199] {
            b.set(i);
        }
        assert_eq!(PointMask::from_words(200, b.view().words()), b);
        assert_eq!(b.view().to_mask(), b);
    }

    #[test]
    fn union_with_reports_changes() {
        let mut a = PointMask::empty(10);
        a.set(1);
        let mut b = PointMask::empty(10);
        b.set(1);
        assert!(!a.union_with(&b));
        b.set(3);
        assert!(a.union_with(&b));
        assert!(a.get(3));
    }

    #[test]
    fn union_would_change_is_a_pure_predicate() {
        let mut a = PointMask::empty(70);
        a.set(1);
        a.set(65);
        let mut b = PointMask::empty(70);
        b.set(65);
        assert!(!a.union_would_change(b.view()));
        b.set(69);
        assert!(a.union_would_change(b.view()));
        assert!(!a.get(69), "predicate must not mutate");
    }

    #[test]
    #[should_panic(expected = "mask size mismatch")]
    fn union_mismatched_sizes_panics() {
        let mut a = PointMask::empty(10);
        let b = PointMask::empty(130);
        a.union_with(&b);
    }

    #[test]
    fn try_union_reports_sizes_without_mutating() {
        let mut a = PointMask::empty(10);
        a.set(3);
        let b = PointMask::empty(130);
        let err = a.try_union_with(&b).unwrap_err();
        assert_eq!(err, MaskSizeMismatch { dst: 10, src: 130 });
        assert!(err.to_string().contains("mask size mismatch"));
        assert_eq!(a.count_ones(), 1, "failed union must not mutate");
        let mut ok = PointMask::empty(130);
        assert_eq!(ok.try_union_with(&b), Ok(false));
    }

    #[test]
    fn value_union_matches_materialized_union() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for n in [2usize, 5, 63, 64, 65, 127, 128, 129, 200] {
            let mut x = 0.0;
            let u = Trajectory::new(
                (0..n)
                    .map(|_| {
                        x += rng.gen_range(0.1..2.0);
                        p(x, rng.gen_range(-1.0..1.0))
                    })
                    .collect(),
            );
            let mut a = PointMask::empty(n);
            let mut b = PointMask::empty(n);
            for i in 0..n {
                if rng.gen_bool(0.4) {
                    a.set(i);
                }
                if rng.gen_bool(0.4) {
                    b.set(i);
                }
            }
            let mut merged = a.clone();
            merged.union_with(&b);
            for scenario in Scenario::ALL {
                let m = ServiceModel::new(scenario, 1.0);
                assert_eq!(
                    m.value_union(&u, a.view(), b.view()).to_bits(),
                    m.value(&u, &merged).to_bits(),
                    "{scenario:?} n={n}"
                );
            }
        }
    }

    #[test]
    fn bounds_accumulate() {
        let u = three_point();
        let mut total = ServiceBounds::ZERO;
        total.add(&ServiceBounds::whole_trajectory(&u));
        total.add(&ServiceBounds::segment(&u, 0));
        assert_eq!(total.s1, 2.0);
        assert!((total.s2 - (1.0 + 2.0 / 3.0)).abs() < 1e-12);
        assert!((total.s3 - (1.0 + 0.75)).abs() < 1e-12);
    }

    #[test]
    fn bound_of_selects_scenario() {
        let b = ServiceBounds {
            s1: 1.0,
            s2: 2.0,
            s3: 3.0,
        };
        assert_eq!(ServiceModel::new(Scenario::Transit, 1.0).bound_of(&b), 1.0);
        assert_eq!(
            ServiceModel::new(Scenario::PointCount, 1.0).bound_of(&b),
            2.0
        );
        assert_eq!(ServiceModel::new(Scenario::Length, 1.0).bound_of(&b), 3.0);
    }

    #[test]
    #[should_panic(expected = "ψ")]
    fn negative_psi_rejected() {
        ServiceModel::new(Scenario::Transit, -1.0);
    }

    #[test]
    fn zero_length_trajectory_degenerate_value() {
        let u = Trajectory::new(vec![p(1.0, 1.0), p(1.0, 1.0)]);
        let m = ServiceModel::new(Scenario::Length, 1.0);
        let mut mask = PointMask::empty(2);
        assert_eq!(m.value(&u, &mask), 0.0);
        mask.set(0);
        mask.set(1);
        assert_eq!(m.value(&u, &mask), 1.0);
    }
}
