//! Service value semantics.
//!
//! The paper defines three application scenarios for how a facility serves a
//! user trajectory (§II):
//!
//! * **Scenario 1** (`Transit`) — binary: served iff both the source and the
//!   destination are within `ψ` of facility stops;
//! * **Scenario 2** (`PointCount`) — partial: the fraction of the user's
//!   points within `ψ` of stops;
//! * **Scenario 3** (`Length`) — partial: the fraction of the user's path
//!   length covered (we credit a segment when both its endpoints are served,
//!   see DESIGN.md §5).
//!
//! All three are evaluated through a per-user [`PointMask`] recording *which*
//! points have been served so far. Masks are monotone (bits only get set),
//! which makes them suitable both for incremental best-first exploration
//! (kMaxRRST) and for the overlap-aware union aggregation `AGG` that
//! MaxkCovRST requires: the combined service of several facilities is the
//! value of the OR of their masks.

use tq_trajectory::Trajectory;

/// Which of the paper's three service semantics to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Scenario 1: binary source+destination service (e.g. commuting).
    Transit,
    /// Scenario 2: fraction of trajectory points served (e.g. tourist POIs).
    PointCount,
    /// Scenario 3: fraction of trajectory length served (e.g. on-board
    /// Wi-Fi / advertisement exposure).
    Length,
}

impl Scenario {
    /// All scenarios, for parameterized tests and benches.
    pub const ALL: [Scenario; 3] = [Scenario::Transit, Scenario::PointCount, Scenario::Length];

    /// Returns `true` for the scenarios where a user can be served
    /// *partially* (any served point contributes).
    #[inline]
    pub fn is_partial(self) -> bool {
        !matches!(self, Scenario::Transit)
    }
}

/// The service model: a scenario plus the distance threshold `ψ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceModel {
    /// Service semantics.
    pub scenario: Scenario,
    /// Distance threshold `ψ`: a user point is served by a stop within `ψ`.
    pub psi: f64,
}

impl ServiceModel {
    /// Creates a model.
    ///
    /// # Panics
    /// Panics when `psi` is negative or non-finite.
    pub fn new(scenario: Scenario, psi: f64) -> Self {
        assert!(psi.is_finite() && psi >= 0.0, "ψ must be finite and ≥ 0");
        ServiceModel { scenario, psi }
    }

    /// The service value `S(u, ·)` of a user given its served-point mask.
    ///
    /// Monotone in the mask: setting more bits never lowers the value.
    pub fn value(&self, u: &Trajectory, mask: &PointMask) -> f64 {
        match self.scenario {
            Scenario::Transit => {
                if mask.get(0) && mask.get(u.len() - 1) {
                    1.0
                } else {
                    0.0
                }
            }
            Scenario::PointCount => mask.count_ones() as f64 / u.len() as f64,
            Scenario::Length => {
                let total = u.length();
                if total <= 0.0 {
                    // Degenerate zero-length trajectory: fall back to the
                    // binary semantics so the value stays in [0, 1].
                    return if mask.count_ones() as usize == u.len() {
                        1.0
                    } else {
                        0.0
                    };
                }
                let mut served = 0.0;
                for s in 0..u.num_segments() {
                    if mask.get(s) && mask.get(s + 1) {
                        served += u.segment_length(s);
                    }
                }
                served / total
            }
        }
    }

    /// The largest value any facility could contribute for `u`
    /// (i.e. the value of the all-ones mask): always `1.0` under the
    /// normalized semantics.
    #[inline]
    pub fn max_value(&self, _u: &Trajectory) -> f64 {
        1.0
    }

    /// Admissible upper bound (`sub` in the paper, §III) contributed by one
    /// *stored item* of the index for scenario-specific best-first search.
    ///
    /// See [`ServiceBounds`] for how per-node aggregates are formed.
    pub fn bound_of(&self, b: &ServiceBounds) -> f64 {
        match self.scenario {
            Scenario::Transit => b.s1,
            Scenario::PointCount => b.s2,
            Scenario::Length => b.s3,
        }
    }
}

/// A monotone bitmask over the points of one user trajectory.
///
/// Bit `i` set means point `i` of the trajectory has been served (is within
/// `ψ` of a stop of some facility considered so far). Trajectories with at
/// most 64 points — the overwhelming majority in every dataset — are stored
/// inline without allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PointMask {
    /// Inline mask for trajectories with ≤ 64 points.
    Small(u64),
    /// Heap mask for longer trajectories.
    Large(Box<[u64]>),
}

impl PointMask {
    /// An empty (all-unserved) mask for a trajectory of `n_points` points.
    pub fn empty(n_points: usize) -> Self {
        if n_points <= 64 {
            PointMask::Small(0)
        } else {
            PointMask::Large(vec![0u64; n_points.div_ceil(64)].into_boxed_slice())
        }
    }

    /// Returns bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        match self {
            PointMask::Small(w) => (i < 64) && (w >> i) & 1 == 1,
            PointMask::Large(ws) => (ws[i / 64] >> (i % 64)) & 1 == 1,
        }
    }

    /// Sets bit `i`, returning `true` when it was previously clear.
    #[inline]
    pub fn set(&mut self, i: usize) -> bool {
        match self {
            PointMask::Small(w) => {
                debug_assert!(i < 64, "point index out of range for small mask");
                let bit = 1u64 << i;
                let newly = *w & bit == 0;
                *w |= bit;
                newly
            }
            PointMask::Large(ws) => {
                let bit = 1u64 << (i % 64);
                let word = &mut ws[i / 64];
                let newly = *word & bit == 0;
                *word |= bit;
                newly
            }
        }
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> u32 {
        match self {
            PointMask::Small(w) => w.count_ones(),
            PointMask::Large(ws) => ws.iter().map(|w| w.count_ones()).sum(),
        }
    }

    /// Returns `true` when no bit is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        match self {
            PointMask::Small(w) => *w == 0,
            PointMask::Large(ws) => ws.iter().all(|&w| w == 0),
        }
    }

    /// In-place union with `other` (same trajectory). Returns `true` when
    /// any new bit was set.
    pub fn union_with(&mut self, other: &PointMask) -> bool {
        match (self, other) {
            (PointMask::Small(a), PointMask::Small(b)) => {
                let before = *a;
                *a |= b;
                *a != before
            }
            (PointMask::Large(a), PointMask::Large(b)) => {
                let mut changed = false;
                for (x, y) in a.iter_mut().zip(b.iter()) {
                    let before = *x;
                    *x |= y;
                    changed |= *x != before;
                }
                changed
            }
            _ => panic!("mask size mismatch: masks must describe the same trajectory"),
        }
    }
}

/// Aggregated admissible service upper bounds for a set of stored items —
/// the paper's per-node `sub` values, one per scenario so the index serves
/// all scenarios without rebuilding.
///
/// * `s1` — number of stored items (each can make at most one user served);
/// * `s2` — Σ (points of the item) / |u| (an item can serve at most its own
///   points once, so this dominates any point-count gain);
/// * `s3` — Σ (length of the item) / length(u) (likewise for length; a
///   whole-trajectory item contributes `1`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServiceBounds {
    /// Scenario-1 bound (item count).
    pub s1: f64,
    /// Scenario-2 bound (normalized point mass).
    pub s2: f64,
    /// Scenario-3 bound (normalized length mass).
    pub s3: f64,
}

impl ServiceBounds {
    /// The zero bound.
    pub const ZERO: ServiceBounds = ServiceBounds {
        s1: 0.0,
        s2: 0.0,
        s3: 0.0,
    };

    /// Component-wise accumulation.
    #[inline]
    pub fn add(&mut self, other: &ServiceBounds) {
        self.s1 += other.s1;
        self.s2 += other.s2;
        self.s3 += other.s3;
    }

    /// Bound contribution of a whole-trajectory item (two-point or
    /// full-trajectory placement) for user `u`.
    pub fn whole_trajectory(_u: &Trajectory) -> ServiceBounds {
        ServiceBounds {
            s1: 1.0,
            s2: 1.0,
            s3: 1.0,
        }
    }

    /// Bound contribution of a single-segment item (`seg`) of user `u`.
    ///
    /// A segment can reveal at most its two endpoint points and its own
    /// length; `s1` is the loose-but-admissible `1` (a segment alone can at
    /// most complete a user's binary service).
    pub fn segment(u: &Trajectory, seg: usize) -> ServiceBounds {
        let total_len = u.length();
        ServiceBounds {
            s1: 1.0,
            s2: 2.0 / u.len() as f64,
            s3: if total_len > 0.0 {
                u.segment_length(seg) / total_len
            } else {
                1.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_geometry::Point;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn three_point() -> Trajectory {
        // lengths: 3 then 1 → total 4
        Trajectory::new(vec![p(0.0, 0.0), p(3.0, 0.0), p(3.0, 1.0)])
    }

    #[test]
    fn transit_requires_both_endpoints() {
        let m = ServiceModel::new(Scenario::Transit, 1.0);
        let u = three_point();
        let mut mask = PointMask::empty(3);
        assert_eq!(m.value(&u, &mask), 0.0);
        mask.set(0);
        assert_eq!(m.value(&u, &mask), 0.0);
        mask.set(2);
        assert_eq!(m.value(&u, &mask), 1.0);
        // The middle point is irrelevant for Transit.
        let mut only_mid = PointMask::empty(3);
        only_mid.set(1);
        assert_eq!(m.value(&u, &only_mid), 0.0);
    }

    #[test]
    fn point_count_is_fraction() {
        let m = ServiceModel::new(Scenario::PointCount, 1.0);
        let u = three_point();
        let mut mask = PointMask::empty(3);
        mask.set(1);
        assert!((m.value(&u, &mask) - 1.0 / 3.0).abs() < 1e-12);
        mask.set(0);
        mask.set(2);
        assert_eq!(m.value(&u, &mask), 1.0);
    }

    #[test]
    fn length_credits_served_segments() {
        let m = ServiceModel::new(Scenario::Length, 1.0);
        let u = three_point();
        let mut mask = PointMask::empty(3);
        mask.set(0);
        mask.set(1);
        // First segment (length 3 of 4) served.
        assert!((m.value(&u, &mask) - 0.75).abs() < 1e-12);
        mask.set(2);
        assert_eq!(m.value(&u, &mask), 1.0);
        // Endpoints only (no adjacent pair) → nothing credited.
        let mut ends = PointMask::empty(3);
        ends.set(0);
        ends.set(2);
        assert_eq!(m.value(&u, &ends), 0.0);
    }

    #[test]
    fn values_are_monotone_in_mask() {
        let u = three_point();
        for scenario in Scenario::ALL {
            let m = ServiceModel::new(scenario, 1.0);
            let mut mask = PointMask::empty(3);
            let mut last = m.value(&u, &mask);
            for i in 0..3 {
                mask.set(i);
                let v = m.value(&u, &mask);
                assert!(v >= last, "{scenario:?} not monotone");
                last = v;
            }
            assert!(last <= m.max_value(&u) + 1e-12);
        }
    }

    #[test]
    fn small_mask_operations() {
        let mut m = PointMask::empty(2);
        assert!(m.is_empty());
        assert!(m.set(1));
        assert!(!m.set(1), "setting twice reports no change");
        assert!(m.get(1));
        assert!(!m.get(0));
        assert_eq!(m.count_ones(), 1);
    }

    #[test]
    fn large_mask_operations() {
        let mut m = PointMask::empty(130);
        assert!(matches!(m, PointMask::Large(_)));
        assert!(m.set(0));
        assert!(m.set(64));
        assert!(m.set(129));
        assert_eq!(m.count_ones(), 3);
        assert!(m.get(64));
        assert!(!m.get(65));
    }

    #[test]
    fn union_with_reports_changes() {
        let mut a = PointMask::empty(10);
        a.set(1);
        let mut b = PointMask::empty(10);
        b.set(1);
        assert!(!a.union_with(&b));
        b.set(3);
        assert!(a.union_with(&b));
        assert!(a.get(3));
    }

    #[test]
    #[should_panic(expected = "mask size mismatch")]
    fn union_mismatched_sizes_panics() {
        let mut a = PointMask::empty(10);
        let b = PointMask::empty(130);
        a.union_with(&b);
    }

    #[test]
    fn bounds_accumulate() {
        let u = three_point();
        let mut total = ServiceBounds::ZERO;
        total.add(&ServiceBounds::whole_trajectory(&u));
        total.add(&ServiceBounds::segment(&u, 0));
        assert_eq!(total.s1, 2.0);
        assert!((total.s2 - (1.0 + 2.0 / 3.0)).abs() < 1e-12);
        assert!((total.s3 - (1.0 + 0.75)).abs() < 1e-12);
    }

    #[test]
    fn bound_of_selects_scenario() {
        let b = ServiceBounds {
            s1: 1.0,
            s2: 2.0,
            s3: 3.0,
        };
        assert_eq!(ServiceModel::new(Scenario::Transit, 1.0).bound_of(&b), 1.0);
        assert_eq!(
            ServiceModel::new(Scenario::PointCount, 1.0).bound_of(&b),
            2.0
        );
        assert_eq!(ServiceModel::new(Scenario::Length, 1.0).bound_of(&b), 3.0);
    }

    #[test]
    #[should_panic(expected = "ψ")]
    fn negative_psi_rejected() {
        ServiceModel::new(Scenario::Transit, -1.0);
    }

    #[test]
    fn zero_length_trajectory_degenerate_value() {
        let u = Trajectory::new(vec![p(1.0, 1.0), p(1.0, 1.0)]);
        let m = ServiceModel::new(Scenario::Length, 1.0);
        let mut mask = PointMask::empty(2);
        assert_eq!(m.value(&u, &mask), 0.0);
        mask.set(0);
        mask.set(1);
        assert_eq!(m.value(&u, &mask), 1.0);
    }
}
