//! Parallel candidate evaluation (the `parallel` feature, on by default).
//!
//! Every query family in this crate contains an embarrassingly parallel
//! stage — per-facility work that touches only shared immutable state (the
//! [`TqTree`], the users, the [`ServiceModel`]):
//!
//! * **[`ServedTable`](crate::maxcov::ServedTable) builds** fan the
//!   per-candidate `evaluate_masks` calls out via
//!   [`par_evaluate_candidates`] — the dominant cost of every MaxkCovRST
//!   solve;
//! * **kMaxRRST initialization** ([`crate::topk`]) builds the per-facility
//!   exploration states (tree descent + bound accumulation) in parallel
//!   before the inherently sequential best-first loop takes over;
//! * **greedy rounds** ([`mod@crate::maxcov::greedy`]) compute the marginal
//!   gain of every remaining candidate in parallel;
//! * **genetic fitness** ([`mod@crate::maxcov::genetic`]) evaluates each
//!   generation's offspring concurrently.
//!
//! Determinism is non-negotiable: parallel results are **bit-identical** to
//! the serial path. The fan-out preserves input order (ordered chunk
//! concatenation), every per-item computation is pure, and reductions that
//! pick winners re-run the exact serial tie-breaking (ascending facility
//! id) over the ordered result vector. `tests/parallel_equivalence.rs`
//! asserts mask-level equality on seeded workloads.
//!
//! Thread count is a process-wide setting ([`set_threads`], surfaced as
//! `--threads` in the CLI) with a scoped override for explicit-count calls
//! such as [`ServedTable::build_parallel`](crate::maxcov::ServedTable::build_parallel).
//! Disabling the `parallel` feature removes the rayon dependency entirely;
//! every entry point below then degrades to its serial loop.
//!
//! # Composition with concurrent sessions
//!
//! The scoped override ([`with_threads`]) is **per calling thread**, not
//! process-global: each serving session can run its queries under its own
//! budget and the fan-outs compose instead of multiplying. The rule of
//! thumb for `S` concurrent sessions on `C` cores is a budget of
//! `max(1, C / S)` threads per query — exactly what
//! [`session_thread_budget`] computes and what the [`crate::serve`] worker
//! pool installs per client shard, so `S` clients each fanning a table
//! build never oversubscribe the machine to `S × C` threads. A budget of
//! 1 makes every evaluation inline on the session's own thread (zero
//! spawn overhead), which is the right call once sessions outnumber
//! cores.

use crate::eval::{evaluate_masks, evaluate_service, EvalOutcome};
use crate::service::ServiceModel;
use crate::tqtree::TqTree;
use tq_trajectory::{FacilityId, FacilitySet, UserSet};

/// Below this many independent work items the fan-out is skipped: thread
/// spawn + join overhead would dominate the per-item work.
pub(crate) const MIN_PAR_ITEMS: usize = 8;

/// Sets the process-wide thread count for parallel evaluation
/// (`0` = automatic, one thread per available core). No-op without the
/// `parallel` feature.
pub fn set_threads(threads: usize) {
    #[cfg(feature = "parallel")]
    {
        let _ = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global();
    }
    #[cfg(not(feature = "parallel"))]
    let _ = threads;
}

/// The thread count parallel evaluation currently fans out to
/// (`1` without the `parallel` feature).
pub fn current_threads() -> usize {
    #[cfg(feature = "parallel")]
    {
        rayon::current_num_threads()
    }
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
}

/// Ordered parallel map: applies `f` to every item, returning results in
/// input order. Serial when the `parallel` feature is off, the workload is
/// tiny, or one thread is configured.
#[cfg(feature = "parallel")]
pub(crate) fn par_map<T: Sync, R: Send>(
    items: &[T],
    f: impl Fn(&T) -> R + Sync + Send,
) -> Vec<R> {
    if items.len() < MIN_PAR_ITEMS {
        return items.iter().map(f).collect();
    }
    use rayon::prelude::*;
    items.par_iter().map(f).collect()
}

/// Serial fallback of the ordered map (feature `parallel` disabled).
#[cfg(not(feature = "parallel"))]
pub(crate) fn par_map<T: Sync, R: Send>(
    items: &[T],
    f: impl Fn(&T) -> R + Sync + Send,
) -> Vec<R> {
    items.iter().map(f).collect()
}

/// Runs `f` with `threads` worker threads active for parallel operations
/// started inside it (`0` = automatic). With the `parallel` feature off the
/// closure simply runs serially.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    #[cfg(feature = "parallel")]
    {
        match rayon::ThreadPoolBuilder::new().num_threads(threads).build() {
            Ok(pool) => pool.install(f),
            Err(_) => f(),
        }
    }
    #[cfg(not(feature = "parallel"))]
    {
        let _ = threads;
        f()
    }
}

/// The per-session evaluation thread budget for `sessions` concurrent
/// query sessions: `max(1, cores / sessions)`, so all sessions' fan-outs
/// together occupy roughly the machine instead of oversubscribing it
/// `sessions`-fold. Install it around a session's queries with
/// [`with_threads`] (as the [`crate::serve`] worker pool does per client
/// shard), or pass it to [`crate::engine::Query::threads`] per query.
pub fn session_thread_budget(sessions: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    (cores / sessions.max(1)).max(1)
}

/// Evaluates the given candidate facilities against the index, fanning the
/// independent per-facility `evaluateService` calls across threads.
///
/// Returns one [`EvalOutcome`] per candidate, **in candidate order**, each
/// bit-identical to what the serial evaluator produces for that facility.
/// `exact_masks` selects [`evaluate_masks`] (complete served-point masks,
/// as MaxkCovRST's `AGG` union requires) over [`evaluate_service`]
/// (strongest pruning, values only).
///
/// When the fan-out actually runs in parallel, each outcome's
/// [`EvalStats::parallel_tasks`](crate::eval::EvalStats::parallel_tasks)
/// is set to `1`, so aggregated stats report how many evaluations were
/// dispatched as parallel tasks.
pub fn par_evaluate_candidates(
    tree: &TqTree,
    users: &UserSet,
    model: &ServiceModel,
    facilities: &FacilitySet,
    candidates: &[FacilityId],
    exact_masks: bool,
) -> Vec<EvalOutcome> {
    let parallel_run = current_threads() > 1 && candidates.len() >= MIN_PAR_ITEMS;
    let mut outcomes = par_map(candidates, |&fid| {
        let f = facilities.get(fid);
        if exact_masks {
            evaluate_masks(tree, users, model, f)
        } else {
            evaluate_service(tree, users, model, f)
        }
    });
    if parallel_run {
        for out in &mut outcomes {
            out.stats.parallel_tasks = 1;
        }
    }
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::Scenario;
    use crate::tqtree::TqTreeConfig;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use tq_geometry::Point;
    use tq_trajectory::{Facility, Trajectory};

    fn instance(seed: u64, n_users: usize, n_fac: usize) -> (UserSet, FacilitySet) {
        let mut rng = StdRng::seed_from_u64(seed);
        let users = UserSet::from_vec(
            (0..n_users)
                .map(|_| {
                    Trajectory::two_point(
                        Point::new(rng.gen_range(0.0..90.0), rng.gen_range(0.0..90.0)),
                        Point::new(rng.gen_range(0.0..90.0), rng.gen_range(0.0..90.0)),
                    )
                })
                .collect(),
        );
        let facilities = FacilitySet::from_vec(
            (0..n_fac)
                .map(|_| {
                    Facility::new(vec![
                        Point::new(rng.gen_range(0.0..90.0), rng.gen_range(0.0..90.0)),
                        Point::new(rng.gen_range(0.0..90.0), rng.gen_range(0.0..90.0)),
                    ])
                })
                .collect(),
        );
        (users, facilities)
    }

    #[test]
    fn parallel_outcomes_match_serial_evaluator() {
        let (users, facilities) = instance(11, 400, 24);
        let tree = TqTree::build(&users, TqTreeConfig::default());
        let model = ServiceModel::new(Scenario::Transit, 5.0);
        let ids: Vec<FacilityId> = facilities.iter().map(|(id, _)| id).collect();
        for exact in [false, true] {
            let par = with_threads(4, || {
                par_evaluate_candidates(&tree, &users, &model, &facilities, &ids, exact)
            });
            assert_eq!(par.len(), ids.len());
            for (i, &fid) in ids.iter().enumerate() {
                let f = facilities.get(fid);
                let serial = if exact {
                    evaluate_masks(&tree, &users, &model, f)
                } else {
                    evaluate_service(&tree, &users, &model, f)
                };
                assert_eq!(par[i].value, serial.value, "facility {fid}");
                assert_eq!(par[i].masks, serial.masks, "facility {fid}");
            }
        }
    }

    #[test]
    fn candidate_subsets_and_order_are_respected() {
        let (users, facilities) = instance(12, 200, 16);
        let tree = TqTree::build(&users, TqTreeConfig::default());
        let model = ServiceModel::new(Scenario::PointCount, 6.0);
        // Reversed, strided subset: outcomes must follow the given order.
        let mut ids: Vec<FacilityId> = facilities
            .iter()
            .map(|(id, _)| id)
            .filter(|id| id % 2 == 0)
            .collect();
        ids.reverse();
        let got = par_evaluate_candidates(&tree, &users, &model, &facilities, &ids, true);
        for (i, &fid) in ids.iter().enumerate() {
            let want = evaluate_masks(&tree, &users, &model, facilities.get(fid));
            assert_eq!(got[i].value, want.value, "candidate order broken at {i}");
        }
    }

    #[test]
    fn thread_setting_is_visible() {
        assert!(current_threads() >= 1);
        let inside = with_threads(3, current_threads);
        if cfg!(feature = "parallel") {
            assert_eq!(inside, 3);
        } else {
            assert_eq!(inside, 1);
        }
    }
}
