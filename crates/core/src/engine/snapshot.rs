//! The read plane: immutable, epoch-numbered [`Snapshot`]s and the
//! [`Reader`] handle that always yields the latest published one.
//!
//! A snapshot owns (via `Arc`) everything a query needs — the user
//! trajectories, the candidate facilities, the service model, the backend
//! index, and the frozen [`ServedTable`] memo — and never changes after
//! publication. [`Snapshot::run`] therefore takes `&self` and acquires
//! **zero locks**: any number of threads can answer queries over the same
//! snapshot concurrently, each bit-identical to a serial execution over
//! that snapshot's data. Writers never touch a published snapshot; the
//! control plane ([`Engine`](super::Engine)) builds a *new* snapshot per
//! update batch (copy-on-write for the touched parts, `Arc`-shared for the
//! rest) and publishes it atomically. Old epochs stay valid for the
//! readers still holding them and are reclaimed by the `Arc` refcount when
//! the last reader drops — there is no epoch garbage collector and no
//! reader quiescence protocol.

use super::session::{self, Answer, Query};
use super::{Backend, EngineError};
use crate::fasthash::FxHashMap;
use crate::maxcov::ServedTable;
use crate::service::ServiceModel;
use crate::tqtree::TqTree;
use std::sync::{Arc, RwLock};
use tq_trajectory::{FacilityId, FacilitySet, UserSet};

/// One immutable, epoch-numbered version of the engine's entire queryable
/// state. Obtained from [`Engine::snapshot`](super::Engine::snapshot) or a
/// [`Reader`]; shared freely across threads (`Arc<Snapshot>` is the unit
/// of sharing).
///
/// Queries through [`Snapshot::run`] are lock-free and read-only: a
/// max-cov query that misses the frozen memo builds its table locally and
/// discards it afterwards (only the control plane memoizes — see
/// [`Engine::run`](super::Engine::run)).
#[derive(Debug)]
pub struct Snapshot {
    /// Publication sequence number, strictly increasing per engine.
    pub(crate) epoch: u64,
    /// The indexed trajectories (including removed tombstones).
    pub(crate) users: Arc<UserSet>,
    /// The candidate facilities (immutable for the engine's lifetime).
    pub(crate) facilities: Arc<FacilitySet>,
    /// The service semantics.
    pub(crate) model: ServiceModel,
    /// The backend index over exactly `users`.
    pub(crate) backend: Arc<Backend>,
    /// Live (inserted and not yet removed) trajectory count.
    pub(crate) live_count: usize,
    /// The frozen [`ServedTable`] memo, keyed by sorted candidate id list.
    /// Individual tables are `Arc`-shared across epochs: an update batch
    /// clones and patches only the tables whose facilities it touches.
    pub(crate) tables: FxHashMap<Vec<FacilityId>, Arc<ServedTable>>,
}

impl Snapshot {
    /// Answers a typed [`Query`] against this snapshot's frozen state.
    ///
    /// `&self`, no locks, no interior mutability: safe to call from any
    /// number of threads concurrently, and bit-identical to running the
    /// same query on any other thread (or on the engine itself at this
    /// epoch). Validation errors are returned before any evaluation work
    /// happens, exactly as in [`Engine::run`](super::Engine::run).
    pub fn run(&self, query: Query) -> Result<Answer, EngineError> {
        let (answer, _discarded_table) = session::execute(self, &query)?;
        Ok(answer)
    }

    /// This snapshot's publication sequence number. Epochs are strictly
    /// monotone per engine: a larger epoch was published later. Answers
    /// carry it in [`Explain::snapshot_epoch`](super::Explain::snapshot_epoch).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The trajectories this snapshot indexes (including removed
    /// tombstones — see [`Snapshot::live_users`]).
    pub fn users(&self) -> &UserSet {
        &self.users
    }

    /// The registered candidate facilities.
    pub fn facilities(&self) -> &FacilitySet {
        &self.facilities
    }

    /// The registered service model.
    pub fn model(&self) -> &ServiceModel {
        &self.model
    }

    /// The backend index.
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// The TQ-tree, when that is the backend.
    pub fn tree(&self) -> Option<&TqTree> {
        match &*self.backend {
            Backend::TqTree(t) => Some(t),
            Backend::Baseline(_) => None,
        }
    }

    /// Number of live (inserted and not yet removed) trajectories at this
    /// epoch.
    pub fn live_users(&self) -> usize {
        self.live_count
    }

    /// The frozen memoized table for a candidate set, if this snapshot
    /// carries one.
    pub fn cached_table(&self, candidates: &[FacilityId]) -> Option<&ServedTable> {
        self.tables.get(candidates).map(|t| &**t)
    }

    /// The frozen full-facility table (see
    /// [`Engine::warm`](super::Engine::warm)).
    pub fn full_table(&self) -> Option<&ServedTable> {
        let all: Vec<FacilityId> = self.facilities.iter().map(|(id, _)| id).collect();
        self.cached_table(&all)
    }
}

/// The publication slot: the one place a writer and its readers share.
///
/// Readers take the read half only long enough to clone the `Arc` (an
/// O(1) pointer copy — never held across query execution); the writer
/// takes the write half only for the O(1) pointer swap of
/// [`Engine::publish`](super::Engine). All real work on both sides happens
/// outside the lock, against immutable snapshots.
#[derive(Debug)]
pub(crate) struct SnapshotSlot {
    current: RwLock<Arc<Snapshot>>,
}

impl SnapshotSlot {
    pub(crate) fn new(snapshot: Arc<Snapshot>) -> SnapshotSlot {
        SnapshotSlot {
            current: RwLock::new(snapshot),
        }
    }

    pub(crate) fn load(&self) -> Arc<Snapshot> {
        self.current
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    pub(crate) fn store(&self, snapshot: Arc<Snapshot>) {
        *self.current.write().unwrap_or_else(|e| e.into_inner()) = snapshot;
    }
}

/// A cloneable, `Send + Sync` handle to an engine's latest published
/// [`Snapshot`] — the address a serving thread holds.
///
/// Obtained from [`Engine::reader`](super::Engine::reader); cheap to clone
/// (one `Arc`). [`Reader::snapshot`] returns the snapshot current at call
/// time; the reader then queries that immutable snapshot for as long as it
/// likes (typically one request) while the writer publishes newer epochs
/// behind it. Successive `snapshot()` calls observe strictly monotone
/// epochs.
#[derive(Debug, Clone)]
pub struct Reader {
    pub(crate) slot: Arc<SnapshotSlot>,
}

impl Reader {
    /// The latest published snapshot. O(1): a pointer clone under a
    /// briefly-held read lock (the lock is never held during query
    /// execution, and the writer holds its write half only for the O(1)
    /// publication swap).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.slot.load()
    }

    /// The latest published epoch (shorthand for
    /// `self.snapshot().epoch()`).
    pub fn epoch(&self) -> u64 {
        self.slot.load().epoch
    }
}
