//! The query vocabulary ([`Query`], [`Answer`], [`Explain`]) and the
//! execution path shared by both planes.
//!
//! Everything here runs against an immutable [`Snapshot`] through `&self`:
//! [`execute`] is the one code path behind both
//! [`Snapshot::run`](super::Snapshot::run) (the lock-free read plane) and
//! [`Engine::run`](super::Engine::run) (the control plane, which
//! additionally absorbs any table the query built into the next published
//! snapshot). Execution itself never mutates anything — a query that
//! misses the memo builds its [`ServedTable`] locally and reports what it
//! built through [`TableOutcome`], leaving the absorb-or-discard decision
//! to the caller.

use super::{EngineError, Snapshot};
use crate::maxcov::{exact, genetic, greedy, CovOutcome, GeneticConfig, ServedTable};
use crate::parallel;
use crate::tqtree::Placement;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};
use tq_trajectory::{FacilityId, FacilitySet};

use super::BackendKind;
use crate::eval::EvalStats;

// ---------------------------------------------------------------------------
// Query
// ---------------------------------------------------------------------------

/// Which MaxkCovRST solver a [`Query::max_cov`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// Straightforward greedy over the full candidate [`ServedTable`]
    /// (G-BL / G-TQ in the paper, depending on the backend).
    #[default]
    Greedy,
    /// The paper's two-step greedy: a kMaxRRST pass narrows the pool to the
    /// `k′` individually best candidates ([`Query::k_prime`]), greedy runs
    /// on those only.
    TwoStep,
    /// Exact branch-and-bound (for approximation-ratio studies; bounded by
    /// [`Query::node_budget`]).
    Exact,
    /// The paper's Gn genetic-algorithm competitor (deterministic under
    /// [`Query::seed`]).
    Genetic,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum QueryKind {
    TopK,
    MaxCov,
}

/// A typed query, built fluently and answered by
/// [`Engine::run`](super::Engine::run) or
/// [`Snapshot::run`](super::Snapshot::run).
///
/// ```
/// use tq_core::engine::{Algorithm, Query};
/// let q = Query::max_cov(4)
///     .algorithm(Algorithm::TwoStep)
///     .k_prime(16)
///     .threads(2);
/// ```
#[derive(Debug, Clone)]
pub struct Query {
    // Fields are crate-visible (not public) so the wire codec in
    // [`crate::wire`] can transport queries while the builder methods stay
    // the only outside way to construct one.
    pub(crate) kind: QueryKind,
    pub(crate) k: usize,
    pub(crate) algorithm: Algorithm,
    pub(crate) candidates: Option<Vec<FacilityId>>,
    pub(crate) threads: Option<usize>,
    pub(crate) seed: Option<u64>,
    pub(crate) k_prime: Option<usize>,
    pub(crate) node_budget: Option<usize>,
}

impl Query {
    fn new(kind: QueryKind, k: usize) -> Query {
        Query {
            kind,
            k,
            algorithm: Algorithm::default(),
            candidates: None,
            threads: None,
            seed: None,
            k_prime: None,
            node_budget: Some(100_000_000),
        }
    }

    /// A kMaxRRST query: the `k` individually best facilities.
    pub fn top_k(k: usize) -> Query {
        Query::new(QueryKind::TopK, k)
    }

    /// A MaxkCovRST query: the size-`k` subset with the best combined
    /// (overlap counted once) service. Defaults to [`Algorithm::Greedy`].
    pub fn max_cov(k: usize) -> Query {
        Query::new(QueryKind::MaxCov, k)
    }

    /// Selects the MaxkCovRST solver (ignored by top-k queries).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Query {
        self.algorithm = algorithm;
        self
    }

    /// Restricts the query to a subset of the registered facilities.
    /// Ids are deduplicated; unknown ids fail with
    /// [`EngineError::UnknownCandidate`].
    pub fn candidates(mut self, ids: &[FacilityId]) -> Query {
        self.candidates = Some(ids.to_vec());
        self
    }

    /// Runs the query with an explicit thread count (`0` = one per core).
    /// Without this, the process-wide setting
    /// ([`crate::parallel::set_threads`]) applies — scoped per querying
    /// thread, so concurrent sessions with different budgets compose (see
    /// [`crate::parallel::session_thread_budget`]). Results are identical
    /// at any thread count.
    pub fn threads(mut self, threads: usize) -> Query {
        self.threads = Some(threads);
        self
    }

    /// RNG seed for [`Algorithm::Genetic`] (defaults to
    /// [`GeneticConfig::default`]'s seed; the solver is deterministic under
    /// a fixed seed).
    pub fn seed(mut self, seed: u64) -> Query {
        self.seed = Some(seed);
        self
    }

    /// Candidate-pool size `k′ ≥ k` for [`Algorithm::TwoStep`] (defaults to
    /// `max(4k, 32)`, clamped to the candidate count).
    pub fn k_prime(mut self, k_prime: usize) -> Query {
        self.k_prime = Some(k_prime);
        self
    }

    /// DFS node budget for [`Algorithm::Exact`]; exhausting it fails with
    /// [`EngineError::ExactBudgetExhausted`] rather than returning a result
    /// mislabeled "exact". Defaults to 10⁸ nodes.
    pub fn node_budget(mut self, nodes: usize) -> Query {
        self.node_budget = Some(nodes);
        self
    }
}

// ---------------------------------------------------------------------------
// Answer + Explain
// ---------------------------------------------------------------------------

/// Whether a query could be answered from a memoized [`ServedTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheStatus {
    /// The query did not need a served table (e.g. best-first top-k).
    #[default]
    Unused,
    /// A table was built for this query (and memoized, when the engine's
    /// control plane ran it — snapshot readers never memoize).
    Miss,
    /// The query reused a memoized table — no facility evaluation at all.
    Hit,
}

impl CacheStatus {
    /// `true` for [`CacheStatus::Hit`].
    pub fn is_hit(self) -> bool {
        self == CacheStatus::Hit
    }
}

impl std::fmt::Display for CacheStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheStatus::Unused => write!(f, "unused"),
            CacheStatus::Miss => write!(f, "miss"),
            CacheStatus::Hit => write!(f, "hit"),
        }
    }
}

/// How a query was executed: backend, snapshot epoch, work counters, cache
/// outcome, wall time. Returned with every [`Answer`].
#[derive(Debug, Clone, Default)]
pub struct Explain {
    /// Which backend answered.
    pub backend: Option<BackendKind>,
    /// Epoch of the [`Snapshot`] that answered — the serving-path
    /// attribution: any two answers with the same epoch were computed over
    /// identical data and are bit-identical.
    pub snapshot_epoch: u64,
    /// Number of candidate facilities after [`Query::candidates`]
    /// restriction.
    pub candidates: usize,
    /// Aggregated evaluation counters (nodes visited, items tested/pruned,
    /// distance checks, parallel tasks). Zero on a cache hit.
    pub eval: EvalStats,
    /// Best-first state relaxations (top-k on the TQ-tree backend only).
    pub relaxations: usize,
    /// [`ServedTable`] memo outcome.
    pub cache: CacheStatus,
    /// Worker threads active for the query.
    pub threads: usize,
    /// Time the request waited between arrival and execution start. Zero
    /// for direct [`Engine::run`](super::Engine::run) /
    /// [`Snapshot::run`](super::Snapshot::run) calls; the
    /// [`serve`](crate::serve) driver records each request's queue delay
    /// here.
    pub queued: Duration,
    /// Wall-clock execution time (excluding [`Explain::queued`]).
    pub wall: Duration,
}

impl std::fmt::Display for Explain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "backend={} epoch={} candidates={} cache={} nodes={} tested={} pruned={} \
             dist-checks={} relaxations={} threads={} queued={:.3}ms wall={:.3}ms",
            self.backend.map_or("?".into(), |b| b.to_string()),
            self.snapshot_epoch,
            self.candidates,
            self.cache,
            self.eval.nodes_visited,
            self.eval.items_tested,
            self.eval.items_pruned,
            self.eval.distance_checks,
            self.relaxations,
            self.threads,
            self.queued.as_secs_f64() * 1e3,
            self.wall.as_secs_f64() * 1e3,
        )
    }
}

/// The result payload of a [`Query`].
#[derive(Debug, Clone)]
pub enum QueryResult {
    /// Answer to [`Query::top_k`]: facilities with their exact service
    /// values, best first.
    TopK(Vec<(FacilityId, f64)>),
    /// Answer to [`Query::max_cov`]: the chosen subset with its combined
    /// value and served-user count.
    MaxCov(CovOutcome),
}

/// A query answer: the typed result plus its [`Explain`] report.
#[derive(Debug, Clone)]
pub struct Answer {
    /// The result payload.
    pub result: QueryResult,
    /// How the query was executed.
    pub explain: Explain,
}

impl Answer {
    /// The ranked `(facility, value)` list of a top-k answer.
    ///
    /// # Panics
    /// Panics when the answer belongs to a max-cov query.
    pub fn ranked(&self) -> &[(FacilityId, f64)] {
        match &self.result {
            QueryResult::TopK(r) => r,
            QueryResult::MaxCov(_) => panic!("Answer::ranked on a max-cov answer"),
        }
    }

    /// The coverage outcome of a max-cov answer.
    ///
    /// # Panics
    /// Panics when the answer belongs to a top-k query.
    pub fn cover(&self) -> &CovOutcome {
        match &self.result {
            QueryResult::MaxCov(c) => c,
            QueryResult::TopK(_) => panic!("Answer::cover on a top-k answer"),
        }
    }

    /// The headline value: the best facility's service value (top-k) or the
    /// combined service value of the chosen subset (max-cov).
    pub fn value(&self) -> f64 {
        match &self.result {
            QueryResult::TopK(r) => r.first().map_or(0.0, |(_, v)| *v),
            QueryResult::MaxCov(c) => c.value,
        }
    }
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// Registry handles for the query path, interned once per process and
/// indexed by backend so steady-state recording never formats a label or
/// touches the registry lock.
struct QueryMetrics {
    queries: [&'static tq_obs::Counter; 2],
    latency: [&'static tq_obs::Histogram; 2],
    cache_hits: &'static tq_obs::Counter,
    cache_misses: &'static tq_obs::Counter,
    nodes_visited: &'static tq_obs::Counter,
    items_tested: &'static tq_obs::Counter,
    items_pruned: &'static tq_obs::Counter,
    distance_checks: &'static tq_obs::Counter,
}

fn query_metrics() -> &'static QueryMetrics {
    static M: OnceLock<QueryMetrics> = OnceLock::new();
    M.get_or_init(|| QueryMetrics {
        queries: [
            tq_obs::counter("tq_queries_total", "backend=\"tq-tree\""),
            tq_obs::counter("tq_queries_total", "backend=\"baseline\""),
        ],
        latency: [
            tq_obs::histogram("tq_query_latency_ns", "backend=\"tq-tree\""),
            tq_obs::histogram("tq_query_latency_ns", "backend=\"baseline\""),
        ],
        cache_hits: tq_obs::counter("tq_query_cache_hits_total", ""),
        cache_misses: tq_obs::counter("tq_query_cache_misses_total", ""),
        nodes_visited: tq_obs::counter("tq_eval_nodes_visited_total", ""),
        items_tested: tq_obs::counter("tq_eval_items_tested_total", ""),
        items_pruned: tq_obs::counter("tq_eval_items_pruned_total", ""),
        distance_checks: tq_obs::counter("tq_eval_distance_checks_total", ""),
    })
}

/// Rolls one completed query's [`Explain`] into the metrics registry —
/// the one counting point shared by the single-engine and sharded
/// execution paths, so every query is counted exactly once. A handful of
/// `Relaxed` atomic adds; one load-and-branch when recording is off.
pub(crate) fn note_query(explain: &Explain) {
    if !tq_obs::enabled() {
        return;
    }
    let m = query_metrics();
    let i = match explain.backend {
        Some(BackendKind::Baseline) => 1,
        _ => 0,
    };
    m.queries[i].incr();
    m.latency[i].record_ns(tq_obs::duration_ns(explain.wall));
    match explain.cache {
        CacheStatus::Hit => m.cache_hits.incr(),
        CacheStatus::Miss => m.cache_misses.incr(),
        CacheStatus::Unused => {}
    }
    m.nodes_visited.add(explain.eval.nodes_visited as u64);
    m.items_tested.add(explain.eval.items_tested as u64);
    m.items_pruned.add(explain.eval.items_pruned as u64);
    m.distance_checks.add(explain.eval.distance_checks as u64);
}

/// Offers a completed query to the slow-query log, queue delay included.
/// Called from the read-plane handles — the only place
/// [`Explain::queued`] is known — so a retained entry tells the full
/// serving-path story.
pub(crate) fn note_slow_query(explain: &Explain) {
    let total =
        tq_obs::duration_ns(explain.wall).saturating_add(tq_obs::duration_ns(explain.queued));
    tq_obs::record_slow(total, || format!("query {explain}"));
}

// ---------------------------------------------------------------------------
// Execution (shared by Snapshot::run and Engine::run)
// ---------------------------------------------------------------------------

/// What a max-cov query did with the [`ServedTable`] memo: which key it
/// used, and the table it built on a miss (`None` on a hit). The control
/// plane absorbs built tables into the next snapshot and refreshes LRU
/// recency on hits; the read plane discards this.
pub(crate) struct TableOutcome {
    pub(crate) key: Vec<FacilityId>,
    pub(crate) built: Option<Arc<ServedTable>>,
}

/// Executes a query against one immutable snapshot. Pure with respect to
/// the snapshot: all scratch state is local, so any number of threads may
/// call this concurrently on the same snapshot.
pub(crate) fn execute(
    snap: &Snapshot,
    query: &Query,
) -> Result<(Answer, Option<TableOutcome>), EngineError> {
    let start = Instant::now();
    let cand = resolve_candidates(snap, query)?;
    if query.k == 0 {
        return Err(EngineError::ZeroK);
    }
    if query.k > cand.len() {
        return Err(EngineError::KExceedsCandidates {
            k: query.k,
            candidates: cand.len(),
        });
    }
    let mut explain = Explain {
        backend: Some(snap.backend.kind()),
        snapshot_epoch: snap.epoch,
        candidates: cand.len(),
        ..Explain::default()
    };
    let mut outcome = None;
    let result = match query.threads {
        Some(n) => parallel::with_threads(n, || {
            explain.threads = parallel::current_threads();
            dispatch(snap, query, &cand, &mut explain, &mut outcome)
        })?,
        None => {
            explain.threads = parallel::current_threads();
            dispatch(snap, query, &cand, &mut explain, &mut outcome)?
        }
    };
    explain.wall = start.elapsed();
    note_query(&explain);
    Ok((Answer { result, explain }, outcome))
}

/// Sorted, deduplicated, validated candidate ids for a query.
fn resolve_candidates(snap: &Snapshot, query: &Query) -> Result<Vec<FacilityId>, EngineError> {
    resolve_candidates_in(&snap.facilities, query)
}

/// [`resolve_candidates`] against an explicit facility set — shared with
/// the sharded front end, whose candidate rules must match exactly.
pub(crate) fn resolve_candidates_in(
    facilities: &FacilitySet,
    query: &Query,
) -> Result<Vec<FacilityId>, EngineError> {
    let mut cand = match &query.candidates {
        Some(ids) => {
            let mut ids = ids.clone();
            ids.sort_unstable();
            ids.dedup();
            for &id in &ids {
                if id as usize >= facilities.len() {
                    return Err(EngineError::UnknownCandidate { id });
                }
            }
            ids
        }
        None => facilities.iter().map(|(id, _)| id).collect(),
    };
    cand.shrink_to_fit();
    if cand.is_empty() {
        return Err(EngineError::EmptyCandidates);
    }
    Ok(cand)
}

fn dispatch(
    snap: &Snapshot,
    query: &Query,
    cand: &[FacilityId],
    explain: &mut Explain,
    outcome: &mut Option<TableOutcome>,
) -> Result<QueryResult, EngineError> {
    match query.kind {
        QueryKind::TopK => {
            let ranked = run_top_k(snap, cand, query.k, explain);
            // A hit came from a memoized table: report the key so the
            // control plane refreshes its LRU recency, exactly as max-cov
            // hits do — a hot subset stays resident no matter which query
            // family keeps it hot.
            if explain.cache.is_hit() {
                *outcome = Some(TableOutcome {
                    key: cand.to_vec(),
                    built: None,
                });
            }
            Ok(QueryResult::TopK(ranked))
        }
        QueryKind::MaxCov => run_max_cov(snap, query, cand, explain, outcome),
    }
}

/// Top-k over a candidate set: from the memoized table when one exists
/// (zero evaluation work), otherwise through the backend's search.
fn run_top_k(
    snap: &Snapshot,
    cand: &[FacilityId],
    k: usize,
    explain: &mut Explain,
) -> Vec<(FacilityId, f64)> {
    if let Some(table) = snap.tables.get(cand) {
        explain.cache = CacheStatus::Hit;
        return rank_table(table, k);
    }
    let out = if cand.len() == snap.facilities.len() {
        snap.backend
            .as_index()
            .top_k(&snap.users, &snap.model, &snap.facilities, k)
    } else {
        // Restricted candidate set: search over a sub-facility-set and
        // map the dense sub-ids back. `cand` is sorted, so sub-id order
        // equals real-id order and tie-breaking is preserved.
        let sub = FacilitySet::from_vec(
            cand.iter()
                .map(|&id| snap.facilities.get(id).clone())
                .collect(),
        );
        let mut out = snap
            .backend
            .as_index()
            .top_k(&snap.users, &snap.model, &sub, k);
        for (id, _) in &mut out.ranked {
            *id = cand[*id as usize];
        }
        out
    };
    explain.eval.add(&out.stats);
    explain.relaxations += out.relaxations;
    out.ranked
}

fn run_max_cov(
    snap: &Snapshot,
    query: &Query,
    cand: &[FacilityId],
    explain: &mut Explain,
    outcome: &mut Option<TableOutcome>,
) -> Result<QueryResult, EngineError> {
    let k = query.k;
    let pool: Vec<FacilityId> = match query.algorithm {
        Algorithm::TwoStep => {
            // Step 1: kMaxRRST narrows the pool to the k′ individually
            // best candidates.
            let kp = query
                .k_prime
                .unwrap_or_else(|| (4 * k).max(32))
                .max(k)
                .min(cand.len());
            let mut top = run_top_k(snap, cand, kp, explain);
            let mut ids: Vec<FacilityId> = top.drain(..).map(|(id, _)| id).collect();
            ids.sort_unstable();
            ids
        }
        _ => cand.to_vec(),
    };
    let (table, table_outcome) = resolve_table(snap, pool, explain);
    let out = match query.algorithm {
        Algorithm::Greedy | Algorithm::TwoStep => greedy(&table, &snap.users, &snap.model, k),
        Algorithm::Genetic => {
            let cfg = GeneticConfig {
                seed: query.seed.unwrap_or(GeneticConfig::default().seed),
                ..GeneticConfig::default()
            };
            genetic(&table, &snap.users, &snap.model, k, &cfg)
        }
        Algorithm::Exact => exact(&table, &snap.users, &snap.model, k, query.node_budget)
            .ok_or(EngineError::ExactBudgetExhausted)?,
    };
    *outcome = Some(table_outcome);
    Ok(QueryResult::MaxCov(out))
}

/// The [`ServedTable`] for a (sorted) candidate set: the snapshot's frozen
/// memo on a hit, a locally built table on a miss. The build mutates
/// nothing — the caller decides through the returned [`TableOutcome`]
/// whether the new table is absorbed into a future snapshot.
fn resolve_table(
    snap: &Snapshot,
    key: Vec<FacilityId>,
    explain: &mut Explain,
) -> (Arc<ServedTable>, TableOutcome) {
    if let Some(table) = snap.tables.get(&key) {
        explain.cache = CacheStatus::Hit;
        return (table.clone(), TableOutcome { key, built: None });
    }
    explain.cache = CacheStatus::Miss;
    let table = snap
        .backend
        .as_index()
        .served_table(&snap.users, &snap.model, &snap.facilities, &key);
    explain.eval.add(&table.stats);
    let table = Arc::new(table);
    let outcome = TableOutcome {
        key,
        built: Some(table.clone()),
    };
    (table, outcome)
}

/// Ranks a table's candidates by service value (descending, ties by
/// ascending facility id), truncated to `k`.
pub(crate) fn rank_table(table: &ServedTable, k: usize) -> Vec<(FacilityId, f64)> {
    let mut ranked: Vec<(FacilityId, f64)> = table
        .ids
        .iter()
        .zip(&table.values)
        .map(|(id, v)| (*id, *v))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    ranked.truncate(k);
    ranked
}

/// The served-point mask of one trajectory against one facility, restricted
/// to the points the index placement exposes — two-point placement anchors
/// only the source and destination, so interior points of multipoint
/// trajectories are invisible to the indexed evaluation and must stay
/// invisible to the patch path too (otherwise patched answers would diverge
/// from a fresh build+query).
///
/// Returns `None` when no exposed point is served.
pub(crate) fn delta_mask(
    users: &tq_trajectory::UserSet,
    model: &crate::service::ServiceModel,
    placement: Placement,
    id: tq_trajectory::TrajectoryId,
    facility: &tq_trajectory::Facility,
) -> Option<crate::service::PointMask> {
    let t = users.get(id);
    let psi = model.psi;
    let mut mask = crate::service::PointMask::empty(t.len());
    let mut any = false;
    let mut test = |i: usize, p: &tq_geometry::Point| {
        if facility.serves_point(p, psi) {
            mask.set(i);
            any = true;
        }
    };
    match placement {
        Placement::TwoPoint => {
            let (src, dst) = (t.source(), t.destination());
            test(0, &src);
            test(t.len() - 1, &dst);
        }
        Placement::Segmented | Placement::FullTrajectory => {
            for (i, p) in t.points().iter().enumerate() {
                test(i, p);
            }
        }
    }
    any.then_some(mask)
}
