//! The unified query engine, split into a shared read plane and a
//! single-writer control plane for concurrent serving.
//!
//! The paper frames kMaxRRST and MaxkCovRST as two queries over one index
//! family (the TQ-tree versus the BL baseline); this module gives that
//! frame a session-style API built for many readers and one writer:
//!
//! * **[`Snapshot`]** — the read plane: an immutable, epoch-numbered
//!   version of the entire queryable state (users + facilities +
//!   [`ServiceModel`] + backend index + frozen [`ServedTable`] memo, all
//!   behind `Arc`). [`Snapshot::run`] answers typed [`Query`]s through
//!   `&self` with **zero locks** — any number of threads serve queries
//!   concurrently, each answer bit-identical to serial execution.
//! * **[`Engine`]** — the single-writer control plane: owns the
//!   publication slot, answers queries itself ([`Engine::run`], which
//!   additionally memoizes the tables queries build), and applies
//!   streaming [`Update`] batches ([`Engine::apply`]) by copy-on-write:
//!   only the touched facilities' tables (and the mutated index/user set)
//!   are cloned and patched, everything else is `Arc`-shared with the
//!   previous epoch, and the new snapshot is published atomically.
//!   Readers never wait out a batch — they keep answering on the epoch
//!   they hold, and old epochs drain via `Arc` refcounts.
//! * **[`Reader`]** — the cloneable, `Send + Sync` handle serving threads
//!   hold; [`Reader::snapshot`] yields the latest published epoch. The
//!   [`serve`](crate::serve) module drives a whole worker pool off this.
//!
//! # Request flow
//!
//! ```text
//!                     writer (one thread)             readers (N threads)
//!                 ┌───────────────────────┐        ┌──────────────────────┐
//! Engine::apply ─►│ validate → CoW-patch  │        │ reader.snapshot()    │
//!                 │ index + touched tables│        │   └► Arc<Snapshot>   │
//!                 │ → publish epoch e+1 ──┼──swap──┼──►                   │
//! Engine::run ───►│ execute on epoch e;   │ (slot) │ snapshot.run(query)  │
//!                 │ absorb built tables   │        │   &self, zero locks  │
//!                 └───────────────────────┘        └──────────────────────┘
//!        Query::top_k(k) / Query::max_cov(k).algorithm(..) → Answer + Explain
//!        (epoch e stays valid for readers still on it; freed by refcount)
//! ```
//!
//! # Memoization
//!
//! The expensive artifact every MaxkCovRST solver consumes — the
//! [`ServedTable`] of complete served-point masks — is memoized **per
//! candidate set** in the published snapshot. A top-k query that follows a
//! coverage query over the same candidates is answered straight from the
//! frozen table (reported as [`CacheStatus::Hit`] in [`Explain`]). The
//! full-facility table is pinned; subset tables are LRU-bounded by the
//! [`EngineBuilder::subset_tables`] capacity (default
//! [`DEFAULT_SUBSET_TABLES`], `0` disables subset caching) so the memo
//! cannot grow without bound under shifting candidate sets. Memoization is
//! a *control-plane* action: [`Engine::run`] absorbs the tables its
//! queries build by publishing a successor snapshot, while
//! [`Snapshot::run`] on the read plane builds missing tables locally and
//! discards them — readers never mutate shared state.
//!
//! [`Engine::apply`] keeps every memoized table in sync incrementally (the
//! [`dynamic`](crate::dynamic)-engine invalidation rule: facilities whose
//! ψ-expanded EMBR misses every delta MBR are untouched — their tables
//! stay `Arc`-shared with the previous epoch at zero cost — touched ones
//! are cloned and patched delta-by-delta, heavy ones re-evaluated through
//! the tree).
//!
//! # Bit-identity
//!
//! Answers are **bit-identical across backends, histories, and planes**:
//! both backends sum service values in the canonical
//! ascending-trajectory-id order ([`crate::eval::canonical_value`]), so
//! `Engine` over [`Backend::TqTree`] and over [`Backend::Baseline`] return
//! identical floats; an engine that has applied update batches answers
//! exactly like a freshly built one; and a query run on any reader's
//! snapshot equals the same query run serially on the engine at that epoch
//! (`tests/engine_api.rs`, `tests/dynamic_equivalence.rs` and
//! `tests/concurrent_serving.rs` enforce all three).
//!
//! One caveat scopes the cross-backend half: the two backends must
//! *expose the same trajectory points*. The BL baseline indexes every
//! point of every trajectory, while a TQ-tree under
//! [`Placement::TwoPoint`](crate::tqtree::Placement::TwoPoint) anchors
//! only each trajectory's source and destination — an intentional
//! endpoint approximation for multipoint data (see `eval.rs`). So over
//! two-point trajectories (taxi-like trips) the backends agree under
//! every placement, and over multipoint data they agree when the tree
//! uses [`Placement::Segmented`](crate::tqtree::Placement::Segmented) or
//! [`Placement::FullTrajectory`](crate::tqtree::Placement::FullTrajectory);
//! two-point placement over multipoint data answers a *different*
//! (endpoint-only) question than the baseline under the partial
//! scenarios.
//!
//! # Example
//!
//! ```
//! use tq_core::engine::{Algorithm, Engine, Query};
//! use tq_core::service::{Scenario, ServiceModel};
//! use tq_geometry::Point;
//! use tq_trajectory::{Facility, FacilitySet, Trajectory, UserSet};
//!
//! let p = |x: f64, y: f64| Point::new(x, y);
//! let users = UserSet::from_vec(vec![
//!     Trajectory::two_point(p(0.0, 0.0), p(10.0, 0.0)),
//!     Trajectory::two_point(p(50.0, 50.0), p(60.0, 50.0)),
//! ]);
//! let routes = FacilitySet::from_vec(vec![
//!     Facility::new(vec![p(0.0, 1.0), p(10.0, 1.0)]),
//!     Facility::new(vec![p(50.0, 51.0), p(60.0, 51.0)]),
//! ]);
//! let mut engine = Engine::builder(ServiceModel::new(Scenario::Transit, 2.0))
//!     .users(users)
//!     .facilities(routes)
//!     .build()
//!     .unwrap();
//!
//! // kMaxRRST: the best facility.
//! let top = engine.run(Query::top_k(1)).unwrap();
//! assert_eq!(top.ranked()[0].1, 1.0);
//!
//! // MaxkCovRST: the best pair, greedily.
//! let cover = engine
//!     .run(Query::max_cov(2).algorithm(Algorithm::Greedy))
//!     .unwrap();
//! assert_eq!(cover.cover().value, 2.0);
//!
//! // The greedy query built a ServedTable for all candidates; a top-k
//! // query over the same candidates now hits that cache — on the engine
//! // and on every snapshot published since.
//! let again = engine.run(Query::top_k(2)).unwrap();
//! assert!(again.explain.cache.is_hit());
//! assert_eq!(again.ranked()[0].1, top.ranked()[0].1);
//!
//! // The read plane: a Reader is Send + Sync + Clone, and snapshots
//! // answer through &self — hand them to as many threads as you like.
//! let reader = engine.reader();
//! let snap = reader.snapshot();
//! let served = snap.run(Query::top_k(2)).unwrap();
//! assert_eq!(served.ranked(), again.ranked());
//! assert_eq!(served.explain.snapshot_epoch, snap.epoch());
//! ```

#![deny(missing_docs)]

mod memo;
pub(crate) mod session;
mod snapshot;

pub use memo::DEFAULT_SUBSET_TABLES;
pub use session::{Algorithm, Answer, CacheStatus, Explain, Query, QueryResult};
pub use snapshot::{Reader, Snapshot};

pub(crate) use memo::TableMemo;
use snapshot::SnapshotSlot;

use crate::baseline::BaselineIndex;
use crate::dynamic::{BatchOutcome, Update, UpdateError, UpdateStats};
use crate::eval::{canonical_value, EvalOutcome, EvalStats};
use crate::fasthash::{FxHashMap, FxHashSet};
use crate::maxcov::ServedTable;
use crate::parallel;
use crate::persist::{Durable, StoreConfig};
use crate::service::ServiceModel;
use crate::topk::{top_k_facilities, TopKOutcome};
use crate::tqtree::{TqTree, TqTreeConfig};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use tq_geometry::Rect;
use tq_trajectory::{Facility, FacilityId, FacilitySet, TrajectoryId, UserSet};

/// Default patch-vs-rebuild threshold for [`Engine::apply`] (see
/// [`crate::dynamic::DynamicConfig::rebuild_fraction`]).
pub const DEFAULT_REBUILD_FRACTION: f64 = 0.25;

// ---------------------------------------------------------------------------
// The Index trait and the Backend enum
// ---------------------------------------------------------------------------

/// What a query backend must provide: per-facility evaluation with complete
/// served-point masks, an accelerated (or exhaustive) top-k, and
/// [`ServedTable`] construction for a candidate subset.
///
/// Implemented by [`TqTree`] (the paper's contribution) and
/// [`BaselineIndex`] (the paper's BL reference); [`Backend`] dispatches
/// between them. All implementations must report values summed in the
/// canonical ascending-trajectory-id order
/// ([`crate::eval::canonical_value`]) so answers are bit-identical across
/// backends whenever the backends expose the same trajectory points (see
/// the [module docs](self) for the one placement caveat).
pub trait Index {
    /// Which backend this is, for [`Explain`] reports.
    fn backend_kind(&self) -> BackendKind;

    /// Evaluates one facility with **complete** served-point masks (the
    /// flavour MaxkCovRST's `AGG` union requires).
    fn evaluate(&self, users: &UserSet, model: &ServiceModel, facility: &Facility)
        -> EvalOutcome;

    /// The `k` facilities with the highest service value, best first, ties
    /// broken by ascending facility id.
    fn top_k(
        &self,
        users: &UserSet,
        model: &ServiceModel,
        facilities: &FacilitySet,
        k: usize,
    ) -> TopKOutcome;

    /// Builds the complete [`ServedTable`] for the given candidate ids.
    fn served_table(
        &self,
        users: &UserSet,
        model: &ServiceModel,
        facilities: &FacilitySet,
        candidates: &[FacilityId],
    ) -> ServedTable;
}

impl Index for TqTree {
    fn backend_kind(&self) -> BackendKind {
        BackendKind::TqTree
    }

    fn evaluate(
        &self,
        users: &UserSet,
        model: &ServiceModel,
        facility: &Facility,
    ) -> EvalOutcome {
        crate::eval::evaluate_masks(self, users, model, facility)
    }

    fn top_k(
        &self,
        users: &UserSet,
        model: &ServiceModel,
        facilities: &FacilitySet,
        k: usize,
    ) -> TopKOutcome {
        top_k_facilities(self, users, model, facilities, k)
    }

    fn served_table(
        &self,
        users: &UserSet,
        model: &ServiceModel,
        facilities: &FacilitySet,
        candidates: &[FacilityId],
    ) -> ServedTable {
        ServedTable::build_for(self, users, model, facilities, candidates)
    }
}

impl Index for BaselineIndex {
    fn backend_kind(&self) -> BackendKind {
        BackendKind::Baseline
    }

    fn evaluate(
        &self,
        users: &UserSet,
        model: &ServiceModel,
        facility: &Facility,
    ) -> EvalOutcome {
        BaselineIndex::evaluate(self, users, model, facility)
    }

    fn top_k(
        &self,
        users: &UserSet,
        model: &ServiceModel,
        facilities: &FacilitySet,
        k: usize,
    ) -> TopKOutcome {
        BaselineIndex::top_k(self, users, model, facilities, k)
    }

    fn served_table(
        &self,
        users: &UserSet,
        model: &ServiceModel,
        facilities: &FacilitySet,
        candidates: &[FacilityId],
    ) -> ServedTable {
        // Same fan-out shape as the TQ-tree table build: independent
        // per-candidate evaluations, ordered reduction, canonical values.
        let outcomes = parallel::par_map(candidates, |&fid| {
            BaselineIndex::evaluate(self, users, model, facilities.get(fid))
        });
        let mut stats = EvalStats::default();
        let mut masks = Vec::with_capacity(candidates.len());
        for out in outcomes {
            stats.add(&out.stats);
            masks.push(out.masks);
        }
        ServedTable::from_masks(users, model, candidates.to_vec(), masks, stats)
    }
}

/// The index behind an [`Engine`].
#[derive(Debug, Clone)]
pub enum Backend {
    /// The paper's TQ-tree — TQ(B) or TQ(Z) depending on its
    /// [`TqTreeConfig`]. The only backend that supports
    /// [`Engine::apply`] updates.
    TqTree(TqTree),
    /// The paper's BL point-quadtree baseline (exhaustive top-k, range
    /// query + verification per facility).
    Baseline(BaselineIndex),
}

impl Backend {
    pub(crate) fn as_index(&self) -> &dyn Index {
        match self {
            Backend::TqTree(t) => t,
            Backend::Baseline(b) => b,
        }
    }

    /// Which backend this is.
    pub fn kind(&self) -> BackendKind {
        self.as_index().backend_kind()
    }
}

/// Discriminant of [`Backend`], carried by [`Explain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// [`Backend::TqTree`].
    TqTree,
    /// [`Backend::Baseline`].
    Baseline,
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendKind::TqTree => write!(f, "tq-tree"),
            BackendKind::Baseline => write!(f, "baseline"),
        }
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Typed errors of the [`Engine`] API — every condition the older free
/// functions answered with a panic or silent truncation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The query's candidate set is empty (no facilities registered, or an
    /// explicit empty [`Query::candidates`] list).
    EmptyCandidates,
    /// `k == 0` — the query asks for nothing.
    ZeroK,
    /// `k` exceeds the number of candidate facilities.
    KExceedsCandidates {
        /// The requested `k`.
        k: usize,
        /// The number of candidates actually available.
        candidates: usize,
    },
    /// A [`Query::candidates`] id does not name a registered facility.
    UnknownCandidate {
        /// The offending id.
        id: FacilityId,
    },
    /// An update batch was rejected (out-of-bounds insert, or a removal
    /// naming a trajectory id that is not live). The batch was applied not
    /// at all.
    Update(UpdateError),
    /// [`Engine::apply`] was called on a backend without update support
    /// (the BL baseline is a static index).
    UpdatesUnsupported,
    /// An initial trajectory lies outside the explicit engine bounds passed
    /// to [`EngineBuilder::bounds`].
    TrajectoryOutOfBounds {
        /// The offending trajectory id.
        id: TrajectoryId,
    },
    /// The exact branch-and-bound solver exhausted its node budget before
    /// proving optimality (raise [`Query::node_budget`], lower `k`, or use
    /// [`Algorithm::Greedy`]).
    ExactBudgetExhausted,
    /// A persistence operation failed — I/O, a corrupt store, a refused
    /// WAL append. Carries the rendered [`tq_store::StoreError`]. A WAL
    /// failure inside [`Engine::apply`] rejects the batch with the
    /// in-memory engine untouched.
    Persist(String),
    /// The *post-publish* threshold checkpoint inside [`Engine::apply`]
    /// failed. Unlike [`EngineError::Persist`], the batch itself **was
    /// applied, published and durably WAL-logged** — do not retry it;
    /// only the log compaction failed (it will be retried by the next
    /// apply over threshold, or an explicit [`Engine::checkpoint`]).
    CheckpointFailed(String),
    /// [`Engine::checkpoint`] was called on an engine without an attached
    /// store (build with
    /// [`EngineBuilder::persist_to`] or load with [`Engine::open`] to get
    /// one).
    NotDurable,
    /// A sharded-engine configuration or consistency problem — a front end
    /// that cannot be built as requested ([`EngineBuilder::build_sharded`])
    /// or a sharded store whose shards and routing log disagree beyond
    /// what recovery can reconcile ([`Engine::open_sharded`]).
    Sharded(String),
    /// The write was sent to a replication follower. Followers apply only
    /// batches shipped from their primary; direct writes must go to the
    /// named primary address instead.
    ReadOnly {
        /// Address of the primary this follower replicates from.
        primary: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::EmptyCandidates => {
                write!(f, "the query's candidate facility set is empty")
            }
            EngineError::ZeroK => write!(f, "k must be at least 1"),
            EngineError::KExceedsCandidates { k, candidates } => write!(
                f,
                "k = {k} exceeds the {candidates} candidate facilities available"
            ),
            EngineError::UnknownCandidate { id } => {
                write!(f, "candidate id {id} does not name a registered facility")
            }
            EngineError::Update(e) => write!(f, "update batch rejected: {e}"),
            EngineError::UpdatesUnsupported => {
                write!(f, "the baseline backend is static and cannot apply updates")
            }
            EngineError::TrajectoryOutOfBounds { id } => {
                write!(f, "initial trajectory {id} lies outside the engine bounds")
            }
            EngineError::ExactBudgetExhausted => write!(
                f,
                "exact search exceeded its node budget before proving optimality"
            ),
            EngineError::Persist(why) => write!(f, "persistence failed: {why}"),
            EngineError::CheckpointFailed(why) => write!(
                f,
                "batch applied and WAL-logged, but the threshold checkpoint failed: {why}"
            ),
            EngineError::NotDurable => {
                write!(f, "no store attached (build with persist_to or Engine::open)")
            }
            EngineError::Sharded(why) => write!(f, "sharded engine: {why}"),
            EngineError::ReadOnly { primary } => write!(
                f,
                "this node is a read-only follower; send writes to the primary at {primary}"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<UpdateError> for EngineError {
    fn from(e: UpdateError) -> Self {
        EngineError::Update(e)
    }
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub(crate) enum BackendChoice {
    TqTree(TqTreeConfig),
    Baseline { capacity: usize },
}

/// Fluent constructor for [`Engine`] — see [`Engine::builder`].
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    pub(crate) model: ServiceModel,
    pub(crate) users: UserSet,
    pub(crate) facilities: FacilitySet,
    pub(crate) backend: BackendChoice,
    pub(crate) bounds: Option<Rect>,
    pub(crate) rebuild_fraction: f64,
    pub(crate) subset_tables: usize,
    pub(crate) persist: Option<(PathBuf, StoreConfig)>,
    /// Shard count for [`EngineBuilder::build_sharded`]; ignored by
    /// [`EngineBuilder::build`].
    pub(crate) shards: usize,
    /// `true` = z-range spatial partitioner, `false` = hash partitioner.
    pub(crate) spatial: bool,
}

impl EngineBuilder {
    /// Registers the user trajectories the engine indexes and serves.
    pub fn users(mut self, users: UserSet) -> EngineBuilder {
        self.users = users;
        self
    }

    /// Registers the candidate facilities queries rank and combine.
    pub fn facilities(mut self, facilities: FacilitySet) -> EngineBuilder {
        self.facilities = facilities;
        self
    }

    /// Uses a TQ-tree backend with this configuration (the default backend
    /// uses [`TqTreeConfig::default`]).
    pub fn tree_config(mut self, config: TqTreeConfig) -> EngineBuilder {
        self.backend = BackendChoice::TqTree(config);
        self
    }

    /// Uses the BL point-quadtree baseline backend instead of the TQ-tree.
    pub fn baseline(self) -> EngineBuilder {
        self.baseline_capacity(crate::baseline::DEFAULT_LEAF_CAPACITY)
    }

    /// [`EngineBuilder::baseline`] with an explicit quadtree leaf capacity.
    pub fn baseline_capacity(mut self, capacity: usize) -> EngineBuilder {
        self.backend = BackendChoice::Baseline { capacity };
        self
    }

    /// Fixes the TQ-tree bounds (required when [`Engine::apply`] will
    /// insert trajectories outside the initial data extent, e.g. the full
    /// city rectangle). Initial trajectories outside the bounds fail the
    /// build with [`EngineError::TrajectoryOutOfBounds`]. Ignored by the
    /// baseline backend.
    pub fn bounds(mut self, bounds: Rect) -> EngineBuilder {
        self.bounds = Some(bounds);
        self
    }

    /// Patch-vs-rebuild threshold for [`Engine::apply`] (see
    /// [`crate::dynamic::DynamicConfig::rebuild_fraction`]; defaults to
    /// [`DEFAULT_REBUILD_FRACTION`]).
    pub fn rebuild_fraction(mut self, fraction: f64) -> EngineBuilder {
        self.rebuild_fraction = fraction;
        self
    }

    /// Capacity of the *subset* [`ServedTable`] memo: how many
    /// non-full-candidate-set tables the engine keeps (LRU-evicted beyond
    /// this). `0` disables subset caching entirely — subset coverage
    /// queries then build their table per query, like snapshot readers do.
    /// The pinned full-facility table is unaffected. Defaults to
    /// [`DEFAULT_SUBSET_TABLES`].
    pub fn subset_tables(mut self, capacity: usize) -> EngineBuilder {
        self.subset_tables = capacity;
        self
    }

    /// Makes the engine durable: creates a fresh
    /// [`tq_store`] directory at `dir`, writes the built engine's initial
    /// snapshot into it, and attaches the store so every
    /// [`Engine::apply`] batch is WAL-logged before it publishes and
    /// [`Engine::checkpoint`] (explicit or threshold-triggered) compacts
    /// the log into a new snapshot.
    ///
    /// The build fails with [`EngineError::Persist`] when `dir` already
    /// holds a store — reopen existing state with [`Engine::open`]
    /// instead of silently overwriting its history.
    pub fn persist_to(self, dir: impl AsRef<Path>) -> EngineBuilder {
        self.persist_with(dir, StoreConfig::default())
    }

    /// [`EngineBuilder::persist_to`] with explicit store tunables (fsync
    /// policy, auto-checkpoint threshold, snapshot retention).
    pub fn persist_with(mut self, dir: impl AsRef<Path>, config: StoreConfig) -> EngineBuilder {
        self.persist = Some((dir.as_ref().to_path_buf(), config));
        self
    }

    /// Number of shards for [`EngineBuilder::build_sharded`] (clamped to at
    /// least 1). Users are partitioned across `n` independent engines by
    /// the hash partitioner unless [`EngineBuilder::partition_by_space`]
    /// selects z-range splitting. Ignored by plain [`EngineBuilder::build`].
    pub fn shards(mut self, n: usize) -> EngineBuilder {
        self.shards = n.max(1);
        self
    }

    /// Selects the spatial z-range partitioner for
    /// [`EngineBuilder::build_sharded`]: shard boundaries are quantile
    /// splits of the initial users' source-point Z-curve codes, so
    /// spatially close trajectories land on the same shard. Requires
    /// explicit [`EngineBuilder::bounds`] or a non-empty initial user set
    /// (the split root rectangle).
    pub fn partition_by_space(mut self) -> EngineBuilder {
        self.spatial = true;
        self
    }

    /// Builds a [`crate::sharding::ShardedEngine`] front end over
    /// [`EngineBuilder::shards`] independent shard engines — same model,
    /// facilities, backend and tuning, each indexing its partition of the
    /// users. With [`EngineBuilder::persist_with`], `dir` becomes a
    /// *sharded* store directory: a shard manifest, a routing log and one
    /// plain store per shard (reopen with [`Engine::open_sharded`]).
    pub fn build_sharded(self) -> Result<crate::sharding::ShardedEngine, EngineError> {
        crate::sharding::ShardedEngine::from_builder(self)
    }

    /// Builds the backend index and the engine.
    pub fn build(self) -> Result<Engine, EngineError> {
        let backend = match self.backend {
            BackendChoice::TqTree(config) => match self.bounds {
                Some(bounds) => {
                    for (id, t) in self.users.iter() {
                        if t.points().iter().any(|p| !bounds.contains(p)) {
                            return Err(EngineError::TrajectoryOutOfBounds { id });
                        }
                    }
                    Backend::TqTree(TqTree::build_with_bounds(&self.users, config, bounds))
                }
                None => Backend::TqTree(TqTree::build(&self.users, config)),
            },
            BackendChoice::Baseline { capacity } => {
                Backend::Baseline(BaselineIndex::build_with_capacity(&self.users, capacity))
            }
        };
        let mut engine = Engine::new(self.users, self.facilities, self.model, backend);
        engine.rebuild_fraction = self.rebuild_fraction;
        engine.memo = TableMemo::new(self.subset_tables);
        if let Some((dir, config)) = self.persist {
            crate::persist::attach_new_store(&mut engine, &dir, config)?;
        }
        Ok(engine)
    }
}

// ---------------------------------------------------------------------------
// Engine (the control plane)
// ---------------------------------------------------------------------------

/// The single-writer control plane over one user set, service model and
/// backend: publishes [`Snapshot`]s for the read plane, answers queries
/// itself (with memoization), and applies [`Update`] batches by
/// copy-on-write. See the [module docs](self) for the two-plane design,
/// the memoization rules and the bit-identity guarantees.
#[derive(Debug)]
pub struct Engine {
    /// The publication slot shared with every [`Reader`].
    slot: Arc<SnapshotSlot>,
    /// The writer's handle to the currently published snapshot (always the
    /// same `Arc` the slot holds).
    snapshot: Arc<Snapshot>,
    /// Per-facility ψ-expanded stop bounding rectangles (EMBRs) — the
    /// update-invalidation test. Facilities are immutable, so this never
    /// changes after construction.
    embrs: Vec<Rect>,
    /// Liveness per trajectory id (`false` = removed tombstone).
    live: Vec<bool>,
    rebuild_fraction: f64,
    /// Subset-table recency/capacity bookkeeping (the tables themselves
    /// are frozen in the snapshot).
    memo: TableMemo,
    stats: UpdateStats,
    /// The attached store when the engine is durable (see
    /// [`crate::persist`]); `None` for in-memory engines.
    pub(crate) durable: Option<Durable>,
}

impl Clone for Engine {
    /// Clones the control plane into an *independent* engine with its own
    /// publication slot seeded at the current snapshot. Readers of the
    /// original keep following the original; the clone starts a separate
    /// epoch history (continuing from the current epoch number).
    ///
    /// The clone is always **in-memory**: a store has one WAL and one
    /// writer, and that is the engine being cloned. Persist the fork to a
    /// different directory if it needs its own durability.
    fn clone(&self) -> Engine {
        Engine {
            slot: Arc::new(SnapshotSlot::new(self.snapshot.clone())),
            snapshot: self.snapshot.clone(),
            embrs: self.embrs.clone(),
            live: self.live.clone(),
            rebuild_fraction: self.rebuild_fraction,
            memo: self.memo.clone(),
            stats: self.stats,
            durable: None,
        }
    }
}

impl Engine {
    /// Starts a fluent [`EngineBuilder`] (TQ-tree backend with default
    /// configuration unless overridden).
    pub fn builder(model: ServiceModel) -> EngineBuilder {
        EngineBuilder {
            model,
            users: UserSet::new(),
            facilities: FacilitySet::new(),
            backend: BackendChoice::TqTree(TqTreeConfig::default()),
            bounds: None,
            rebuild_fraction: DEFAULT_REBUILD_FRACTION,
            subset_tables: DEFAULT_SUBSET_TABLES,
            persist: None,
            shards: 1,
            spatial: false,
        }
    }

    /// Wraps a pre-built backend. The backend must index exactly `users`
    /// (e.g. `Backend::TqTree(TqTree::build(&users, cfg))`).
    pub fn new(
        users: UserSet,
        facilities: FacilitySet,
        model: ServiceModel,
        backend: Backend,
    ) -> Engine {
        let embrs = facilities.iter().map(|(_, f)| f.embr(model.psi)).collect();
        let live_count = users.len();
        let snapshot = Arc::new(Snapshot {
            epoch: 0,
            users: Arc::new(users),
            facilities: Arc::new(facilities),
            model,
            backend: Arc::new(backend),
            live_count,
            tables: FxHashMap::default(),
        });
        Engine {
            slot: Arc::new(SnapshotSlot::new(snapshot.clone())),
            snapshot,
            embrs,
            live: vec![true; live_count],
            rebuild_fraction: DEFAULT_REBUILD_FRACTION,
            memo: TableMemo::new(DEFAULT_SUBSET_TABLES),
            stats: UpdateStats::default(),
            durable: None,
        }
    }

    /// Reassembles an engine from decoded snapshot state — the
    /// deserialization counterpart of [`Engine::new`] that additionally
    /// restores the live bitmap, the publication epoch and the builder
    /// knobs. Only [`crate::persist`] calls this.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_restored(
        users: UserSet,
        facilities: FacilitySet,
        model: ServiceModel,
        backend: Backend,
        live: Vec<bool>,
        epoch: u64,
        rebuild_fraction: f64,
        subset_tables: usize,
        full_table: Option<ServedTable>,
    ) -> Engine {
        let embrs = facilities.iter().map(|(_, f)| f.embr(model.psi)).collect();
        let live_count = live.iter().filter(|&&l| l).count();
        let mut tables = FxHashMap::default();
        if let Some(table) = full_table {
            tables.insert(table.ids.clone(), Arc::new(table));
        }
        let snapshot = Arc::new(Snapshot {
            epoch,
            users: Arc::new(users),
            facilities: Arc::new(facilities),
            model,
            backend: Arc::new(backend),
            live_count,
            tables,
        });
        Engine {
            slot: Arc::new(SnapshotSlot::new(snapshot.clone())),
            snapshot,
            embrs,
            live,
            rebuild_fraction,
            memo: TableMemo::new(subset_tables),
            stats: UpdateStats::default(),
            durable: None,
        }
    }

    /// Attaches an opened store (see [`crate::persist`]).
    pub(crate) fn attach_store(&mut self, store: tq_store::Store) {
        self.durable = Some(Durable::new(store));
    }

    /// The patch-vs-rebuild threshold, for the snapshot codec.
    pub(crate) fn rebuild_fraction(&self) -> f64 {
        self.rebuild_fraction
    }

    /// The subset-table memo capacity, for the snapshot codec.
    pub(crate) fn subset_table_capacity(&self) -> usize {
        self.memo.capacity()
    }

    // -- the read plane -----------------------------------------------------

    /// A cloneable, `Send + Sync` [`Reader`] handle that always yields the
    /// engine's latest published snapshot — the thing to hand to serving
    /// threads.
    pub fn reader(&self) -> Reader {
        Reader {
            slot: self.slot.clone(),
        }
    }

    /// The currently published snapshot (readers obtained it through
    /// [`Engine::reader`]; the writer gets the same `Arc` here without
    /// touching the slot).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.snapshot.clone()
    }

    /// The current publication epoch. Starts at 0; bumped by every
    /// publication — update batches ([`Engine::apply`]) and table
    /// absorptions ([`Engine::run`] misses, [`Engine::warm`]).
    pub fn epoch(&self) -> u64 {
        self.snapshot.epoch
    }

    /// Atomically publishes a successor snapshot and keeps the writer's
    /// handle in sync. The one and only place epochs advance.
    fn publish(&mut self, snapshot: Snapshot) {
        debug_assert!(snapshot.epoch > self.snapshot.epoch, "epochs are monotone");
        let arc = Arc::new(snapshot);
        self.snapshot = arc.clone();
        self.slot.store(arc);
    }

    // -- queries ------------------------------------------------------------

    /// Answers a typed [`Query`], memoizing any [`ServedTable`] the query
    /// had to build (absorbed into a newly published snapshot, so
    /// subsequent queries — on the engine *and* on every reader — hit it).
    ///
    /// Validation errors ([`EngineError::EmptyCandidates`],
    /// [`EngineError::ZeroK`], [`EngineError::KExceedsCandidates`],
    /// [`EngineError::UnknownCandidate`]) are returned before any
    /// evaluation work happens.
    pub fn run(&mut self, query: Query) -> Result<Answer, EngineError> {
        let (answer, outcome) = session::execute(&self.snapshot, &query)?;
        if let Some(outcome) = outcome {
            match outcome.built {
                Some(table) => self.absorb_table(outcome.key, table),
                None => self.memo.touch(&outcome.key),
            }
        }
        Ok(answer)
    }

    /// Absorbs a freshly built table into the memo: admits it against the
    /// capacity bound and publishes a successor snapshot carrying it (and
    /// dropping any evicted ones). No-op for subset tables when subset
    /// caching is disabled.
    pub(crate) fn absorb_table(&mut self, key: Vec<FacilityId>, table: Arc<ServedTable>) {
        let is_full = key.len() == self.snapshot.facilities.len();
        let mut evicted = Vec::new();
        if !is_full {
            if self.memo.capacity() == 0 {
                return;
            }
            evicted = self.memo.admit(key.clone());
        }
        let mut tables = self.snapshot.tables.clone();
        for k in &evicted {
            tables.remove(k);
        }
        tables.insert(key, table);
        self.publish(Snapshot {
            epoch: self.snapshot.epoch + 1,
            users: self.snapshot.users.clone(),
            facilities: self.snapshot.facilities.clone(),
            model: self.snapshot.model,
            backend: self.snapshot.backend.clone(),
            live_count: self.snapshot.live_count,
            tables,
        });
    }

    /// Refreshes a memoized subset table's recency (LRU order) without
    /// running a query — used by the sharded front end to keep per-shard
    /// memo eviction in lockstep with its own.
    pub(crate) fn touch_table(&mut self, key: &[FacilityId]) {
        self.memo.touch(key);
    }

    /// Pre-evaluates (and memoizes) the [`ServedTable`] over **all**
    /// registered facilities, so subsequent queries hit the cache and
    /// [`Engine::apply`] maintains it incrementally from the start.
    /// Publishes the snapshot carrying it and returns the table.
    pub fn warm(&mut self) -> &ServedTable {
        let all: Vec<FacilityId> = self.snapshot.facilities.iter().map(|(id, _)| id).collect();
        if !self.snapshot.tables.contains_key(&all) {
            let table = self.snapshot.backend.as_index().served_table(
                &self.snapshot.users,
                &self.snapshot.model,
                &self.snapshot.facilities,
                &all,
            );
            self.absorb_table(all.clone(), Arc::new(table));
        }
        &self.snapshot.tables[&all]
    }

    /// The memoized table for a candidate set, if one exists (`None` until
    /// a coverage query or [`Engine::warm`] built it).
    pub fn cached_table(&self, candidates: &[FacilityId]) -> Option<&ServedTable> {
        self.snapshot.cached_table(candidates)
    }

    /// The memoized full-facility table (see [`Engine::warm`]).
    pub fn full_table(&self) -> Option<&ServedTable> {
        self.snapshot.full_table()
    }

    pub(crate) fn rank_table(table: &ServedTable, k: usize) -> Vec<(FacilityId, f64)> {
        session::rank_table(table, k)
    }

    // -- updates ------------------------------------------------------------

    /// Applies one batch of updates and publishes the resulting snapshot:
    /// validates the batch, copy-on-write-mutates the index and user set,
    /// brings **every memoized table** back in sync incrementally
    /// (untouched tables stay `Arc`-shared with the previous epoch at zero
    /// cost; touched ones are cloned and patched / re-evaluated per
    /// facility, as counted by [`Engine::stats`]), then swaps the new
    /// epoch into the publication slot. Readers keep answering on the old
    /// epoch until they next ask for a snapshot; the old epoch is freed by
    /// its `Arc` refcount.
    ///
    /// All-or-nothing: a batch with an out-of-bounds insert or a dead
    /// removal id is rejected without touching the engine
    /// ([`EngineError::Update`]). The baseline backend rejects all updates
    /// with [`EngineError::UpdatesUnsupported`].
    ///
    /// On a durable engine (built with [`EngineBuilder::persist_to`] or
    /// loaded with [`Engine::open`]) the validated batch is appended to
    /// the write-ahead log — fsynced per the configured
    /// [`crate::persist::SyncPolicy`] — **before** any state mutates, so
    /// an acknowledged batch survives a crash at any later instant (a
    /// WAL failure surfaces as [`EngineError::Persist`] with the batch
    /// rejected and the engine untouched); and once the store's
    /// `checkpoint_every` threshold is reached the apply finishes by
    /// checkpointing (fresh snapshot, truncated WAL). A failure of that
    /// post-publish compaction is the one error after which the batch
    /// *is* applied — it is reported distinctly as
    /// [`EngineError::CheckpointFailed`] so callers never retry an
    /// already-durable batch.
    pub fn apply(&mut self, updates: &[Update]) -> Result<BatchOutcome, EngineError> {
        if !matches!(&*self.snapshot.backend, Backend::TqTree(_)) {
            return Err(EngineError::UpdatesUnsupported);
        }
        self.validate_batch(updates)?;
        self.wal_append(updates)?;
        let outcome = self.apply_validated(updates, self.snapshot.epoch + 1);
        self.maybe_auto_checkpoint()?;
        Ok(outcome)
    }

    /// Re-applies one WAL batch during [`Engine::open`] recovery: same
    /// validation and mutation as [`Engine::apply`], but publishing at
    /// the epoch the original apply stamped into the record (so the
    /// recovered engine resumes exactly where the writer was) and without
    /// re-appending to the WAL.
    pub(crate) fn replay_batch(
        &mut self,
        updates: &[Update],
        stamp: u64,
    ) -> Result<BatchOutcome, EngineError> {
        if !matches!(&*self.snapshot.backend, Backend::TqTree(_)) {
            return Err(EngineError::UpdatesUnsupported);
        }
        self.validate_batch(updates)?;
        Ok(self.apply_validated(updates, stamp))
    }

    /// Applies one batch shipped from a replication primary, publishing at
    /// the epoch the primary stamped it with.
    ///
    /// The stamp makes this **idempotent**: a batch at or below the
    /// engine's current epoch is already reflected in the state (the
    /// follower saw it through catch-up *and* the live feed, or through a
    /// reconnect replaying an overlap) and is skipped with an empty
    /// [`BatchOutcome`]. Stamps above the current epoch may legitimately
    /// skip epochs — WAL stamps are increasing but not dense (see
    /// [`crate::persist`]) — and publish exactly at the primary's stamp,
    /// the same rule the WAL replay of [`Engine::open`] follows.
    ///
    /// On a durable follower the batch lands in the local WAL at the
    /// primary's stamp *before* it publishes — exactly the
    /// WAL-before-publish ordering of [`Engine::apply`] — so a follower
    /// crash replays to the same epoch it acknowledged.
    pub fn apply_replicated(
        &mut self,
        updates: &[Update],
        stamp: u64,
    ) -> Result<BatchOutcome, EngineError> {
        if stamp <= self.snapshot.epoch {
            return Ok(BatchOutcome::default());
        }
        if !matches!(&*self.snapshot.backend, Backend::TqTree(_)) {
            return Err(EngineError::UpdatesUnsupported);
        }
        self.validate_batch(updates)?;
        self.wal_append_at(updates, stamp)?;
        let outcome = self.apply_validated(updates, stamp);
        self.maybe_auto_checkpoint()?;
        Ok(outcome)
    }

    /// The mutation half of [`Engine::apply`]: the batch must already be
    /// validated (and WAL-logged when durable); publishes at `new_epoch`.
    fn apply_validated(&mut self, updates: &[Update], new_epoch: u64) -> BatchOutcome {
        // Copy-on-write of the mutable halves: readers may still hold the
        // published snapshot, so the index and user set are cloned, mutated,
        // and re-published — never mutated in place.
        let mut users = UserSet::clone(&self.snapshot.users);
        let Backend::TqTree(tree_ref) = &*self.snapshot.backend else {
            unreachable!("checked above");
        };
        let mut tree = tree_ref.clone();

        // Phase 1: mutate the index, collecting the delta list
        // (id, inserted?, trajectory MBR) per event, in order.
        let mut outcome = BatchOutcome::default();
        let mut live_count = self.snapshot.live_count;
        let mut deltas: Vec<(TrajectoryId, bool, Rect)> = Vec::with_capacity(updates.len());
        for u in updates {
            match u {
                Update::Insert(t) => {
                    let mbr = t.mbr();
                    let id = tree
                        .insert(&mut users, t.clone())
                        .expect("validated against the bounds");
                    self.live.push(true);
                    live_count += 1;
                    self.stats.inserts += 1;
                    outcome.inserted.push(id);
                    deltas.push((id, true, mbr));
                }
                Update::Remove(id) => {
                    tree.remove(&users, *id).expect("validated as live");
                    self.live[*id as usize] = false;
                    live_count -= 1;
                    self.stats.removes += 1;
                    outcome.removed += 1;
                    deltas.push((*id, false, users.get(*id).mbr()));
                }
            }
        }

        // Phases 2+3 per memoized table: classify its candidates by the
        // EMBR∩delta-MBR rule. A table none of whose facilities intersect
        // any delta keeps its Arc from the previous epoch (zero copies);
        // a touched table is cloned once, then patched in place (cheap
        // facilities) or rebuilt through the tree (heavy ones, fanned out
        // across threads).
        let rebuild_threshold =
            (self.rebuild_fraction * live_count.max(1) as f64).ceil() as usize;
        let placement = tree.config().placement;
        let mut tables = self.snapshot.tables.clone();
        for shared in tables.values_mut() {
            let relevant: Vec<Vec<&(TrajectoryId, bool, Rect)>> = shared
                .ids
                .iter()
                .map(|&fid| {
                    let embr = &self.embrs[fid as usize];
                    deltas
                        .iter()
                        .filter(|(_, _, mbr)| embr.intersects(mbr))
                        .collect()
                })
                .collect();
            if relevant.iter().all(|r| r.is_empty()) {
                let n = shared.ids.len();
                self.stats.facilities_untouched += n as u64;
                outcome.untouched += n;
                continue;
            }
            // Copy-on-write: clone this table once, patch the clone.
            let mut table = ServedTable::clone(shared);
            let mut rebuilds: Vec<usize> = Vec::new();
            for (ti, relevant) in relevant.iter().enumerate() {
                if relevant.is_empty() {
                    self.stats.facilities_untouched += 1;
                    outcome.untouched += 1;
                    continue;
                }
                if relevant.len() > rebuild_threshold {
                    rebuilds.push(ti);
                    continue;
                }
                let fid = table.ids[ti];
                let facility = self.snapshot.facilities.get(fid);
                let mut changed = false;
                for &&(id, inserted, _) in relevant {
                    if inserted {
                        self.stats.patch_evaluations += 1;
                        if let Some(mask) = session::delta_mask(
                            &users,
                            &self.snapshot.model,
                            placement,
                            id,
                            facility,
                        ) {
                            table.masks[ti].insert(id, mask);
                            changed = true;
                        }
                    } else {
                        changed |= table.masks[ti].remove(&id).is_some();
                    }
                }
                if changed {
                    table.values[ti] =
                        canonical_value(&users, &self.snapshot.model, &table.masks[ti]);
                }
                self.stats.facilities_patched += 1;
                outcome.patched += 1;
            }
            if !rebuilds.is_empty() {
                let ids: Vec<FacilityId> = rebuilds.iter().map(|&ti| table.ids[ti]).collect();
                let outcomes = parallel::par_evaluate_candidates(
                    &tree,
                    &users,
                    &self.snapshot.model,
                    &self.snapshot.facilities,
                    &ids,
                    true,
                );
                for (&ti, out) in rebuilds.iter().zip(outcomes) {
                    table.masks[ti] = out.masks;
                    table.values[ti] = out.value;
                }
                self.stats.facilities_reevaluated += rebuilds.len() as u64;
                outcome.reevaluated += rebuilds.len();
            }
            *shared = Arc::new(table);
        }
        self.stats.batches += 1;
        self.publish(Snapshot {
            epoch: new_epoch,
            users: Arc::new(users),
            facilities: self.snapshot.facilities.clone(),
            model: self.snapshot.model,
            backend: Arc::new(Backend::TqTree(tree)),
            live_count,
            tables,
        });
        outcome
    }

    /// Validates a batch without mutating anything: bounds for inserts,
    /// liveness (accounting for earlier events of the same batch) for
    /// removals.
    fn validate_batch(&self, updates: &[Update]) -> Result<(), UpdateError> {
        let Backend::TqTree(tree) = &*self.snapshot.backend else {
            return Ok(());
        };
        let bounds = tree.bounds();
        let mut next_id = self.snapshot.users.len() as TrajectoryId;
        let mut batch_removed: FxHashSet<TrajectoryId> = Default::default();
        for (index, u) in updates.iter().enumerate() {
            match u {
                Update::Insert(t) => {
                    if t.points().iter().any(|p| !bounds.contains(p)) {
                        return Err(UpdateError::OutOfBounds { index });
                    }
                    next_id += 1;
                }
                Update::Remove(id) => {
                    let preexisting = (*id as usize) < self.live.len();
                    let live = if preexisting {
                        self.live[*id as usize]
                    } else {
                        // Inserted earlier in this batch?
                        *id < next_id
                    };
                    if !live || !batch_removed.insert(*id) {
                        return Err(UpdateError::NotLive { index, id: *id });
                    }
                }
            }
        }
        Ok(())
    }

    // -- accessors ----------------------------------------------------------

    /// The registered user trajectories (including removed tombstones; see
    /// [`Engine::is_live`]).
    pub fn users(&self) -> &UserSet {
        self.snapshot.users()
    }

    /// The registered candidate facilities.
    pub fn facilities(&self) -> &FacilitySet {
        self.snapshot.facilities()
    }

    /// The registered service model.
    pub fn model(&self) -> &ServiceModel {
        self.snapshot.model()
    }

    /// The backend index.
    pub fn backend(&self) -> &Backend {
        self.snapshot.backend()
    }

    /// The TQ-tree, when that is the backend.
    pub fn tree(&self) -> Option<&TqTree> {
        self.snapshot.tree()
    }

    /// Number of live (inserted and not yet removed) trajectories.
    pub fn live_users(&self) -> usize {
        self.snapshot.live_users()
    }

    /// Whether trajectory `id` is currently live.
    pub fn is_live(&self, id: TrajectoryId) -> bool {
        (id as usize) < self.live.len() && self.live[id as usize]
    }

    /// Ids of the live trajectories, ascending.
    pub fn live_ids(&self) -> impl Iterator<Item = TrajectoryId> + '_ {
        self.live
            .iter()
            .enumerate()
            .filter(|(_, l)| **l)
            .map(|(i, _)| i as TrajectoryId)
    }

    /// A compacted [`UserSet`] of just the live trajectories, in ascending
    /// id order — the set a fresh build should index when cross-checking
    /// the engine against build-from-scratch.
    ///
    /// Compaction renumbers ids but is *monotone*, which is what keeps the
    /// canonical (ascending-id) value summation order — and with it the
    /// bit-identity guarantee — intact across the two id spaces.
    pub fn live_set(&self) -> UserSet {
        UserSet::from_vec(
            self.live_ids()
                .map(|id| self.snapshot.users.get(id).clone())
                .collect(),
        )
    }

    /// Accumulated update-work counters across every applied batch, summed
    /// over all memoized tables.
    pub fn stats(&self) -> &UpdateStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::Scenario;
    use tq_geometry::Point;
    use tq_trajectory::Trajectory;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn small_instance() -> (UserSet, FacilitySet) {
        let users = UserSet::from_vec(vec![
            Trajectory::two_point(p(0.0, 0.0), p(10.0, 0.0)),
            Trajectory::two_point(p(50.0, 50.0), p(60.0, 50.0)),
            Trajectory::two_point(p(0.5, 0.0), p(9.5, 0.0)),
        ]);
        let facilities = FacilitySet::from_vec(vec![
            Facility::new(vec![p(0.0, 1.0), p(10.0, 1.0)]),
            Facility::new(vec![p(50.0, 51.0), p(60.0, 51.0)]),
            Facility::new(vec![p(90.0, 90.0)]),
        ]);
        (users, facilities)
    }

    fn engine() -> Engine {
        let (users, facilities) = small_instance();
        Engine::builder(ServiceModel::new(Scenario::Transit, 2.0))
            .users(users)
            .facilities(facilities)
            .build()
            .unwrap()
    }

    #[test]
    fn validation_errors_are_typed() {
        let mut e = engine();
        assert_eq!(e.run(Query::top_k(0)).unwrap_err(), EngineError::ZeroK);
        assert_eq!(
            e.run(Query::top_k(4)).unwrap_err(),
            EngineError::KExceedsCandidates { k: 4, candidates: 3 }
        );
        assert_eq!(
            e.run(Query::top_k(1).candidates(&[])).unwrap_err(),
            EngineError::EmptyCandidates
        );
        assert_eq!(
            e.run(Query::top_k(1).candidates(&[7])).unwrap_err(),
            EngineError::UnknownCandidate { id: 7 }
        );
    }

    #[test]
    fn candidate_restriction_maps_ids_back() {
        let mut e = engine();
        let ans = e.run(Query::top_k(1).candidates(&[1, 2])).unwrap();
        assert_eq!(ans.ranked()[0].0, 1);
        assert_eq!(ans.ranked()[0].1, 1.0);
    }

    #[test]
    fn maxcov_then_topk_hits_cache_with_identical_values() {
        let mut e = engine();
        let fresh = e.run(Query::top_k(3)).unwrap();
        assert_eq!(fresh.explain.cache, CacheStatus::Unused);

        let cov = e.run(Query::max_cov(2)).unwrap();
        assert_eq!(cov.explain.cache, CacheStatus::Miss);
        let cached = e.run(Query::top_k(3)).unwrap();
        assert!(cached.explain.cache.is_hit());
        assert_eq!(cached.explain.eval.items_tested, 0, "no work on a hit");
        for (a, b) in fresh.ranked().iter().zip(cached.ranked()) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }

        // Second coverage query over the same candidates also hits.
        let cov2 = e.run(Query::max_cov(2)).unwrap();
        assert!(cov2.explain.cache.is_hit());
        assert_eq!(cov2.cover().value.to_bits(), cov.cover().value.to_bits());
    }

    #[test]
    fn snapshot_answers_match_engine_and_never_publish() {
        let mut e = engine();
        e.warm();
        let epoch_before = e.epoch();
        let reader = e.reader();
        let snap = reader.snapshot();
        assert_eq!(snap.epoch(), epoch_before);

        // Cache hit from the frozen memo.
        let hit = snap.run(Query::top_k(3)).unwrap();
        assert!(hit.explain.cache.is_hit());
        assert_eq!(hit.explain.snapshot_epoch, epoch_before);

        // Subset miss: the snapshot builds the table locally, answers
        // correctly, and memoizes nothing (no publication).
        let miss = snap.run(Query::max_cov(1).candidates(&[0, 1])).unwrap();
        assert_eq!(miss.explain.cache, CacheStatus::Miss);
        assert_eq!(reader.epoch(), epoch_before, "snapshot runs never publish");
        let again = snap.run(Query::max_cov(1).candidates(&[0, 1])).unwrap();
        assert_eq!(again.explain.cache, CacheStatus::Miss);
        assert_eq!(again.cover().value.to_bits(), miss.cover().value.to_bits());

        // The engine's answers at the same epoch are bit-identical.
        let own = e.run(Query::top_k(3)).unwrap();
        for (a, b) in own.ranked().iter().zip(hit.ranked()) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }

    #[test]
    fn readers_observe_published_epochs_old_snapshots_stay_valid() {
        let (users, facilities) = small_instance();
        let mut e = Engine::builder(ServiceModel::new(Scenario::Transit, 2.0))
            .users(users)
            .facilities(facilities)
            .bounds(Rect::new(p(0.0, 0.0), p(100.0, 100.0)))
            .build()
            .unwrap();
        e.warm();
        let reader = e.reader();
        let old = reader.snapshot();
        let old_top = old.run(Query::top_k(3)).unwrap();

        e.apply(&[Update::Insert(Trajectory::two_point(
            p(0.2, 0.0),
            p(9.8, 0.0),
        ))])
        .unwrap();

        // The reader handle sees the new epoch; the held snapshot still
        // answers exactly as before (no torn state).
        let new = reader.snapshot();
        assert!(new.epoch() > old.epoch());
        assert_eq!(new.live_users(), 4);
        assert_eq!(old.live_users(), 3);
        let old_again = old.run(Query::top_k(3)).unwrap();
        for (a, b) in old_top.ranked().iter().zip(old_again.ranked()) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
        let new_top = new.run(Query::top_k(3)).unwrap();
        assert!(new_top.ranked()[0].1 > old_top.ranked()[0].1);
    }

    #[test]
    fn clone_is_an_independent_writer() {
        let mut e = engine();
        e.warm();
        let reader = e.reader();
        let mut fork = e.clone();
        let fork_reader = fork.reader();
        // A publication on the fork is invisible to the original's readers.
        fork.run(Query::max_cov(1).candidates(&[0, 1])).unwrap();
        assert!(fork_reader.epoch() > reader.epoch());
        assert_eq!(reader.epoch(), e.epoch());
    }

    #[test]
    fn baseline_backend_rejects_updates() {
        let (users, facilities) = small_instance();
        let mut e = Engine::builder(ServiceModel::new(Scenario::Transit, 2.0))
            .users(users)
            .facilities(facilities)
            .baseline()
            .build()
            .unwrap();
        let batch = vec![Update::Insert(Trajectory::two_point(
            p(1.0, 1.0),
            p(2.0, 2.0),
        ))];
        assert_eq!(e.apply(&batch).unwrap_err(), EngineError::UpdatesUnsupported);
    }

    #[test]
    fn builder_bounds_check() {
        let (users, facilities) = small_instance();
        let err = Engine::builder(ServiceModel::new(Scenario::Transit, 2.0))
            .users(users)
            .facilities(facilities)
            .bounds(Rect::new(p(0.0, 0.0), p(20.0, 20.0)))
            .build()
            .unwrap_err();
        assert_eq!(err, EngineError::TrajectoryOutOfBounds { id: 1 });
    }

    #[test]
    fn apply_maintains_every_memoized_table() {
        let (users, facilities) = small_instance();
        let mut e = Engine::builder(ServiceModel::new(Scenario::Transit, 2.0))
            .users(users)
            .facilities(facilities.clone())
            .bounds(Rect::new(p(0.0, 0.0), p(100.0, 100.0)))
            .build()
            .unwrap();
        // Memoize two tables: the full set and a subset.
        e.run(Query::max_cov(1)).unwrap();
        e.run(Query::max_cov(1).candidates(&[0, 1])).unwrap();

        // A commuter arrives near facility 0.
        e.apply(&[Update::Insert(Trajectory::two_point(
            p(0.2, 0.0),
            p(9.8, 0.0),
        ))])
        .unwrap();

        // Both memoized tables now answer like a fresh engine.
        let got = e.run(Query::top_k(3)).unwrap();
        assert!(got.explain.cache.is_hit());
        let mut fresh = Engine::builder(ServiceModel::new(Scenario::Transit, 2.0))
            .users(e.live_set())
            .facilities(facilities)
            .build()
            .unwrap();
        let want = fresh.run(Query::top_k(3)).unwrap();
        for (g, w) in got.ranked().iter().zip(want.ranked()) {
            assert_eq!(g.0, w.0);
            assert_eq!(g.1.to_bits(), w.1.to_bits());
        }
        let sub = e.run(Query::top_k(2).candidates(&[0, 1])).unwrap();
        assert!(sub.explain.cache.is_hit());
        assert_eq!(sub.ranked()[0].1, 3.0);
    }

    #[test]
    fn untouched_tables_stay_arc_shared_across_epochs() {
        let (users, facilities) = small_instance();
        let mut e = Engine::builder(ServiceModel::new(Scenario::Transit, 2.0))
            .users(users)
            .facilities(facilities)
            .bounds(Rect::new(p(0.0, 0.0), p(100.0, 100.0)))
            .build()
            .unwrap();
        // Subset table for facility 1 only (far corner), full table too.
        e.warm();
        e.run(Query::max_cov(1).candidates(&[1])).unwrap();
        let before = e.snapshot();
        let key = vec![1u32];
        // A batch near facility 0: facility 1's subset table is untouched
        // and must be the *same allocation* in the new epoch; the full
        // table (contains facility 0) must be a fresh copy.
        e.apply(&[Update::Insert(Trajectory::two_point(
            p(0.2, 0.0),
            p(9.8, 0.0),
        ))])
        .unwrap();
        let after = e.snapshot();
        assert!(Arc::ptr_eq(&before.tables[&key], &after.tables[&key]));
        let full: Vec<FacilityId> = (0..3).collect();
        assert!(!Arc::ptr_eq(&before.tables[&full], &after.tables[&full]));
    }

    #[test]
    fn exact_budget_exhaustion_is_typed() {
        // Source-only and destination-only facilities: every per-facility
        // potential is 1 but no single facility serves anyone, so the
        // branch-and-bound must actually explore nodes — which a zero
        // budget forbids.
        let users = UserSet::from_vec(vec![Trajectory::two_point(p(0.0, 0.0), p(10.0, 0.0))]);
        let facilities = FacilitySet::from_vec(vec![
            Facility::new(vec![p(0.0, 0.5)]),
            Facility::new(vec![p(10.0, 0.5)]),
        ]);
        let mut e = Engine::builder(ServiceModel::new(Scenario::Transit, 1.0))
            .users(users)
            .facilities(facilities)
            .build()
            .unwrap();
        let err = e
            .run(Query::max_cov(2).algorithm(Algorithm::Exact).node_budget(0))
            .unwrap_err();
        assert_eq!(err, EngineError::ExactBudgetExhausted);
        // With the default budget the same query completes.
        let ok = e.run(Query::max_cov(2).algorithm(Algorithm::Exact)).unwrap();
        assert_eq!(ok.cover().value, 1.0);
    }

    fn grid_instance(extra_facilities: usize) -> (UserSet, FacilitySet) {
        let users = UserSet::from_vec(
            (0..4)
                .map(|i| {
                    let y = i as f64;
                    Trajectory::two_point(p(0.0, y), p(10.0, y))
                })
                .collect(),
        );
        let facilities = FacilitySet::from_vec(
            (0..extra_facilities)
                .map(|i| {
                    let y = (i % 4) as f64;
                    Facility::new(vec![p(0.0, y + 0.5), p(10.0, y + 0.5)])
                })
                .collect(),
        );
        (users, facilities)
    }

    #[test]
    fn subset_table_memo_is_bounded_and_full_table_pinned() {
        let (users, facilities) = grid_instance(DEFAULT_SUBSET_TABLES + 4);
        let mut e = Engine::builder(ServiceModel::new(Scenario::Transit, 1.0))
            .users(users)
            .facilities(facilities)
            .build()
            .unwrap();
        e.warm();
        // Many distinct subset queries: the memo must stay bounded and the
        // pinned full table must survive every eviction.
        for i in 0..(DEFAULT_SUBSET_TABLES as u32 + 3) {
            e.run(Query::max_cov(1).candidates(&[i, i + 1])).unwrap();
            assert!(
                e.snapshot.tables.len() <= DEFAULT_SUBSET_TABLES + 1,
                "memo grew past the cap at query {i}: {}",
                e.snapshot.tables.len()
            );
            assert!(e.full_table().is_some(), "full table evicted at query {i}");
        }
        assert_eq!(e.memo.subset_count(), DEFAULT_SUBSET_TABLES);
        // The oldest subset was evicted, the newest re-queries as a hit.
        let newest = [
            DEFAULT_SUBSET_TABLES as u32 + 2,
            DEFAULT_SUBSET_TABLES as u32 + 3,
        ];
        let hit = e.run(Query::max_cov(1).candidates(&newest)).unwrap();
        assert!(hit.explain.cache.is_hit());
        let oldest = e.run(Query::max_cov(1).candidates(&[0, 1])).unwrap();
        assert_eq!(oldest.explain.cache, CacheStatus::Miss, "oldest was evicted");
    }

    #[test]
    fn subset_table_capacity_is_configurable() {
        let (users, facilities) = grid_instance(6);
        let mut e = Engine::builder(ServiceModel::new(Scenario::Transit, 1.0))
            .users(users)
            .facilities(facilities)
            .subset_tables(1)
            .build()
            .unwrap();
        e.warm();
        e.run(Query::max_cov(1).candidates(&[0, 1])).unwrap();
        let hit = e.run(Query::max_cov(1).candidates(&[0, 1])).unwrap();
        assert!(hit.explain.cache.is_hit());
        // A second subset evicts the first at capacity 1.
        e.run(Query::max_cov(1).candidates(&[2, 3])).unwrap();
        assert_eq!(e.snapshot.tables.len(), 2, "full + one subset");
        let miss = e.run(Query::max_cov(1).candidates(&[0, 1])).unwrap();
        assert_eq!(miss.explain.cache, CacheStatus::Miss);
        assert!(e.full_table().is_some());
    }

    #[test]
    fn zero_capacity_disables_subset_caching() {
        let (users, facilities) = grid_instance(6);
        let mut e = Engine::builder(ServiceModel::new(Scenario::Transit, 1.0))
            .users(users)
            .facilities(facilities)
            .subset_tables(0)
            .build()
            .unwrap();
        let epoch0 = e.epoch();
        let first = e.run(Query::max_cov(1).candidates(&[0, 1])).unwrap();
        assert_eq!(first.explain.cache, CacheStatus::Miss);
        assert_eq!(e.epoch(), epoch0, "no publication for an uncached table");
        let second = e.run(Query::max_cov(1).candidates(&[0, 1])).unwrap();
        assert_eq!(second.explain.cache, CacheStatus::Miss, "never cached");
        assert_eq!(
            second.cover().value.to_bits(),
            first.cover().value.to_bits()
        );
        // The pinned full table is unaffected by the knob.
        e.run(Query::max_cov(1)).unwrap();
        assert!(e.full_table().is_some());
        let hit = e.run(Query::max_cov(1)).unwrap();
        assert!(hit.explain.cache.is_hit());
    }

    #[test]
    fn update_errors_are_wrapped() {
        let (users, facilities) = small_instance();
        let mut e = Engine::builder(ServiceModel::new(Scenario::Transit, 2.0))
            .users(users)
            .facilities(facilities)
            .bounds(Rect::new(p(0.0, 0.0), p(100.0, 100.0)))
            .build()
            .unwrap();
        let err = e.apply(&[Update::Remove(99)]).unwrap_err();
        assert_eq!(
            err,
            EngineError::Update(UpdateError::NotLive { index: 0, id: 99 })
        );
        let err = e
            .apply(&[Update::Insert(Trajectory::two_point(
                p(-5.0, 0.0),
                p(1.0, 1.0),
            ))])
            .unwrap_err();
        assert_eq!(err, EngineError::Update(UpdateError::OutOfBounds { index: 0 }));
    }
}
