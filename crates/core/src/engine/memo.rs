//! Writer-side bookkeeping for the [`ServedTable`] memo.
//!
//! The tables themselves are frozen inside the published
//! [`Snapshot`](super::Snapshot) (behind `Arc`, shared by every reader);
//! what lives here is the single-writer control-plane state that decides
//! *which* tables the next snapshot carries: the pinned full-facility key,
//! the LRU recency order of the subset keys, and the configurable capacity
//! bound. Keeping this out of the snapshot is what lets readers run
//! without locks — recency is a write-plane concern, so a reader cache
//! hit never refreshes it (only [`Engine::run`](super::Engine::run) hits
//! do).

use tq_trajectory::FacilityId;

/// Default number of *subset* [`ServedTable`](crate::maxcov::ServedTable)s
/// the engine memoizes at once (the least-recently-used subset table is
/// evicted beyond this). Override it per engine with
/// [`EngineBuilder::subset_tables`](super::EngineBuilder::subset_tables);
/// `0` disables subset caching entirely. The full-facility table (the
/// streaming workhorse seeded by [`Engine::warm`](super::Engine::warm)) is
/// pinned and never counts against the cap, so a long-running session
/// interleaving updates with shifting-candidate queries has bounded memory
/// and bounded per-batch maintenance cost.
pub const DEFAULT_SUBSET_TABLES: usize = 8;

/// The single-writer memo index: subset-key recency plus the capacity
/// bound. See the module docs for why this is not part of the snapshot.
#[derive(Debug, Clone)]
pub(crate) struct TableMemo {
    /// Maximum number of subset tables; `0` = no subset caching.
    capacity: usize,
    /// Subset keys in recency order, front = least recently used.
    lru: Vec<Vec<FacilityId>>,
}

impl TableMemo {
    pub(crate) fn new(capacity: usize) -> TableMemo {
        TableMemo {
            capacity,
            lru: Vec::new(),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of subset keys currently tracked.
    #[cfg(test)]
    pub(crate) fn subset_count(&self) -> usize {
        self.lru.len()
    }

    /// Refreshes a subset key's recency after a writer-side cache hit.
    /// Unknown keys (the pinned full key, or a key already evicted) are
    /// ignored.
    pub(crate) fn touch(&mut self, key: &[FacilityId]) {
        if let Some(pos) = self.lru.iter().position(|k| k == key) {
            let key = self.lru.remove(pos);
            self.lru.push(key);
        }
    }

    /// Admits a freshly built subset table's key, returning the keys to
    /// evict from the next published snapshot to stay within capacity.
    ///
    /// Callers must check [`TableMemo::capacity`] `> 0` first (capacity 0
    /// means the table is not admitted at all).
    pub(crate) fn admit(&mut self, key: Vec<FacilityId>) -> Vec<Vec<FacilityId>> {
        debug_assert!(self.capacity > 0, "admit called with subset caching off");
        debug_assert!(!self.lru.contains(&key), "admit of an already-tracked key");
        self.lru.push(key);
        let mut evicted = Vec::new();
        while self.lru.len() > self.capacity {
            evicted.push(self.lru.remove(0));
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admit_evicts_least_recently_used() {
        let mut memo = TableMemo::new(2);
        assert!(memo.admit(vec![0]).is_empty());
        assert!(memo.admit(vec![1]).is_empty());
        // Touch [0] so [1] becomes the LRU victim.
        memo.touch(&[0]);
        let evicted = memo.admit(vec![2]);
        assert_eq!(evicted, vec![vec![1]]);
        assert_eq!(memo.subset_count(), 2);
    }

    #[test]
    fn touch_of_unknown_key_is_ignored() {
        let mut memo = TableMemo::new(2);
        memo.touch(&[9, 9]);
        assert_eq!(memo.subset_count(), 0);
    }
}
